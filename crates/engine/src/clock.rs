//! Minimal UTC wall-clock helpers (std-only; the workspace has no
//! registry access, so `chrono`/`time` are out of reach).
//!
//! Used wherever an artifact needs a human-readable timestamp: the
//! daemon's structured access log and the stamped `BENCH_serve.json`
//! benchmark trajectory. Only whole-second ISO-8601 (`Z`-suffixed) is
//! supported — enough for provenance, nowhere near a datetime library.

use std::time::{SystemTime, UNIX_EPOCH};

/// Seconds since the Unix epoch (0 if the system clock is before it).
pub fn unix_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Formats seconds-since-epoch as `YYYY-MM-DDTHH:MM:SSZ` (proleptic
/// Gregorian, UTC). Uses the civil-from-days algorithm, exact for the
/// whole `u64` second range we can encounter.
pub fn iso8601_utc(unix_secs: u64) -> String {
    let days = (unix_secs / 86_400) as i64;
    let secs_of_day = unix_secs % 86_400;
    let (year, month, day) = civil_from_days(days);
    format!(
        "{year:04}-{month:02}-{day:02}T{:02}:{:02}:{:02}Z",
        secs_of_day / 3600,
        (secs_of_day % 3600) / 60,
        secs_of_day % 60
    )
}

/// Days-since-epoch → (year, month, day), after Howard Hinnant's
/// `civil_from_days`.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_instants_format_correctly() {
        assert_eq!(iso8601_utc(0), "1970-01-01T00:00:00Z");
        assert_eq!(iso8601_utc(86_399), "1970-01-01T23:59:59Z");
        // 2000-02-29 (leap day) 12:00:00 UTC.
        assert_eq!(iso8601_utc(951_825_600), "2000-02-29T12:00:00Z");
        // 2026-08-08 00:00:00 UTC.
        assert_eq!(iso8601_utc(1_786_147_200), "2026-08-08T00:00:00Z");
        // 2038 rollover is a non-event for u64 seconds.
        assert_eq!(iso8601_utc(2_147_483_648), "2038-01-19T03:14:08Z");
    }

    #[test]
    fn unix_now_is_after_2020() {
        assert!(unix_now() > 1_577_836_800, "system clock before 2020?");
    }
}
