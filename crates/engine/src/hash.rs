//! Stable content hashing for cache keys.
//!
//! `std::hash` makes no stability promises across runs or builds, so
//! cache keys that may be persisted to disk are built with an explicit
//! FNV-1a 64-bit hash over a tagged field stream. Floats are hashed by
//! their IEEE-754 bit pattern, which is exactly the identity the cache
//! needs: two [`f64`]s hash equal iff they are the same value.

/// FNV-1a 64-bit streaming hasher (stable across runs and platforms).
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv64 {
    /// Creates a hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self(FNV_OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Returns the current 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// Builder for stable cache keys: a tag plus a stream of typed fields.
///
/// Each field is framed with a one-byte type marker and (for variable
/// length data) its length, so field boundaries cannot alias — e.g.
/// `.str("ab").str("c")` and `.str("a").str("bc")` hash differently.
///
/// # Examples
///
/// ```
/// use subvt_engine::KeyBuilder;
/// let a = KeyBuilder::new("idvg").f64(1.2).f64(0.05).finish();
/// let b = KeyBuilder::new("idvg").f64(1.2).f64(0.05).finish();
/// let c = KeyBuilder::new("idvg").f64(0.05).f64(1.2).finish();
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// ```
#[derive(Debug, Clone)]
pub struct KeyBuilder(Fnv64);

impl KeyBuilder {
    /// Starts a key with a schema tag (bump the tag when the encoded
    /// layout of the cached value changes).
    pub fn new(tag: &str) -> Self {
        let mut h = Fnv64::new();
        h.write(&(tag.len() as u64).to_le_bytes());
        h.write(tag.as_bytes());
        Self(h)
    }

    /// Hashes a string field.
    #[must_use]
    pub fn str(mut self, s: &str) -> Self {
        self.0.write(&[1]);
        self.0.write(&(s.len() as u64).to_le_bytes());
        self.0.write(s.as_bytes());
        self
    }

    /// Hashes a float by bit pattern.
    #[must_use]
    pub fn f64(mut self, v: f64) -> Self {
        self.0.write(&[2]);
        self.0.write(&v.to_bits().to_le_bytes());
        self
    }

    /// Hashes an unsigned integer.
    #[must_use]
    pub fn u64(mut self, v: u64) -> Self {
        self.0.write(&[3]);
        self.0.write(&v.to_le_bytes());
        self
    }

    /// Hashes a boolean.
    #[must_use]
    pub fn bool(mut self, v: bool) -> Self {
        self.0.write(&[4, u8::from(v)]);
        self
    }

    /// Hashes a float slice (length-framed).
    #[must_use]
    pub fn f64s(mut self, vs: &[f64]) -> Self {
        self.0.write(&[5]);
        self.0.write(&(vs.len() as u64).to_le_bytes());
        for v in vs {
            self.0.write(&v.to_bits().to_le_bytes());
        }
        self
    }

    /// Absorbs a [`Keyed`] value's field stream.
    #[must_use]
    pub fn keyed(self, value: &impl Keyed) -> Self {
        value.absorb(self)
    }

    /// Returns the finished 64-bit key.
    pub fn finish(self) -> u64 {
        self.0.finish()
    }
}

/// A value with a canonical stable-key field stream.
///
/// Implementations define, once, the exact sequence of typed fields that
/// identifies a value for caching purposes; every cache key that covers
/// the value then shares that sequence via [`KeyBuilder::keyed`] instead
/// of re-listing the fields (and risking divergence between callers).
pub trait Keyed {
    /// Absorbs this value's identifying fields into the builder.
    #[must_use]
    fn absorb(&self, kb: KeyBuilder) -> KeyBuilder;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        let mut h = Fnv64::new();
        h.write(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv64::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn field_framing_prevents_aliasing() {
        let a = KeyBuilder::new("t").str("ab").str("c").finish();
        let b = KeyBuilder::new("t").str("a").str("bc").finish();
        assert_ne!(a, b);
        let a = KeyBuilder::new("t").f64s(&[1.0, 2.0]).f64s(&[]).finish();
        let b = KeyBuilder::new("t").f64s(&[1.0]).f64s(&[2.0]).finish();
        assert_ne!(a, b);
    }

    #[test]
    fn tag_separates_namespaces() {
        let a = KeyBuilder::new("x").u64(7).finish();
        let b = KeyBuilder::new("y").u64(7).finish();
        assert_ne!(a, b);
    }

    #[test]
    fn keyed_matches_manual_field_stream() {
        struct Point {
            x: f64,
            label: &'static str,
        }
        impl Keyed for Point {
            fn absorb(&self, kb: KeyBuilder) -> KeyBuilder {
                kb.f64(self.x).str(self.label)
            }
        }
        let p = Point { x: 1.5, label: "a" };
        assert_eq!(
            KeyBuilder::new("t").keyed(&p).u64(7).finish(),
            KeyBuilder::new("t").f64(1.5).str("a").u64(7).finish()
        );
    }

    #[test]
    fn float_bit_identity() {
        assert_ne!(
            KeyBuilder::new("t").f64(0.0).finish(),
            KeyBuilder::new("t").f64(-0.0).finish(),
            "distinct bit patterns must hash differently"
        );
        assert_eq!(
            KeyBuilder::new("t").f64(0.1 + 0.2).finish(),
            KeyBuilder::new("t").f64(0.1 + 0.2).finish()
        );
    }
}
