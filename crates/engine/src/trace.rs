//! Structured tracing: spans, counters, and a JSON-lines sink.
//!
//! The tracer is process-global and always on — recording a span is two
//! `Instant` reads and one `Vec` push, far below the cost of anything
//! worth tracing here. The `repro` binary drains it into a
//! machine-readable JSON-lines file when `--trace <path>` is given.
//!
//! Schema (one JSON object per line):
//!
//! ```text
//! {"type":"span","name":"experiment.fig4","start_us":123,"dur_us":4567,"thread":"ThreadId(5)"}
//! {"type":"counter","name":"cache.design.hit","value":26}
//! {"type":"meta","spans":17,"counters":4,"wall_us":890123}
//! ```

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Dotted span name, e.g. `experiment.fig4`.
    pub name: String,
    /// Start, microseconds since the tracer was created.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub dur_us: u64,
    /// Debug rendering of the recording thread's id.
    pub thread: String,
}

struct TracerState {
    spans: Vec<SpanRecord>,
    counters: BTreeMap<String, u64>,
}

/// Process-global span/counter collector.
pub struct Tracer {
    epoch: Instant,
    state: Mutex<TracerState>,
}

impl Tracer {
    fn new() -> Self {
        Self {
            epoch: Instant::now(),
            state: Mutex::new(TracerState {
                spans: Vec::new(),
                counters: BTreeMap::new(),
            }),
        }
    }

    /// Opens a span; the span records itself when dropped.
    pub fn span(&self, name: impl Into<String>) -> Span<'_> {
        Span {
            tracer: self,
            name: name.into(),
            started: Instant::now(),
        }
    }

    /// Adds `delta` to a named counter.
    pub fn add(&self, name: &str, delta: u64) {
        let mut state = self.state.lock().expect("tracer lock");
        *state.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Snapshot of all spans and counters recorded so far.
    pub fn snapshot(&self) -> (Vec<SpanRecord>, BTreeMap<String, u64>) {
        let state = self.state.lock().expect("tracer lock");
        (state.spans.clone(), state.counters.clone())
    }

    /// Reads one counter (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.state
            .lock()
            .expect("tracer lock")
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Writes the JSON-lines trace described in the module docs.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_jsonl(&self, w: &mut impl Write) -> std::io::Result<()> {
        let (spans, counters) = self.snapshot();
        for s in &spans {
            writeln!(
                w,
                "{{\"type\":\"span\",\"name\":{},\"start_us\":{},\"dur_us\":{},\"thread\":{}}}",
                json_str(&s.name),
                s.start_us,
                s.dur_us,
                json_str(&s.thread)
            )?;
        }
        for (name, value) in &counters {
            writeln!(
                w,
                "{{\"type\":\"counter\",\"name\":{},\"value\":{}}}",
                json_str(name),
                value
            )?;
        }
        writeln!(
            w,
            "{{\"type\":\"meta\",\"spans\":{},\"counters\":{},\"wall_us\":{}}}",
            spans.len(),
            counters.len(),
            self.epoch.elapsed().as_micros()
        )
    }
}

/// An open span; records wall-clock duration when dropped.
pub struct Span<'t> {
    tracer: &'t Tracer,
    name: String,
    started: Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let start_us = self.started.duration_since(self.tracer.epoch).as_micros() as u64;
        let dur_us = self.started.elapsed().as_micros() as u64;
        let record = SpanRecord {
            name: std::mem::take(&mut self.name),
            start_us,
            dur_us,
            thread: format!("{:?}", std::thread::current().id()),
        };
        self.tracer
            .state
            .lock()
            .expect("tracer lock")
            .spans
            .push(record);
    }
}

/// The process-global tracer.
pub fn global() -> &'static Tracer {
    static TRACER: OnceLock<Tracer> = OnceLock::new();
    TRACER.get_or_init(Tracer::new)
}

/// Opens a span on the global tracer.
pub fn span(name: impl Into<String>) -> Span<'static> {
    global().span(name)
}

/// Adds to a counter on the global tracer.
pub fn add(name: &str, delta: u64) {
    global().add(name, delta);
}

/// Escapes a string as a JSON string literal.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let tracer = Tracer::new();
        {
            let _span = tracer.span("unit.test");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let (spans, _) = tracer.snapshot();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "unit.test");
        assert!(
            spans[0].dur_us >= 1_000,
            "span too short: {}",
            spans[0].dur_us
        );
    }

    #[test]
    fn counters_accumulate() {
        let tracer = Tracer::new();
        tracer.add("cache.x.hit", 2);
        tracer.add("cache.x.hit", 3);
        assert_eq!(tracer.counter("cache.x.hit"), 5);
        assert_eq!(tracer.counter("missing"), 0);
    }

    #[test]
    fn jsonl_sink_is_machine_readable() {
        let tracer = Tracer::new();
        drop(tracer.span("a\"b"));
        tracer.add("c", 1);
        let mut buf = Vec::new();
        tracer.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"name\":\"a\\\"b\""));
        assert!(lines[1].contains("\"type\":\"counter\""));
        assert!(lines[2].contains("\"type\":\"meta\""));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn json_escaping_covers_controls() {
        assert_eq!(json_str("a\nb"), "\"a\\nb\"");
        assert_eq!(json_str("q\"\\"), "\"q\\\"\\\\\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }
}
