//! Hierarchical structured tracing: attributed spans, a metrics
//! registry (counters, gauges, fixed-bucket histograms), and two
//! machine-readable sinks.
//!
//! The tracer is process-global and always on — recording a span is two
//! `Instant` reads, one id allocation and one `Vec` push, far below the
//! cost of anything worth tracing here. (`set_enabled(false)` exists so
//! benches can measure that claim.)
//!
//! # Span hierarchy
//!
//! Every span carries a process-unique `id` and an optional `parent` id.
//! The parent is taken from a thread-local context stack: opening a span
//! pushes its id, dropping it pops, so lexical nesting becomes tree
//! structure for free. The work-stealing executor propagates the stack
//! across threads — [`Executor::spawn`](crate::Executor::spawn) captures
//! the spawner's current span and installs it (via [`task_context`]) as
//! the parent context for the job, no matter which worker steals it.
//! Spans also record the executor-assigned *worker lane* (`0` = any
//! non-pool thread, `n` = pool worker `n − 1`), which gives the Chrome
//! export deterministic per-worker rows.
//!
//! # Sinks
//!
//! * [`Tracer::write_jsonl`] — versioned JSON-lines (schema `v2`):
//!
//! ```text
//! {"type":"span","id":7,"parent":3,"name":"experiment.fig4","start_us":123,"dur_us":4567,"worker":2,"attrs":{"backend":"analytic"}}
//! {"type":"counter","name":"cache.design.hit","value":26}
//! {"type":"gauge","name":"engine.jobs","value":4}
//! {"type":"hist","name":"tcad.gummel.iterations","count":310,"sum":2212,"min":2,"max":31,"bounds":[1,2,5],"counts":[0,12,201,97]}
//! {"type":"meta","v":2,"spans":17,"counters":4,"gauges":1,"hists":2,"wall_us":890123}
//! ```
//!
//! * [`Tracer::write_chrome`] — Chrome trace-event JSON (open in
//!   Perfetto / `chrome://tracing`), one lane per executor worker.
//!
//! Draining either sink first runs registered *flush hooks* (see
//! [`Tracer::register_flush`]); the engine cache uses one to publish its
//! hit/miss statistics as `cache.<ns>.hit`/`cache.<ns>.miss` counters,
//! so every drained trace carries cache stats even when no code path
//! incremented them explicitly.

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// JSONL schema version written by [`Tracer::write_jsonl`].
pub const SCHEMA_VERSION: u64 = 2;

/// Default histogram bucket upper bounds: a 1–2–5 decade ladder that
/// covers iteration counts and microsecond latencies alike.
pub const DEFAULT_BUCKETS: [f64; 19] = [
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1.0e3, 2.0e3, 5.0e3, 1.0e4, 2.0e4, 5.0e4,
    1.0e5, 2.0e5, 5.0e5, 1.0e6,
];

/// Bucket bounds for base-10 logarithms of residuals/tolerances
/// (`log10(x) ∈ [−12, 0]` in steps of one decade).
pub const LOG10_BUCKETS: [f64; 13] = [
    -12.0, -11.0, -10.0, -9.0, -8.0, -7.0, -6.0, -5.0, -4.0, -3.0, -2.0, -1.0, 0.0,
];

/// A typed span attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(u64::from(v))
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_owned())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

impl AttrValue {
    fn to_json(&self) -> String {
        match self {
            AttrValue::U64(v) => v.to_string(),
            AttrValue::I64(v) => v.to_string(),
            AttrValue::F64(v) => json_f64(*v),
            AttrValue::Str(s) => json_str(s),
            AttrValue::Bool(b) => b.to_string(),
        }
    }
}

/// One completed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Enclosing span at open time, `None` for roots.
    pub parent: Option<u64>,
    /// Dotted span name, e.g. `experiment.fig4`.
    pub name: String,
    /// Start, microseconds since the tracer was created.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub dur_us: u64,
    /// Executor lane: 0 for non-pool threads, `n` for pool worker
    /// `n − 1`. Deterministic across runs for a fixed `--jobs`.
    pub worker: u32,
    /// Typed key/value attributes attached while the span was open.
    pub attrs: Vec<(String, AttrValue)>,
}

/// A fixed-bucket histogram: counts per bucket (the last bucket is the
/// implicit overflow above the final bound) plus exact count/sum/min/max.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Ascending bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket sample counts; `counts.len() == bounds.len() + 1`.
    pub counts: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample (`+inf` when empty).
    pub min: f64,
    /// Largest sample (`−inf` when empty).
    pub max: f64,
}

impl Histogram {
    /// Creates an empty histogram over the given (ascending) bounds.
    pub fn new(bounds: &[f64]) -> Self {
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        let bucket = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[bucket] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Estimated quantile (`q ∈ [0, 1]`): the upper bound of the bucket
    /// holding the q-th sample, clamped to the observed max. `NaN` when
    /// empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return match self.bounds.get(i) {
                    Some(&b) => b.min(self.max),
                    None => self.max,
                };
            }
        }
        self.max
    }

    /// Mean sample value (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Everything a tracer has recorded, captured atomically.
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// Completed spans, in completion order.
    pub spans: Vec<SpanRecord>,
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Fixed-bucket histograms.
    pub hists: BTreeMap<String, Histogram>,
    /// Microseconds since the tracer was created.
    pub wall_us: u64,
}

#[derive(Default)]
struct TracerState {
    spans: Vec<SpanRecord>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
}

type FlushHook = Arc<dyn Fn(&Tracer) + Send + Sync>;

/// Process-global span/metric collector.
pub struct Tracer {
    epoch: Instant,
    state: Mutex<TracerState>,
    flush_hooks: Mutex<Vec<FlushHook>>,
}

/// Span ids are allocated from one process-wide counter so ids stay
/// unique even across distinct `Tracer` instances (tests build local
/// tracers while the thread-local context stack is shared).
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Global on/off switch; exists so benches can measure the overhead of
/// the always-on default.
static ENABLED: AtomicBool = AtomicBool::new(true);

thread_local! {
    /// Open-span context stack (innermost last). Jobs running on the
    /// executor get a fresh stack seeded with the spawn-site span.
    static SPAN_STACK: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
    /// Executor lane of the current thread (0 = not a pool worker).
    static WORKER_LANE: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// Enables or disables all recording (spans, counters, gauges,
/// histograms). Meant for A/B overhead measurements; production paths
/// leave tracing on.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether recording is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The innermost open span id on this thread, if any.
pub fn current_span_id() -> Option<u64> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

/// Raises the process-wide span-id counter to at least `floor`.
///
/// Client processes that stamp their span ids onto wire requests (see
/// `subvt-serve`'s trace-context propagation) call this with a high
/// base (e.g. `1 << 32`) so their ids can never collide with the ids a
/// server process allocates from 1 — a requirement for stitching the
/// two traces into one parent-linked tree. Monotone: a floor below the
/// current counter is a no-op.
pub fn raise_id_floor(floor: u64) {
    NEXT_SPAN_ID.fetch_max(floor, Ordering::Relaxed);
}

/// Tags the current thread with its executor lane. Called by the
/// executor's worker loop; anything else should leave the default 0.
pub fn set_worker_lane(lane: u32) {
    WORKER_LANE.with(|w| w.set(lane));
}

/// The executor lane of the current thread (0 when not a pool worker).
pub fn worker_lane() -> u32 {
    WORKER_LANE.with(|w| w.get())
}

/// Replaces this thread's span context for the duration of a task: the
/// stack is swapped for one rooted at `parent` and restored when the
/// guard drops (including during unwinding). The executor wraps every
/// job in one of these so spans opened inside the job attach to the
/// spawn-site span rather than to whatever the worker happened to be
/// doing.
pub fn task_context(parent: Option<u64>) -> TaskContext {
    let fresh = match parent {
        Some(p) => vec![p],
        None => Vec::new(),
    };
    let saved = SPAN_STACK.with(|s| std::mem::replace(&mut *s.borrow_mut(), fresh));
    TaskContext { saved }
}

/// Guard restoring the pre-task span context. See [`task_context`].
pub struct TaskContext {
    saved: Vec<u64>,
}

impl Drop for TaskContext {
    fn drop(&mut self) {
        let saved = std::mem::take(&mut self.saved);
        SPAN_STACK.with(|s| *s.borrow_mut() = saved);
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// Creates an empty tracer with its epoch at "now". Most code uses
    /// the process-wide [`global`] tracer; local instances are for
    /// tests and tools.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            state: Mutex::new(TracerState::default()),
            flush_hooks: Mutex::new(Vec::new()),
        }
    }

    /// Opens a span; the span records itself when dropped. The parent is
    /// the innermost span currently open on this thread (or installed by
    /// the executor's task context).
    pub fn span(&self, name: impl Into<String>) -> Span<'_> {
        if !enabled() {
            return Span {
                tracer: self,
                name: String::new(),
                id: 0,
                parent: None,
                started: Instant::now(),
                attrs: Vec::new(),
            };
        }
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = current_span_id();
        SPAN_STACK.with(|s| s.borrow_mut().push(id));
        Span {
            tracer: self,
            name: name.into(),
            id,
            parent,
            started: Instant::now(),
            attrs: Vec::new(),
        }
    }

    /// Adds `delta` to a named counter.
    pub fn add(&self, name: &str, delta: u64) {
        if !enabled() {
            return;
        }
        let mut state = self.state.lock().expect("tracer lock");
        *state.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Sets a counter to an absolute value (used by flush hooks that
    /// publish externally-accumulated statistics).
    pub fn set_counter(&self, name: &str, value: u64) {
        if !enabled() {
            return;
        }
        let mut state = self.state.lock().expect("tracer lock");
        state.counters.insert(name.to_owned(), value);
    }

    /// Sets a gauge (last write wins).
    pub fn gauge(&self, name: &str, value: f64) {
        if !enabled() {
            return;
        }
        let mut state = self.state.lock().expect("tracer lock");
        state.gauges.insert(name.to_owned(), value);
    }

    /// Records a histogram sample with the [`DEFAULT_BUCKETS`] ladder.
    pub fn observe(&self, name: &str, value: f64) {
        self.observe_with(name, value, &DEFAULT_BUCKETS);
    }

    /// Records a histogram sample; `bounds` defines the bucket ladder
    /// the first time `name` is seen (later calls reuse the existing
    /// buckets).
    pub fn observe_with(&self, name: &str, value: f64, bounds: &[f64]) {
        if !enabled() {
            return;
        }
        let mut state = self.state.lock().expect("tracer lock");
        state
            .hists
            .entry(name.to_owned())
            .or_insert_with(|| Histogram::new(bounds))
            .record(value);
    }

    /// Reads one counter (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.state
            .lock()
            .expect("tracer lock")
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Registers a hook that runs whenever the trace is drained into a
    /// sink (or via [`Tracer::drain`]), letting external stats systems
    /// publish their totals as counters/gauges just in time.
    pub fn register_flush(&self, hook: impl Fn(&Tracer) + Send + Sync + 'static) {
        self.flush_hooks
            .lock()
            .expect("flush lock")
            .push(Arc::new(hook));
    }

    /// Raw snapshot of everything recorded so far (flush hooks are NOT
    /// run — use [`Tracer::drain`] for sink-equivalent data).
    pub fn snapshot(&self) -> TraceSnapshot {
        let state = self.state.lock().expect("tracer lock");
        TraceSnapshot {
            spans: state.spans.clone(),
            counters: state.counters.clone(),
            gauges: state.gauges.clone(),
            hists: state.hists.clone(),
            wall_us: self.epoch.elapsed().as_micros() as u64,
        }
    }

    /// Runs the flush hooks, then snapshots. This is what the sinks use.
    pub fn drain(&self) -> TraceSnapshot {
        let hooks: Vec<FlushHook> = self.flush_hooks.lock().expect("flush lock").clone();
        for hook in hooks {
            hook(self);
        }
        self.snapshot()
    }

    /// Writes the versioned JSON-lines trace described in the module
    /// docs (running flush hooks first).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_jsonl(&self, w: &mut impl Write) -> std::io::Result<()> {
        let snap = self.drain();
        for s in &snap.spans {
            write!(
                w,
                "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"name\":{},\"start_us\":{},\"dur_us\":{},\"worker\":{},\"attrs\":{{",
                s.id,
                match s.parent {
                    Some(p) => p.to_string(),
                    None => "null".to_owned(),
                },
                json_str(&s.name),
                s.start_us,
                s.dur_us,
                s.worker
            )?;
            for (i, (k, v)) in s.attrs.iter().enumerate() {
                if i > 0 {
                    write!(w, ",")?;
                }
                write!(w, "{}:{}", json_str(k), v.to_json())?;
            }
            writeln!(w, "}}}}")?;
        }
        for (name, value) in &snap.counters {
            writeln!(
                w,
                "{{\"type\":\"counter\",\"name\":{},\"value\":{}}}",
                json_str(name),
                value
            )?;
        }
        for (name, value) in &snap.gauges {
            writeln!(
                w,
                "{{\"type\":\"gauge\",\"name\":{},\"value\":{}}}",
                json_str(name),
                json_f64(*value)
            )?;
        }
        for (name, h) in &snap.hists {
            write!(
                w,
                "{{\"type\":\"hist\",\"name\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"bounds\":[",
                json_str(name),
                h.count,
                json_f64(h.sum),
                json_f64(h.min),
                json_f64(h.max)
            )?;
            for (i, b) in h.bounds.iter().enumerate() {
                if i > 0 {
                    write!(w, ",")?;
                }
                write!(w, "{}", json_f64(*b))?;
            }
            write!(w, "],\"counts\":[")?;
            for (i, c) in h.counts.iter().enumerate() {
                if i > 0 {
                    write!(w, ",")?;
                }
                write!(w, "{c}")?;
            }
            writeln!(w, "]}}")?;
        }
        writeln!(
            w,
            "{{\"type\":\"meta\",\"v\":{},\"spans\":{},\"counters\":{},\"gauges\":{},\"hists\":{},\"wall_us\":{}}}",
            SCHEMA_VERSION,
            snap.spans.len(),
            snap.counters.len(),
            snap.gauges.len(),
            snap.hists.len(),
            snap.wall_us
        )
    }

    /// Writes the trace as Chrome trace-event JSON (running flush hooks
    /// first): one complete (`ph:"X"`) event per span on its worker
    /// lane, `thread_name` metadata rows per lane, and one final
    /// counter (`ph:"C"`) event per counter. Every event carries
    /// `pid`/`tid`/`ts`/`dur`/`name`, so strict parsers (and the
    /// `tracefmt` round-trip tests) accept the whole stream.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_chrome(&self, w: &mut impl Write) -> std::io::Result<()> {
        let snap = self.drain();
        write!(w, "{{\"traceEvents\":[")?;
        let mut first = true;
        let sep = |w: &mut dyn Write, first: &mut bool| -> std::io::Result<()> {
            if *first {
                *first = false;
                writeln!(w)
            } else {
                writeln!(w, ",")
            }
        };
        sep(w, &mut first)?;
        write!(
            w,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"ts\":0,\"dur\":0,\"args\":{{\"name\":\"subvt-repro\"}}}}"
        )?;
        let mut lanes: Vec<u32> = snap.spans.iter().map(|s| s.worker).collect();
        lanes.push(0);
        lanes.sort_unstable();
        lanes.dedup();
        for lane in &lanes {
            let label = if *lane == 0 {
                "main".to_owned()
            } else {
                format!("worker-{}", lane - 1)
            };
            sep(w, &mut first)?;
            write!(
                w,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\"ts\":0,\"dur\":0,\"args\":{{\"name\":{}}}}}",
                json_str(&label)
            )?;
        }
        for s in &snap.spans {
            sep(w, &mut first)?;
            write!(
                w,
                "{{\"name\":{},\"cat\":\"subvt\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"id\":{},\"parent\":{}",
                json_str(&s.name),
                s.worker,
                s.start_us,
                s.dur_us,
                s.id,
                match s.parent {
                    Some(p) => p.to_string(),
                    None => "null".to_owned(),
                }
            )?;
            for (k, v) in &s.attrs {
                write!(w, ",{}:{}", json_str(k), v.to_json())?;
            }
            write!(w, "}}}}")?;
        }
        for (name, value) in &snap.counters {
            sep(w, &mut first)?;
            write!(
                w,
                "{{\"name\":{},\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":{},\"dur\":0,\"args\":{{\"value\":{}}}}}",
                json_str(name),
                snap.wall_us,
                value
            )?;
        }
        writeln!(w)?;
        writeln!(w, "],\"displayTimeUnit\":\"ms\"}}")
    }
}

/// An open span; records wall-clock duration, hierarchy and attributes
/// when dropped (including during unwinding, so a panicking task still
/// records its open spans with the correct parent chain).
pub struct Span<'t> {
    tracer: &'t Tracer,
    name: String,
    id: u64,
    parent: Option<u64>,
    started: Instant,
    attrs: Vec<(String, AttrValue)>,
}

impl Span<'_> {
    /// This span's id (0 when tracing is disabled).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attaches a typed attribute, builder-style.
    #[must_use]
    pub fn attr(mut self, key: impl Into<String>, value: impl Into<AttrValue>) -> Self {
        self.set_attr(key, value);
        self
    }

    /// Attaches a typed attribute to an already-bound span.
    pub fn set_attr(&mut self, key: impl Into<String>, value: impl Into<AttrValue>) {
        if self.id != 0 {
            self.attrs.push((key.into(), value.into()));
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if self.id == 0 {
            return; // opened while disabled
        }
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Normally a strict LIFO pop; be tolerant of out-of-order
            // drops so a mis-scoped span cannot corrupt the context.
            if let Some(pos) = stack.iter().rposition(|&id| id == self.id) {
                stack.remove(pos);
            }
        });
        let start_us = self.started.duration_since(self.tracer.epoch).as_micros() as u64;
        let dur_us = self.started.elapsed().as_micros() as u64;
        let record = SpanRecord {
            id: self.id,
            parent: self.parent,
            name: std::mem::take(&mut self.name),
            start_us,
            dur_us,
            worker: worker_lane(),
            attrs: std::mem::take(&mut self.attrs),
        };
        self.tracer
            .state
            .lock()
            .expect("tracer lock")
            .spans
            .push(record);
    }
}

/// The process-global tracer.
pub fn global() -> &'static Tracer {
    static TRACER: OnceLock<Tracer> = OnceLock::new();
    TRACER.get_or_init(Tracer::new)
}

/// Opens a span on the global tracer.
pub fn span(name: impl Into<String>) -> Span<'static> {
    global().span(name)
}

/// Adds to a counter on the global tracer.
pub fn add(name: &str, delta: u64) {
    global().add(name, delta);
}

/// Sets a gauge on the global tracer.
pub fn gauge(name: &str, value: f64) {
    global().gauge(name, value);
}

/// Records a histogram sample on the global tracer (default buckets).
pub fn observe(name: &str, value: f64) {
    global().observe(name, value);
}

/// Records a histogram sample on the global tracer with explicit bucket
/// bounds (used on first sight of `name`).
pub fn observe_with(name: &str, value: f64, bounds: &[f64]) {
    global().observe_with(name, value, bounds);
}

/// Escapes a string as a JSON string literal.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders an `f64` as a JSON number (`null` for non-finite values,
/// which plain JSON cannot express).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // `Display` omits the fraction for integral floats; that is
        // still a valid JSON number.
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let tracer = Tracer::new();
        {
            let _span = tracer.span("unit.test");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = tracer.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].name, "unit.test");
        assert!(snap.spans[0].id > 0);
        assert!(
            snap.spans[0].dur_us >= 1_000,
            "span too short: {}",
            snap.spans[0].dur_us
        );
    }

    #[test]
    fn nested_spans_link_parents() {
        let tracer = Tracer::new();
        let outer_id;
        {
            let outer = tracer.span("outer");
            outer_id = outer.id();
            {
                let _inner = tracer.span("inner");
            }
        }
        let snap = tracer.snapshot();
        let inner = snap.spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = snap.spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(inner.parent, Some(outer_id));
        assert_eq!(outer.parent, None);
        assert_ne!(inner.id, outer.id);
    }

    #[test]
    fn sibling_spans_share_a_parent() {
        let tracer = Tracer::new();
        {
            let _outer = tracer.span("outer");
            drop(tracer.span("a"));
            drop(tracer.span("b"));
        }
        let snap = tracer.snapshot();
        let outer = snap.spans.iter().find(|s| s.name == "outer").unwrap();
        for name in ["a", "b"] {
            let s = snap.spans.iter().find(|s| s.name == name).unwrap();
            assert_eq!(s.parent, Some(outer.id), "{name}");
        }
    }

    #[test]
    fn span_attrs_are_typed() {
        let tracer = Tracer::new();
        drop(
            tracer
                .span("attrs")
                .attr("n", 4u64)
                .attr("x", -1.5)
                .attr("s", "hi")
                .attr("b", true),
        );
        let snap = tracer.snapshot();
        let attrs = &snap.spans[0].attrs;
        assert_eq!(attrs[0], ("n".to_owned(), AttrValue::U64(4)));
        assert_eq!(attrs[1], ("x".to_owned(), AttrValue::F64(-1.5)));
        assert_eq!(attrs[2], ("s".to_owned(), AttrValue::Str("hi".into())));
        assert_eq!(attrs[3], ("b".to_owned(), AttrValue::Bool(true)));
    }

    #[test]
    fn task_context_reroots_and_restores() {
        let tracer = Tracer::new();
        let outer = tracer.span("outer");
        let outer_id = outer.id();
        {
            let _ctx = task_context(Some(outer_id));
            drop(tracer.span("in-task"));
        }
        drop(tracer.span("after-task"));
        drop(outer);
        let snap = tracer.snapshot();
        let in_task = snap.spans.iter().find(|s| s.name == "in-task").unwrap();
        assert_eq!(in_task.parent, Some(outer_id));
        let after = snap.spans.iter().find(|s| s.name == "after-task").unwrap();
        assert_eq!(after.parent, Some(outer_id), "context must be restored");
    }

    #[test]
    fn raise_id_floor_reserves_a_high_range() {
        let tracer = Tracer::new();
        raise_id_floor(1 << 20);
        let span = tracer.span("floored");
        assert!(span.id() >= 1 << 20);
        let first = span.id();
        drop(span);
        // A lower floor never rolls the counter back.
        raise_id_floor(1);
        let span = tracer.span("still-floored");
        assert!(span.id() > first);
        drop(span);
    }

    #[test]
    fn counters_accumulate_and_set_overrides() {
        let tracer = Tracer::new();
        tracer.add("cache.x.hit", 2);
        tracer.add("cache.x.hit", 3);
        assert_eq!(tracer.counter("cache.x.hit"), 5);
        assert_eq!(tracer.counter("missing"), 0);
        tracer.set_counter("cache.x.hit", 42);
        assert_eq!(tracer.counter("cache.x.hit"), 42);
    }

    #[test]
    fn gauges_last_write_wins() {
        let tracer = Tracer::new();
        tracer.gauge("g", 1.0);
        tracer.gauge("g", 2.5);
        assert_eq!(tracer.snapshot().gauges["g"], 2.5);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new(&[1.0, 2.0, 5.0, 10.0]);
        for v in [0.5, 1.0, 2.0, 3.0, 4.0, 7.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.count, 7);
        assert_eq!(h.counts, vec![2, 1, 2, 1, 1]);
        assert_eq!(h.counts.iter().sum::<u64>(), h.count);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 100.0);
        // 4th of 7 samples sits in the (2, 5] bucket.
        assert_eq!(h.quantile(0.5), 5.0);
        assert_eq!(h.quantile(1.0), 100.0);
        assert!(Histogram::new(&[1.0]).quantile(0.5).is_nan());
    }

    #[test]
    fn observe_uses_first_seen_bounds() {
        let tracer = Tracer::new();
        tracer.observe_with("h", 0.5, &[1.0, 2.0]);
        tracer.observe_with("h", 1.5, &[99.0]); // bounds ignored: already registered
        let snap = tracer.snapshot();
        assert_eq!(snap.hists["h"].bounds, vec![1.0, 2.0]);
        assert_eq!(snap.hists["h"].count, 2);
    }

    #[test]
    fn jsonl_sink_is_machine_readable_v2() {
        let tracer = Tracer::new();
        drop(tracer.span("a\"b").attr("k", 7u64));
        tracer.add("c", 1);
        tracer.gauge("g", 1.5);
        tracer.observe_with("h", 3.0, &[1.0, 5.0]);
        let mut buf = Vec::new();
        tracer.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].contains("\"name\":\"a\\\"b\""));
        assert!(lines[0].contains("\"parent\":null"));
        assert!(lines[0].contains("\"attrs\":{\"k\":7}"));
        assert!(lines[1].contains("\"type\":\"counter\""));
        assert!(lines[2].contains("\"type\":\"gauge\""));
        assert!(lines[3].contains("\"type\":\"hist\""));
        assert!(lines[3].contains("\"counts\":[0,1,0]"));
        assert!(lines[4].contains("\"type\":\"meta\""));
        assert!(lines[4].contains("\"v\":2"));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn chrome_sink_has_required_fields_on_every_event() {
        let tracer = Tracer::new();
        drop(tracer.span("e1"));
        tracer.add("c", 2);
        let mut buf = Vec::new();
        tracer.write_chrome(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("{\"traceEvents\":["));
        for line in text.lines().filter(|l| l.starts_with('{') && l.len() > 2) {
            if line.starts_with("{\"traceEvents\"") {
                continue;
            }
            for field in [
                "\"name\":",
                "\"ph\":",
                "\"pid\":",
                "\"tid\":",
                "\"ts\":",
                "\"dur\":",
            ] {
                assert!(line.contains(field), "{field} missing from {line}");
            }
        }
    }

    #[test]
    fn flush_hooks_run_on_drain() {
        let tracer = Tracer::new();
        tracer.register_flush(|t| t.set_counter("flushed", 9));
        assert_eq!(tracer.counter("flushed"), 0);
        let snap = tracer.drain();
        assert_eq!(snap.counters["flushed"], 9);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::new();
        set_enabled(false);
        drop(tracer.span("ghost"));
        tracer.add("c", 1);
        tracer.observe("h", 1.0);
        set_enabled(true);
        let snap = tracer.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.hists.is_empty());
    }

    #[test]
    fn json_escaping_covers_controls() {
        assert_eq!(json_str("a\nb"), "\"a\\nb\"");
        assert_eq!(json_str("q\"\\"), "\"q\\\"\\\\\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }
}
