//! Deterministic fault-injection harness for chaos testing.
//!
//! When a [`FaultPlan`] is armed (programmatically via [`configure`], or
//! through the `SUBVT_FAULTS` environment variable for CLI runs), the
//! instrumented sites across the workspace — executor job wrappers,
//! the Gummel/Newton solver entries, cache persistence, supervised
//! deadlines — consult [`should_inject`] and fail on purpose. The
//! decision is a pure function of `(seed, site, per-site sequence
//! number)` through the engine's [`crate::rng::SplitMix64`] streams, so
//! a given seed replays the same fault schedule on every serial run.
//!
//! Design rules the instrumented sites follow:
//!
//! * **Faults fire *before* the site mutates any state.** An injected
//!   solver divergence returns the failure without running the solver,
//!   so the recovery ladder's plain-retry rung reproduces the fault-free
//!   result bit for bit. Injection must never *alter* a numerical
//!   result — only abort, delay, or corrupt something that the
//!   fault-tolerance layer is expected to catch.
//! * **Every injected fault is observable.** Each fire bumps the
//!   `fault.injected.<site>` trace counter and the per-site tally
//!   returned by [`injected_counts`], which the chaos suite reconciles
//!   against recovery records and reported failures: nothing may fail
//!   silently.
//!
//! With no plan armed (the default, and the only mode tier-1 tests
//! exercise) every helper short-circuits to "no fault" without touching
//! the RNG, so the happy path stays byte-identical.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::rng::SplitMix64;
use crate::trace;

/// An injection site class. Each class has its own probability knob in
/// the [`FaultPlan`] and its own deterministic decision stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Panic inside a supervised executor job.
    JobPanic,
    /// Reported non-convergence at a solver entry (Gummel / Newton).
    SolverDiverge,
    /// A corrupted line in the persisted cache JSONL.
    CacheCorrupt,
    /// A deadline overrun in a supervised job (injected busy-wait).
    DeadlineOverrun,
}

impl FaultSite {
    /// Stable spelling used in counters and the `SUBVT_FAULTS` spec.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultSite::JobPanic => "panic",
            FaultSite::SolverDiverge => "diverge",
            FaultSite::CacheCorrupt => "corrupt",
            FaultSite::DeadlineOverrun => "deadline",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultSite::JobPanic => 0,
            FaultSite::SolverDiverge => 1,
            FaultSite::CacheCorrupt => 2,
            FaultSite::DeadlineOverrun => 3,
        }
    }
}

/// All injection-site classes, in [`FaultSite::index`] order.
pub const ALL_SITES: [FaultSite; 4] = [
    FaultSite::JobPanic,
    FaultSite::SolverDiverge,
    FaultSite::CacheCorrupt,
    FaultSite::DeadlineOverrun,
];

/// A seeded fault schedule: per-site injection probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the decision streams; the same seed replays the same
    /// schedule (per site, in per-site call order).
    pub seed: u64,
    /// Probability of [`FaultSite::JobPanic`] per supervised job attempt.
    pub p_panic: f64,
    /// Probability of [`FaultSite::SolverDiverge`] per solver entry.
    pub p_diverge: f64,
    /// Probability of [`FaultSite::CacheCorrupt`] per persisted line.
    pub p_corrupt: f64,
    /// Probability of [`FaultSite::DeadlineOverrun`] per supervised job.
    pub p_deadline: f64,
}

impl FaultPlan {
    /// A plan with every probability zero (arming it is a no-op).
    pub fn quiet(seed: u64) -> Self {
        Self {
            seed,
            p_panic: 0.0,
            p_diverge: 0.0,
            p_corrupt: 0.0,
            p_deadline: 0.0,
        }
    }

    fn probability(&self, site: FaultSite) -> f64 {
        match site {
            FaultSite::JobPanic => self.p_panic,
            FaultSite::SolverDiverge => self.p_diverge,
            FaultSite::CacheCorrupt => self.p_corrupt,
            FaultSite::DeadlineOverrun => self.p_deadline,
        }
    }

    /// Parses the `SUBVT_FAULTS` spec: comma-separated `key=value`
    /// pairs, e.g. `seed=3,panic=0.2,diverge=0.3,corrupt=0.1,deadline=0.05`.
    /// Unknown keys are rejected so typos cannot silently disarm a
    /// chaos run.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the malformed field.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = Self::quiet(0);
        for field in spec.split(',') {
            let field = field.trim();
            if field.is_empty() {
                continue;
            }
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("fault spec field `{field}` is not key=value"))?;
            let key = key.trim();
            let numeric = |p: Result<f64, std::num::ParseFloatError>| {
                p.map_err(|_| format!("fault spec `{key}` has non-numeric value `{value}`"))
            };
            match key {
                "seed" => {
                    plan.seed = value.trim().parse::<u64>().map_err(|_| {
                        format!("fault spec `seed` has non-integer value `{value}`")
                    })?;
                }
                "panic" => plan.p_panic = numeric(value.trim().parse())?,
                "diverge" => plan.p_diverge = numeric(value.trim().parse())?,
                "corrupt" => plan.p_corrupt = numeric(value.trim().parse())?,
                "deadline" => plan.p_deadline = numeric(value.trim().parse())?,
                other => return Err(format!("unknown fault spec key `{other}`")),
            }
        }
        for site in ALL_SITES {
            let p = plan.probability(site);
            if !(0.0..=1.0).contains(&p) {
                return Err(format!(
                    "fault probability for `{}` must be in [0, 1], got {p}",
                    site.as_str()
                ));
            }
        }
        Ok(plan)
    }
}

struct Harness {
    plan: Mutex<Option<FaultPlan>>,
    /// Per-site call sequence numbers (the decision-stream indices).
    calls: [AtomicU64; 4],
    /// Per-site tallies of faults actually injected.
    injected: [AtomicU64; 4],
    /// Fast-path arm flag, checked before any locking.
    armed: AtomicBool,
}

fn harness() -> &'static Harness {
    static HARNESS: OnceLock<Harness> = OnceLock::new();
    HARNESS.get_or_init(|| {
        let from_env =
            std::env::var("SUBVT_FAULTS")
                .ok()
                .and_then(|spec| match FaultPlan::parse(&spec) {
                    Ok(plan) => Some(plan),
                    Err(e) => {
                        eprintln!("ignoring malformed SUBVT_FAULTS: {e}");
                        None
                    }
                });
        Harness {
            armed: AtomicBool::new(from_env.is_some()),
            plan: Mutex::new(from_env),
            calls: [const { AtomicU64::new(0) }; 4],
            injected: [const { AtomicU64::new(0) }; 4],
        }
    })
}

/// Arms (`Some`) or disarms (`None`) the process-wide fault plan. Also
/// resets the per-site sequence numbers so a freshly-armed plan replays
/// its schedule from the start. Chaos tests call this; CLI runs arm via
/// the `SUBVT_FAULTS` environment variable instead.
pub fn configure(plan: Option<FaultPlan>) {
    let h = harness();
    let mut slot = h.plan.lock().expect("fault plan lock");
    *slot = plan;
    h.armed.store(plan.is_some(), Ordering::Release);
    for c in &h.calls {
        c.store(0, Ordering::Release);
    }
}

/// Whether any fault plan is currently armed.
pub fn armed() -> bool {
    harness().armed.load(Ordering::Acquire)
}

/// Decides whether the next event at `site` is a fault. Deterministic
/// for a fixed seed and per-site call order; always `false` (and free of
/// side effects) when no plan is armed.
pub fn should_inject(site: FaultSite) -> bool {
    let h = harness();
    if !h.armed.load(Ordering::Acquire) {
        return false;
    }
    let plan = match *h.plan.lock().expect("fault plan lock") {
        Some(plan) => plan,
        None => return false,
    };
    let p = plan.probability(site);
    if p <= 0.0 {
        return false;
    }
    let index = h.calls[site.index()].fetch_add(1, Ordering::AcqRel);
    // Site-tagged stream: site classes never share decisions.
    let site_seed = crate::KeyBuilder::new("faultinject.v1")
        .u64(plan.seed)
        .str(site.as_str())
        .finish();
    let fire = SplitMix64::stream(site_seed, index).next_f64() < p;
    if fire {
        h.injected[site.index()].fetch_add(1, Ordering::AcqRel);
        trace::add(&format!("fault.injected.{}", site.as_str()), 1);
    }
    fire
}

/// Per-site counts of faults injected since process start (or the last
/// [`reset_counts`]), in [`ALL_SITES`] order.
pub fn injected_counts() -> [(FaultSite, u64); 4] {
    let h = harness();
    let mut out = [(FaultSite::JobPanic, 0); 4];
    for (slot, site) in out.iter_mut().zip(ALL_SITES) {
        *slot = (site, h.injected[site.index()].load(Ordering::Acquire));
    }
    out
}

/// Total faults injected across all sites.
pub fn injected_total() -> u64 {
    injected_counts().iter().map(|(_, n)| n).sum()
}

/// Zeroes the per-site injected tallies (test isolation helper).
pub fn reset_counts() {
    for c in &harness().injected {
        c.store(0, Ordering::Release);
    }
}

/// Panics if the next [`FaultSite::JobPanic`] decision fires. Called by
/// the supervisor's job wrapper, before the job body runs.
pub fn panic_point() {
    if should_inject(FaultSite::JobPanic) {
        panic!("fault-injected job panic");
    }
}

/// Corrupts a serialized cache line in place if the next
/// [`FaultSite::CacheCorrupt`] decision fires. The corruption truncates
/// the line mid-record — exactly the shape a torn write leaves behind —
/// so checksum and structural validation must both catch it.
pub fn corrupt_point(line: &mut String) {
    if should_inject(FaultSite::CacheCorrupt) {
        let keep = line.len() / 2;
        line.truncate(keep);
        line.push_str("#torn");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The harness is process-global state shared with other engine
    // tests, so every test here restores the disarmed default before it
    // returns.

    #[test]
    fn parse_round_trips_and_rejects_garbage() {
        let plan = FaultPlan::parse("seed=9,panic=0.5,diverge=0.25,corrupt=1,deadline=0").unwrap();
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.p_panic, 0.5);
        assert_eq!(plan.p_corrupt, 1.0);
        assert!(FaultPlan::parse("panic=2.0").is_err(), "p > 1 rejected");
        assert!(FaultPlan::parse("bogus=1").is_err(), "unknown key rejected");
        assert!(FaultPlan::parse("panic").is_err(), "missing `=` rejected");
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::quiet(0));
    }

    #[test]
    fn disarmed_harness_never_fires() {
        configure(None);
        for _ in 0..64 {
            assert!(!should_inject(FaultSite::JobPanic));
            assert!(!should_inject(FaultSite::SolverDiverge));
        }
    }

    #[test]
    fn armed_schedule_is_deterministic_per_seed() {
        let plan = FaultPlan {
            p_diverge: 0.5,
            ..FaultPlan::quiet(1234)
        };
        configure(Some(plan));
        let first: Vec<bool> = (0..64)
            .map(|_| should_inject(FaultSite::SolverDiverge))
            .collect();
        // Re-arming resets the sequence: the schedule replays exactly.
        configure(Some(plan));
        let second: Vec<bool> = (0..64)
            .map(|_| should_inject(FaultSite::SolverDiverge))
            .collect();
        configure(None);
        assert_eq!(first, second);
        let fired = first.iter().filter(|b| **b).count();
        assert!(fired > 8 && fired < 56, "p=0.5 should fire ~half: {fired}");
    }

    #[test]
    fn sites_draw_independent_streams() {
        let plan = FaultPlan {
            p_panic: 0.5,
            p_diverge: 0.5,
            ..FaultPlan::quiet(77)
        };
        configure(Some(plan));
        let panics: Vec<bool> = (0..64)
            .map(|_| should_inject(FaultSite::JobPanic))
            .collect();
        configure(Some(plan));
        let diverges: Vec<bool> = (0..64)
            .map(|_| should_inject(FaultSite::SolverDiverge))
            .collect();
        configure(None);
        assert_ne!(panics, diverges, "site streams must be decorrelated");
    }

    #[test]
    fn corrupt_point_truncates_when_certain() {
        configure(Some(FaultPlan {
            p_corrupt: 1.0,
            ..FaultPlan::quiet(5)
        }));
        let mut line = String::from("{\"ns\":\"t\",\"key\":\"00\",\"bits\":[1,2,3]}");
        let before = line.clone();
        corrupt_point(&mut line);
        configure(None);
        assert_ne!(line, before);
        assert!(line.ends_with("#torn"));
    }
}
