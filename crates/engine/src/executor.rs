//! Work-stealing thread-pool executor for sweep/DAG jobs.
//!
//! Design:
//!
//! * One global injector queue plus one local deque per worker. Jobs
//!   submitted from outside the pool land in the injector; jobs spawned
//!   *by* a worker land in that worker's local deque (depth-first, like
//!   a fork/join pool). Idle workers drain their own deque first, then
//!   the injector, then steal from siblings.
//! * [`JobHandle::join`] is panic-safe: a panicking job is caught with
//!   [`std::panic::catch_unwind`], the pool keeps running, and the
//!   handle returns [`JobPanic`] instead of hanging.
//! * A worker that blocks in [`JobHandle::join`] *helps*: it runs jobs
//!   from its own local deque while waiting. Since everything a job
//!   spawned lives in its worker's deque until stolen, nested fan-out
//!   (map inside map inside map) completes even on a one-worker pool.
//!   Helping is deliberately restricted to the local deque — running
//!   arbitrary injector jobs while a caller logically holds a cache
//!   in-flight slot could wait on that very slot and deadlock.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    /// `queues[0]` is the injector; `queues[1..]` are worker-local.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Jobs pushed but not yet taken (wakeup predicate for `idle`).
    pending: AtomicUsize,
    idle: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    /// Takes one runnable job: own deque (newest first), then the
    /// injector (oldest first), then steal the oldest from a sibling.
    fn take(&self, worker: usize) -> Option<Job> {
        let own = worker + 1;
        if let Some(job) = self.queues[own].lock().expect("queue lock").pop_back() {
            self.pending.fetch_sub(1, Ordering::AcqRel);
            return Some(job);
        }
        if let Some(job) = self.queues[0].lock().expect("queue lock").pop_front() {
            self.pending.fetch_sub(1, Ordering::AcqRel);
            return Some(job);
        }
        for (i, q) in self.queues.iter().enumerate().skip(1) {
            if i == own {
                continue;
            }
            if let Some(job) = q.lock().expect("queue lock").pop_front() {
                self.pending.fetch_sub(1, Ordering::AcqRel);
                return Some(job);
            }
        }
        None
    }

    /// Takes a job from one worker's local deque only (the helping path).
    fn take_local(&self, worker: usize) -> Option<Job> {
        let job = self.queues[worker + 1]
            .lock()
            .expect("queue lock")
            .pop_back();
        if job.is_some() {
            self.pending.fetch_sub(1, Ordering::AcqRel);
        }
        job
    }

    fn push(&self, queue: usize, job: Job) {
        self.queues[queue]
            .lock()
            .expect("queue lock")
            .push_back(job);
        self.pending.fetch_add(1, Ordering::AcqRel);
        // Lock/unlock pairs the notify with the sleeper's predicate
        // re-check, preventing a lost wakeup.
        drop(self.idle.lock().expect("idle lock"));
        self.wake.notify_all();
    }
}

thread_local! {
    /// (pool, worker index) when the current thread is a pool worker.
    static CURRENT_WORKER: std::cell::RefCell<Option<(Weak<Shared>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// Runs one job from the current worker's local deque, if the current
/// thread is a worker of `shared` and has local work. Returns whether a
/// job ran.
fn help_one(shared: &Arc<Shared>) -> bool {
    let slot = CURRENT_WORKER.with(|c| c.borrow().clone());
    if let Some((weak, idx)) = slot {
        if let Some(current) = weak.upgrade() {
            if Arc::ptr_eq(&current, shared) {
                if let Some(job) = shared.take_local(idx) {
                    job();
                    return true;
                }
            }
        }
    }
    false
}

fn worker_loop(shared: &Arc<Shared>, idx: usize) {
    CURRENT_WORKER.with(|c| *c.borrow_mut() = Some((Arc::downgrade(shared), idx)));
    // Lane 0 is reserved for non-pool threads; worker `idx` is lane
    // `idx + 1`. This gives traces a stable, small-integer thread id
    // that is deterministic for a fixed `--jobs` (unlike `ThreadId`).
    crate::trace::set_worker_lane(idx as u32 + 1);
    loop {
        if let Some(job) = shared.take(idx) {
            job();
            continue;
        }
        let guard = shared.idle.lock().expect("idle lock");
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if shared.pending.load(Ordering::Acquire) > 0 {
            continue;
        }
        drop(shared.wake.wait(guard).expect("idle wait"));
    }
}

/// A job's result slot, shared between the worker and the handle.
struct HandleState<T> {
    slot: Mutex<Option<Result<T, JobPanic>>>,
    done: Condvar,
}

/// The payload of a job that panicked instead of returning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// Stringified panic payload (`&str`/`String` payloads verbatim).
    pub message: String,
}

impl JobPanic {
    fn from_payload(payload: Box<dyn std::any::Any + Send>) -> Self {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_owned()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "job panicked with non-string payload".to_owned()
        };
        Self { message }
    }
}

impl core::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "job panicked: {}", self.message)
    }
}

impl std::error::Error for JobPanic {}

/// Handle to a spawned job. Dropping it detaches the job.
pub struct JobHandle<T> {
    state: Arc<HandleState<T>>,
    shared: Arc<Shared>,
}

impl<T> JobHandle<T> {
    /// Blocks until the job finishes, helping run local work when
    /// called from a worker thread of the same pool.
    ///
    /// # Errors
    ///
    /// Returns [`JobPanic`] if the job panicked.
    pub fn join(self) -> Result<T, JobPanic> {
        match self.join_until(None) {
            Ok(result) => result,
            Err(_) => unreachable!("join without a deadline cannot time out"),
        }
    }

    /// Like [`JobHandle::join`], but gives up once `deadline` elapses.
    ///
    /// The deadline is advisory: a job that is already running cannot be
    /// interrupted, so on timeout the handle is returned (inside `Err`)
    /// and the job keeps running detached — its result is simply
    /// discarded unless the caller joins the returned handle later.
    ///
    /// # Errors
    ///
    /// Returns the handle back when the deadline elapsed first.
    pub fn join_deadline(self, deadline: Duration) -> Result<Result<T, JobPanic>, JobHandle<T>> {
        self.join_until(Some(std::time::Instant::now() + deadline))
    }

    fn join_until(
        self,
        deadline: Option<std::time::Instant>,
    ) -> Result<Result<T, JobPanic>, JobHandle<T>> {
        loop {
            if let Some(result) = self.state.slot.lock().expect("handle lock").take() {
                return Ok(result);
            }
            if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
                return Err(self);
            }
            if help_one(&self.shared) {
                continue;
            }
            let guard = self.state.slot.lock().expect("handle lock");
            if guard.is_some() {
                continue;
            }
            // Short timeout so a worker wakes up to help with local
            // work that appears while it waits (and so a deadline is
            // noticed promptly); non-workers just loop on the condvar.
            let (mut guard, _) = self
                .state
                .done
                .wait_timeout(guard, Duration::from_millis(1))
                .expect("handle wait");
            if let Some(result) = guard.take() {
                return Ok(result);
            }
        }
    }
}

/// A fixed-size work-stealing thread pool.
pub struct Executor {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Executor {
    /// Spawns a pool with `workers` threads (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queues: (0..=workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            idle: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("subvt-engine-{idx}"))
                    .spawn(move || worker_loop(&shared, idx))
                    .expect("spawn worker")
            })
            .collect();
        Self {
            shared,
            workers: handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Submits a job. From a worker thread of this pool the job goes to
    /// that worker's local deque (depth-first); otherwise it goes to
    /// the injector.
    pub fn spawn<T, F>(&self, f: F) -> JobHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let state = Arc::new(HandleState {
            slot: Mutex::new(None),
            done: Condvar::new(),
        });
        let result_state = Arc::clone(&state);
        // Capture the spawner's innermost span so spans opened inside
        // the job attach to the spawn site, not to whatever the stealing
        // worker happened to be running.
        let parent_span = crate::trace::current_span_id();
        let job: Job = Box::new(move || {
            let ctx = crate::trace::task_context(parent_span);
            let result = catch_unwind(AssertUnwindSafe(f)).map_err(JobPanic::from_payload);
            // Restore the worker's own span context before publishing
            // the result (the panic path included — `ctx` drops here
            // regardless of how `f` exited).
            drop(ctx);
            *result_state.slot.lock().expect("handle lock") = Some(result);
            result_state.done.notify_all();
        });
        let queue = CURRENT_WORKER.with(|c| {
            c.borrow().as_ref().and_then(|(weak, idx)| {
                weak.upgrade()
                    .filter(|current| Arc::ptr_eq(current, &self.shared))
                    .map(|_| idx + 1)
            })
        });
        self.shared.push(queue.unwrap_or(0), job);
        JobHandle {
            state,
            shared: Arc::clone(&self.shared),
        }
    }

    /// Applies `f` to every item in parallel, preserving input order.
    ///
    /// # Panics
    ///
    /// Re-raises (as a panic) the first job panic, matching the
    /// behavior of a plain serial loop.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let handles: Vec<JobHandle<R>> = items
            .into_iter()
            .map(|item| {
                let f = Arc::clone(&f);
                self.spawn(move || f(item))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| panic!("{p}")))
            .collect()
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        drop(self.shared.idle.lock().expect("idle lock"));
        self.shared.wake.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_order() {
        let ex = Executor::new(4);
        let out = ex.map((0..64).collect(), |i: i32| i * i);
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn spawn_runs_on_pool_threads() {
        let ex = Executor::new(2);
        let h = ex.spawn(|| std::thread::current().name().map(str::to_owned));
        let name = h.join().unwrap().unwrap();
        assert!(name.starts_with("subvt-engine-"), "ran on {name}");
    }

    #[test]
    fn panicking_job_reports_and_pool_survives() {
        let ex = Executor::new(2);
        let bad = ex.spawn(|| panic!("boom {}", 7));
        let err = bad.join().unwrap_err();
        assert_eq!(err.message, "boom 7");
        // The pool still runs jobs afterwards — not poisoned, no hang.
        let ok = ex.spawn(|| 41 + 1);
        assert_eq!(ok.join().unwrap(), 42);
    }

    #[test]
    fn map_panics_like_a_serial_loop() {
        let ex = Executor::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            ex.map(
                vec![1, 2, 3],
                |i: i32| if i == 2 { panic!("item 2") } else { i },
            )
        }));
        assert!(result.is_err());
        // Still alive.
        assert_eq!(ex.map(vec![5], |i: i32| i), vec![5]);
    }

    #[test]
    fn nested_maps_complete_on_one_worker() {
        // The helping join must prevent the classic fork/join deadlock.
        let ex = Arc::new(Executor::new(1));
        let ex2 = Arc::clone(&ex);
        let h = ex.spawn(move || {
            let ex3 = Arc::clone(&ex2);
            ex2.map((0..4).collect(), move |i: u64| {
                ex3.map(vec![i, i + 1], |j: u64| j * 2).iter().sum::<u64>()
            })
        });
        let out = h.join().unwrap();
        // Each item i sums 2i + 2(i + 1) = 4i + 2.
        assert_eq!(out, vec![2, 6, 10, 14]);
    }

    #[test]
    fn heavy_fanout_uses_many_workers() {
        let ex = Executor::new(4);
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = Arc::clone(&seen);
        ex.map((0..256).collect(), move |_: u32| {
            // Record which worker indices participate via a bitmask.
            if let Some(name) = std::thread::current().name() {
                if let Some(idx) = name.strip_prefix("subvt-engine-") {
                    let bit = idx.parse::<u64>().unwrap_or(63).min(63);
                    seen2.fetch_or(1 << bit, Ordering::Relaxed);
                }
            }
            std::thread::sleep(Duration::from_micros(200));
        });
        assert!(
            seen.load(Ordering::Relaxed).count_ones() >= 2,
            "work never spread"
        );
    }

    #[test]
    fn spawned_jobs_inherit_the_spawn_site_span() {
        let ex = Executor::new(2);
        let root_id;
        {
            let root = crate::trace::span("exec.test.root");
            root_id = root.id();
            let handles: Vec<_> = (0..4)
                .map(|i| ex.spawn(move || drop(crate::trace::span(format!("exec.test.child{i}")))))
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        }
        let snap = crate::trace::global().snapshot();
        let children: Vec<_> = snap
            .spans
            .iter()
            .filter(|s| s.name.starts_with("exec.test.child"))
            .collect();
        assert_eq!(children.len(), 4);
        for c in children {
            assert_eq!(c.parent, Some(root_id), "{} lost its parent", c.name);
            assert!(c.worker >= 1, "{} should run on a pool lane", c.name);
        }
    }

    #[test]
    fn panicking_job_records_open_span_with_parent_chain() {
        // Regression: a span open at panic time must still record, with
        // the parent chain rooted at the spawn site, and the worker's
        // own context must survive the unwind.
        let ex = Executor::new(1);
        let root_id;
        {
            let root = crate::trace::span("exec.panic.root");
            root_id = root.id();
            let err = ex
                .spawn(|| {
                    let _open = crate::trace::span("exec.panic.open");
                    panic!("traced panic");
                })
                .join()
                .unwrap_err();
            assert_eq!(err.message, "traced panic");
        }
        // The same worker must keep a clean context afterwards.
        ex.spawn(|| drop(crate::trace::span("exec.panic.after")))
            .join()
            .unwrap();
        let snap = crate::trace::global().snapshot();
        let open = snap
            .spans
            .iter()
            .find(|s| s.name == "exec.panic.open")
            .expect("span open at panic time must still record");
        assert_eq!(open.parent, Some(root_id));
        let after = snap
            .spans
            .iter()
            .find(|s| s.name == "exec.panic.after")
            .unwrap();
        assert_eq!(after.parent, None, "worker context leaked across panic");
    }

    #[test]
    fn join_deadline_times_out_and_later_completes() {
        let ex = Executor::new(1);
        let h = ex.spawn(|| {
            std::thread::sleep(Duration::from_millis(30));
            123
        });
        // Far too short: must come back with the handle, not a result.
        let h = match h.join_deadline(Duration::from_millis(2)) {
            Err(h) => h,
            Ok(_) => panic!("2ms deadline should not fit a 30ms job"),
        };
        // The detached job still finishes; a later join sees the value.
        assert_eq!(h.join().unwrap(), 123);
        // And a generous deadline behaves like a plain join.
        let quick = ex.spawn(|| 7);
        match quick.join_deadline(Duration::from_secs(5)) {
            Ok(result) => assert_eq!(result.unwrap(), 7),
            Err(_) => panic!("generous deadline timed out"),
        }
    }

    #[test]
    fn shutdown_with_queued_work_does_not_hang() {
        let ex = Executor::new(2);
        for _ in 0..8 {
            drop(ex.spawn(|| std::thread::sleep(Duration::from_millis(1))));
        }
        drop(ex); // must join workers without deadlocking
    }
}
