//! Multi-process sweep fleet: deterministic shard planning and
//! crash-tolerant worker supervision.
//!
//! The fleet layer turns one sweep matrix into N worker processes over
//! the segmented shared cache (see [`crate::cache::seg`]). It owns two
//! concerns and nothing else:
//!
//! * **Planning** — [`plan`] partitions experiment ids into per-worker
//!   shards. The default [`ShardStrategy::KeyRange`] hashes each id
//!   with the same stable [`crate::KeyBuilder`] scheme the cache uses
//!   and splits the u64 key space into equal contiguous ranges, so the
//!   assignment is a pure function of `(id, workers)`: independent of
//!   argument order, stable across runs and machines, and duplicate
//!   ids always co-locate. [`ShardStrategy::RoundRobin`] deals ids in
//!   order for workloads whose cost is uniform.
//! * **Supervision** — [`supervise`] runs one child process per
//!   non-empty shard and applies the same retry/deadline ladder the
//!   in-process [`crate::supervisor`] applies to jobs: an abnormal
//!   exit (signal or non-zero status) re-runs the shard up to
//!   `max_attempts`, a deadline overrun kills and re-runs, and a shard
//!   that exhausts its attempts is reported failed (quarantined)
//!   rather than wedging the fleet.
//!
//! Determinism note: a re-run shard recomputes exactly the same
//! content-addressed entries its dead predecessor was computing, so
//! crash-and-retry cannot change results — only how many times they
//! were computed. The byte-identity of fleet output to a
//! single-process run rests on that plus the cache's sorted,
//! CRC'd persistence.

use std::io;
use std::process::Child;
use std::time::{Duration, Instant};

use crate::trace;

/// The stable shard key for an experiment id.
pub fn shard_key(id: &str) -> u64 {
    crate::KeyBuilder::new("fleet.shard").str(id).finish()
}

/// How [`plan`] assigns ids to workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardStrategy {
    /// Hash each id and split the u64 key space into `workers` equal
    /// contiguous ranges (default; order-independent and stable).
    KeyRange,
    /// Deal ids to workers in argument order (`i % workers`).
    RoundRobin,
}

impl std::str::FromStr for ShardStrategy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "key-range" => Ok(Self::KeyRange),
            "round-robin" => Ok(Self::RoundRobin),
            other => Err(format!(
                "unknown shard strategy '{other}' (expected key-range|round-robin)"
            )),
        }
    }
}

impl std::fmt::Display for ShardStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::KeyRange => "key-range",
            Self::RoundRobin => "round-robin",
        })
    }
}

/// One worker's slice of the sweep matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shard {
    /// Worker index (also the segment name the worker claims).
    pub index: usize,
    /// Experiment ids assigned to this shard, in original order.
    pub ids: Vec<String>,
    /// Inclusive low end of the covered key range (key-range only).
    pub key_lo: u64,
    /// Inclusive high end of the covered key range (key-range only).
    pub key_hi: u64,
}

/// Partitions `ids` into `workers` shards. Every id lands in exactly
/// one shard; shards may be empty (the driver skips spawning those).
pub fn plan(ids: &[String], workers: usize, strategy: ShardStrategy) -> Vec<Shard> {
    let workers = workers.max(1);
    // Equal contiguous ranges over the full u64 space, computed in
    // u128 so the last range's top end is exact.
    let span = 1u128 << 64;
    let width = span.div_ceil(workers as u128);
    let mut shards: Vec<Shard> = (0..workers)
        .map(|index| {
            let lo = (index as u128) * width;
            let hi = (lo + width).min(span) - 1;
            Shard {
                index,
                ids: Vec::new(),
                key_lo: lo as u64,
                key_hi: hi as u64,
            }
        })
        .collect();
    for (i, id) in ids.iter().enumerate() {
        let w = match strategy {
            ShardStrategy::KeyRange => ((shard_key(id) as u128) / width) as usize,
            ShardStrategy::RoundRobin => i % workers,
        };
        shards[w].ids.push(id.clone());
    }
    shards
}

/// Retry/deadline policy for shard processes — the process-level
/// mirror of [`crate::supervisor::Policy`].
#[derive(Debug, Clone, Copy)]
pub struct FleetPolicy {
    /// Total attempts per shard (first run + retries).
    pub max_attempts: u32,
    /// Wall-clock budget per attempt; overrun kills the worker and
    /// counts as a crash.
    pub deadline: Option<Duration>,
    /// Poll interval for child status.
    pub poll: Duration,
}

impl Default for FleetPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            deadline: None,
            poll: Duration::from_millis(25),
        }
    }
}

/// Outcome of one shard across all its attempts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRun {
    /// The shard's worker index.
    pub index: usize,
    /// Attempts consumed (1 = clean first run).
    pub attempts: u32,
    /// True when every attempt crashed and the shard was given up on.
    pub failed: bool,
    /// Crash reasons observed, in order (empty on a clean run).
    pub crashes: Vec<String>,
}

/// Aggregate supervision outcome.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetReport {
    /// Per-shard outcomes, indexed like the input shards.
    pub runs: Vec<ShardRun>,
    /// Total worker restarts across the fleet.
    pub restarts: u32,
    /// Shards that exhausted their attempts.
    pub failed: usize,
}

/// Why a worker attempt was declared dead.
fn crash_reason(status: std::process::ExitStatus) -> String {
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        if let Some(sig) = status.signal() {
            return format!("signal {sig}");
        }
    }
    match status.code() {
        Some(code) => format!("exit code {code}"),
        None => "unknown exit".to_owned(),
    }
}

/// Runs one child process per non-empty shard and supervises the set:
/// abnormal exits re-run the shard (fresh spawn, same shard) up to
/// `policy.max_attempts`; deadline overruns kill and re-run; exhausted
/// shards are marked failed. `spawn(shard, attempt)` launches one
/// attempt; `on_crash(shard, reason)` runs after each abnormal exit,
/// *before* the respawn — the fleet driver uses it to scrub the dead
/// worker's segment tail.
///
/// Publishes `fleet.restarts` and `fleet.shards_failed` counters.
///
/// # Errors
///
/// Propagates spawn errors; child exit statuses (of any kind) are
/// handled, not errors.
pub fn supervise(
    shards: &[Shard],
    policy: &FleetPolicy,
    mut spawn: impl FnMut(&Shard, u32) -> io::Result<Child>,
    mut on_crash: impl FnMut(&Shard, &str),
) -> io::Result<FleetReport> {
    struct Live<'a> {
        shard: &'a Shard,
        child: Child,
        started: Instant,
        attempt: u32,
        run: usize,
    }
    let mut report = FleetReport::default();
    let mut live: Vec<Live> = Vec::new();
    for shard in shards {
        report.runs.push(ShardRun {
            index: shard.index,
            attempts: 0,
            failed: false,
            crashes: Vec::new(),
        });
        if shard.ids.is_empty() {
            continue;
        }
        let run = report.runs.len() - 1;
        report.runs[run].attempts = 1;
        live.push(Live {
            shard,
            child: spawn(shard, 0)?,
            started: Instant::now(),
            attempt: 0,
            run,
        });
    }
    while !live.is_empty() {
        let mut i = 0;
        while i < live.len() {
            let entry = &mut live[i];
            let mut crashed: Option<String> = None;
            match entry.child.try_wait()? {
                Some(status) if status.success() => {
                    live.swap_remove(i);
                    continue;
                }
                Some(status) => crashed = Some(crash_reason(status)),
                None => {
                    if let Some(deadline) = policy.deadline {
                        if entry.started.elapsed() > deadline {
                            let _ = entry.child.kill();
                            let _ = entry.child.wait();
                            crashed = Some(format!("deadline {deadline:?} exceeded"));
                        }
                    }
                }
            }
            let Some(reason) = crashed else {
                i += 1;
                continue;
            };
            let entry = live.swap_remove(i);
            report.runs[entry.run].crashes.push(reason.clone());
            on_crash(entry.shard, &reason);
            if entry.attempt + 1 < policy.max_attempts {
                report.restarts += 1;
                trace::add("fleet.restarts", 1);
                report.runs[entry.run].attempts += 1;
                live.push(Live {
                    shard: entry.shard,
                    child: spawn(entry.shard, entry.attempt + 1)?,
                    started: Instant::now(),
                    attempt: entry.attempt + 1,
                    run: entry.run,
                });
            } else {
                report.runs[entry.run].failed = true;
                report.failed += 1;
                trace::add("fleet.shards_failed", 1);
            }
        }
        if !live.is_empty() {
            std::thread::sleep(policy.poll);
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn key_range_plan_is_stable_and_order_independent() {
        let a = ids(&["table2", "fig3", "table3", "fig5", "ext-temp"]);
        let mut b = a.clone();
        b.reverse();
        let pa = plan(&a, 3, ShardStrategy::KeyRange);
        let pb = plan(&b, 3, ShardStrategy::KeyRange);
        for (sa, sb) in pa.iter().zip(&pb) {
            let mut xa = sa.ids.clone();
            let mut xb = sb.ids.clone();
            xa.sort();
            xb.sort();
            assert_eq!(xa, xb, "assignment must not depend on argument order");
        }
        // Every id lands in exactly one shard, inside its key range.
        let total: usize = pa.iter().map(|s| s.ids.len()).sum();
        assert_eq!(total, a.len());
        for shard in &pa {
            for id in &shard.ids {
                let k = shard_key(id);
                assert!(k >= shard.key_lo && k <= shard.key_hi);
            }
        }
        // Ranges tile the full key space.
        assert_eq!(pa[0].key_lo, 0);
        assert_eq!(pa.last().unwrap().key_hi, u64::MAX);
        for w in pa.windows(2) {
            assert_eq!(w[0].key_hi.wrapping_add(1), w[1].key_lo);
        }
    }

    #[test]
    fn duplicate_ids_co_locate_under_key_range() {
        let a = ids(&["table2", "fig3", "table2", "table2"]);
        let p = plan(&a, 4, ShardStrategy::KeyRange);
        let holding: Vec<&Shard> = p
            .iter()
            .filter(|s| s.ids.contains(&"table2".into()))
            .collect();
        assert_eq!(holding.len(), 1, "duplicates must land in one shard");
        assert_eq!(holding[0].ids.iter().filter(|i| *i == "table2").count(), 3);
    }

    #[test]
    fn round_robin_deals_in_order() {
        let a = ids(&["a", "b", "c", "d", "e"]);
        let p = plan(&a, 2, ShardStrategy::RoundRobin);
        assert_eq!(p[0].ids, ids(&["a", "c", "e"]));
        assert_eq!(p[1].ids, ids(&["b", "d"]));
    }

    #[test]
    fn one_worker_gets_everything() {
        let a = ids(&["x", "y"]);
        for strategy in [ShardStrategy::KeyRange, ShardStrategy::RoundRobin] {
            let p = plan(&a, 1, strategy);
            assert_eq!(p.len(), 1);
            assert_eq!(p[0].ids, a);
            assert_eq!((p[0].key_lo, p[0].key_hi), (0, u64::MAX));
        }
    }

    #[test]
    fn supervise_restarts_killed_worker_and_reports_clean_fleet() {
        let shards = vec![
            Shard {
                index: 0,
                ids: ids(&["a"]),
                key_lo: 0,
                key_hi: 0,
            },
            Shard {
                index: 1,
                ids: ids(&["b"]),
                key_lo: 0,
                key_hi: 0,
            },
        ];
        let mut crashes = Vec::new();
        let report = supervise(
            &shards,
            &FleetPolicy::default(),
            |shard, attempt| {
                // Shard 0's first attempt SIGKILLs itself; every other
                // attempt exits cleanly.
                let script = if shard.index == 0 && attempt == 0 {
                    "kill -9 $$"
                } else {
                    "exit 0"
                };
                std::process::Command::new("sh")
                    .args(["-c", script])
                    .spawn()
            },
            |shard, reason| crashes.push((shard.index, reason.to_owned())),
        )
        .unwrap();
        assert_eq!(report.restarts, 1);
        assert_eq!(report.failed, 0);
        assert_eq!(report.runs[0].attempts, 2);
        assert!(!report.runs[0].failed);
        assert_eq!(report.runs[1].attempts, 1);
        assert_eq!(crashes, vec![(0, "signal 9".to_owned())]);
    }

    #[test]
    fn supervise_gives_up_after_max_attempts() {
        let shards = vec![Shard {
            index: 0,
            ids: ids(&["a"]),
            key_lo: 0,
            key_hi: 0,
        }];
        let policy = FleetPolicy {
            max_attempts: 2,
            ..FleetPolicy::default()
        };
        let report = supervise(
            &shards,
            &policy,
            |_, _| {
                std::process::Command::new("sh")
                    .args(["-c", "exit 3"])
                    .spawn()
            },
            |_, _| {},
        )
        .unwrap();
        assert_eq!(report.failed, 1);
        assert_eq!(report.runs[0].attempts, 2);
        assert!(report.runs[0].failed);
        assert_eq!(report.runs[0].crashes, vec!["exit code 3"; 2]);
    }

    #[test]
    fn supervise_enforces_deadline() {
        let shards = vec![Shard {
            index: 0,
            ids: ids(&["a"]),
            key_lo: 0,
            key_hi: 0,
        }];
        let policy = FleetPolicy {
            max_attempts: 1,
            deadline: Some(Duration::from_millis(80)),
            poll: Duration::from_millis(10),
        };
        let report = supervise(
            &shards,
            &policy,
            |_, _| std::process::Command::new("sleep").arg("10").spawn(),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(report.failed, 1);
        assert!(report.runs[0].crashes[0].contains("deadline"));
    }

    #[test]
    fn empty_shards_are_not_spawned() {
        let shards = vec![Shard {
            index: 0,
            ids: Vec::new(),
            key_lo: 0,
            key_hi: u64::MAX,
        }];
        let report = supervise(
            &shards,
            &FleetPolicy::default(),
            |_, _| panic!("empty shard must not spawn"),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(report.runs[0].attempts, 0);
        assert!(!report.runs[0].failed);
    }

    #[test]
    fn strategy_parses_and_displays() {
        assert_eq!(
            "key-range".parse::<ShardStrategy>().unwrap(),
            ShardStrategy::KeyRange
        );
        assert_eq!(
            "round-robin".parse::<ShardStrategy>().unwrap(),
            ShardStrategy::RoundRobin
        );
        assert!("zigzag".parse::<ShardStrategy>().is_err());
        assert_eq!(ShardStrategy::KeyRange.to_string(), "key-range");
    }
}
