//! Sweep execution engine for the `subvt` workspace.
//!
//! Every artefact in the paper — the Table 2/3 design searches and the
//! Fig. 2–12 device and circuit sweeps — is an embarrassingly parallel
//! sweep over device designs and bias points. This crate provides the
//! three pieces the experiment stack runs on, using only `std`:
//!
//! * [`executor`]: a work-stealing thread pool for sweep/DAG jobs with
//!   panic-safe [`executor::JobHandle`]s and an order-preserving
//!   [`Executor::map`]. Worker threads that block joining sub-jobs help
//!   drain their own local queue, so nested fan-out (an experiment that
//!   spawns a design flow that spawns per-node searches) cannot
//!   deadlock, even on a single-worker pool.
//! * [`cache`]: a content-addressed result cache. Keys are stable
//!   64-bit hashes built with [`KeyBuilder`]; values are numeric blobs
//!   ([`cache::Blob`]) so identical TCAD extractions and design flows
//!   are computed once per process — and, with JSON-lines persistence,
//!   once per machine. Concurrent misses of the same key are
//!   single-flighted.
//! * [`trace`]: a hierarchical tracing and metrics layer — attributed
//!   spans with parent links (propagated across the executor), counters,
//!   gauges and fixed-bucket histograms, with JSON-lines (schema v2) and
//!   Chrome trace-event sinks. Cache statistics are flushed into drained
//!   traces automatically.
//!
//! A fault-tolerance layer rides on top (DESIGN.md §7): [`supervisor`]
//! retries/quarantines panicking or overrunning jobs, [`recovery`]
//! records the typed ladder rungs solvers climb on non-convergence,
//! [`rng`] hosts the deterministic SplitMix64 streams, and
//! [`faultinject`] is the seeded chaos harness that drives the
//! `integration_chaos` suite. All of it is pay-for-use: with no fault
//! plan armed and no failures, runs are byte-identical to a build
//! without the layer.
//!
//! Above the single process, [`fleet`] plans deterministic key-range
//! shards of a sweep matrix and supervises N worker processes over the
//! segmented shared cache ([`cache::seg`]): per-worker append-only
//! JSONL segments claimed by lease files, crash reclaim through the
//! same CRC/quarantine path, and compaction back to one canonical
//! file (DESIGN.md §10).
//!
//! The process-wide instances used by the experiment harness are
//! [`global`] (sized by [`configure_jobs`], the `SUBVT_JOBS`
//! environment variable, or the machine's parallelism) and
//! [`global_cache`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod clock;
pub mod executor;
pub mod faultinject;
pub mod fleet;
pub mod hash;
pub mod recovery;
pub mod rng;
pub mod supervisor;
pub mod trace;

pub use cache::{Blob, Cache, CacheStats, Lookup};
pub use executor::{Executor, JobHandle, JobPanic};
pub use faultinject::{FaultPlan, FaultSite};
pub use fleet::{FleetPolicy, FleetReport, Shard, ShardStrategy};
pub use hash::{KeyBuilder, Keyed};
pub use recovery::{RecoveryRecord, RecoveryStep};
pub use supervisor::{JobError, RetryPolicy, Supervisor};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

static GLOBAL: OnceLock<Executor> = OnceLock::new();
static GLOBAL_CACHE: OnceLock<Cache> = OnceLock::new();
static REQUESTED_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Requests a worker count for the process-wide executor. Returns
/// `false` (and changes nothing) once [`global`] has already been
/// built. Call this early — e.g. from CLI flag parsing.
pub fn configure_jobs(jobs: usize) -> bool {
    if GLOBAL.get().is_some() {
        return false;
    }
    REQUESTED_JOBS.store(jobs.max(1), Ordering::SeqCst);
    GLOBAL.get().is_none()
}

/// Worker count the process-wide executor will use (or uses): the
/// [`configure_jobs`] request, else `SUBVT_JOBS`, else the machine's
/// available parallelism.
pub fn default_jobs() -> usize {
    let requested = REQUESTED_JOBS.load(Ordering::SeqCst);
    if requested > 0 {
        return requested;
    }
    if let Some(n) = std::env::var("SUBVT_JOBS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        if n > 0 {
            return n;
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The process-wide executor, built on first use.
pub fn global() -> &'static Executor {
    GLOBAL.get_or_init(|| Executor::new(default_jobs()))
}

/// The process-wide result cache, built empty on first use. Its
/// hit/miss statistics are flushed into [`trace::global`] whenever a
/// trace is drained, so `--trace` output always carries
/// `cache.<ns>.hit`/`cache.<ns>.miss` counters.
pub fn global_cache() -> &'static Cache {
    GLOBAL_CACHE.get_or_init(|| {
        trace::global().register_flush(|tracer| {
            // `get()` rather than `expect`: a drain racing this
            // `get_or_init` could fire before the OnceLock is set.
            if let Some(cache) = GLOBAL_CACHE.get() {
                cache.flush_stats_into(tracer);
            }
        });
        Cache::new()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_executor_is_singleton() {
        let a = global() as *const _;
        let b = global() as *const _;
        assert_eq!(a, b);
        assert!(global().workers() >= 1);
    }

    #[test]
    fn global_cache_is_singleton() {
        let a = global_cache() as *const _;
        let b = global_cache() as *const _;
        assert_eq!(a, b);
    }
}
