//! Deterministic pseudo-random sampling for sweeps and fault injection.
//!
//! A SplitMix64 generator (Steele, Lea & Flood, OOPSLA 2014) — tiny,
//! fast, passes BigCrush for this kind of workload, and most importantly
//! *std-only and stable across platforms*, so Monte-Carlo experiments
//! and injected fault schedules are reproducible byte-for-byte
//! everywhere.
//!
//! [`SplitMix64::stream`] derives a decorrelated generator per sample
//! index. Sweeps seed one stream per sample, which makes the sampled
//! population a pure function of `(seed, index)` — independent of how
//! the sample loop is chunked across the thread pool. The
//! [`crate::faultinject`] harness uses the same streams to decide,
//! deterministically, which injection sites fire under a given seed.

/// SplitMix64 PRNG state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Creates the decorrelated stream for one sample index: the same
    /// `(seed, index)` always yields the same sequence, regardless of
    /// which thread or chunk consumes it.
    pub fn stream(seed: u64, index: u64) -> Self {
        let mut mixer = Self::new(seed ^ index.wrapping_mul(GOLDEN_GAMMA));
        // One warm-up step decouples streams whose seeds differ only in
        // a few bits.
        let state = mixer.next_u64();
        Self { state }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Standard-normal sample via Box–Muller (the first uniform is
    /// drawn from `(0, 1]` so the logarithm is always finite).
    pub fn next_gaussian(&mut self) -> f64 {
        let u1 = ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_sequences() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference sequence for seed 0 (e.g. from the Vigna/xoshiro
        // reference implementation of splitmix64).
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(g.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(g.next_u64(), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn uniform_is_in_unit_interval_and_spread() {
        let mut g = SplitMix64::new(7);
        let vals: Vec<f64> = (0..4000).map(|_| g.next_f64()).collect();
        assert!(vals.iter().all(|v| (0.0..1.0).contains(v)));
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((mean - 0.5).abs() < 0.03, "uniform mean off: {mean}");
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut g = SplitMix64::new(11);
        let vals: Vec<f64> = (0..20_000).map(|_| g.next_gaussian()).collect();
        let n = vals.len() as f64;
        let mean = vals.iter().sum::<f64>() / n;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        assert!(mean.abs() < 0.03, "gaussian mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "gaussian variance {var}");
        assert!(vals.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn streams_are_decorrelated_and_stable() {
        let a: Vec<u64> = {
            let mut g = SplitMix64::stream(5, 0);
            (0..4).map(|_| g.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut g = SplitMix64::stream(5, 1);
            (0..4).map(|_| g.next_u64()).collect()
        };
        assert_ne!(a, b);
        let a2: Vec<u64> = {
            let mut g = SplitMix64::stream(5, 0);
            (0..4).map(|_| g.next_u64()).collect()
        };
        assert_eq!(a, a2);
    }
}
