//! Content-addressed result cache with optional JSON-lines persistence.
//!
//! Keys are stable 64-bit content hashes (see [`crate::KeyBuilder`]) of
//! the inputs that determine a result — device parameters, sweep specs,
//! strategy knobs. Values are numeric blobs: anything implementing
//! [`Blob`] encodes to a `Vec<f64>` and back, which keeps the cache
//! type-erased, exactly round-trippable (floats are persisted by bit
//! pattern) and trivially persistable.
//!
//! Concurrent misses of one key are **single-flighted**: the first
//! caller computes while later callers block until the slot fills.
//! The computing path must not itself wait on the cache (the experiment
//! stack's compute closures only fan out pure jobs), which keeps the
//! scheme deadlock-free.
//!
//! Persistence schema, one JSON object per line:
//!
//! ```text
//! {"ns":"tcad.extract","key":"1f3a..16 hex..","bits":[4614256656552045848,...],"crc":"..16 hex.."}
//! ```
//!
//! `bits` are the IEEE-754 bit patterns of the encoded `f64`s, so a
//! round trip through disk is bit-exact. `crc` is an FNV-1a digest of
//! the entry's content: on load, lines whose digest does not match —
//! torn writes, flipped bits, truncations — are **quarantined** to a
//! `<path>.quarantine` sidecar and skipped, never fatal and never
//! silently wrong. Lines without a `crc` field (written by older
//! builds) are accepted when structurally intact. Saving rewrites the
//! whole file through a sibling temp file plus atomic rename, which
//! also compacts away superseded duplicate entries, and
//! [`CacheLock`] provides an advisory lock file so two processes can
//! share a cache directory without clobbering each other's saves.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use crate::trace;

pub mod seg;

/// Locks a mutex, recovering from poisoning instead of panicking.
///
/// Every map the cache guards is a plain value store that is mutated
/// atomically under the lock (insert/remove of finished values), so a
/// thread that panicked while holding the lock cannot have left it
/// half-updated — the poison flag is noise here, and honouring it would
/// turn one panicked compute thread into a process-wide denial of cache
/// service for every later caller.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A value the cache can store: encodes to/from a flat `f64` record.
pub trait Blob: Sized {
    /// Flattens the value.
    fn encode(&self) -> Vec<f64>;
    /// Rebuilds the value; `None` on schema mismatch (treated as a
    /// cache miss, never an error).
    fn decode(record: &[f64]) -> Option<Self>;
}

impl Blob for Vec<f64> {
    fn encode(&self) -> Vec<f64> {
        self.clone()
    }
    fn decode(record: &[f64]) -> Option<Self> {
        Some(record.to_vec())
    }
}

impl Blob for f64 {
    fn encode(&self) -> Vec<f64> {
        vec![*self]
    }
    fn decode(record: &[f64]) -> Option<Self> {
        match record {
            [v] => Some(*v),
            _ => None,
        }
    }
}

enum Slot {
    InFlight,
    Ready(Arc<Vec<f64>>),
}

/// How a [`Cache::try_get_or_compute_outcome`] call was satisfied.
///
/// The distinction powers the serve layer's dedup accounting: a
/// [`Lookup::Coalesced`] caller arrived while an identical request was
/// already computing and paid only the wait, which is exactly the
/// "N concurrent identical queries cost one compute" guarantee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Served from a ready entry without waiting on a computer.
    Hit,
    /// Waited on another caller's in-flight compute of the same key.
    Coalesced,
    /// This caller ran the compute closure.
    Computed,
}

struct CacheInner {
    map: HashMap<(u64, u64), Slot>,
    /// Namespace-hash → name, for persistence and stats.
    ns_names: HashMap<u64, String>,
}

/// Hit/miss counts, total and per namespace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total hits.
    pub hits: u64,
    /// Total misses (each miss implies one compute).
    pub misses: u64,
    /// Per-namespace `(hits, misses)`.
    pub by_namespace: Vec<(String, u64, u64)>,
}

/// Write-through persistence callback; see [`Cache::set_persist`].
pub type PersistHook = Arc<dyn Fn(&str, u64, &[f64]) + Send + Sync>;

/// Content-addressed, single-flight result cache.
pub struct Cache {
    inner: Mutex<CacheInner>,
    filled: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
    ns_stats: Mutex<HashMap<String, (u64, u64)>>,
    persist: Mutex<Option<PersistHook>>,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                ns_names: HashMap::new(),
            }),
            filled: Condvar::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            ns_stats: Mutex::new(HashMap::new()),
            persist: Mutex::new(None),
        }
    }

    /// Looks up `(ns, key)`; on a miss runs `compute`, stores its
    /// result and returns it. Concurrent misses of the same key block
    /// until the first caller's result is ready.
    pub fn get_or_compute<V: Blob>(&self, ns: &str, key: u64, compute: impl FnOnce() -> V) -> V {
        self.try_get_or_compute(ns, key, || Ok::<V, std::convert::Infallible>(compute()))
            .unwrap_or_else(|never| match never {})
    }

    /// [`Cache::get_or_compute`] for fallible computations. An `Err`
    /// clears the in-flight slot (a later caller retries) and is
    /// propagated.
    ///
    /// # Errors
    ///
    /// Returns whatever `compute` returned; the cache adds no error
    /// cases of its own.
    pub fn try_get_or_compute<V: Blob, E>(
        &self,
        ns: &str,
        key: u64,
        compute: impl FnOnce() -> Result<V, E>,
    ) -> Result<V, E> {
        self.try_get_or_compute_outcome(ns, key, compute).0
    }

    /// [`Cache::try_get_or_compute`] that also reports *how* the call
    /// was satisfied — see [`Lookup`]. The result is identical to the
    /// plain variant; only the accounting differs.
    ///
    /// # Errors
    ///
    /// Returns whatever `compute` returned; the cache adds no error
    /// cases of its own.
    pub fn try_get_or_compute_outcome<V: Blob, E>(
        &self,
        ns: &str,
        key: u64,
        compute: impl FnOnce() -> Result<V, E>,
    ) -> (Result<V, E>, Lookup) {
        let nsh = crate::KeyBuilder::new("ns").str(ns).finish();
        let id = (nsh, key);
        // Lookup latency includes any single-flight wait — that wait is
        // exactly the cost a caller pays for the lookup.
        let lookup_started = std::time::Instant::now();
        let mut waited = false;
        {
            let mut inner = lock_recover(&self.inner);
            loop {
                match inner.map.get(&id) {
                    Some(Slot::Ready(blob)) => {
                        if let Some(v) = V::decode(blob) {
                            drop(inner);
                            self.record(ns, true, lookup_started);
                            let how = if waited {
                                Lookup::Coalesced
                            } else {
                                Lookup::Hit
                            };
                            return (Ok(v), how);
                        }
                        // Stale schema: recompute below.
                        inner.map.insert(id, Slot::InFlight);
                        break;
                    }
                    Some(Slot::InFlight) => {
                        waited = true;
                        inner = self
                            .filled
                            .wait(inner)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    None => {
                        inner.map.insert(id, Slot::InFlight);
                        inner.ns_names.entry(nsh).or_insert_with(|| ns.to_owned());
                        break;
                    }
                }
            }
        }
        self.record(ns, false, lookup_started);
        // The in-flight slot must be cleared on every exit path — a
        // panic or Err that left it in place would wedge later callers.
        // `encode` runs inside the guarded region too: it is user code
        // (a `Blob` impl), and user code must never run while the cache
        // lock is held.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            compute().map(|v| {
                let bits = v.encode();
                (v, bits)
            })
        }));
        let mut inner = lock_recover(&self.inner);
        let persisted = match &result {
            Ok(Ok((_, bits))) => {
                let blob = Arc::new(bits.clone());
                inner.map.insert(id, Slot::Ready(Arc::clone(&blob)));
                Some(blob)
            }
            _ => {
                inner.map.remove(&id);
                None
            }
        };
        drop(inner);
        self.filled.notify_all();
        if let Some(bits) = persisted {
            // Write-through hook (segment appends): outside every lock,
            // only for freshly computed entries.
            let hook = lock_recover(&self.persist).clone();
            if let Some(hook) = hook {
                hook(ns, key, &bits);
            }
        }
        match result {
            Ok(r) => (r.map(|(v, _)| v), Lookup::Computed),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// Installs (or clears) the write-through persistence hook: after
    /// every freshly *computed* entry is published, the hook is invoked
    /// with `(ns, key, bits)` outside all cache locks. Segment sessions
    /// (see [`seg::SegmentSession`]) use this to append each new result
    /// to a per-process segment file the moment it exists, so a crash
    /// loses at most the entry being written — not the whole run.
    pub fn set_persist(&self, hook: Option<PersistHook>) {
        *lock_recover(&self.persist) = hook;
    }

    /// Returns the stored blob for `(ns, key)` without computing.
    pub fn peek(&self, ns: &str, key: u64) -> Option<Vec<f64>> {
        let nsh = crate::KeyBuilder::new("ns").str(ns).finish();
        let inner = lock_recover(&self.inner);
        match inner.map.get(&(nsh, key)) {
            Some(Slot::Ready(blob)) => Some(blob.as_ref().clone()),
            _ => None,
        }
    }

    /// Number of ready entries.
    pub fn len(&self) -> usize {
        let inner = lock_recover(&self.inner);
        inner
            .map
            .values()
            .filter(|s| matches!(s, Slot::Ready(_)))
            .count()
    }

    /// Whether the cache holds no ready entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss statistics since construction.
    pub fn stats(&self) -> CacheStats {
        let per = lock_recover(&self.ns_stats);
        let mut by_namespace: Vec<(String, u64, u64)> = per
            .iter()
            .map(|(ns, (h, m))| (ns.clone(), *h, *m))
            .collect();
        by_namespace.sort();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            by_namespace,
        }
    }

    fn record(&self, ns: &str, hit: bool, lookup_started: std::time::Instant) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        let mut per = lock_recover(&self.ns_stats);
        let entry = per.entry(ns.to_owned()).or_insert((0, 0));
        if hit {
            entry.0 += 1;
        } else {
            entry.1 += 1;
        }
        drop(per);
        // Hit/miss *counters* are published lazily by the flush hook
        // (see `flush_stats_into`), so every drained trace carries them
        // without a per-lookup counter write here. Latency is recorded
        // eagerly: the histogram needs every sample.
        trace::observe(
            &format!("cache.{ns}.lookup_us"),
            lookup_started.elapsed().as_micros() as f64,
        );
    }

    /// Publishes this cache's hit/miss totals into `tracer` as
    /// `cache.<ns>.hit` / `cache.<ns>.miss` counters (plus `cache.hit`
    /// / `cache.miss` totals). Registered as a flush hook on the global
    /// tracer by [`crate::global_cache`], so drained traces always
    /// carry cache stats even for paths that never touched the tracer.
    pub fn flush_stats_into(&self, tracer: &trace::Tracer) {
        let stats = self.stats();
        tracer.set_counter("cache.hit", stats.hits);
        tracer.set_counter("cache.miss", stats.misses);
        for (ns, hits, misses) in &stats.by_namespace {
            tracer.set_counter(&format!("cache.{ns}.hit"), *hits);
            tracer.set_counter(&format!("cache.{ns}.miss"), *misses);
        }
    }

    /// Loads JSON-lines entries from `path` (missing file = empty).
    /// Returns how many entries were loaded; damaged lines are
    /// quarantined, never fatal — a corrupt cache degrades to
    /// recompute. See [`Cache::load_jsonl_report`] for the full
    /// accounting.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than "file not found".
    pub fn load_jsonl(&self, path: &Path) -> std::io::Result<usize> {
        self.load_jsonl_report(path).map(|r| r.loaded)
    }

    /// Loads JSON-lines entries from `path` (missing file = empty),
    /// reporting what happened to every line:
    ///
    /// * structurally valid lines with a matching (or absent, for
    ///   legacy files) checksum are loaded; when the same `(ns, key)`
    ///   appears more than once, later lines win and earlier ones count
    ///   as `superseded` (the next [`Cache::save_jsonl`] compacts them
    ///   away);
    /// * torn, truncated or checksum-mismatched lines are appended
    ///   verbatim to the `<path>.quarantine` sidecar, counted as
    ///   `quarantined`, and traced as `cache.quarantined_lines` —
    ///   loading continues.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than "file not found" (including
    /// failure to write the quarantine sidecar).
    pub fn load_jsonl_report(&self, path: &Path) -> std::io::Result<LoadReport> {
        self.load_jsonl_impl(path, true)
    }

    /// [`Cache::load_jsonl_report`] without the quarantine sidecar:
    /// damaged lines are counted but left in place and nothing is
    /// written anywhere. This is the right load for files another
    /// *live* process may still be appending to — a fleet peer's
    /// segment, or a base file a primary is about to rewrite — where a
    /// torn final line is expected (the peer is mid-append) and writing
    /// a sidecar would race the owner.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than "file not found".
    pub fn load_jsonl_lenient(&self, path: &Path) -> std::io::Result<LoadReport> {
        self.load_jsonl_impl(path, false)
    }

    fn load_jsonl_impl(&self, path: &Path, quarantine: bool) -> std::io::Result<LoadReport> {
        let file = match std::fs::File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(LoadReport::default()),
            Err(e) => return Err(e),
        };
        let mut report = LoadReport::default();
        let mut sidecar: Option<std::fs::File> = None;
        for line in BufReader::new(file).lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let entry = parse_entry(&line).filter(|(ns, key, bits, crc)| match crc {
                Some(crc) => *crc == line_crc(ns, *key, bits),
                None => true, // legacy line, structurally intact
            });
            let Some((ns, key, bits, _)) = entry else {
                if quarantine {
                    let sidecar = match &mut sidecar {
                        Some(f) => f,
                        None => sidecar.insert(
                            std::fs::OpenOptions::new()
                                .create(true)
                                .append(true)
                                .open(quarantine_path(path))?,
                        ),
                    };
                    writeln!(sidecar, "{line}")?;
                    trace::add("cache.quarantined_lines", 1);
                }
                report.quarantined += 1;
                continue;
            };
            let nsh = crate::KeyBuilder::new("ns").str(&ns).finish();
            let blob: Vec<f64> = bits.iter().map(|b| f64::from_bits(*b)).collect();
            let mut inner = lock_recover(&self.inner);
            if inner
                .map
                .insert((nsh, key), Slot::Ready(Arc::new(blob)))
                .is_some()
            {
                report.superseded += 1;
            } else {
                report.loaded += 1;
            }
            inner.ns_names.entry(nsh).or_insert(ns);
        }
        if report.superseded > 0 {
            trace::add("cache.superseded_lines", report.superseded as u64);
        }
        Ok(report)
    }

    /// Writes every ready entry to `path` as checksummed JSON lines.
    /// The write goes through a sibling temp file plus atomic rename,
    /// so a crash mid-save leaves the previous file intact; because the
    /// in-memory map holds exactly one blob per `(ns, key)`, the
    /// rewrite also compacts any superseded duplicates a previous file
    /// accumulated. Returns the number of entries written.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save_jsonl(&self, path: &Path) -> std::io::Result<usize> {
        let tmp = path.with_extension("jsonl.tmp");
        let mut written = 0;
        {
            let mut w = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
            let inner = lock_recover(&self.inner);
            let mut entries: Vec<(&str, u64, &Arc<Vec<f64>>)> = inner
                .map
                .iter()
                .filter_map(|((nsh, key), slot)| match slot {
                    Slot::Ready(blob) => {
                        inner.ns_names.get(nsh).map(|ns| (ns.as_str(), *key, blob))
                    }
                    Slot::InFlight => None,
                })
                .collect();
            entries.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
            for (ns, key, blob) in entries {
                let mut line = format_line_f64(ns, key, blob);
                // Chaos harness: simulates a torn write on this line
                // (no-op unless a fault plan is armed).
                crate::faultinject::corrupt_point(&mut line);
                writeln!(w, "{line}")?;
                written += 1;
            }
            w.flush()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(written)
    }
}

/// Renders one persistence line (without trailing newline) for an
/// entry's `f64` blob — the single format shared by [`Cache::save_jsonl`]
/// rewrites and segment appends, so every writer produces byte-identical
/// lines for identical entries.
pub fn format_line_f64(ns: &str, key: u64, values: &[f64]) -> String {
    let bits: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
    let mut line = format!(
        "{{\"ns\":{},\"key\":\"{key:016x}\",\"bits\":[",
        trace::json_str(ns)
    );
    for (i, b) in bits.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&b.to_string());
    }
    line.push_str(&format!(
        "],\"crc\":\"{:016x}\"}}",
        line_crc(ns, key, &bits)
    ));
    line
}

/// Per-line accounting from [`Cache::load_jsonl_report`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Distinct entries loaded into memory.
    pub loaded: usize,
    /// Duplicate `(ns, key)` lines replaced by a later line.
    pub superseded: usize,
    /// Damaged lines moved to the quarantine sidecar.
    pub quarantined: usize,
}

/// The quarantine sidecar path for a cache file.
pub fn quarantine_path(cache_path: &Path) -> PathBuf {
    let mut os = cache_path.as_os_str().to_owned();
    os.push(".quarantine");
    PathBuf::from(os)
}

/// Checksum of one persisted entry's content (namespace, key, bits).
fn line_crc(ns: &str, key: u64, bits: &[u64]) -> u64 {
    let mut h = crate::hash::Fnv64::new();
    h.write(&(ns.len() as u64).to_le_bytes());
    h.write(ns.as_bytes());
    h.write(&key.to_le_bytes());
    h.write(&(bits.len() as u64).to_le_bytes());
    for b in bits {
        h.write(&b.to_le_bytes());
    }
    h.finish()
}

/// Advisory lock file guarding a shared cache path.
///
/// [`CacheLock::acquire`] atomically creates `<path>.lock` (containing
/// the holder's pid, for post-mortem debugging); the file is removed
/// when the guard drops. `Ok(None)` means another process holds the
/// lock — callers are expected to degrade gracefully (run without
/// persisting, or skip the save) rather than fail. That degradation is
/// never silent: the losing acquire publishes a
/// `cache.<file-stem>.readonly` gauge (value 1) so a read-only process
/// is visible in every drained trace and `/metrics` dump.
#[derive(Debug)]
pub struct CacheLock {
    path: PathBuf,
}

/// The metric name flagging read-only degradation for a cache path:
/// `cache.<file-stem>.readonly`.
pub fn readonly_gauge_name(cache_path: &Path) -> String {
    format!("cache.{}.readonly", cache_stem(cache_path))
}

/// The counter name for stale-lock reclaims on a cache path:
/// `cache.<file-stem>.lock_reclaimed`.
pub fn lock_reclaim_counter_name(cache_path: &Path) -> String {
    format!("cache.{}.lock_reclaimed", cache_stem(cache_path))
}

pub(crate) fn cache_stem(cache_path: &Path) -> String {
    cache_path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "cache".to_owned())
}

/// Whether `pid` names a live process. On Linux this checks
/// `/proc/<pid>`; elsewhere liveness cannot be probed without unsafe
/// syscalls, so every recorded holder is conservatively assumed alive
/// (stale locks then require manual removal, exactly the pre-reclaim
/// behaviour).
pub(crate) fn pid_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new(&format!("/proc/{pid}")).exists()
    } else {
        true
    }
}

/// Grace period before an unreadable/unparseable lock or lease file is
/// treated as abandoned: a holder that just won `create_new` may not
/// have written its pid yet, so freshly created files are never
/// reclaimed on content alone.
pub(crate) const UNPARSEABLE_GRACE: Duration = Duration::from_secs(10);

/// Whether the lock/lease file at `path` belongs to a dead holder.
///
/// A parseable pid line is authoritative: dead pid = stale. An empty or
/// garbled file is stale only once it is older than
/// [`UNPARSEABLE_GRACE`] (by mtime), which closes the race against a
/// holder between `create_new` and its pid write. A file that vanished
/// concurrently is not stale — someone else already cleaned it up and
/// the caller should simply retry its `create_new`.
pub(crate) fn holder_is_dead(path: &Path) -> bool {
    let Ok(text) = std::fs::read_to_string(path) else {
        return false;
    };
    match text
        .lines()
        .next()
        .and_then(|l| l.trim().parse::<u32>().ok())
    {
        Some(pid) => !pid_alive(pid),
        None => match std::fs::metadata(path).and_then(|m| m.modified()) {
            Ok(mtime) => matches!(mtime.elapsed(), Ok(age) if age > UNPARSEABLE_GRACE),
            Err(_) => false,
        },
    }
}

impl CacheLock {
    /// Tries to take the lock for `cache_path`, reclaiming it first if
    /// the recorded holder is dead.
    ///
    /// A lock file whose pid no longer names a live process (crashed or
    /// SIGKILL'd holder — `Drop` never ran) is removed and the acquire
    /// retried, with a `cache.<stem>.lock_reclaimed` counter recording
    /// the reclaim; a crashed holder therefore never leaves later runs
    /// read-only. Only a *live* holder produces `Ok(None)`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than "already exists" (which maps to
    /// `Ok(None)` when the holder is alive).
    pub fn acquire(cache_path: &Path) -> std::io::Result<Option<Self>> {
        let mut os = cache_path.as_os_str().to_owned();
        os.push(".lock");
        let path = PathBuf::from(os);
        // Bounded retries: each loop either wins the create_new, yields
        // to a live holder, or removes a provably stale file. Two
        // reclaimers racing is fine — remove_file losing the race just
        // means the other one cleaned up.
        for _ in 0..4 {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    let _ = writeln!(f, "{}", std::process::id());
                    trace::gauge(&readonly_gauge_name(cache_path), 0.0);
                    return Ok(Some(Self { path }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    if holder_is_dead(&path) {
                        let _ = std::fs::remove_file(&path);
                        trace::add(&lock_reclaim_counter_name(cache_path), 1);
                        continue;
                    }
                    trace::gauge(&readonly_gauge_name(cache_path), 1.0);
                    return Ok(None);
                }
                Err(e) => return Err(e),
            }
        }
        trace::gauge(&readonly_gauge_name(cache_path), 1.0);
        Ok(None)
    }

    /// The lock file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for CacheLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

impl Default for Cache {
    fn default() -> Self {
        Self::new()
    }
}

/// Parses one persistence line:
/// `{"ns":"...","key":"hex","bits":[...]}` (legacy) or
/// `{"ns":"...","key":"hex","bits":[...],"crc":"hex"}`.
///
/// The trailing `}` must close the line exactly — any other trailing
/// content marks the line as damaged, so a truncation that happens to
/// leave a parsable prefix cannot load a short blob silently.
fn parse_entry(line: &str) -> Option<(String, u64, Vec<u64>, Option<u64>)> {
    let rest = line.trim().strip_prefix("{\"ns\":\"")?;
    // The namespace is written with `json_str`; unescape the two
    // escapes that can occur in practice.
    let mut ns = String::new();
    let mut chars = rest.char_indices();
    let ns_end = loop {
        let (i, c) = chars.next()?;
        match c {
            '"' => break i,
            '\\' => {
                let (_, esc) = chars.next()?;
                ns.push(match esc {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                });
            }
            c => ns.push(c),
        }
    };
    let rest = rest[ns_end..].strip_prefix("\",\"key\":\"")?;
    let (key_hex, rest) = rest.split_once('"')?;
    let key = u64::from_str_radix(key_hex, 16).ok()?;
    let rest = rest.strip_prefix(",\"bits\":[")?;
    let (body, rest) = rest.split_once(']')?;
    let bits = if body.is_empty() {
        Vec::new()
    } else {
        body.split(',')
            .map(|t| t.trim().parse::<u64>())
            .collect::<Result<Vec<u64>, _>>()
            .ok()?
    };
    let crc = match rest {
        "}" => None,
        tail => {
            let hex = tail.strip_prefix(",\"crc\":\"")?.strip_suffix("\"}")?;
            Some(u64::from_str_radix(hex, 16).ok()?)
        }
    };
    Some((ns, key, bits, crc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn second_identical_lookup_is_a_hit_and_never_recomputes() {
        let cache = Cache::new();
        let computes = AtomicUsize::new(0);
        let f = || {
            computes.fetch_add(1, Ordering::SeqCst);
            vec![1.5, -0.0, 0.1 + 0.2]
        };
        let a = cache.get_or_compute("t", 42, f);
        let b: Vec<f64> =
            cache.get_or_compute("t", 42, || unreachable!("must be served from cache"));
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(computes.load(Ordering::SeqCst), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn namespaces_do_not_collide() {
        let cache = Cache::new();
        let a = cache.get_or_compute("ns-a", 7, || 1.0);
        let b = cache.get_or_compute("ns-b", 7, || 2.0);
        assert_eq!((a, b), (1.0, 2.0));
    }

    #[test]
    fn error_clears_in_flight_slot() {
        let cache = Cache::new();
        let r: Result<f64, &str> = cache.try_get_or_compute("t", 1, || Err("nope"));
        assert_eq!(r, Err("nope"));
        // A later caller is not wedged and can fill the slot.
        let v: Result<f64, &str> = cache.try_get_or_compute("t", 1, || Ok(3.0));
        assert_eq!(v, Ok(3.0));
    }

    #[test]
    fn panic_in_compute_clears_in_flight_slot() {
        let cache = Cache::new();
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_compute("t", 9, || -> f64 { panic!("compute died") })
        }));
        assert!(attempt.is_err());
        assert_eq!(cache.get_or_compute("t", 9, || 4.0), 4.0);
    }

    #[test]
    fn concurrent_misses_single_flight() {
        let cache = Arc::new(Cache::new());
        let computes = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let computes = Arc::clone(&computes);
            handles.push(std::thread::spawn(move || {
                cache.get_or_compute("t", 5, || {
                    computes.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    7.25
                })
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 7.25);
        }
        assert_eq!(computes.load(Ordering::SeqCst), 1, "single-flight violated");
    }

    #[test]
    fn jsonl_round_trip_is_bit_exact() {
        let dir = std::env::temp_dir().join(format!("subvt-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round-trip.jsonl");
        let cache = Cache::new();
        let tricky = vec![0.1 + 0.2, -0.0, f64::MIN_POSITIVE, 1.0e300, -3.25];
        let t2 = tricky.clone();
        cache.get_or_compute("blob", 11, move || t2);
        cache.get_or_compute("scalar", 12, || 2.5);
        assert_eq!(cache.save_jsonl(&path).unwrap(), 2);

        let reloaded = Cache::new();
        assert_eq!(reloaded.load_jsonl(&path).unwrap(), 2);
        let got = reloaded.get_or_compute("blob", 11, || -> Vec<f64> {
            unreachable!("must hit disk entry")
        });
        assert_eq!(
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            tricky.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(reloaded.stats().hits, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_is_empty() {
        let cache = Cache::new();
        let n = cache
            .load_jsonl(Path::new("/nonexistent/subvt.jsonl"))
            .unwrap();
        assert_eq!(n, 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn malformed_lines_are_skipped() {
        assert!(parse_entry("not json").is_none());
        assert!(parse_entry("{\"ns\":\"a\",\"key\":\"zz\",\"bits\":[1]}").is_none());
        let ok = parse_entry("{\"ns\":\"a\",\"key\":\"00000000000000ff\",\"bits\":[1,2]}");
        assert_eq!(ok, Some(("a".to_owned(), 255, vec![1, 2], None)));
        let empty = parse_entry("{\"ns\":\"a\",\"key\":\"0000000000000001\",\"bits\":[]}");
        assert_eq!(empty, Some(("a".to_owned(), 1, vec![], None)));
        // Trailing garbage after the closing brace = damaged, even if a
        // prefix parses (a truncated longer line must not load short).
        assert!(
            parse_entry("{\"ns\":\"a\",\"key\":\"0000000000000001\",\"bits\":[1]}#torn").is_none()
        );
        // crc field round-trips.
        let crc = parse_entry(
            "{\"ns\":\"a\",\"key\":\"0000000000000001\",\"bits\":[1],\"crc\":\"00000000000000aa\"}",
        );
        assert_eq!(crc, Some(("a".to_owned(), 1, vec![1], Some(0xaa))));
    }

    #[test]
    fn corrupted_lines_are_quarantined_and_valid_entries_survive() {
        let dir = std::env::temp_dir().join(format!("subvt-cache-q-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("quarantine.jsonl");
        let cache = Cache::new();
        cache.get_or_compute("good", 1, || vec![1.0, 2.0]);
        cache.get_or_compute("good", 2, || 3.5);
        assert_eq!(cache.save_jsonl(&path).unwrap(), 2);

        // Flip one bit in the first line's payload (checksum mismatch)
        // and truncate the second (structural damage), then append one
        // intact line.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
        lines[0] = lines[0].replacen("\"bits\":[", "\"bits\":[9,", 1);
        let keep = lines[1].len() / 2;
        lines[1].truncate(keep);
        let extra = Cache::new();
        extra.get_or_compute("extra", 3, || 7.0);
        let extra_path = dir.join("extra.jsonl");
        extra.save_jsonl(&extra_path).unwrap();
        lines.push(std::fs::read_to_string(&extra_path).unwrap().trim().into());
        std::fs::write(&path, lines.join("\n")).unwrap();

        let reloaded = Cache::new();
        let report = reloaded.load_jsonl_report(&path).unwrap();
        assert_eq!(
            report,
            LoadReport {
                loaded: 1,
                superseded: 0,
                quarantined: 2
            }
        );
        assert_eq!(reloaded.get_or_compute("extra", 3, || -1.0), 7.0);
        let sidecar = std::fs::read_to_string(quarantine_path(&path)).unwrap();
        assert_eq!(sidecar.lines().count(), 2, "both damaged lines kept");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(quarantine_path(&path)).ok();
        std::fs::remove_file(&extra_path).ok();
    }

    #[test]
    fn duplicate_entries_supersede_in_order_and_compact_on_save() {
        let dir = std::env::temp_dir().join(format!("subvt-cache-d-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dupes.jsonl");
        // Build a file with the same (ns, key) three times by
        // concatenating saves with different values.
        let mut text = String::new();
        for v in [1.0, 2.0, 3.0] {
            let c = Cache::new();
            c.get_or_compute("dup", 9, move || v);
            let p = dir.join("one.jsonl");
            c.save_jsonl(&p).unwrap();
            text.push_str(&std::fs::read_to_string(&p).unwrap());
            std::fs::remove_file(&p).ok();
        }
        std::fs::write(&path, &text).unwrap();

        let cache = Cache::new();
        let report = cache.load_jsonl_report(&path).unwrap();
        assert_eq!(
            report,
            LoadReport {
                loaded: 1,
                superseded: 2,
                quarantined: 0
            }
        );
        // Last line wins.
        assert_eq!(cache.get_or_compute("dup", 9, || -1.0), 3.0);
        // A clean save compacts the file back to one line.
        assert_eq!(cache.save_jsonl(&path).unwrap(), 1);
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_lines_without_crc_still_load() {
        let dir = std::env::temp_dir().join(format!("subvt-cache-l-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("legacy.jsonl");
        let bits = 2.5f64.to_bits();
        std::fs::write(
            &path,
            format!("{{\"ns\":\"old\",\"key\":\"000000000000000a\",\"bits\":[{bits}]}}\n"),
        )
        .unwrap();
        let cache = Cache::new();
        let report = cache.load_jsonl_report(&path).unwrap();
        assert_eq!(report.loaded, 1);
        assert_eq!(report.quarantined, 0);
        assert_eq!(cache.get_or_compute("old", 10, || -1.0), 2.5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lookup_outcomes_distinguish_compute_hit_and_coalesce() {
        let cache = Arc::new(Cache::new());
        let (r, how) = cache
            .try_get_or_compute_outcome("outc", 1, || Ok::<f64, std::convert::Infallible>(2.0));
        assert_eq!((r.unwrap(), how), (2.0, Lookup::Computed));
        let (r, how) = cache
            .try_get_or_compute_outcome("outc", 1, || Ok::<f64, std::convert::Infallible>(-1.0));
        assert_eq!((r.unwrap(), how), (2.0, Lookup::Hit));

        // Coalesced: a second thread arrives while the first computes.
        let started = Arc::new(std::sync::Barrier::new(2));
        let c2 = Arc::clone(&cache);
        let s2 = Arc::clone(&started);
        let waiter = std::thread::spawn(move || {
            s2.wait();
            // Give the computer time to take the in-flight slot.
            std::thread::sleep(std::time::Duration::from_millis(20));
            c2.try_get_or_compute_outcome("outc", 2, || Ok::<f64, std::convert::Infallible>(-1.0))
        });
        let (r, how) = cache.try_get_or_compute_outcome("outc", 2, || {
            started.wait();
            std::thread::sleep(std::time::Duration::from_millis(80));
            Ok::<f64, std::convert::Infallible>(5.0)
        });
        assert_eq!((r.unwrap(), how), (5.0, Lookup::Computed));
        let (r, how) = waiter.join().unwrap();
        assert_eq!(r.unwrap(), 5.0);
        assert_eq!(how, Lookup::Coalesced, "waiter must report coalescing");
    }

    #[test]
    fn losing_lock_acquire_publishes_readonly_gauge() {
        let dir = std::env::temp_dir().join(format!("subvt-cache-ro-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("degraded.jsonl");
        let lock = CacheLock::acquire(&path).unwrap().expect("first acquire");
        assert!(CacheLock::acquire(&path).unwrap().is_none());
        let snap = trace::global().snapshot();
        assert_eq!(
            snap.gauges.get(&readonly_gauge_name(&path)).copied(),
            Some(1.0),
            "read-only degradation must be observable"
        );
        assert_eq!(readonly_gauge_name(&path), "cache.degraded.readonly");
        drop(lock);
    }

    #[test]
    fn cache_lock_is_exclusive_and_released_on_drop() {
        let dir = std::env::temp_dir().join(format!("subvt-cache-k-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("locked.jsonl");
        let lock = CacheLock::acquire(&path).unwrap().expect("first acquire");
        assert!(lock.path().exists());
        assert!(
            CacheLock::acquire(&path).unwrap().is_none(),
            "second acquire must observe the held lock"
        );
        let lock_path = lock.path().to_owned();
        drop(lock);
        assert!(!lock_path.exists(), "drop must remove the lock file");
        let again = CacheLock::acquire(&path).unwrap();
        assert!(again.is_some(), "lock is reacquirable after release");
    }

    #[test]
    fn flush_publishes_stats_as_counters() {
        let cache = Cache::new();
        cache.get_or_compute("flushns", 1, || 1.0);
        let _: f64 = cache.get_or_compute("flushns", 1, || unreachable!("hit"));
        let tracer = trace::Tracer::new();
        cache.flush_stats_into(&tracer);
        assert_eq!(tracer.counter("cache.flushns.hit"), 1);
        assert_eq!(tracer.counter("cache.flushns.miss"), 1);
        assert_eq!(tracer.counter("cache.hit"), 1);
        assert_eq!(tracer.counter("cache.miss"), 1);
    }

    #[test]
    fn lookups_record_latency_histograms() {
        let cache = Cache::new();
        cache.get_or_compute("latns", 2, || 1.0);
        let _: f64 = cache.get_or_compute("latns", 2, || unreachable!("hit"));
        let snap = trace::global().snapshot();
        let h = snap
            .hists
            .get("cache.latns.lookup_us")
            .expect("lookup latency histogram");
        assert!(h.count >= 2);
        assert_eq!(h.counts.iter().sum::<u64>(), h.count);
    }

    #[test]
    fn stale_blob_schema_recomputes() {
        let cache = Cache::new();
        // Store a 2-element record, then read it as a scalar (f64::decode
        // rejects len != 1) — must fall back to compute.
        cache.get_or_compute("t", 3, || vec![1.0, 2.0]);
        let v: f64 = cache.get_or_compute("t", 3, || 9.0);
        assert_eq!(v, 9.0);
    }

    #[test]
    fn poisoned_lock_is_recovered_not_propagated() {
        let cache = Arc::new(Cache::new());
        cache.get_or_compute("poison", 1, || 5.0);
        // Panic while holding the inner lock — the classic poisoning
        // scenario a panicked compute thread used to cause.
        let c2 = Arc::clone(&cache);
        let _ = std::thread::spawn(move || {
            let _guard = c2.inner.lock().unwrap();
            panic!("die holding the cache lock");
        })
        .join();
        assert!(cache.inner.is_poisoned(), "setup must have poisoned");
        // Every later access recovers instead of cascading the panic.
        assert_eq!(cache.get_or_compute("poison", 1, || -1.0), 5.0);
        assert_eq!(cache.get_or_compute("poison", 2, || 6.0), 6.0);
        assert_eq!(cache.len(), 2);
        assert!(cache.stats().hits >= 1);
    }

    struct PanickingEncode;
    impl Blob for PanickingEncode {
        fn encode(&self) -> Vec<f64> {
            panic!("encode died");
        }
        fn decode(_record: &[f64]) -> Option<Self> {
            Some(PanickingEncode)
        }
    }

    #[test]
    fn panic_in_encode_clears_slot_and_leaves_cache_usable() {
        let cache = Cache::new();
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_compute("enc", 4, || PanickingEncode)
        }));
        assert!(attempt.is_err());
        // encode ran inside the guarded region: no lock was held, the
        // in-flight slot was cleared, and the key is computable again.
        assert_eq!(cache.get_or_compute("enc", 4, || 8.0), 8.0);
    }

    #[test]
    fn persist_hook_fires_for_computes_only() {
        let cache = Cache::new();
        type Seen = Vec<(String, u64, Vec<f64>)>;
        let seen: Arc<Mutex<Seen>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        cache.set_persist(Some(Arc::new(move |ns: &str, key: u64, bits: &[f64]| {
            sink.lock()
                .unwrap()
                .push((ns.to_owned(), key, bits.to_vec()));
        })));
        cache.get_or_compute("ph", 7, || vec![1.0, 2.0]);
        let _: Vec<f64> = cache.get_or_compute("ph", 7, || unreachable!("hit"));
        cache.set_persist(None);
        cache.get_or_compute("ph", 8, || 3.0);
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 1, "hook fires once: compute yes, hit no");
        assert_eq!(seen[0], ("ph".to_owned(), 7, vec![1.0, 2.0]));
    }

    #[test]
    fn stale_lock_from_dead_holder_is_reclaimed() {
        let dir = std::env::temp_dir().join(format!("subvt-cache-stale-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stale.jsonl");
        // Fabricate a lock left by a crashed holder: a pid far above
        // any real /proc entry stands in for a dead process.
        let lock_path = {
            let mut os = path.as_os_str().to_owned();
            os.push(".lock");
            PathBuf::from(os)
        };
        std::fs::write(&lock_path, "999999999\n").unwrap();
        let before = trace::global()
            .snapshot()
            .counters
            .get("cache.stale.lock_reclaimed")
            .copied();
        let lock = CacheLock::acquire(&path).unwrap();
        assert!(
            lock.is_some(),
            "dead holder must be reclaimed, not honoured"
        );
        let after = trace::global()
            .snapshot()
            .counters
            .get("cache.stale.lock_reclaimed")
            .copied()
            .unwrap_or(0);
        assert!(after > before.unwrap_or(0), "reclaim must be counted");
        let snap = trace::global().snapshot();
        assert_eq!(snap.gauges.get("cache.stale.readonly").copied(), Some(0.0));
        drop(lock);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fresh_unparseable_lock_is_not_stolen() {
        let dir = std::env::temp_dir().join(format!("subvt-cache-fresh-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fresh.jsonl");
        let lock_path = {
            let mut os = path.as_os_str().to_owned();
            os.push(".lock");
            PathBuf::from(os)
        };
        // A just-created empty lock models a holder that won create_new
        // but has not written its pid yet: within the grace window it
        // must be honoured, not reclaimed.
        std::fs::write(&lock_path, "").unwrap();
        assert!(!holder_is_dead(&lock_path));
        assert!(CacheLock::acquire(&path).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
