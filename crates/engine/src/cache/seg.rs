//! Segmented shared-cache store: per-process append-only segments
//! claimed by lease files.
//!
//! The base JSONL file (`<cache>.jsonl`) stays the canonical compacted
//! store, guarded by the primary [`super::CacheLock`]. Around it, a
//! sibling directory `<cache>.d/` holds one append-only segment per
//! concurrent writer:
//!
//! ```text
//! results.jsonl            # canonical store (primary lock holder)
//! results.jsonl.lock       # advisory primary lock
//! results.jsonl.d/
//!   seg-0.jsonl            # worker 0's appends (same line format + CRC)
//!   seg-0.lease            # {"pid":…,"acquired_utc":"…","acquired_unix":…,"ttl_secs":…}
//!   seg-1.jsonl
//!   seg-1.lease
//! ```
//!
//! A segment is claimed by atomically creating its lease file. A lease
//! is **reclaimable** when its holder pid is dead or its TTL has
//! lapsed (and, as with the primary lock, an unparseable lease older
//! than the grace window). Reclaiming a dead worker's segment first
//! *scrubs* it: intact CRC'd lines are kept, the torn tail a crash can
//! leave is quarantined through the same sidecar path the base store
//! uses — so a partial append is never loaded and never silently lost.
//!
//! Writers append each freshly computed entry immediately (via
//! [`super::Cache::set_persist`]), so a SIGKILL loses at most the line
//! being written. On clean shutdown the fleet parent (or the next
//! primary-lock holder) **compacts**: base + dead segments merge into
//! one canonical JSONL, byte-identical to what a single process would
//! have written, and the merged segments are removed.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use super::{
    cache_stem, format_line_f64, line_crc, lock_recover, parse_entry, pid_alive, quarantine_path,
    Cache, LoadReport, UNPARSEABLE_GRACE,
};
use crate::{clock, trace};

/// Default lease TTL. Generous on purpose: TTL reclaim exists to clear
/// leases whose holder is alive-but-wedged (or unkillable on a foreign
/// machine), not to race healthy long-running workers. Liveness is
/// normally decided by the pid check; the TTL is the backstop.
pub const DEFAULT_TTL_SECS: u64 = 3600;

/// The segment directory for a cache path: `<path>.d`.
pub fn segment_dir(cache_path: &Path) -> PathBuf {
    let mut os = cache_path.as_os_str().to_owned();
    os.push(".d");
    PathBuf::from(os)
}

/// The counter name for lease reclaims on a cache path:
/// `cache.<file-stem>.lease_reclaimed`.
pub fn lease_reclaim_counter_name(cache_path: &Path) -> String {
    format!("cache.{}.lease_reclaimed", cache_stem(cache_path))
}

/// One lease file's decoded content.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseInfo {
    /// Holder process id.
    pub pid: u32,
    /// Unix seconds at acquire (or last refresh).
    pub acquired_unix: u64,
    /// Seconds after `acquired_unix` at which the lease lapses.
    pub ttl_secs: u64,
}

impl LeaseInfo {
    /// Renders the lease file body (one JSON object + newline).
    pub fn render(&self) -> String {
        format!(
            "{{\"pid\":{},\"acquired_utc\":{},\"acquired_unix\":{},\"ttl_secs\":{}}}\n",
            self.pid,
            trace::json_str(&clock::iso8601_utc(self.acquired_unix)),
            self.acquired_unix,
            self.ttl_secs
        )
    }

    /// Parses a lease file body; `None` if any required field is
    /// missing or malformed.
    pub fn parse(text: &str) -> Option<Self> {
        Some(Self {
            pid: json_u64_field(text, "pid")? as u32,
            acquired_unix: json_u64_field(text, "acquired_unix")?,
            ttl_secs: json_u64_field(text, "ttl_secs")?,
        })
    }

    /// Whether this lease no longer protects its segment: the holder
    /// pid is dead, or the TTL has lapsed.
    pub fn is_stale(&self, now_unix: u64) -> bool {
        !pid_alive(self.pid) || now_unix > self.acquired_unix.saturating_add(self.ttl_secs)
    }
}

/// Extracts an unsigned integer field `"name":123` from a flat JSON
/// object without pulling in a parser.
fn json_u64_field(text: &str, name: &str) -> Option<u64> {
    let pat = format!("\"{name}\":");
    let start = text.find(&pat)? + pat.len();
    let rest = &text[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Whether the lease file at `path` is reclaimable right now.
/// Missing file → not stale (nothing to reclaim; claim by `create_new`).
fn lease_is_stale(path: &Path) -> bool {
    let Ok(text) = std::fs::read_to_string(path) else {
        return false;
    };
    match LeaseInfo::parse(&text) {
        Some(info) => info.is_stale(clock::unix_now()),
        None => match std::fs::metadata(path).and_then(|m| m.modified()) {
            Ok(mtime) => matches!(mtime.elapsed(), Ok(age) if age > UNPARSEABLE_GRACE),
            Err(_) => false,
        },
    }
}

/// An exclusive claim on one segment, backed by a lease file. Removed
/// on drop; a crash leaves the file behind for the next claimant to
/// reclaim via the staleness rules.
#[derive(Debug)]
pub struct Lease {
    path: PathBuf,
    ttl_secs: u64,
}

impl Lease {
    /// Claims the lease at `path`, reclaiming a stale holder first.
    /// `Ok(None)` means a live holder owns it. `counter` is bumped once
    /// per reclaimed stale lease.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than "already exists".
    pub fn claim(path: &Path, ttl_secs: u64, counter: &str) -> std::io::Result<Option<Self>> {
        for _ in 0..4 {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(path)
            {
                Ok(mut f) => {
                    let info = LeaseInfo {
                        pid: std::process::id(),
                        acquired_unix: clock::unix_now(),
                        ttl_secs,
                    };
                    let _ = f.write_all(info.render().as_bytes());
                    return Ok(Some(Self {
                        path: path.to_owned(),
                        ttl_secs,
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    if lease_is_stale(path) {
                        let _ = std::fs::remove_file(path);
                        trace::add(counter, 1);
                        continue;
                    }
                    return Ok(None);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(None)
    }

    /// Re-stamps the lease's acquire time, extending the TTL window.
    /// Written through a sibling temp file + atomic rename so a reader
    /// never sees a partial lease.
    pub fn refresh(&self) {
        let info = LeaseInfo {
            pid: std::process::id(),
            acquired_unix: clock::unix_now(),
            ttl_secs: self.ttl_secs,
        };
        let tmp = self.path.with_extension("lease.tmp");
        if std::fs::write(&tmp, info.render()).is_ok() {
            let _ = std::fs::rename(&tmp, &self.path);
        }
    }

    /// The lease file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// What [`scrub_segment`] did to one segment file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Intact lines kept in the rewritten segment.
    pub kept: usize,
    /// Damaged lines moved to the `<segment>.quarantine` sidecar.
    pub quarantined: usize,
}

/// Rewrites a segment keeping only intact CRC'd lines; damaged lines
/// (the torn tail a SIGKILL mid-append leaves) go to the segment's
/// quarantine sidecar, counted and traced exactly like base-file
/// quarantine. Missing segment → empty report. The rewrite goes
/// through a temp file + atomic rename.
///
/// # Errors
///
/// Propagates I/O errors other than "file not found".
pub fn scrub_segment(seg_path: &Path) -> std::io::Result<ScrubReport> {
    let text = match std::fs::read_to_string(seg_path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(ScrubReport::default()),
        Err(e) => return Err(e),
    };
    let mut report = ScrubReport::default();
    let mut kept = String::new();
    let mut sidecar: Option<std::fs::File> = None;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let intact = parse_entry(line)
            .map(|(ns, key, bits, crc)| match crc {
                Some(crc) => crc == line_crc(&ns, key, &bits),
                None => true,
            })
            .unwrap_or(false);
        if intact {
            kept.push_str(line);
            kept.push('\n');
            report.kept += 1;
        } else {
            let sidecar = match &mut sidecar {
                Some(f) => f,
                None => sidecar.insert(
                    std::fs::OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(quarantine_path(seg_path))?,
                ),
            };
            writeln!(sidecar, "{line}")?;
            report.quarantined += 1;
            trace::add("cache.quarantined_lines", 1);
        }
    }
    if report.quarantined > 0 {
        let tmp = seg_path.with_extension("jsonl.scrub.tmp");
        std::fs::write(&tmp, &kept)?;
        std::fs::rename(&tmp, seg_path)?;
    }
    Ok(report)
}

/// A claimed, open segment: the writing side of the shared store.
///
/// Install [`SegmentSession::persist_hook`] on the in-memory cache and
/// every freshly computed entry is appended (CRC'd, flushed) to this
/// process's segment the moment it exists. Appends refresh the lease at
/// most every `ttl/4` so a long-running writer is never TTL-reclaimed.
pub struct SegmentSession {
    cache_path: PathBuf,
    seg_path: PathBuf,
    lease: Mutex<Option<Lease>>,
    file: Mutex<std::fs::File>,
    appended: AtomicU64,
    last_refresh: Mutex<Instant>,
    ttl_secs: u64,
    /// What the claim-time scrub of a previous incarnation's leftover
    /// segment found (all zeros on a fresh segment).
    pub scrub: ScrubReport,
}

impl SegmentSession {
    /// Claims segment `name` under `cache_path`'s segment directory.
    ///
    /// Creates `<cache>.d/` if needed, claims `seg-<name>.lease`
    /// (reclaiming a stale holder, which bumps
    /// `cache.<stem>.lease_reclaimed`), scrubs any leftover
    /// `seg-<name>.jsonl` from a crashed previous incarnation, and
    /// opens the segment for append. `Ok(None)` = a live holder owns
    /// this segment name.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn claim(cache_path: &Path, name: &str, ttl_secs: u64) -> std::io::Result<Option<Self>> {
        let dir = segment_dir(cache_path);
        std::fs::create_dir_all(&dir)?;
        let lease_path = dir.join(format!("seg-{name}.lease"));
        let seg_path = dir.join(format!("seg-{name}.jsonl"));
        let counter = lease_reclaim_counter_name(cache_path);
        let Some(lease) = Lease::claim(&lease_path, ttl_secs, &counter)? else {
            return Ok(None);
        };
        // A crashed previous holder of this name may have left a torn
        // tail; quarantine it before we append after it.
        let scrub = scrub_segment(&seg_path)?;
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&seg_path)?;
        Ok(Some(Self {
            cache_path: cache_path.to_owned(),
            seg_path,
            lease: Mutex::new(Some(lease)),
            file: Mutex::new(file),
            appended: AtomicU64::new(0),
            last_refresh: Mutex::new(Instant::now()),
            ttl_secs,
            scrub,
        }))
    }

    /// The segment file's path.
    pub fn path(&self) -> &Path {
        &self.seg_path
    }

    /// The cache path this segment belongs to.
    pub fn cache_path(&self) -> &Path {
        &self.cache_path
    }

    /// Lines appended by this session so far.
    pub fn appended(&self) -> u64 {
        self.appended.load(Ordering::Relaxed)
    }

    /// Appends one entry (CRC'd line + flush). Append failures are
    /// deliberately non-fatal — the entry is still in memory and the
    /// run continues; the segment just loses write-through for it.
    pub fn append(&self, ns: &str, key: u64, values: &[f64]) {
        let mut line = format_line_f64(ns, key, values);
        // Same chaos hook as base-file saves: a fault plan can tear a
        // segment append too.
        crate::faultinject::corrupt_point(&mut line);
        {
            let mut f = lock_recover(&self.file);
            if writeln!(f, "{line}").and_then(|()| f.flush()).is_err() {
                trace::add("cache.segment_append_errors", 1);
                return;
            }
        }
        self.appended.fetch_add(1, Ordering::Relaxed);
        self.maybe_refresh();
    }

    /// Refreshes the lease if more than `ttl/4` has passed since the
    /// last refresh. Cheap enough to call per append.
    pub fn maybe_refresh(&self) {
        let min_gap = std::time::Duration::from_secs((self.ttl_secs / 4).max(1));
        let mut last = lock_recover(&self.last_refresh);
        if last.elapsed() < min_gap {
            return;
        }
        *last = Instant::now();
        drop(last);
        if let Some(lease) = lock_recover(&self.lease).as_ref() {
            lease.refresh();
        }
    }

    /// Loads this session's own segment (scrubbed at claim time, so
    /// every line is intact) into `cache`. Lenient load: no sidecar
    /// writes.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than "file not found".
    pub fn load_into(&self, cache: &Cache) -> std::io::Result<LoadReport> {
        cache.load_jsonl_lenient(&self.seg_path)
    }

    /// The persistence hook wiring this session to
    /// [`Cache::set_persist`].
    pub fn persist_hook(self: &std::sync::Arc<Self>) -> super::PersistHook {
        let session = std::sync::Arc::clone(self);
        std::sync::Arc::new(move |ns: &str, key: u64, bits: &[f64]| {
            session.append(ns, key, bits);
        })
    }

    /// Closes the session: flushes, removes an empty segment file, and
    /// releases the lease. Idempotent. A non-empty segment is *kept* —
    /// its entries merge into the canonical file at the next
    /// compaction.
    pub fn close(&self) {
        {
            let mut f = lock_recover(&self.file);
            let _ = f.flush();
        }
        let lease = lock_recover(&self.lease).take();
        if lease.is_some() && self.appended() == 0 && self.scrub.kept == 0 {
            let _ = std::fs::remove_file(&self.seg_path);
        }
        drop(lease);
    }
}

impl Drop for SegmentSession {
    fn drop(&mut self) {
        self.close();
    }
}

/// What adopting orphaned segments found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AdoptReport {
    /// Segment files merged into the in-memory cache, ready for
    /// removal once the merged state is durably saved.
    pub adopted: Vec<PathBuf>,
    /// Stale lease files belonging to adopted segments.
    pub stale_leases: Vec<PathBuf>,
    /// Entries loaded across all adopted segments.
    pub loaded: usize,
    /// Damaged lines quarantined across all adopted segments.
    pub quarantined: usize,
    /// Segments skipped because a live lease protects them.
    pub skipped_live: usize,
}

/// Scans `<cache>.d/` for segments whose lease is absent or stale,
/// scrubs each (torn tails → quarantine sidecar), and loads the intact
/// entries into `cache`. Segments protected by a live lease are
/// skipped. The caller decides when the adopted files may be removed —
/// only after the merged state has been durably saved (see
/// [`compact`] and the primary-session close path).
///
/// # Errors
///
/// Propagates I/O errors (a missing segment directory is an empty
/// report, not an error).
pub fn adopt_dead_segments(cache_path: &Path, cache: &Cache) -> std::io::Result<AdoptReport> {
    let dir = segment_dir(cache_path);
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(AdoptReport::default()),
        Err(e) => return Err(e),
    };
    let mut seg_paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("seg-") && n.ends_with(".jsonl"))
        })
        .collect();
    // Deterministic merge order (later entries supersede earlier ones
    // for duplicate keys, though duplicates are byte-identical here).
    seg_paths.sort();
    let mut report = AdoptReport::default();
    for seg in seg_paths {
        let lease = seg.with_extension("lease");
        if lease.exists() && !lease_is_stale(&lease) {
            report.skipped_live += 1;
            continue;
        }
        let scrub = scrub_segment(&seg)?;
        report.quarantined += scrub.quarantined;
        let load = cache.load_jsonl_lenient(&seg)?;
        report.loaded += load.loaded;
        if lease.exists() {
            report.stale_leases.push(lease);
        }
        report.adopted.push(seg);
    }
    Ok(report)
}

/// What [`compact`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactReport {
    /// Entries written to the canonical file.
    pub written: usize,
    /// Segment files merged and removed.
    pub segments_merged: usize,
    /// Damaged lines quarantined while merging.
    pub quarantined: usize,
    /// Segments left in place because a live lease protects them.
    pub skipped_live: usize,
}

/// Merges the base file and every dead/unleased segment into one
/// canonical JSONL at `cache_path`, then removes the merged segments
/// (and their stale leases, and the segment directory if it ends up
/// empty). Segment quarantine sidecars are folded into the base
/// `<cache>.quarantine` sidecar so the evidence survives directory
/// removal.
///
/// The caller must hold the primary [`super::CacheLock`]; live-leased
/// segments are skipped, never stolen.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn compact(cache_path: &Path) -> std::io::Result<CompactReport> {
    let cache = Cache::new();
    let base = cache.load_jsonl_report(cache_path)?;
    let adopt = adopt_dead_segments(cache_path, &cache)?;
    let written = cache.save_jsonl(cache_path)?;
    remove_adopted(cache_path, &adopt);
    Ok(CompactReport {
        written,
        segments_merged: adopt.adopted.len(),
        quarantined: base.quarantined + adopt.quarantined,
        skipped_live: adopt.skipped_live,
    })
}

/// Retires segments whose entries have been made durable elsewhere:
/// folds their quarantine sidecars into the base `<cache>.quarantine`,
/// removes the segment and stale lease files, and removes the segment
/// directory if nothing (live segments, staged files) remains. All
/// removals are best-effort — the entries are already durable, so a
/// leftover file costs a redundant merge later, not correctness.
pub fn remove_adopted(cache_path: &Path, adopt: &AdoptReport) {
    let base_sidecar = quarantine_path(cache_path);
    for seg in &adopt.adopted {
        let _ = fold_sidecar(&quarantine_path(seg), &base_sidecar);
        let _ = std::fs::remove_file(seg);
    }
    for lease in &adopt.stale_leases {
        let _ = std::fs::remove_file(lease);
    }
    // A worker that quarantined its torn tail but then appended nothing
    // removes its empty segment on close, orphaning the sidecar. Fold
    // any sidecar whose segment is gone so the evidence still lands in
    // the base quarantine and the directory can retire.
    if let Ok(entries) = std::fs::read_dir(segment_dir(cache_path)) {
        for path in entries.filter_map(|e| e.ok().map(|e| e.path())) {
            let orphaned = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("seg-") && n.ends_with(".jsonl.quarantine"))
                && !path.with_extension("").exists();
            if orphaned {
                let _ = fold_sidecar(&path, &base_sidecar);
            }
        }
    }
    let _ = std::fs::remove_dir(segment_dir(cache_path));
}

/// Appends `src` sidecar's lines to `dst` and removes `src`. Missing
/// `src` is a no-op.
fn fold_sidecar(src: &Path, dst: &Path) -> std::io::Result<()> {
    let text = match std::fs::read_to_string(src) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    if !text.is_empty() {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(dst)?;
        f.write_all(text.as_bytes())?;
    }
    std::fs::remove_file(src)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "subvt-seg-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn lease_info_round_trips_and_staleness_rules() {
        let info = LeaseInfo {
            pid: std::process::id(),
            acquired_unix: 1_000_000,
            ttl_secs: 600,
        };
        let text = info.render();
        assert_eq!(LeaseInfo::parse(&text), Some(info));
        // Live pid, inside TTL: not stale.
        assert!(!info.is_stale(1_000_000 + 599));
        // Live pid, TTL lapsed: stale.
        assert!(info.is_stale(1_000_000 + 601));
        // Dead pid: stale regardless of TTL.
        let dead = LeaseInfo {
            pid: 999_999_999,
            ..info
        };
        assert!(dead.is_stale(1_000_000));
        assert!(LeaseInfo::parse("{\"pid\":oops}").is_none());
    }

    #[test]
    fn lease_claim_is_exclusive_released_on_drop_and_reclaims_dead() {
        let dir = scratch("lease");
        let path = dir.join("seg-a.lease");
        let lease = Lease::claim(&path, 600, "t.reclaim").unwrap().unwrap();
        assert!(path.exists());
        assert!(
            Lease::claim(&path, 600, "t.reclaim").unwrap().is_none(),
            "live holder must be honoured"
        );
        drop(lease);
        assert!(!path.exists(), "drop removes the lease");
        // A dead holder's lease is reclaimed.
        let dead = LeaseInfo {
            pid: 999_999_999,
            acquired_unix: clock::unix_now(),
            ttl_secs: 600,
        };
        std::fs::write(&path, dead.render()).unwrap();
        let lease = Lease::claim(&path, 600, "t.reclaim").unwrap();
        assert!(lease.is_some(), "dead holder's lease must be reclaimable");
        let n = trace::global()
            .snapshot()
            .counters
            .get("t.reclaim")
            .copied()
            .unwrap_or(0);
        assert!(n >= 1, "reclaim must be counted");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lease_ttl_lapse_is_reclaimable() {
        let dir = scratch("ttl");
        let path = dir.join("seg-t.lease");
        // Our own (live) pid, but a TTL that lapsed long ago.
        let lapsed = LeaseInfo {
            pid: std::process::id(),
            acquired_unix: clock::unix_now().saturating_sub(10_000),
            ttl_secs: 1,
        };
        std::fs::write(&path, lapsed.render()).unwrap();
        assert!(Lease::claim(&path, 600, "t.ttl").unwrap().is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scrub_keeps_intact_lines_and_quarantines_torn_tail() {
        let dir = scratch("scrub");
        let seg = dir.join("seg-0.jsonl");
        let good1 = format_line_f64("ns", 1, &[1.5, 2.5]);
        let good2 = format_line_f64("ns", 2, &[3.5]);
        // Torn tail: a partial line with no newline, as a SIGKILL
        // mid-append leaves it.
        let torn = &good2[..good2.len() / 2];
        std::fs::write(&seg, format!("{good1}\n{good2}\n{torn}")).unwrap();
        let report = scrub_segment(&seg).unwrap();
        assert_eq!(
            report,
            ScrubReport {
                kept: 2,
                quarantined: 1
            }
        );
        let rewritten = std::fs::read_to_string(&seg).unwrap();
        assert_eq!(rewritten, format!("{good1}\n{good2}\n"));
        let sidecar = std::fs::read_to_string(quarantine_path(&seg)).unwrap();
        assert_eq!(sidecar.trim(), torn);
        // Idempotent: a second scrub changes nothing.
        assert_eq!(
            scrub_segment(&seg).unwrap(),
            ScrubReport {
                kept: 2,
                quarantined: 0
            }
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segment_session_appends_loads_and_compacts() {
        let dir = scratch("session");
        let cache_path = dir.join("store.jsonl");
        let session = Arc::new(
            SegmentSession::claim(&cache_path, "0", 600)
                .unwrap()
                .expect("claim fresh segment"),
        );
        // Second claimant of the same name loses; another name wins.
        assert!(SegmentSession::claim(&cache_path, "0", 600)
            .unwrap()
            .is_none());
        let other = SegmentSession::claim(&cache_path, "1", 600)
            .unwrap()
            .expect("distinct name claims");

        // Wire the hook to a cache: computes append, hits do not.
        let cache = Cache::new();
        cache.set_persist(Some(session.persist_hook()));
        cache.get_or_compute("seg", 1, || vec![1.0, 2.0]);
        cache.get_or_compute("seg", 2, || 7.5);
        let _: f64 = cache.get_or_compute("seg", 2, || unreachable!("hit"));
        assert_eq!(session.appended(), 2);
        cache.set_persist(None);

        // A sibling process (modelled by a fresh Cache) sees the
        // appends via a lenient load.
        let peer = Cache::new();
        assert_eq!(peer.load_jsonl_lenient(session.path()).unwrap().loaded, 2);
        assert_eq!(peer.get_or_compute("seg", 2, || -1.0), 7.5);

        // Clean close keeps the non-empty segment, removes the empty
        // one, releases both leases.
        let seg0 = session.path().to_owned();
        session.close();
        other.close();
        assert!(seg0.exists(), "non-empty segment survives close");
        assert!(!other.path().exists(), "empty segment is removed");

        // Compaction folds the segment into the canonical file and
        // removes the directory.
        let report = compact(&cache_path).unwrap();
        assert_eq!(report.written, 2);
        assert_eq!(report.segments_merged, 1);
        assert!(!segment_dir(&cache_path).exists(), "empty dir removed");
        let merged = Cache::new();
        assert_eq!(merged.load_jsonl(&cache_path).unwrap(), 2);
        assert_eq!(merged.get_or_compute("seg", 1, Vec::new), vec![1.0, 2.0]);

        // Byte-identity: the compacted file equals a single-process
        // save of the same entries.
        let solo = Cache::new();
        solo.get_or_compute("seg", 1, || vec![1.0, 2.0]);
        solo.get_or_compute("seg", 2, || 7.5);
        let solo_path = dir.join("solo.jsonl");
        solo.save_jsonl(&solo_path).unwrap();
        assert_eq!(
            std::fs::read(&cache_path).unwrap(),
            std::fs::read(&solo_path).unwrap(),
            "compacted store must be byte-identical to a solo save"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn adopt_skips_live_leases_and_quarantines_dead_tails() {
        let dir = scratch("adopt");
        let cache_path = dir.join("store.jsonl");
        // A live session with one entry...
        let live = SegmentSession::claim(&cache_path, "live", 600)
            .unwrap()
            .unwrap();
        live.append("a", 1, &[1.0]);
        // ...and a dead worker's segment: entries + torn tail, lease
        // held by a dead pid.
        let sd = segment_dir(&cache_path);
        let dead_seg = sd.join("seg-dead.jsonl");
        let good = format_line_f64("a", 2, &[2.0]);
        std::fs::write(&dead_seg, format!("{good}\n{}", &good[..10])).unwrap();
        let dead_lease = LeaseInfo {
            pid: 999_999_999,
            acquired_unix: clock::unix_now(),
            ttl_secs: 600,
        };
        std::fs::write(sd.join("seg-dead.lease"), dead_lease.render()).unwrap();

        let cache = Cache::new();
        let report = adopt_dead_segments(&cache_path, &cache).unwrap();
        assert_eq!(report.skipped_live, 1, "live lease must not be adopted");
        assert_eq!(report.adopted, vec![dead_seg.clone()]);
        assert_eq!((report.loaded, report.quarantined), (1, 1));
        assert_eq!(cache.get_or_compute("a", 2, || -1.0), 2.0);
        assert!(
            cache.peek("a", 1).is_none(),
            "live segment's entries stay private to its holder"
        );
        live.close();
        std::fs::remove_dir_all(&dir).ok();
    }
}
