//! Job supervision: panic isolation, bounded retries, deadlines, and a
//! quarantine list.
//!
//! [`Supervisor::run`] wraps an executor job with the fault-tolerance
//! policy the ISSUE's sweep driver needs: the job body runs under the
//! executor's existing `catch_unwind` isolation, a panic or deadline
//! overrun is retried up to [`RetryPolicy::max_attempts`] times (each
//! retry recorded as a [`crate::recovery::RecoveryStep::Retry`] rung),
//! and a job key that exhausts its attempts is quarantined so the same
//! poisoned sweep point is refused instantly instead of re-running
//! forever. Jobs that return normally on the first attempt pay one
//! `HashSet` lookup and nothing else, keeping the happy path
//! byte-identical.

use std::collections::HashSet;
use std::sync::Mutex;
use std::time::Duration;

use crate::executor::Executor;
use crate::faultinject::{self, FaultSite};
use crate::recovery::{self, RecoveryStep};
use crate::trace;

/// Bounded retry policy for supervised jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per job (first run included); at least 1.
    pub max_attempts: u32,
    /// Per-attempt deadline; `None` disables deadline enforcement.
    pub deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            deadline: None,
        }
    }
}

/// Why a supervised job did not produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// Every attempt panicked; carries the final panic message.
    Panicked {
        /// Stringified payload of the last panic.
        message: String,
        /// Attempts consumed (== `max_attempts`).
        attempts: u32,
    },
    /// Every attempt overran its deadline.
    DeadlineExceeded {
        /// Attempts consumed (== `max_attempts`).
        attempts: u32,
        /// The per-attempt deadline that was exceeded.
        deadline: Duration,
    },
    /// The job key is quarantined from a previous exhaustion; the job
    /// body was not run at all.
    Quarantined,
}

impl core::fmt::Display for JobError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            JobError::Panicked { message, attempts } => {
                write!(f, "job panicked on all {attempts} attempts: {message}")
            }
            JobError::DeadlineExceeded { attempts, deadline } => {
                write!(
                    f,
                    "job exceeded its {:?} deadline on all {attempts} attempts",
                    deadline
                )
            }
            JobError::Quarantined => write!(f, "job key is quarantined"),
        }
    }
}

impl std::error::Error for JobError {}

/// Supervises executor jobs under a [`RetryPolicy`] with a shared
/// quarantine list.
pub struct Supervisor {
    policy: RetryPolicy,
    quarantine: Mutex<HashSet<u64>>,
}

impl Supervisor {
    /// Creates a supervisor; `max_attempts` is clamped up to 1.
    pub fn new(mut policy: RetryPolicy) -> Self {
        policy.max_attempts = policy.max_attempts.max(1);
        Self {
            policy,
            quarantine: Mutex::new(HashSet::new()),
        }
    }

    /// The policy this supervisor enforces.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Whether `key` is currently quarantined.
    pub fn is_quarantined(&self, key: u64) -> bool {
        self.quarantine
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .contains(&key)
    }

    /// Keys quarantined so far, sorted for stable reporting.
    pub fn quarantined_keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self
            .quarantine
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .copied()
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Runs `f` as a supervised job on `executor`.
    ///
    /// `key` identifies the logical work item (use
    /// [`crate::KeyBuilder`] over the job's inputs) for quarantine
    /// purposes; `label` is free-form context for recovery records.
    ///
    /// # Errors
    ///
    /// [`JobError::Quarantined`] if `key` already exhausted its
    /// attempts earlier; [`JobError::Panicked`] /
    /// [`JobError::DeadlineExceeded`] once `max_attempts` attempts have
    /// failed (the key is quarantined as a side effect).
    pub fn run<T, F>(&self, executor: &Executor, key: u64, label: &str, f: F) -> Result<T, JobError>
    where
        T: Send + 'static,
        F: Fn() -> T + Send + Sync + Clone + 'static,
    {
        if self.is_quarantined(key) {
            trace::add("supervisor.quarantine_hits", 1);
            return Err(JobError::Quarantined);
        }
        let mut last_error = JobError::Quarantined; // overwritten before use
        for attempt in 1..=self.policy.max_attempts {
            if attempt > 1 {
                trace::add("supervisor.retries", 1);
            }
            let body = f.clone();
            let deadline = self.policy.deadline;
            let job_label = label.to_owned();
            let handle = executor.spawn(move || {
                // The job span parents onto the spawn site's span (the
                // executor propagates it), so a request trace shows the
                // executor jobs it fanned into.
                let _span = trace::span("exec.job")
                    .attr("label", job_label.as_str())
                    .attr("attempt", u64::from(attempt));
                // Injection points fire before the body runs, so a
                // retried attempt reproduces the fault-free result
                // exactly.
                faultinject::panic_point();
                if let Some(d) = deadline {
                    if faultinject::should_inject(FaultSite::DeadlineOverrun) {
                        std::thread::sleep(d + Duration::from_millis(25));
                    }
                }
                body()
            });
            let joined = match deadline {
                Some(d) => handle.join_deadline(d).map_err(|_| ()),
                None => Ok(handle.join()),
            };
            match joined {
                Ok(Ok(value)) => {
                    if attempt > 1 {
                        recovery::record(
                            "supervisor",
                            RecoveryStep::Retry,
                            format!("{label}: recovered on attempt {attempt}"),
                            true,
                        );
                    }
                    return Ok(value);
                }
                Ok(Err(panic)) => {
                    trace::add("supervisor.panics", 1);
                    recovery::record(
                        "supervisor",
                        RecoveryStep::Retry,
                        format!("{label}: attempt {attempt} panicked: {}", panic.message),
                        false,
                    );
                    last_error = JobError::Panicked {
                        message: panic.message,
                        attempts: attempt,
                    };
                }
                Err(()) => {
                    trace::add("supervisor.deadline_exceeded", 1);
                    recovery::record(
                        "supervisor",
                        RecoveryStep::Retry,
                        format!("{label}: attempt {attempt} exceeded deadline"),
                        false,
                    );
                    last_error = JobError::DeadlineExceeded {
                        attempts: attempt,
                        deadline: deadline.unwrap_or_default(),
                    };
                }
            }
        }
        self.quarantine
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(key);
        trace::add("supervisor.quarantined", 1);
        Err(last_error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faultinject::FaultPlan;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    fn executor() -> Executor {
        Executor::new(2)
    }

    #[test]
    fn happy_path_runs_once_without_records() {
        let sup = Supervisor::new(RetryPolicy::default());
        let ex = executor();
        let calls = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&calls);
        let out = sup.run(&ex, 1, "happy", move || {
            c.fetch_add(1, Ordering::SeqCst);
            99
        });
        assert_eq!(out.unwrap(), 99);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert!(sup.quarantined_keys().is_empty());
    }

    #[test]
    fn supervised_jobs_record_an_exec_job_span_under_the_caller() {
        let sup = Supervisor::new(RetryPolicy::default());
        let ex = executor();
        let root_id;
        {
            let root = trace::span("sup.span.root");
            root_id = root.id();
            assert_eq!(sup.run(&ex, 4242, "sup-span-test", || 7).unwrap(), 7);
        }
        let snap = trace::global().snapshot();
        let job = snap
            .spans
            .iter()
            .find(|s| s.name == "exec.job" && s.parent == Some(root_id))
            .expect("supervised job must record an exec.job span under the caller");
        assert!(job
            .attrs
            .iter()
            .any(|(k, v)| k == "label" && format!("{v:?}").contains("sup-span-test")));
    }

    #[test]
    fn persistent_panic_exhausts_attempts_and_quarantines() {
        crate::recovery::drain();
        let sup = Supervisor::new(RetryPolicy {
            max_attempts: 3,
            deadline: None,
        });
        let ex = executor();
        let calls = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&calls);
        let out: Result<u32, _> = sup.run(&ex, 7, "poison", move || {
            c.fetch_add(1, Ordering::SeqCst);
            panic!("always fails")
        });
        match out {
            Err(JobError::Panicked { message, attempts }) => {
                assert_eq!(message, "always fails");
                assert_eq!(attempts, 3);
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        assert!(sup.is_quarantined(7));
        // A second submission is refused without running the body.
        let c2 = Arc::clone(&calls);
        let again: Result<u32, _> = sup.run(&ex, 7, "poison", move || {
            c2.fetch_add(1, Ordering::SeqCst);
            0
        });
        assert_eq!(again.unwrap_err(), JobError::Quarantined);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        let records = crate::recovery::drain();
        assert!(
            records
                .iter()
                .filter(|r| r.site == "supervisor" && !r.recovered)
                .count()
                >= 3
        );
    }

    #[test]
    fn transient_panic_recovers_on_retry() {
        let sup = Supervisor::new(RetryPolicy {
            max_attempts: 3,
            deadline: None,
        });
        let ex = executor();
        let calls = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&calls);
        let out = sup.run(&ex, 11, "flaky", move || {
            if c.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("first attempt only");
            }
            42
        });
        assert_eq!(out.unwrap(), 42);
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        assert!(!sup.is_quarantined(11));
    }

    #[test]
    fn deadline_overrun_is_reported_and_retried() {
        let sup = Supervisor::new(RetryPolicy {
            max_attempts: 2,
            deadline: Some(Duration::from_millis(5)),
        });
        let ex = executor();
        let out: Result<u32, _> = sup.run(&ex, 13, "slow", || {
            std::thread::sleep(Duration::from_millis(40));
            1
        });
        match out {
            Err(JobError::DeadlineExceeded { attempts, .. }) => assert_eq!(attempts, 2),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert!(sup.is_quarantined(13));
    }

    #[test]
    fn injected_panics_are_recovered_by_retry() {
        // p=1 for the first call only is not expressible, so use a
        // certain-fire plan and rely on retries: with p=0.45 and three
        // attempts the chance all three fire is ~9%; fix the seed so the
        // schedule is one that recovers.
        faultinject::configure(Some(FaultPlan {
            p_panic: 0.45,
            ..FaultPlan::quiet(2024)
        }));
        let sup = Supervisor::new(RetryPolicy {
            max_attempts: 6,
            deadline: None,
        });
        let ex = executor();
        let mut successes = 0;
        for key in 0..16 {
            if sup.run(&ex, key, "chaos", move || key * 2).is_ok() {
                successes += 1;
            }
        }
        faultinject::configure(None);
        assert!(
            successes >= 14,
            "6 attempts at p=0.45 should almost always recover: {successes}/16"
        );
        assert!(faultinject::injected_total() > 0, "plan never fired");
    }
}
