//! Typed recovery ladder records.
//!
//! Solvers and the job supervisor escalate through deterministic
//! recovery ladders when a step fails (see DESIGN.md §7). Every rung
//! they climb is recorded here as a [`RecoveryRecord`] in a
//! process-global registry, and mirrored as a
//! `recovery.<site>.<step>` trace counter, so a run's manifest can
//! report exactly which mitigations fired and whether they worked.
//! On the happy path nothing is recorded and nothing is locked beyond
//! one atomic load per drain, keeping fault-free runs byte-identical.

use std::sync::{Mutex, OnceLock};

use crate::trace;

/// One rung of a recovery ladder. The discriminants span both solver
/// stacks and the executor supervisor; each site only uses the subset
/// that makes sense for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryStep {
    /// Re-run the identical numerical path (clears transient faults
    /// without perturbing the result).
    Retry,
    /// Re-run with stronger under-relaxation / damping.
    DampingIncrease,
    /// Halve the bias ramp step and continue from the last good bias.
    BiasSubstep,
    /// Ramp a shunt conductance from large to nominal (Newton DC).
    GminStepping,
    /// Ramp independent sources from zero to nominal (Newton DC).
    SourceStepping,
    /// Re-solve on the coarse mesh and re-anchor the extraction.
    CoarseMeshFallback,
}

impl RecoveryStep {
    /// Stable spelling used in trace counters and the manifest.
    pub fn as_str(self) -> &'static str {
        match self {
            RecoveryStep::Retry => "retry",
            RecoveryStep::DampingIncrease => "damping_increase",
            RecoveryStep::BiasSubstep => "bias_substep",
            RecoveryStep::GminStepping => "gmin_stepping",
            RecoveryStep::SourceStepping => "source_stepping",
            RecoveryStep::CoarseMeshFallback => "coarse_mesh_fallback",
        }
    }
}

/// One recovery attempt: where it happened, which rung, whether the
/// rung produced a usable result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryRecord {
    /// Site label, e.g. `tcad.gummel`, `spice.dc`, `supervisor`.
    pub site: String,
    /// The ladder rung that was attempted.
    pub step: RecoveryStep,
    /// Free-form context (bias point, job key, attempt number).
    pub detail: String,
    /// Whether this rung succeeded (`false` means the ladder escalated
    /// past it or ultimately failed).
    pub recovered: bool,
}

fn registry() -> &'static Mutex<Vec<RecoveryRecord>> {
    static REGISTRY: OnceLock<Mutex<Vec<RecoveryRecord>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Records one recovery attempt and bumps its trace counter.
pub fn record(site: &str, step: RecoveryStep, detail: impl Into<String>, recovered: bool) {
    trace::add(&format!("recovery.{site}.{}", step.as_str()), 1);
    registry()
        .lock()
        .expect("recovery registry lock")
        .push(RecoveryRecord {
            site: site.to_string(),
            step,
            detail: detail.into(),
            recovered,
        });
}

/// Returns a copy of all records accumulated so far.
pub fn snapshot() -> Vec<RecoveryRecord> {
    registry().lock().expect("recovery registry lock").clone()
}

/// Removes and returns all accumulated records (manifest writers call
/// this once per run).
pub fn drain() -> Vec<RecoveryRecord> {
    std::mem::take(&mut *registry().lock().expect("recovery registry lock"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_snapshot_drain_round_trip() {
        drain(); // isolate from other tests sharing the process
        record("test.site", RecoveryStep::Retry, "attempt 1", true);
        record(
            "test.site",
            RecoveryStep::CoarseMeshFallback,
            "vg=0.3",
            false,
        );
        let snap = snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].step, RecoveryStep::Retry);
        assert!(snap[0].recovered);
        assert_eq!(snap[1].step.as_str(), "coarse_mesh_fallback");
        let drained = drain();
        assert_eq!(drained, snap);
        assert!(snapshot().is_empty());
    }
}
