//! Extension studies beyond the paper's figures — the "future work"
//! directions its text motivates: temperature sensitivity, the
//! oxide-scaling ablation behind its central claim, SRAM bit-line limits
//! (its §2.3.2 / ref \[16\]), V_th-mismatch variability (its §1), and
//! stacked-gate noise margins.

use subvt_circuits::chain::InverterChain;
use subvt_circuits::delay::analytic_fo1_delay;
use subvt_circuits::gates::GateKind;
use subvt_circuits::inverter::analytic_vtc;
use subvt_circuits::montecarlo::{delay_variability, snm_variability};
use subvt_circuits::snm::noise_margins;
use subvt_circuits::sram::SramCell;
use subvt_circuits::topology::{
    cached_gate_leakage, cached_gate_snm, cached_inverter_vtc, cached_ring_oscillation,
};
use subvt_core::{SuperVthStrategy, TechNode};
use subvt_model::DeviceModel;
use subvt_physics::device::{DeviceKind, DeviceParams};
use subvt_units::{Temperature, Volts};

use crate::backend;
use crate::context::{StudyContext, V_SUBVT};
use crate::table::{fmt, Table};

/// Extension A — temperature: subthreshold swing, leakage and the
/// minimum-energy point of the reference device from −25 °C to 100 °C.
///
/// Expected physics: `S_S ∝ T`, `I_off` exponential in `T`, and `V_min`
/// rising with temperature (leakage energy grows).
pub fn ext_temperature() -> Table {
    let mut t = Table::new(
        "Ext A: temperature dependence, 90 nm reference device",
        &[
            "T (degC)",
            "S_S (mV/dec)",
            "I_off (pA/um)",
            "V_min (mV)",
            "E@Vmin (fJ)",
        ],
    );
    let model = backend::model();
    for celsius in [-25.0, 0.0, 25.0, 50.0, 75.0, 100.0] {
        let mut dev = DeviceParams::reference_90nm_nfet();
        dev.temperature = Temperature::from_celsius(celsius);
        let ch = model.characterize(&dev).expect("backend characterize");
        let pair = subvt_circuits::CmosPair::balanced_with(model, dev).expect("backend balance");
        let mep = InverterChain::paper_chain(pair).minimum_energy_point();
        t.push_row(vec![
            fmt(celsius, 0),
            fmt(ch.s_s.get(), 1),
            fmt(ch.i_off.as_picoamps(), 1),
            fmt(mep.v_min.as_millivolts(), 0),
            fmt(mep.energy.as_femtojoules(), 3),
        ]);
    }
    t
}

/// Extension B — the oxide-scaling ablation: re-run the super-V_th flow
/// with `T_ox` hypothetically scaling at the full 30 %/generation and
/// compare `S_S` against the paper's observed 10 %/generation.
///
/// This isolates the paper's root cause: if the oxide had kept pace,
/// performance-driven scaling would NOT wreck the subthreshold swing.
pub fn ext_oxide_scaling() -> Table {
    let paper = SuperVthStrategy::default();
    let ideal = SuperVthStrategy::with_ideal_oxide_scaling();
    let mut t = Table::new(
        "Ext B: oxide-scaling ablation under super-Vth scaling (S_S, mV/dec)",
        &[
            "Node",
            "T_ox -10%/gen (paper)",
            "T_ox -30%/gen (ideal)",
            "S_S paper-rate",
            "S_S ideal-rate",
        ],
    );
    let model = backend::model();
    for node in TechNode::ALL {
        let d_paper = paper
            .design_device_with(node, DeviceKind::Nfet, model)
            .expect("paper-rate design");
        let d_ideal = ideal
            .design_device_with(node, DeviceKind::Nfet, model)
            .expect("ideal-rate design");
        let ch = |d| model.characterize(d).expect("backend characterize");
        t.push_row(vec![
            node.name().to_owned(),
            fmt(d_paper.geometry.t_ox.get(), 2),
            fmt(d_ideal.geometry.t_ox.get(), 2),
            fmt(ch(&d_paper).s_s.get(), 1),
            fmt(ch(&d_ideal).s_s.get(), 1),
        ]);
    }
    t
}

/// Extension C — SRAM under scaling: 6T hold/read butterfly SNM and
/// maximum bits per bit-line at 250 mV, both strategies at each node
/// (the paper's §2.3.2 bit-line argument, quantified).
pub fn ext_sram(ctx: &StudyContext) -> Table {
    let v = Volts::new(V_SUBVT);
    let mut t = Table::new(
        "Ext C: 6T SRAM at 250 mV under both scaling strategies",
        &[
            "Node",
            "hold SNM super (mV)",
            "read SNM super (mV)",
            "bits/line super",
            "bits/line sub",
        ],
    );
    for (sup, sub) in ctx.supervth.iter().zip(&ctx.subvth) {
        let cell_sup = SramCell::subthreshold_cell(backend::pair(sup));
        let cell_sub = SramCell::subthreshold_cell(backend::pair(sub));
        let hold = cell_sup
            .hold_snm(v, 121)
            .map(|s| s * 1e3)
            .unwrap_or(f64::NAN);
        let read = cell_sup
            .read_snm(v, 121)
            .map(|s| s * 1e3)
            .unwrap_or(f64::NAN);
        t.push_row(vec![
            sup.node.name().to_owned(),
            fmt(hold, 1),
            fmt(read, 1),
            cell_sup.max_bits_per_bitline(v, 10.0).to_string(),
            cell_sub.max_bits_per_bitline(v, 10.0).to_string(),
        ]);
    }
    t
}

/// Extension D — variability: Pelgrom V_th-mismatch Monte Carlo on FO1
/// delay (σ/µ) and inverter SNM for the 90 nm and 32 nm super-V_th
/// devices across supplies — quantifying the §1 claim that "timing
/// variability grows dramatically as V_dd reduces".
pub fn ext_variability(ctx: &StudyContext) -> Table {
    let mut t = Table::new(
        "Ext D: V_th-mismatch Monte Carlo (400 samples, seed 2007)",
        &[
            "V_dd (mV)",
            "delay sigma/mu 90nm (%)",
            "delay sigma/mu 32nm (%)",
            "SNM sigma 32nm (mV)",
            "SNM fail 32nm (%)",
        ],
    );
    let p90 = backend::pair(&ctx.supervth[0]);
    let p32 = backend::pair(&ctx.supervth[3]);
    for mv in [200.0, 250.0, 300.0, 400.0, 1200.0] {
        let v = Volts::from_millivolts(mv);
        let d90 = delay_variability(&p90, v, 400, 2007);
        let d32 = delay_variability(&p32, v, 400, 2007);
        let s32 = snm_variability(&p32, v, 200, 2007);
        t.push_row(vec![
            fmt(mv, 0),
            fmt(d90.sigma_over_mu * 100.0, 1),
            fmt(d32.sigma_over_mu * 100.0, 1),
            fmt(s32.std_dev.as_millivolts(), 1),
            fmt(s32.failure_fraction * 100.0, 1),
        ]);
    }
    t
}

/// Monte-Carlo variability routed through the circuit-backend seam:
/// `--circuit-backend spice` re-solves every Pelgrom-perturbed sample
/// with the MNA engine (warm-started from the nominal operating point),
/// while the default analytic path evaluates the same populations in
/// closed form. Reduced sample counts versus Ext D keep the spice path
/// interactive.
///
/// Wall-clock is a side channel only: total per-backend runtimes land in
/// the `montecarlo.spice_ms` / `montecarlo.analytic_ms` gauges and the
/// spice path's per-sample solve latencies in the
/// `montecarlo.sample_ms` histogram (the source of `BENCH_spice.json`)
/// — the table itself is a deterministic function of `(backend, seed)`,
/// so warm- and cold-started runs stay byte-identical.
pub fn montecarlo(ctx: &StudyContext) -> Table {
    const DELAY_SAMPLES: usize = 200;
    const SNM_SAMPLES: usize = 100;
    const SEED: u64 = 2007;
    let circuit = backend::circuit();
    let title = format!(
        "Monte Carlo via `{}` circuit backend ({DELAY_SAMPLES} delay / {SNM_SAMPLES} SNM samples, seed {SEED})",
        circuit.cache_id()
    );
    let mut t = Table::new(
        &title,
        &[
            "V_dd (mV)",
            "delay mean (ns)",
            "delay sigma/mu (%)",
            "SNM mean (mV)",
            "SNM sigma (mV)",
            "SNM fail (%)",
        ],
    );
    let pair = backend::pair(&ctx.supervth[0]);
    let supplies = [250.0, 300.0, 400.0];
    let mut primary_ms = 0.0;
    let mut failures = 0u64;
    for mv in supplies {
        let v = Volts::from_millivolts(mv);
        let t0 = std::time::Instant::now();
        let (d, d_wall) = circuit
            .delay_variability(&pair, v, DELAY_SAMPLES, SEED)
            .expect("Monte-Carlo delay sweep");
        let (s, s_wall) = circuit
            .snm_variability(&pair, v, SNM_SAMPLES, SEED)
            .expect("Monte-Carlo SNM sweep");
        primary_ms += t0.elapsed().as_secs_f64() * 1e3;
        // Millisecond-scale bucket ladder: the default trace buckets
        // start at 1.0 and would flatten the sub-millisecond solve
        // latencies into one bucket.
        const SAMPLE_MS_BUCKETS: [f64; 16] = [
            0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0,
            100.0,
        ];
        for ms in d_wall.iter().chain(&s_wall) {
            subvt_engine::trace::observe_with("montecarlo.sample_ms", *ms, &SAMPLE_MS_BUCKETS);
        }
        failures += (DELAY_SAMPLES - d.samples.len()) as u64;
        failures += (SNM_SAMPLES - s.samples.len()) as u64;
        t.push_row(vec![
            fmt(mv, 0),
            fmt(d.mean.get() * 1e9, 2),
            fmt(d.sigma_over_mu * 100.0, 1),
            fmt(s.mean.as_millivolts(), 1),
            fmt(s.std_dev.as_millivolts(), 1),
            fmt(s.failure_fraction * 100.0, 1),
        ]);
    }
    subvt_engine::trace::add("montecarlo.failures", failures);
    if backend::circuit_selected() == subvt_circuits::CircuitBackendKind::Spice {
        subvt_engine::trace::gauge("montecarlo.spice_ms", primary_ms);
        // Time the identical workload on the analytic backend so the
        // bench artifact can record the spice-over-analytic cost ratio.
        let reference = backend::circuit_for(subvt_circuits::CircuitBackendKind::Analytic);
        let t0 = std::time::Instant::now();
        for mv in supplies {
            let v = Volts::from_millivolts(mv);
            reference
                .delay_variability(&pair, v, DELAY_SAMPLES, SEED)
                .expect("analytic reference delay sweep");
            reference
                .snm_variability(&pair, v, SNM_SAMPLES, SEED)
                .expect("analytic reference SNM sweep");
        }
        let analytic_ms = t0.elapsed().as_secs_f64() * 1e3;
        subvt_engine::trace::gauge("montecarlo.analytic_ms", analytic_ms);
        subvt_engine::trace::gauge(
            "montecarlo.spice_over_analytic",
            primary_ms / analytic_ms.max(f64::MIN_POSITIVE),
        );
    } else {
        subvt_engine::trace::gauge("montecarlo.analytic_ms", primary_ms);
    }
    t
}

/// Extension E — stacked gates: worst-case NAND2/NOR2 noise margins and
/// per-input-vector NAND2 leakage at 250 mV across the super-V_th nodes,
/// alongside the inverter (Fig. 4's story extended to real logic).
///
/// The leakage columns quantify the subthreshold *stack effect*
/// (Mukhopadhyay et al.): with both NAND inputs low the two series-off
/// NFETs self-reverse-bias, so `I(00)` sits well below the single-off
/// `I(01)` vector — the ratio is the stack factor.
pub fn ext_gates(ctx: &StudyContext) -> Table {
    let v = Volts::new(V_SUBVT);
    let mut t = Table::new(
        "Ext E: gate library at 250 mV (super-Vth scaling)",
        &[
            "Node",
            "inverter SNM (mV)",
            "NAND2 SNM (mV)",
            "NOR2 SNM (mV)",
            "NAND I(00) (pA)",
            "NAND I(01) (pA)",
            "stack factor",
        ],
    );
    for d in &ctx.supervth {
        let pair = backend::pair(d);
        let inv = crate::figs_circuit::snm_at(d, v) * 1e3;
        let nand = cached_gate_snm(&pair, GateKind::Nand2, v, 121)
            .map(|s| s * 1e3)
            .unwrap_or(f64::NAN);
        let nor = cached_gate_snm(&pair, GateKind::Nor2, v, 121)
            .map(|s| s * 1e3)
            .unwrap_or(f64::NAN);
        let i00 =
            cached_gate_leakage(&pair, GateKind::Nand2, v, (false, false)).unwrap_or(f64::NAN);
        let i01 = cached_gate_leakage(&pair, GateKind::Nand2, v, (false, true)).unwrap_or(f64::NAN);
        t.push_row(vec![
            d.node.name().to_owned(),
            fmt(inv, 1),
            fmt(nand, 1),
            fmt(nor, 1),
            fmt(i00 * 1e12, 2),
            fmt(i01 * 1e12, 2),
            fmt(i01 / i00, 2),
        ]);
    }
    t
}

/// Extension G — ring oscillator: 5-stage ring frequency at 250 mV per
/// super-V_th node as an independent cross-check of the FO1 delay chain
/// (`f_osc = 1/(2·N·t_p)` ⇒ the implied stage delay should track the
/// analytic Eq. 4 estimate within its loading factor).
pub fn ext_ringosc(ctx: &StudyContext) -> Table {
    const STAGES: usize = 5;
    const STEPS: usize = 1500;
    let v = Volts::new(V_SUBVT);
    let mut t = Table::new(
        "Ext G: 5-stage ring oscillator at 250 mV (super-Vth scaling)",
        &[
            "Node",
            "f_osc (kHz)",
            "stage delay (ns)",
            "analytic FO1 (ns)",
            "ratio",
        ],
    );
    for d in &ctx.supervth {
        let pair = backend::pair(d);
        let tp_analytic = analytic_fo1_delay(&pair, v).get();
        let (f_khz, stage_ns, ratio) = match cached_ring_oscillation(&pair, v, STAGES, STEPS) {
            Ok(osc) => (
                1e-3 / osc.period.get(),
                osc.stage_delay.get() * 1e9,
                osc.stage_delay.get() / tp_analytic,
            ),
            Err(_) => (f64::NAN, f64::NAN, f64::NAN),
        };
        t.push_row(vec![
            d.node.name().to_owned(),
            fmt(f_khz, 1),
            fmt(stage_ns, 1),
            fmt(tp_analytic * 1e9, 1),
            fmt(ratio, 2),
        ]);
    }
    t
}

/// Extension H — temperature sweep of the paper's core circuit metrics:
/// the 90 nm super-V_th inverter's swing, SNM (SPICE and analytic
/// Eq. 3(b), parity-checked side by side) and minimum-energy point from
/// 250 K to 400 K. The paper holds temperature fixed; this opens the
/// knob the physics layer always carried.
pub fn ext_temp(ctx: &StudyContext) -> Table {
    let v = Volts::new(V_SUBVT);
    let d90 = &ctx.supervth[0];
    let mut t = Table::new(
        "Ext H: 90 nm super-Vth inverter vs temperature (250 mV)",
        &[
            "T (K)",
            "S_S (mV/dec)",
            "SNM spice (mV)",
            "SNM analytic (mV)",
            "V_min (mV)",
            "E@Vmin (fJ)",
        ],
    );
    for kelvin in [250.0, 275.0, 300.0, 325.0, 350.0, 375.0, 400.0] {
        let pair = backend::pair_at(d90, Temperature::from_kelvin(kelvin));
        let ss = pair.nfet_chars().s_s.get();
        let snm_spice = cached_inverter_vtc(&pair, v, 121)
            .ok()
            .and_then(|vtc| noise_margins(&vtc))
            .map(|nm| nm.snm() * 1e3)
            .unwrap_or(f64::NAN);
        let snm_analytic = noise_margins(&analytic_vtc(&pair, v, 121))
            .map(|nm| nm.snm() * 1e3)
            .unwrap_or(f64::NAN);
        let mep = InverterChain::paper_chain(pair).minimum_energy_point();
        t.push_row(vec![
            fmt(kelvin, 0),
            fmt(ss, 1),
            fmt(snm_spice, 1),
            fmt(snm_analytic, 1),
            fmt(mep.v_min.as_millivolts(), 0),
            fmt(mep.energy.as_femtojoules(), 3),
        ]);
    }
    t
}

/// Extension F — backend cross-validation: the 90 nm reference NFET
/// characterized by the analytic compact model, the anchored coarse-mesh
/// TCAD backend, and the deck-corrected direct TCAD backend (every 2-D
/// sweep recalled through the `tcad.extract` / `tcad.model` caches).
///
/// Expected shape: the anchored backend transfers the 2-D swing/DIBL
/// shape (S_S within a few percent of analytic), while the direct
/// backend additionally reports deck-corrected V_th and currents —
/// near-identical at this anchor device by construction.
pub fn ext_backends() -> Table {
    let dev = DeviceParams::reference_90nm_nfet();
    let base = subvt_model::analytic()
        .characterize(&dev)
        .expect("analytic backend");
    let models: [&'static dyn DeviceModel; 3] = [
        subvt_model::analytic(),
        &subvt_tcad::model::TCAD_COARSE,
        &subvt_tcad::model::TCAD_COARSE_DIRECT,
    ];
    let mut t = Table::new(
        "Ext F: device-model backends, 90 nm reference NFET",
        &[
            "Backend",
            "S_S (mV/dec)",
            "V_th,sat (mV)",
            "I_off (pA/um)",
            "DIBL (mV/V)",
            "dlog10 I_off",
        ],
    );
    for m in models {
        let ch = m.characterize(&dev).expect("backend characterize");
        t.push_row(vec![
            m.cache_id(),
            fmt(ch.s_s.get(), 1),
            fmt(ch.v_th_sat.as_millivolts(), 0),
            fmt(ch.i_off.as_picoamps(), 1),
            fmt(ch.dibl * 1e3, 0),
            fmt((ch.i_off.get() / base.i_off.get()).log10(), 3),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temperature_trends() {
        let t = ext_temperature();
        let ss: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        let ioff: Vec<f64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        assert!(
            ss.windows(2).all(|w| w[1] > w[0]),
            "S_S rises with T: {ss:?}"
        );
        assert!(
            ioff.windows(2).all(|w| w[1] > w[0]),
            "I_off rises with T: {ioff:?}"
        );
        // Leakage grows orders of magnitude over 125 °C.
        assert!(ioff[5] > 50.0 * ioff[0]);
    }

    #[test]
    fn oxide_ablation_confirms_papers_root_cause() {
        let t = ext_oxide_scaling();
        // At 32 nm the ideal-oxide flow must show materially better S_S
        // than the paper-rate flow.
        let paper_32: f64 = t.rows[3][3].parse().unwrap();
        let ideal_32: f64 = t.rows[3][4].parse().unwrap();
        assert!(
            ideal_32 < paper_32 - 3.0,
            "ideal oxide scaling must rescue S_S: {ideal_32} vs {paper_32}"
        );
    }

    #[test]
    fn sram_bits_per_line_shrink_under_supervth() {
        let t = ext_sram(StudyContext::cached());
        let first: f64 = t.rows[0][3].parse().unwrap();
        let last: f64 = t.rows[3][3].parse().unwrap();
        assert!(
            last < first,
            "bits/line must shrink with super-Vth scaling: {first} -> {last}"
        );
        // The sub-Vth strategy holds more bits per line at 32 nm.
        let sub_last: f64 = t.rows[3][4].parse().unwrap();
        assert!(sub_last > last, "sub-Vth {sub_last} vs super {last}");
    }

    #[test]
    fn variability_explodes_at_low_supply() {
        let t = ext_variability(StudyContext::cached());
        let lowest: f64 = t.rows[0][2].parse().unwrap(); // 200 mV, 32 nm
        let nominal: f64 = t.rows[4][2].parse().unwrap(); // 1.2 V, 32 nm
        assert!(
            lowest > 3.0 * nominal,
            "sigma/mu at 200 mV ({lowest} %) must dwarf nominal ({nominal} %)"
        );
    }

    #[test]
    fn montecarlo_experiment_tracks_backend_and_supply() {
        let t = montecarlo(StudyContext::cached());
        assert!(t.title.contains("analytic"), "default backend: {}", t.title);
        assert_eq!(t.rows.len(), 3);
        // Delay variability falls and SNM mean grows as V_dd rises.
        let sig: Vec<f64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        assert!(sig.windows(2).all(|w| w[1] < w[0]), "sigma/mu {sig:?}");
        let snm: Vec<f64> = t.rows.iter().map(|r| r[3].parse().unwrap()).collect();
        assert!(snm.windows(2).all(|w| w[1] > w[0]), "snm {snm:?}");
    }

    #[test]
    fn gate_library_shows_margin_ordering_and_stack_effect() {
        let t = ext_gates(StudyContext::cached());
        for row in &t.rows {
            let inv: f64 = row[1].parse().unwrap();
            let nand: f64 = row[2].parse().unwrap();
            let nor: f64 = row[3].parse().unwrap();
            assert!(
                nand < nor && nor < inv,
                "worst-case SNM must order NAND < NOR < inverter: {row:?}"
            );
            let stack: f64 = row[6].parse().unwrap();
            assert!(
                (1.5..=4.0).contains(&stack),
                "stack factor out of subthreshold range: {stack}"
            );
        }
    }

    #[test]
    fn ring_oscillator_tracks_analytic_fo1() {
        let t = ext_ringosc(StudyContext::cached());
        let mut f_prev = f64::INFINITY;
        for row in &t.rows {
            let f_khz: f64 = row[1].parse().unwrap();
            assert!(f_khz < f_prev, "f_osc must fall with scaling: {row:?}");
            f_prev = f_khz;
            let ratio: f64 = row[4].parse().unwrap();
            assert!(
                (0.5..=3.0).contains(&ratio),
                "measured/analytic stage-delay ratio out of range: {ratio}"
            );
        }
    }

    #[test]
    fn temperature_sweep_degrades_margins_and_raises_vmin() {
        let t = ext_temp(StudyContext::cached());
        let ss: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        let snm: Vec<f64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        let vmin: Vec<f64> = t.rows.iter().map(|r| r[4].parse().unwrap()).collect();
        assert!(
            ss.windows(2).all(|w| w[1] > w[0]),
            "S_S rises with T: {ss:?}"
        );
        assert!(
            snm.windows(2).all(|w| w[1] < w[0]),
            "SNM falls with T: {snm:?}"
        );
        assert!(
            vmin.windows(2).all(|w| w[1] > w[0]),
            "V_min rises with T: {vmin:?}"
        );
    }
}
