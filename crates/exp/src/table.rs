//! Plain-text and CSV rendering of experiment results.

/// A simple column-aligned result table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table title (the experiment id and caption).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows, stringified by the experiment.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(row);
    }

    /// Renders the table as aligned monospace text.
    pub fn to_text(&self) -> String {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<w$}"));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncol - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (header row first; quotes cells
    /// containing commas or quotes).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with the given precision (helper for experiments).
pub fn fmt(value: f64, precision: usize) -> String {
    format!("{value:.precision$}")
}

/// Formats in scientific notation with 2 decimal places (doping etc.).
pub fn fmt_e(value: f64) -> String {
    format!("{value:.2e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo", &["node", "value"]);
        t.push_row(vec!["90nm".into(), "1.0".into()]);
        t.push_row(vec!["65nm".into(), "0.85".into()]);
        t
    }

    #[test]
    fn text_is_aligned() {
        let text = sample().to_text();
        assert!(text.contains("## Demo"));
        let lines: Vec<&str> = text.lines().collect();
        // header, rule, two rows
        assert_eq!(lines.len(), 5);
        assert!(lines[1].starts_with("node"));
        assert!(lines[2].starts_with('-'));
    }

    #[test]
    fn csv_round_trips_simple_cells() {
        let csv = sample().to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(csv.lines().next().unwrap(), "node,value");
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("x", &["a"]);
        t.push_row(vec!["hello, \"world\"".into()]);
        assert!(t.to_csv().contains("\"hello, \"\"world\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn float_helpers() {
        assert_eq!(fmt(1.2345, 2), "1.23");
        assert_eq!(fmt_e(1.52e18), "1.52e18");
    }
}
