//! Reproductions of the paper's Tables 1–3.

use subvt_core::generalized::{table1 as gen_table1, GeneralizedScaling};
use subvt_core::metrics::{delay_factor_fixed_ioff, energy_factor, normalize_to_first};
use subvt_core::strategy::NodeDesign;

use crate::context::StudyContext;
use crate::table::{fmt, fmt_e, Table};

/// Table 1: generalized scaling factors at the classic cadence
/// (`α = 1/0.7`) with mild field growth (`ε = 1.1`).
pub fn table1() -> Table {
    let rules = GeneralizedScaling::classic(1.1);
    let mut t = Table::new(
        "Table 1: Generalized scaling (alpha = 1/0.7, eps = 1.1)",
        &["Parameter", "Scaling factor", "Value/generation"],
    );
    for row in gen_table1(&rules) {
        t.push_row(vec![
            row.parameter.to_owned(),
            row.symbol.to_owned(),
            fmt(row.value, 3),
        ]);
    }
    t
}

/// One row of the Table 2 / Table 3 device summaries.
fn device_row(d: &NodeDesign) -> Vec<String> {
    let c = &d.nfet_chars;
    vec![
        d.node.name().to_owned(),
        fmt(d.nfet.geometry.l_poly.get(), 0),
        fmt(d.nfet.geometry.t_ox.get(), 2),
        fmt_e(d.nfet.n_sub.get()),
        fmt_e(d.nfet.n_sub.get() + d.nfet.n_p_halo.get()),
        fmt(d.nfet.v_dd.as_volts(), 1),
        fmt(c.v_th_sat.as_millivolts(), 0),
        fmt(c.i_off.as_picoamps(), 0),
        fmt(c.tau.as_picoseconds(), 2),
    ]
}

/// Table 2: NFET parameters under the super-V_th scaling strategy.
///
/// Paper values for comparison — L_poly 65/46/32/22 nm,
/// N_sub 1.52/1.97/2.52/3.31e18, N_halo 3.63/5.17/7.83/12.0e18,
/// V_th,sat 403/420/438/461 mV, I_off 100/125/156/195 pA/µm,
/// τ 1.3/0.97/0.75/0.62 ps.
pub fn table2(ctx: &StudyContext) -> Table {
    let mut t = Table::new(
        "Table 2: NFET parameters under super-Vth scaling",
        &[
            "Node",
            "L_poly (nm)",
            "T_ox (nm)",
            "N_sub (cm^-3)",
            "N_halo (cm^-3)",
            "V_dd (V)",
            "V_th,sat (mV)",
            "I_off (pA/um)",
            "C_g*V_dd/I_on (ps)",
        ],
    );
    for d in &ctx.supervth {
        t.push_row(device_row(d));
    }
    t
}

/// Table 3: NFET parameters under the sub-V_th scaling strategy, with the
/// normalized energy (`C_L·S_S²`) and delay (`C_L·S_S`) factors.
///
/// Paper values — L_poly 95/75/60/45 nm, C_L·S_S² 1/0.80/0.65/0.51,
/// C_L·S_S 1/0.80/0.65/0.50.
pub fn table3(ctx: &StudyContext) -> Table {
    let ef: Vec<f64> = ctx
        .subvth
        .iter()
        .map(|d| energy_factor(&d.nfet_chars))
        .collect();
    let df: Vec<f64> = ctx
        .subvth
        .iter()
        .map(|d| delay_factor_fixed_ioff(&d.nfet_chars))
        .collect();
    let efn = normalize_to_first(&ef);
    let dfn = normalize_to_first(&df);

    let mut t = Table::new(
        "Table 3: NFET parameters under sub-Vth scaling",
        &[
            "Node",
            "L_poly (nm)",
            "T_ox (nm)",
            "N_sub (cm^-3)",
            "N_halo (cm^-3)",
            "S_S (mV/dec)",
            "C_L*S_S^2 (norm)",
            "C_L*S_S (norm)",
        ],
    );
    for (i, d) in ctx.subvth.iter().enumerate() {
        t.push_row(vec![
            d.node.name().to_owned(),
            fmt(d.nfet.geometry.l_poly.get(), 0),
            fmt(d.nfet.geometry.t_ox.get(), 2),
            fmt_e(d.nfet.n_sub.get()),
            fmt_e(d.nfet.n_sub.get() + d.nfet.n_p_halo.get()),
            fmt(d.nfet_chars.s_s.get(), 1),
            fmt(efn[i], 2),
            fmt(dfn[i], 2),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape() {
        let t = table1();
        assert_eq!(t.rows.len(), 6);
        assert_eq!(t.headers.len(), 3);
    }

    #[test]
    fn table2_tracks_leakage_budget_column() {
        let t = table2(StudyContext::cached());
        assert_eq!(t.rows.len(), 4);
        let ioff: Vec<f64> = t.rows.iter().map(|r| r[7].parse().unwrap()).collect();
        let want = [100.0, 125.0, 156.0, 195.0];
        for (got, want) in ioff.iter().zip(want) {
            assert!((got - want).abs() < 3.0, "{got} vs {want}");
        }
    }

    #[test]
    fn table3_factors_normalized_and_falling() {
        let t = table3(StudyContext::cached());
        let ef: Vec<f64> = t.rows.iter().map(|r| r[6].parse().unwrap()).collect();
        assert!((ef[0] - 1.0).abs() < 1e-9);
        for w in ef.windows(2) {
            assert!(w[1] < w[0] + 1e-9, "energy factor must fall: {ef:?}");
        }
        // Shape target: a substantial cumulative reduction by 32 nm
        // (paper reaches 0.51; our substrate lands in 0.6-0.85).
        assert!(ef[3] < 0.85, "32 nm energy factor = {}", ef[3]);
    }
}
