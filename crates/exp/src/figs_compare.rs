//! Strategy-comparison figures: Fig. 10 (SNM), Fig. 11 (delay at 250 mV)
//! and Fig. 12 (chain energy and V_min) — super-V_th versus the proposed
//! sub-V_th scaling.

use subvt_circuits::chain::InverterChain;
use subvt_units::Volts;

use crate::context::{StudyContext, V_SUBVT};
use crate::figs_circuit::{delay_at, snm_at};
use crate::table::{fmt, Table};

/// Fig. 10: simulated inverter SNM at 250 mV under both strategies.
///
/// Paper shape: sub-V_th SNM stays nearly constant across nodes and is
/// 19 % larger than super-V_th at 32 nm.
pub fn fig10(ctx: &StudyContext) -> Table {
    let v = Volts::new(V_SUBVT);
    let pairs: Vec<_> = ctx
        .supervth
        .iter()
        .copied()
        .zip(ctx.subvth.iter().copied())
        .collect();
    let rows = subvt_engine::global().map(pairs, move |(sup, sub)| {
        (sup.node.name().to_owned(), snm_at(&sup, v), snm_at(&sub, v))
    });

    let mut t = Table::new(
        "Fig 10: inverter SNM at 250 mV, super-Vth vs sub-Vth scaling",
        &["Node", "SNM super (mV)", "SNM sub (mV)", "sub/super"],
    );
    for (name, a, b) in rows {
        t.push_row(vec![name, fmt(a * 1e3, 1), fmt(b * 1e3, 1), fmt(b / a, 2)]);
    }
    t
}

/// Fig. 11: normalized FO1 delay at 250 mV under both strategies (each
/// normalized to its own 90 nm point, as in the paper).
///
/// Paper shape: sub-V_th delay improves ≈18 % per generation
/// monotonically, while super-V_th delay is non-monotonic.
pub fn fig11(ctx: &StudyContext) -> Table {
    let v = Volts::new(V_SUBVT);
    let pairs: Vec<_> = ctx
        .supervth
        .iter()
        .copied()
        .zip(ctx.subvth.iter().copied())
        .collect();
    let rows = subvt_engine::global().map(pairs, move |(sup, sub)| {
        (
            sup.node.name().to_owned(),
            delay_at(&sup, v),
            delay_at(&sub, v),
        )
    });

    let base_sup = rows[0].1;
    let base_sub = rows[0].2;
    let mut t = Table::new(
        "Fig 11: FO1 inverter delay at 250 mV, normalized per strategy",
        &[
            "Node",
            "t_p super (ns)",
            "t_p sub (ns)",
            "super (norm)",
            "sub (norm)",
        ],
    );
    for (name, a, b) in rows {
        t.push_row(vec![
            name,
            fmt(a * 1e9, 1),
            fmt(b * 1e9, 1),
            fmt(a / base_sup, 2),
            fmt(b / base_sub, 2),
        ]);
    }
    t
}

/// Fig. 12: minimum-energy-point energy and `V_min` for the 30-inverter
/// chain under both strategies.
///
/// Paper shape: the proposed strategy consumes ≈23 % less energy at the
/// 32 nm node with `V_min` nearly flat, versus the rising `V_min` of
/// super-V_th scaling.
pub fn fig12(ctx: &StudyContext) -> Table {
    let mut rows = Vec::new();
    let circuit = crate::backend::circuit();
    for (sup, sub) in ctx.supervth.iter().zip(&ctx.subvth) {
        let mep_sup = circuit
            .minimum_energy_point(&InverterChain::paper_chain(crate::backend::pair(sup)))
            .expect("chain MEP search failed");
        let mep_sub = circuit
            .minimum_energy_point(&InverterChain::paper_chain(crate::backend::pair(sub)))
            .expect("chain MEP search failed");
        rows.push((
            sup.node.name().to_owned(),
            mep_sup.energy.as_femtojoules(),
            mep_sub.energy.as_femtojoules(),
            mep_sup.v_min.as_millivolts(),
            mep_sub.v_min.as_millivolts(),
        ));
    }
    let mut t = Table::new(
        "Fig 12: chain energy and V_min, super-Vth vs sub-Vth scaling",
        &[
            "Node",
            "E super (fJ)",
            "E sub (fJ)",
            "V_min super (mV)",
            "V_min sub (mV)",
            "E sub/super",
        ],
    );
    for (name, es, eb, vs, vb) in rows {
        t.push_row(vec![
            name,
            fmt(es, 3),
            fmt(eb, 3),
            fmt(vs, 0),
            fmt(vb, 0),
            fmt(eb / es, 2),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_subvth_wins_at_32nm() {
        let t = fig10(StudyContext::cached());
        let ratio: f64 = t.rows[3][3].parse().unwrap();
        // Paper: 19 % better. Accept any clear win (> 5 %).
        assert!(
            ratio > 1.05,
            "sub-Vth SNM should win at 32 nm: ratio {ratio}"
        );
    }

    #[test]
    fn fig11_subvth_delay_improves_monotonically() {
        let t = fig11(StudyContext::cached());
        let norm: Vec<f64> = t.rows.iter().map(|r| r[4].parse().unwrap()).collect();
        for w in norm.windows(2) {
            assert!(
                w[1] < w[0] + 1e-9,
                "sub-Vth delay must improve each generation: {norm:?}"
            );
        }
    }

    #[test]
    fn fig12_subvth_saves_energy_at_32nm() {
        let t = fig12(StudyContext::cached());
        let ratio: f64 = t.rows[3][5].parse().unwrap();
        // Paper: 23 % less energy. Accept any clear saving (> 5 %).
        assert!(ratio < 0.95, "sub-Vth should save energy at 32 nm: {ratio}");
    }

    #[test]
    fn fig12_subvth_vmin_flatter() {
        let t = fig12(StudyContext::cached());
        let sup: Vec<f64> = t.rows.iter().map(|r| r[3].parse().unwrap()).collect();
        let sub: Vec<f64> = t.rows.iter().map(|r| r[4].parse().unwrap()).collect();
        let spread = |v: &[f64]| {
            v.iter().cloned().fold(f64::MIN, f64::max) - v.iter().cloned().fold(f64::MAX, f64::min)
        };
        assert!(
            spread(&sub) < spread(&sup),
            "sub-Vth V_min spread {} should be below super-Vth {}",
            spread(&sub),
            spread(&sup)
        );
    }
}
