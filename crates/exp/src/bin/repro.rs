//! Command-line driver for the paper-reproduction experiments.
//!
//! Usage:
//!
//! ```text
//! repro all                 # run everything in paper order
//! repro table2 fig2 fig12   # run a subset
//! repro --csv fig6          # CSV output instead of aligned text
//! repro --backend tcad fig2 # evaluate devices through the 2-D TCAD solver
//! repro --circuit-backend spice fig4
//!                           # measure circuit metrics off full netlists
//! repro --jobs 8 all        # size the engine pool explicitly
//! repro --trace t.jsonl all # dump spans + metrics as JSON lines
//! repro --trace t.json --trace-format chrome fig2
//!                           # Chrome trace-event JSON (load in Perfetto)
//! repro --manifest m.json all
//!                           # per-run summary: timings, cache, solvers
//! repro --circuit-backend spice --bench BENCH_spice.json montecarlo
//!                           # spice-backed Monte Carlo + latency artifact
//! repro --cache c.jsonl all # persist the result cache across runs
//! repro --keep-going all    # isolate failures; report them, keep sweeping
//! repro trace-report t.jsonl
//!                           # render a saved trace as a span tree
//! repro trace-report m.json # (manifest files are sniffed and summarised)
//! repro --list              # list experiment ids
//! ```

use std::process::ExitCode;

use subvt_circuits::CircuitBackendKind;
use subvt_exp::{
    run, run_guarded, tracefmt, FigureFailure, ALL_EXPERIMENTS, EXTENSION_EXPERIMENTS,
};
use subvt_model::Backend;
use subvt_units::Temperature;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("trace-report") {
        let Some(path) = args.get(1) else {
            eprintln!("usage: repro trace-report <trace-file>");
            return ExitCode::FAILURE;
        };
        return trace_report(path);
    }
    if args.first().map(String::as_str) == Some("trace-stitch") {
        return trace_stitch(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("fleet") {
        return fleet_main(&args[1..]);
    }
    // Hidden: one shard of a fleet, spawned by `repro fleet`.
    if args.iter().any(|a| a == "--fleet-worker") {
        return fleet_worker_main(&args);
    }

    let mut csv = false;
    let mut keep_going = false;
    let mut trace_path: Option<String> = None;
    let mut trace_chrome = false;
    let mut manifest_path: Option<String> = None;
    let mut bench_path: Option<String> = None;
    let mut cache_path: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--csv" => csv = true,
            "--keep-going" => keep_going = true,
            "--jobs" => {
                let Some(n) = iter
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                else {
                    eprintln!("--jobs needs a positive integer");
                    return ExitCode::FAILURE;
                };
                if !subvt_engine::configure_jobs(n) {
                    eprintln!("--jobs must come before any work is scheduled");
                    return ExitCode::FAILURE;
                }
            }
            "--trace" => {
                let Some(path) = iter.next() else {
                    eprintln!("--trace needs a file path");
                    return ExitCode::FAILURE;
                };
                trace_path = Some(path.clone());
            }
            "--trace-format" => match iter.next().map(String::as_str) {
                Some("jsonl") => trace_chrome = false,
                Some("chrome") => trace_chrome = true,
                _ => {
                    eprintln!("--trace-format needs one of: jsonl, chrome");
                    return ExitCode::FAILURE;
                }
            },
            "--manifest" => {
                let Some(path) = iter.next() else {
                    eprintln!("--manifest needs a file path");
                    return ExitCode::FAILURE;
                };
                manifest_path = Some(path.clone());
            }
            "--bench" => {
                let Some(path) = iter.next() else {
                    eprintln!("--bench needs a file path");
                    return ExitCode::FAILURE;
                };
                bench_path = Some(path.clone());
            }
            "--backend" => {
                let Some(backend) = iter.next().and_then(|v| v.parse::<Backend>().ok()) else {
                    eprintln!("--backend needs one of: analytic, tcad");
                    return ExitCode::FAILURE;
                };
                if !subvt_exp::backend::configure(backend) {
                    eprintln!("--backend given twice with conflicting values");
                    return ExitCode::FAILURE;
                }
            }
            "--circuit-backend" => {
                let Some(kind) = iter
                    .next()
                    .and_then(|v| v.parse::<CircuitBackendKind>().ok())
                else {
                    eprintln!("--circuit-backend needs one of: analytic, spice");
                    return ExitCode::FAILURE;
                };
                if !subvt_exp::backend::configure_circuit(kind) {
                    eprintln!("--circuit-backend given twice with conflicting values");
                    return ExitCode::FAILURE;
                }
            }
            "--temp" => {
                let Some(kelvin) = iter
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .filter(|k| k.is_finite() && *k > 0.0)
                else {
                    eprintln!("--temp needs a positive temperature in kelvin");
                    return ExitCode::FAILURE;
                };
                if !subvt_exp::backend::configure_temperature(Temperature::from_kelvin(kelvin)) {
                    eprintln!("--temp given twice with conflicting values");
                    return ExitCode::FAILURE;
                }
            }
            "--cache" => {
                let Some(path) = iter.next() else {
                    eprintln!("--cache needs a file path");
                    return ExitCode::FAILURE;
                };
                cache_path = Some(path.clone());
            }
            "--list" => {
                for id in ALL_EXPERIMENTS.iter().chain(&EXTENSION_EXPERIMENTS) {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(ALL_EXPERIMENTS.iter().map(|s| (*s).to_owned())),
            "ext" => ids.extend(EXTENSION_EXPERIMENTS.iter().map(|s| (*s).to_owned())),
            "everything" => {
                ids.extend(ALL_EXPERIMENTS.iter().map(|s| (*s).to_owned()));
                ids.extend(EXTENSION_EXPERIMENTS.iter().map(|s| (*s).to_owned()));
            }
            other => ids.push(other.to_owned()),
        }
    }
    if ids.is_empty() {
        print_help();
        return ExitCode::FAILURE;
    }

    // Advisory lock + load, shared with `subvt-serve`: a concurrent run
    // against the same file persists through a leased segment under
    // `<cache>.d/` instead of clobbering the file (or losing its work),
    // and a crashed holder's lock is reclaimed instead of wedging every
    // later run read-only.
    let mut cache_session: Option<subvt_exp::CacheSession> = None;
    if let Some(path) = &cache_path {
        match subvt_exp::CacheSession::open(path.as_ref()) {
            Ok(session) => cache_session = Some(session),
            Err(e) => {
                eprintln!("cannot open cache file {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut failures: Vec<FigureFailure> = Vec::new();
    for id in &ids {
        if keep_going {
            match run_guarded(id) {
                Some(Ok(table)) => {
                    if csv {
                        print!("{}", table.to_csv());
                    } else {
                        println!("{}", table.to_text());
                    }
                }
                Some(Err(failure)) => {
                    eprintln!("FAILED {}: {}", failure.id, failure.message);
                    failures.push(failure);
                }
                None => {
                    eprintln!("unknown experiment `{id}` (try --list)");
                    failures.push(FigureFailure {
                        id: id.clone(),
                        message: "unknown experiment id".to_owned(),
                    });
                }
            }
        } else {
            match run(id) {
                Some(table) => {
                    if csv {
                        print!("{}", table.to_csv());
                    } else {
                        println!("{}", table.to_text());
                    }
                }
                None => {
                    eprintln!("unknown experiment `{id}` (try --list)");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    if let Some(session) = cache_session.take() {
        if let Err(e) = session.close() {
            let path = cache_path.as_deref().unwrap_or("?");
            eprintln!("cannot write cache file {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &trace_path {
        let write = || -> std::io::Result<()> {
            let mut file = std::fs::File::create(path)?;
            let tracer = subvt_engine::trace::global();
            if trace_chrome {
                tracer.write_chrome(&mut file)
            } else {
                tracer.write_jsonl(&mut file)
            }
        };
        if let Err(e) = write() {
            eprintln!("cannot write trace file {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &bench_path {
        // Snapshot (not drain): the manifest writer below still needs
        // the counters this artifact summarises.
        let snap = subvt_engine::trace::global().snapshot();
        match subvt_exp::report::render_spice_bench(&snap) {
            Ok(artifact) => {
                if let Err(e) = std::fs::write(path, artifact + "\n") {
                    eprintln!("cannot write bench file {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            Err(msg) => {
                eprintln!("cannot produce bench file {path}: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &manifest_path {
        let write = || -> std::io::Result<()> {
            let mut file = std::fs::File::create(path)?;
            subvt_exp::report::write_manifest(&mut file, &failures)
        };
        if let Err(e) = write() {
            eprintln!("cannot write manifest file {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "{} of {} experiments failed (see above)",
            failures.len(),
            ids.len()
        );
        ExitCode::FAILURE
    }
}

/// Parses a saved trace (either sink format, sniffed from the content),
/// validates its invariants, and renders the span-tree report. Manifest
/// files (from `--manifest`) are also recognised and summarised.
fn trace_report(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read trace file {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if text.trim_start().starts_with("{\"ts\":") && text.contains("\"trace_id\"") {
        // The daemon's JSONL access log (one request per line).
        return match tracefmt::parse_access_log(&text) {
            Ok(records) => {
                print!("{}", tracefmt::render_access_report(&records));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("malformed access log {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if text.trim_start().starts_with("{\"v\":") {
        // A run manifest, not a trace.
        return match tracefmt::parse_json(text.trim()) {
            Ok(manifest) => {
                print!("{}", tracefmt::render_manifest_report(&manifest));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("malformed manifest {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let parsed = if text.trim_start().starts_with("{\"traceEvents\"") {
        tracefmt::parse_chrome(&text).map(|events| tracefmt::trace_from_chrome(&events))
    } else {
        tracefmt::parse_jsonl(&text)
    };
    let trace = match parsed {
        Ok(t) => t,
        Err(e) => {
            eprintln!("malformed trace {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = tracefmt::validate(&trace) {
        eprintln!("invalid trace {path}: {e}");
        return ExitCode::FAILURE;
    }
    print!("{}", tracefmt::render_report(&trace));
    ExitCode::SUCCESS
}

/// Loads a trace in either sink format (sniffed from the content).
fn load_trace(path: &str) -> Result<tracefmt::TraceFile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let parsed = if text.trim_start().starts_with("{\"traceEvents\"") {
        tracefmt::parse_chrome(&text).map(|events| tracefmt::trace_from_chrome(&events))
    } else {
        tracefmt::parse_jsonl(&text)
    };
    parsed.map_err(|e| format!("malformed trace {path}: {e}"))
}

/// Stitches a client-side trace onto a server-side trace via the
/// wire-propagated `client_span` attributes, prints the combined span
/// tree, and (with `--out`) writes one Perfetto-loadable Chrome trace.
fn trace_stitch(args: &[String]) -> ExitCode {
    let mut paths: Vec<&String> = Vec::new();
    let mut out_path: Option<&String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--out" {
            match iter.next() {
                Some(p) => out_path = Some(p),
                None => {
                    eprintln!("--out needs a file path");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            paths.push(arg);
        }
    }
    let [client_path, server_path] = paths[..] else {
        eprintln!("usage: repro trace-stitch <client-trace> <server-trace> [--out <chrome.json>]");
        return ExitCode::FAILURE;
    };
    let (client, server) = match (load_trace(client_path), load_trace(server_path)) {
        (Ok(c), Ok(s)) => (c, s),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let stitched = match tracefmt::stitch(&client, &server) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot stitch {client_path} + {server_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = tracefmt::validate(&stitched) {
        eprintln!("stitched trace is invalid: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(path) = out_path {
        let write = || -> std::io::Result<()> {
            let mut file = std::fs::File::create(path)?;
            tracefmt::write_chrome_from(&stitched, &mut file)
        };
        if let Err(e) = write() {
            eprintln!("cannot write stitched trace {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote stitched Chrome trace to {path}");
    }
    print!("{}", tracefmt::render_report(&stitched));
    ExitCode::SUCCESS
}

/// Expands `all`/`ext`/`everything` tokens, collecting experiment ids.
fn expand_ids(ids: &mut Vec<String>, token: &str) {
    match token {
        "all" => ids.extend(ALL_EXPERIMENTS.iter().map(|s| (*s).to_owned())),
        "ext" => ids.extend(EXTENSION_EXPERIMENTS.iter().map(|s| (*s).to_owned())),
        "everything" => {
            ids.extend(ALL_EXPERIMENTS.iter().map(|s| (*s).to_owned()));
            ids.extend(EXTENSION_EXPERIMENTS.iter().map(|s| (*s).to_owned()));
        }
        other => ids.push(other.to_owned()),
    }
}

/// Extracts an integer counter `"name":123` from a rendered manifest.
fn scan_counter(manifest: &str, name: &str) -> u64 {
    let pat = format!("\"{name}\":");
    let Some(start) = manifest.find(&pat) else {
        return 0;
    };
    let rest = &manifest[start + pat.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().unwrap_or(0)
}

/// The fleet driver: shards the sweep matrix across N worker
/// processes over the segmented shared cache, supervises them with
/// the retry/deadline ladder, merges their outputs and manifests in
/// the original argument order, and compacts the cache segments into
/// one canonical file on the way out.
fn fleet_main(args: &[String]) -> ExitCode {
    use std::path::PathBuf;
    use std::time::Duration;
    use subvt_engine::cache::{seg, CacheLock};
    use subvt_engine::fleet::{plan, supervise, FleetPolicy, ShardStrategy};

    let mut workers = 2usize;
    let mut strategy = ShardStrategy::KeyRange;
    let mut max_attempts = 3u32;
    let mut deadline_secs: Option<u64> = None;
    let mut csv = false;
    let mut cache_arg: Option<String> = None;
    let mut manifest_path: Option<String> = None;
    let mut passthrough: Vec<String> = Vec::new();
    let mut ids: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--workers" => {
                let Some(n) = iter
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                else {
                    eprintln!("--workers needs a positive integer");
                    return ExitCode::FAILURE;
                };
                workers = n;
            }
            "--shard" => {
                match iter.next().map(|v| v.parse::<ShardStrategy>()) {
                    Some(Ok(s)) => strategy = s,
                    other => {
                        if let Some(Err(e)) = other {
                            eprintln!("{e}");
                        } else {
                            eprintln!("--shard needs one of: key-range, round-robin");
                        }
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--max-attempts" => {
                let Some(n) = iter
                    .next()
                    .and_then(|v| v.parse::<u32>().ok())
                    .filter(|&n| n > 0)
                else {
                    eprintln!("--max-attempts needs a positive integer");
                    return ExitCode::FAILURE;
                };
                max_attempts = n;
            }
            "--deadline-secs" => {
                let Some(n) = iter
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .filter(|&n| n > 0)
                else {
                    eprintln!("--deadline-secs needs a positive integer");
                    return ExitCode::FAILURE;
                };
                deadline_secs = Some(n);
            }
            "--csv" => csv = true,
            "--cache" => {
                let Some(path) = iter.next() else {
                    eprintln!("--cache needs a file path");
                    return ExitCode::FAILURE;
                };
                cache_arg = Some(path.clone());
            }
            "--manifest" => {
                let Some(path) = iter.next() else {
                    eprintln!("--manifest needs a file path");
                    return ExitCode::FAILURE;
                };
                manifest_path = Some(path.clone());
            }
            "--backend" | "--circuit-backend" | "--temp" | "--jobs" => {
                let Some(value) = iter.next() else {
                    eprintln!("{arg} needs a value");
                    return ExitCode::FAILURE;
                };
                passthrough.push(arg.clone());
                passthrough.push(value.clone());
            }
            "--help" | "-h" => {
                print_fleet_help();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown fleet option {other} (try `repro fleet --help`)");
                return ExitCode::FAILURE;
            }
            other => expand_ids(&mut ids, other),
        }
    }
    if ids.is_empty() {
        print_fleet_help();
        return ExitCode::FAILURE;
    }

    // Without --cache the fleet still needs a shared store for its
    // segments and staged outputs; use a scratch one and remove it at
    // the end.
    let scratch_dir: Option<PathBuf> = if cache_arg.is_none() {
        Some(std::env::temp_dir().join(format!("subvt-fleet-{}", std::process::id())))
    } else {
        None
    };
    let cache_path: PathBuf = match (&cache_arg, &scratch_dir) {
        (Some(p), _) => PathBuf::from(p),
        (None, Some(dir)) => {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create scratch dir {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
            dir.join("fleet-cache.jsonl")
        }
        (None, None) => unreachable!(),
    };

    // The parent holds the primary lock for the whole fleet run: a
    // stale (dead-holder) lock is reclaimed, a live holder is an error
    // — two fleets over one store must not interleave compactions.
    let lock = match CacheLock::acquire(&cache_path) {
        Ok(Some(lock)) => lock,
        Ok(None) => {
            eprintln!(
                "cache file {} is held by a live process; \
                 refusing to run a fleet over it",
                cache_path.display()
            );
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("cannot lock cache file {}: {e}", cache_path.display());
            return ExitCode::FAILURE;
        }
    };

    let shards = plan(&ids, workers, strategy);
    let outdir = seg::segment_dir(&cache_path);
    if let Err(e) = std::fs::create_dir_all(&outdir) {
        eprintln!("cannot create segment dir {}: {e}", outdir.display());
        return ExitCode::FAILURE;
    }
    let active = shards.iter().filter(|s| !s.ids.is_empty()).count();
    eprintln!(
        "fleet: {} experiment(s) over {active} worker(s) ({strategy} sharding)",
        ids.len()
    );

    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cannot resolve own executable: {e}");
            return ExitCode::FAILURE;
        }
    };
    let policy = FleetPolicy {
        max_attempts,
        deadline: deadline_secs.map(Duration::from_secs),
        poll: Duration::from_millis(25),
    };
    let mut tail_quarantined = 0usize;
    let report = supervise(
        &shards,
        &policy,
        |shard, attempt| {
            if attempt > 0 {
                eprintln!(
                    "fleet: re-running worker {} (attempt {})",
                    shard.index,
                    attempt + 1
                );
            }
            let mut cmd = std::process::Command::new(&exe);
            cmd.arg("--fleet-worker")
                .arg(shard.index.to_string())
                .arg("--cache")
                .arg(&cache_path)
                .args(&passthrough);
            if csv {
                cmd.arg("--csv");
            }
            cmd.args(&shard.ids)
                .stdout(std::process::Stdio::null())
                .stderr(std::process::Stdio::inherit());
            cmd.spawn()
        },
        |shard, reason| {
            eprintln!(
                "fleet: worker {} died ({reason}); scrubbing its segment tail",
                shard.index
            );
            let seg_path = outdir.join(format!("seg-{}.jsonl", shard.index));
            if let Ok(r) = seg::scrub_segment(&seg_path) {
                tail_quarantined += r.quarantined;
            }
        },
    );
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fleet supervision failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Merge staged outputs in the original argument order, so fleet
    // stdout is byte-identical to the single-process run.
    let ext = if csv { "csv" } else { "txt" };
    let mut failures: Vec<FigureFailure> = Vec::new();
    let mut merged = String::new();
    for id in &ids {
        let staged = outdir.join(format!("out-{id}.{ext}"));
        match std::fs::read_to_string(&staged) {
            Ok(text) => merged.push_str(&text),
            Err(_) => {
                eprintln!("FAILED {id}: no output from its fleet worker");
                failures.push(FigureFailure {
                    id: id.clone(),
                    message: "no output from fleet worker (shard failed)".to_owned(),
                });
            }
        }
    }
    print!("{merged}");

    // Collect worker manifests (verbatim) and their reclaim counters.
    let reclaim_counter = seg::lease_reclaim_counter_name(&cache_path);
    let mut worker_manifests: Vec<String> = Vec::new();
    let mut lease_reclaimed = 0u64;
    for shard in &shards {
        if shard.ids.is_empty() {
            continue;
        }
        let path = outdir.join(format!("seg-{}-manifest.json", shard.index));
        if let Ok(text) = std::fs::read_to_string(&path) {
            lease_reclaimed += scan_counter(&text, &reclaim_counter);
            worker_manifests.push(text.trim().to_owned());
        }
        std::fs::remove_file(&path).ok();
    }

    if let Some(path) = &manifest_path {
        let mut shards_json = String::new();
        for (i, (shard, run)) in shards.iter().zip(&report.runs).enumerate() {
            if i > 0 {
                shards_json.push(',');
            }
            let mut id_list = String::new();
            for (j, id) in shard.ids.iter().enumerate() {
                if j > 0 {
                    id_list.push(',');
                }
                id_list.push_str(&format!("\"{id}\""));
            }
            shards_json.push_str(&format!(
                "{{\"index\":{},\"ids\":[{id_list}],\"key_lo\":\"{:016x}\",\
                 \"key_hi\":\"{:016x}\",\"attempts\":{},\"failed\":{}}}",
                shard.index, shard.key_lo, shard.key_hi, run.attempts, run.failed
            ));
        }
        let fragment = format!(
            "{{\"workers\":{workers},\"strategy\":\"{strategy}\",\"restarts\":{},\
             \"shards_failed\":{},\"lease_reclaimed\":{lease_reclaimed},\
             \"tail_quarantined\":{tail_quarantined},\"shards\":[{shards_json}]}}",
            report.restarts, report.failed
        );
        let write = || -> std::io::Result<()> {
            let mut file = std::fs::File::create(path)?;
            subvt_exp::report::write_fleet_manifest(
                &mut file,
                &failures,
                &fragment,
                &worker_manifests,
            )
        };
        if let Err(e) = write() {
            eprintln!("cannot write manifest file {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    // Retire the staged outputs, then fold every worker segment into
    // the canonical file.
    for id in &ids {
        std::fs::remove_file(outdir.join(format!("out-{id}.{ext}"))).ok();
    }
    match seg::compact(&cache_path) {
        Ok(r) => eprintln!(
            "fleet: compacted cache ({} entries, {} segment(s) merged)",
            r.written, r.segments_merged
        ),
        Err(e) => {
            eprintln!("cannot compact cache {}: {e}", cache_path.display());
            return ExitCode::FAILURE;
        }
    }
    drop(lock);
    if let Some(dir) = &scratch_dir {
        std::fs::remove_dir_all(dir).ok();
    }
    if failures.is_empty() && report.failed == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "{} of {} experiments failed (see above)",
            failures.len(),
            ids.len()
        );
        ExitCode::FAILURE
    }
}

/// One shard of a fleet: claims its segment, runs its ids, stages each
/// rendered table atomically under `<cache>.d/`, and writes its own
/// manifest for the parent's merge. Spawned by [`fleet_main`]; never
/// invoked by hand.
fn fleet_worker_main(args: &[String]) -> ExitCode {
    use subvt_engine::cache::seg;

    let mut worker_idx: Option<usize> = None;
    let mut cache_arg: Option<String> = None;
    let mut csv = false;
    let mut ids: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--fleet-worker" => {
                let Some(n) = iter.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--fleet-worker needs a worker index");
                    return ExitCode::FAILURE;
                };
                worker_idx = Some(n);
            }
            "--cache" => {
                let Some(path) = iter.next() else {
                    eprintln!("--cache needs a file path");
                    return ExitCode::FAILURE;
                };
                cache_arg = Some(path.clone());
            }
            "--csv" => csv = true,
            "--jobs" => {
                let Some(n) = iter
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                else {
                    eprintln!("--jobs needs a positive integer");
                    return ExitCode::FAILURE;
                };
                subvt_engine::configure_jobs(n);
            }
            "--backend" => {
                let Some(backend) = iter.next().and_then(|v| v.parse::<Backend>().ok()) else {
                    eprintln!("--backend needs one of: analytic, tcad");
                    return ExitCode::FAILURE;
                };
                subvt_exp::backend::configure(backend);
            }
            "--circuit-backend" => {
                let Some(kind) = iter
                    .next()
                    .and_then(|v| v.parse::<CircuitBackendKind>().ok())
                else {
                    eprintln!("--circuit-backend needs one of: analytic, spice");
                    return ExitCode::FAILURE;
                };
                subvt_exp::backend::configure_circuit(kind);
            }
            "--temp" => {
                let Some(kelvin) = iter
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .filter(|k| k.is_finite() && *k > 0.0)
                else {
                    eprintln!("--temp needs a positive temperature in kelvin");
                    return ExitCode::FAILURE;
                };
                subvt_exp::backend::configure_temperature(Temperature::from_kelvin(kelvin));
            }
            other if other.starts_with('-') => {
                eprintln!("unknown fleet-worker option {other}");
                return ExitCode::FAILURE;
            }
            other => ids.push(other.to_owned()),
        }
    }
    let (Some(idx), Some(cache_arg)) = (worker_idx, cache_arg) else {
        eprintln!("--fleet-worker requires --cache and a worker index");
        return ExitCode::FAILURE;
    };
    let cache_path = std::path::Path::new(&cache_arg);

    let session = match subvt_exp::CacheSession::open_segment(cache_path, &idx.to_string()) {
        Ok(Some(session)) => session,
        Ok(None) => {
            eprintln!(
                "fleet worker {idx}: segment is held by a live process; \
                 refusing to double-run a shard"
            );
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("fleet worker {idx}: cannot open cache segment: {e}");
            return ExitCode::FAILURE;
        }
    };
    let outdir = seg::segment_dir(cache_path);
    let ext = if csv { "csv" } else { "txt" };
    let crash_marker = std::env::var_os("SUBVT_FLEET_CRASH_ONCE");

    for (i, id) in ids.iter().enumerate() {
        let Some(table) = run(id) else {
            eprintln!("fleet worker {idx}: unknown experiment `{id}`");
            return ExitCode::FAILURE;
        };
        let rendered = if csv {
            table.to_csv()
        } else {
            format!("{}\n", table.to_text())
        };
        let staged = outdir.join(format!("out-{id}.{ext}"));
        let tmp = outdir.join(format!("out-{id}.{ext}.tmp"));
        let write = std::fs::write(&tmp, &rendered).and_then(|()| std::fs::rename(&tmp, &staged));
        if let Err(e) = write {
            eprintln!("fleet worker {idx}: cannot stage output for {id}: {e}");
            return ExitCode::FAILURE;
        }
        // Chaos hook for the integration/CI crash drills: the first
        // worker (fleet-wide) to claim the marker file tears its
        // segment tail and SIGKILLs itself after its first result —
        // exactly one injected crash per fleet run.
        if i == 0 {
            if let Some(marker) = &crash_marker {
                fleet_crash_once(std::path::Path::new(marker), &session);
            }
        }
    }

    // Stage this worker's manifest (atomically — a kill mid-write must
    // not hand the parent a torn file).
    let mut buf: Vec<u8> = Vec::new();
    if let Err(e) = subvt_exp::report::write_manifest(&mut buf, &[]) {
        eprintln!("fleet worker {idx}: cannot render manifest: {e}");
        return ExitCode::FAILURE;
    }
    let manifest = outdir.join(format!("seg-{idx}-manifest.json"));
    let tmp = outdir.join(format!("seg-{idx}-manifest.json.tmp"));
    let write = std::fs::write(&tmp, &buf).and_then(|()| std::fs::rename(&tmp, &manifest));
    if let Err(e) = write {
        eprintln!("fleet worker {idx}: cannot stage manifest: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = session.close() {
        eprintln!("fleet worker {idx}: cannot seal cache segment: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Injects one fleet-wide crash when `SUBVT_FLEET_CRASH_ONCE` is set:
/// atomically claims the marker file (losers return and run on), tears
/// the segment's tail mid-append, and SIGKILLs this process.
fn fleet_crash_once(marker: &std::path::Path, session: &subvt_exp::CacheSession) {
    if std::fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(marker)
        .is_err()
    {
        return;
    }
    if let Some(seg_path) = session.segment_path() {
        use std::io::Write as _;
        if let Ok(mut f) = std::fs::OpenOptions::new().append(true).open(seg_path) {
            // A torn line: no newline, CRC impossible — what a real
            // kill mid-append leaves behind.
            let _ = f.write_all(b"{\"ns\":\"torn-by-injected-crash\",\"key\":\"00");
            let _ = f.flush();
        }
    }
    eprintln!("fleet: injecting SIGKILL crash (SUBVT_FLEET_CRASH_ONCE)");
    let pid = std::process::id().to_string();
    let _ = std::process::Command::new("kill")
        .args(["-9", &pid])
        .status();
    // If an external `kill` is unavailable, abort() still dies
    // abnormally (SIGABRT) — the supervisor treats both as a crash.
    std::process::abort();
}

fn print_fleet_help() {
    eprintln!("usage: repro fleet [options] <experiment...|all|ext|everything>");
    eprintln!();
    eprintln!("Shards the experiments across N worker processes over a shared,");
    eprintln!("lease-segmented result cache; crashed workers are re-run and the");
    eprintln!("merged output is byte-identical to the single-process run.");
    eprintln!();
    eprintln!("options:");
    eprintln!("  --workers <N>        worker processes (default: 2)");
    eprintln!("  --shard <s>          sharding: key-range (default) | round-robin");
    eprintln!("  --max-attempts <N>   attempts per shard before giving up (default: 3)");
    eprintln!("  --deadline-secs <N>  per-attempt wall-clock budget (default: none)");
    eprintln!("  --cache <path>       shared cache file (default: a scratch file,");
    eprintln!("                       removed after the run)");
    eprintln!("  --manifest <path>    merged fleet manifest: parent summary, a `fleet`");
    eprintln!("                       block (shards/restarts/reclaims), and every");
    eprintln!("                       worker manifest verbatim");
    eprintln!("  --csv                CSV output instead of aligned text");
    eprintln!("  --backend/--circuit-backend/--temp/--jobs  forwarded to workers");
}

fn print_help() {
    eprintln!("usage: repro [options] <experiment...|all|ext|everything>");
    eprintln!("       repro fleet --workers <N> [options] <experiment...>");
    eprintln!("       repro trace-report <trace-file|access-log|manifest>");
    eprintln!("       repro trace-stitch <client-trace> <server-trace> [--out <chrome.json>]");
    eprintln!("       repro --list");
    eprintln!();
    eprintln!("options:");
    eprintln!("  --csv                CSV output instead of aligned text");
    eprintln!("  --backend <b>        device-model backend: analytic (default) | tcad");
    eprintln!("  --circuit-backend <b> circuit-metric backend: analytic (default) | spice");
    eprintln!("  --temp <K>           operating temperature in kelvin (default: 300, room)");
    eprintln!("  --jobs <N>           engine worker threads (default: cores, or $SUBVT_JOBS)");
    eprintln!("  --trace <path>       write the run's trace on exit");
    eprintln!("  --trace-format <f>   trace sink: jsonl (default) | chrome (Perfetto)");
    eprintln!("  --manifest <path>    write a per-run summary manifest (JSON)");
    eprintln!("  --bench <path>       write a BENCH_spice.json artifact (needs a");
    eprintln!("                       `montecarlo --circuit-backend spice` run)");
    eprintln!("  --cache <path>       load the result cache before, persist it after");
    eprintln!("  --keep-going         isolate experiment failures: report each in the");
    eprintln!("                       manifest's failures block, run the full sweep, and");
    eprintln!("                       exit nonzero only at the end");
    eprintln!();
    eprintln!("Reproduces the tables and figures of 'Nanometer Device Scaling");
    eprintln!("in Subthreshold Circuits' (DAC 2007) from the subvt stack.");
}
