//! Command-line driver for the paper-reproduction experiments.
//!
//! Usage:
//!
//! ```text
//! repro all                 # run everything in paper order
//! repro table2 fig2 fig12   # run a subset
//! repro --csv fig6          # CSV output instead of aligned text
//! repro --backend tcad fig2 # evaluate devices through the 2-D TCAD solver
//! repro --circuit-backend spice fig4
//!                           # measure circuit metrics off full netlists
//! repro --jobs 8 all        # size the engine pool explicitly
//! repro --trace t.jsonl all # dump spans + metrics as JSON lines
//! repro --trace t.json --trace-format chrome fig2
//!                           # Chrome trace-event JSON (load in Perfetto)
//! repro --manifest m.json all
//!                           # per-run summary: timings, cache, solvers
//! repro --circuit-backend spice --bench BENCH_spice.json montecarlo
//!                           # spice-backed Monte Carlo + latency artifact
//! repro --cache c.jsonl all # persist the result cache across runs
//! repro --keep-going all    # isolate failures; report them, keep sweeping
//! repro trace-report t.jsonl
//!                           # render a saved trace as a span tree
//! repro trace-report m.json # (manifest files are sniffed and summarised)
//! repro --list              # list experiment ids
//! ```

use std::process::ExitCode;

use subvt_circuits::CircuitBackendKind;
use subvt_exp::{
    run, run_guarded, tracefmt, FigureFailure, ALL_EXPERIMENTS, EXTENSION_EXPERIMENTS,
};
use subvt_model::Backend;
use subvt_units::Temperature;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("trace-report") {
        let Some(path) = args.get(1) else {
            eprintln!("usage: repro trace-report <trace-file>");
            return ExitCode::FAILURE;
        };
        return trace_report(path);
    }
    if args.first().map(String::as_str) == Some("trace-stitch") {
        return trace_stitch(&args[1..]);
    }

    let mut csv = false;
    let mut keep_going = false;
    let mut trace_path: Option<String> = None;
    let mut trace_chrome = false;
    let mut manifest_path: Option<String> = None;
    let mut bench_path: Option<String> = None;
    let mut cache_path: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--csv" => csv = true,
            "--keep-going" => keep_going = true,
            "--jobs" => {
                let Some(n) = iter
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                else {
                    eprintln!("--jobs needs a positive integer");
                    return ExitCode::FAILURE;
                };
                if !subvt_engine::configure_jobs(n) {
                    eprintln!("--jobs must come before any work is scheduled");
                    return ExitCode::FAILURE;
                }
            }
            "--trace" => {
                let Some(path) = iter.next() else {
                    eprintln!("--trace needs a file path");
                    return ExitCode::FAILURE;
                };
                trace_path = Some(path.clone());
            }
            "--trace-format" => match iter.next().map(String::as_str) {
                Some("jsonl") => trace_chrome = false,
                Some("chrome") => trace_chrome = true,
                _ => {
                    eprintln!("--trace-format needs one of: jsonl, chrome");
                    return ExitCode::FAILURE;
                }
            },
            "--manifest" => {
                let Some(path) = iter.next() else {
                    eprintln!("--manifest needs a file path");
                    return ExitCode::FAILURE;
                };
                manifest_path = Some(path.clone());
            }
            "--bench" => {
                let Some(path) = iter.next() else {
                    eprintln!("--bench needs a file path");
                    return ExitCode::FAILURE;
                };
                bench_path = Some(path.clone());
            }
            "--backend" => {
                let Some(backend) = iter.next().and_then(|v| v.parse::<Backend>().ok()) else {
                    eprintln!("--backend needs one of: analytic, tcad");
                    return ExitCode::FAILURE;
                };
                if !subvt_exp::backend::configure(backend) {
                    eprintln!("--backend given twice with conflicting values");
                    return ExitCode::FAILURE;
                }
            }
            "--circuit-backend" => {
                let Some(kind) = iter
                    .next()
                    .and_then(|v| v.parse::<CircuitBackendKind>().ok())
                else {
                    eprintln!("--circuit-backend needs one of: analytic, spice");
                    return ExitCode::FAILURE;
                };
                if !subvt_exp::backend::configure_circuit(kind) {
                    eprintln!("--circuit-backend given twice with conflicting values");
                    return ExitCode::FAILURE;
                }
            }
            "--temp" => {
                let Some(kelvin) = iter
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .filter(|k| k.is_finite() && *k > 0.0)
                else {
                    eprintln!("--temp needs a positive temperature in kelvin");
                    return ExitCode::FAILURE;
                };
                if !subvt_exp::backend::configure_temperature(Temperature::from_kelvin(kelvin)) {
                    eprintln!("--temp given twice with conflicting values");
                    return ExitCode::FAILURE;
                }
            }
            "--cache" => {
                let Some(path) = iter.next() else {
                    eprintln!("--cache needs a file path");
                    return ExitCode::FAILURE;
                };
                cache_path = Some(path.clone());
            }
            "--list" => {
                for id in ALL_EXPERIMENTS.iter().chain(&EXTENSION_EXPERIMENTS) {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(ALL_EXPERIMENTS.iter().map(|s| (*s).to_owned())),
            "ext" => ids.extend(EXTENSION_EXPERIMENTS.iter().map(|s| (*s).to_owned())),
            "everything" => {
                ids.extend(ALL_EXPERIMENTS.iter().map(|s| (*s).to_owned()));
                ids.extend(EXTENSION_EXPERIMENTS.iter().map(|s| (*s).to_owned()));
            }
            other => ids.push(other.to_owned()),
        }
    }
    if ids.is_empty() {
        print_help();
        return ExitCode::FAILURE;
    }

    // Advisory lock + load, shared with `subvt-serve`: concurrent runs
    // against the same file degrade to read-only cache use (with a
    // warning and the readonly gauge) instead of clobbering it.
    let mut cache_session: Option<subvt_exp::CacheSession> = None;
    if let Some(path) = &cache_path {
        match subvt_exp::CacheSession::open(path.as_ref()) {
            Ok(session) => cache_session = Some(session),
            Err(e) => {
                eprintln!("cannot open cache file {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut failures: Vec<FigureFailure> = Vec::new();
    for id in &ids {
        if keep_going {
            match run_guarded(id) {
                Some(Ok(table)) => {
                    if csv {
                        print!("{}", table.to_csv());
                    } else {
                        println!("{}", table.to_text());
                    }
                }
                Some(Err(failure)) => {
                    eprintln!("FAILED {}: {}", failure.id, failure.message);
                    failures.push(failure);
                }
                None => {
                    eprintln!("unknown experiment `{id}` (try --list)");
                    failures.push(FigureFailure {
                        id: id.clone(),
                        message: "unknown experiment id".to_owned(),
                    });
                }
            }
        } else {
            match run(id) {
                Some(table) => {
                    if csv {
                        print!("{}", table.to_csv());
                    } else {
                        println!("{}", table.to_text());
                    }
                }
                None => {
                    eprintln!("unknown experiment `{id}` (try --list)");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    if let Some(session) = cache_session.take() {
        if let Err(e) = session.close() {
            let path = cache_path.as_deref().unwrap_or("?");
            eprintln!("cannot write cache file {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &trace_path {
        let write = || -> std::io::Result<()> {
            let mut file = std::fs::File::create(path)?;
            let tracer = subvt_engine::trace::global();
            if trace_chrome {
                tracer.write_chrome(&mut file)
            } else {
                tracer.write_jsonl(&mut file)
            }
        };
        if let Err(e) = write() {
            eprintln!("cannot write trace file {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &bench_path {
        // Snapshot (not drain): the manifest writer below still needs
        // the counters this artifact summarises.
        let snap = subvt_engine::trace::global().snapshot();
        match subvt_exp::report::render_spice_bench(&snap) {
            Ok(artifact) => {
                if let Err(e) = std::fs::write(path, artifact + "\n") {
                    eprintln!("cannot write bench file {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            Err(msg) => {
                eprintln!("cannot produce bench file {path}: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &manifest_path {
        let write = || -> std::io::Result<()> {
            let mut file = std::fs::File::create(path)?;
            subvt_exp::report::write_manifest(&mut file, &failures)
        };
        if let Err(e) = write() {
            eprintln!("cannot write manifest file {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "{} of {} experiments failed (see above)",
            failures.len(),
            ids.len()
        );
        ExitCode::FAILURE
    }
}

/// Parses a saved trace (either sink format, sniffed from the content),
/// validates its invariants, and renders the span-tree report. Manifest
/// files (from `--manifest`) are also recognised and summarised.
fn trace_report(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read trace file {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if text.trim_start().starts_with("{\"ts\":") && text.contains("\"trace_id\"") {
        // The daemon's JSONL access log (one request per line).
        return match tracefmt::parse_access_log(&text) {
            Ok(records) => {
                print!("{}", tracefmt::render_access_report(&records));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("malformed access log {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if text.trim_start().starts_with("{\"v\":") {
        // A run manifest, not a trace.
        return match tracefmt::parse_json(text.trim()) {
            Ok(manifest) => {
                print!("{}", tracefmt::render_manifest_report(&manifest));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("malformed manifest {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let parsed = if text.trim_start().starts_with("{\"traceEvents\"") {
        tracefmt::parse_chrome(&text).map(|events| tracefmt::trace_from_chrome(&events))
    } else {
        tracefmt::parse_jsonl(&text)
    };
    let trace = match parsed {
        Ok(t) => t,
        Err(e) => {
            eprintln!("malformed trace {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = tracefmt::validate(&trace) {
        eprintln!("invalid trace {path}: {e}");
        return ExitCode::FAILURE;
    }
    print!("{}", tracefmt::render_report(&trace));
    ExitCode::SUCCESS
}

/// Loads a trace in either sink format (sniffed from the content).
fn load_trace(path: &str) -> Result<tracefmt::TraceFile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let parsed = if text.trim_start().starts_with("{\"traceEvents\"") {
        tracefmt::parse_chrome(&text).map(|events| tracefmt::trace_from_chrome(&events))
    } else {
        tracefmt::parse_jsonl(&text)
    };
    parsed.map_err(|e| format!("malformed trace {path}: {e}"))
}

/// Stitches a client-side trace onto a server-side trace via the
/// wire-propagated `client_span` attributes, prints the combined span
/// tree, and (with `--out`) writes one Perfetto-loadable Chrome trace.
fn trace_stitch(args: &[String]) -> ExitCode {
    let mut paths: Vec<&String> = Vec::new();
    let mut out_path: Option<&String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--out" {
            match iter.next() {
                Some(p) => out_path = Some(p),
                None => {
                    eprintln!("--out needs a file path");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            paths.push(arg);
        }
    }
    let [client_path, server_path] = paths[..] else {
        eprintln!("usage: repro trace-stitch <client-trace> <server-trace> [--out <chrome.json>]");
        return ExitCode::FAILURE;
    };
    let (client, server) = match (load_trace(client_path), load_trace(server_path)) {
        (Ok(c), Ok(s)) => (c, s),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let stitched = match tracefmt::stitch(&client, &server) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot stitch {client_path} + {server_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = tracefmt::validate(&stitched) {
        eprintln!("stitched trace is invalid: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(path) = out_path {
        let write = || -> std::io::Result<()> {
            let mut file = std::fs::File::create(path)?;
            tracefmt::write_chrome_from(&stitched, &mut file)
        };
        if let Err(e) = write() {
            eprintln!("cannot write stitched trace {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote stitched Chrome trace to {path}");
    }
    print!("{}", tracefmt::render_report(&stitched));
    ExitCode::SUCCESS
}

fn print_help() {
    eprintln!("usage: repro [options] <experiment...|all|ext|everything>");
    eprintln!("       repro trace-report <trace-file|access-log|manifest>");
    eprintln!("       repro trace-stitch <client-trace> <server-trace> [--out <chrome.json>]");
    eprintln!("       repro --list");
    eprintln!();
    eprintln!("options:");
    eprintln!("  --csv                CSV output instead of aligned text");
    eprintln!("  --backend <b>        device-model backend: analytic (default) | tcad");
    eprintln!("  --circuit-backend <b> circuit-metric backend: analytic (default) | spice");
    eprintln!("  --temp <K>           operating temperature in kelvin (default: 300, room)");
    eprintln!("  --jobs <N>           engine worker threads (default: cores, or $SUBVT_JOBS)");
    eprintln!("  --trace <path>       write the run's trace on exit");
    eprintln!("  --trace-format <f>   trace sink: jsonl (default) | chrome (Perfetto)");
    eprintln!("  --manifest <path>    write a per-run summary manifest (JSON)");
    eprintln!("  --bench <path>       write a BENCH_spice.json artifact (needs a");
    eprintln!("                       `montecarlo --circuit-backend spice` run)");
    eprintln!("  --cache <path>       load the result cache before, persist it after");
    eprintln!("  --keep-going         isolate experiment failures: report each in the");
    eprintln!("                       manifest's failures block, run the full sweep, and");
    eprintln!("                       exit nonzero only at the end");
    eprintln!();
    eprintln!("Reproduces the tables and figures of 'Nanometer Device Scaling");
    eprintln!("in Subthreshold Circuits' (DAC 2007) from the subvt stack.");
}
