//! Command-line driver for the paper-reproduction experiments.
//!
//! Usage:
//!
//! ```text
//! repro all                 # run everything in paper order
//! repro table2 fig2 fig12   # run a subset
//! repro --csv fig6          # CSV output instead of aligned text
//! repro --backend tcad fig2 # evaluate devices through the 2-D TCAD solver
//! repro --jobs 8 all        # size the engine pool explicitly
//! repro --trace t.jsonl all # dump spans + cache counters as JSON lines
//! repro --cache c.jsonl all # persist the result cache across runs
//! repro --list              # list experiment ids
//! ```

use std::process::ExitCode;

use subvt_exp::{run, ALL_EXPERIMENTS, EXTENSION_EXPERIMENTS};
use subvt_model::Backend;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut csv = false;
    let mut trace_path: Option<String> = None;
    let mut cache_path: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--csv" => csv = true,
            "--jobs" => {
                let Some(n) = iter
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                else {
                    eprintln!("--jobs needs a positive integer");
                    return ExitCode::FAILURE;
                };
                if !subvt_engine::configure_jobs(n) {
                    eprintln!("--jobs must come before any work is scheduled");
                    return ExitCode::FAILURE;
                }
            }
            "--trace" => {
                let Some(path) = iter.next() else {
                    eprintln!("--trace needs a file path");
                    return ExitCode::FAILURE;
                };
                trace_path = Some(path.clone());
            }
            "--backend" => {
                let Some(backend) = iter.next().and_then(|v| v.parse::<Backend>().ok()) else {
                    eprintln!("--backend needs one of: analytic, tcad");
                    return ExitCode::FAILURE;
                };
                if !subvt_exp::backend::configure(backend) {
                    eprintln!("--backend given twice with conflicting values");
                    return ExitCode::FAILURE;
                }
            }
            "--cache" => {
                let Some(path) = iter.next() else {
                    eprintln!("--cache needs a file path");
                    return ExitCode::FAILURE;
                };
                cache_path = Some(path.clone());
            }
            "--list" => {
                for id in ALL_EXPERIMENTS.iter().chain(&EXTENSION_EXPERIMENTS) {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(ALL_EXPERIMENTS.iter().map(|s| (*s).to_owned())),
            "ext" => ids.extend(EXTENSION_EXPERIMENTS.iter().map(|s| (*s).to_owned())),
            "everything" => {
                ids.extend(ALL_EXPERIMENTS.iter().map(|s| (*s).to_owned()));
                ids.extend(EXTENSION_EXPERIMENTS.iter().map(|s| (*s).to_owned()));
            }
            other => ids.push(other.to_owned()),
        }
    }
    if ids.is_empty() {
        print_help();
        return ExitCode::FAILURE;
    }

    if let Some(path) = &cache_path {
        match subvt_engine::global_cache().load_jsonl(path.as_ref()) {
            Ok(n) => eprintln!("loaded {n} cached results from {path}"),
            Err(e) => {
                eprintln!("cannot read cache file {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    for id in &ids {
        match run(id) {
            Some(table) => {
                if csv {
                    print!("{}", table.to_csv());
                } else {
                    println!("{}", table.to_text());
                }
            }
            None => {
                eprintln!("unknown experiment `{id}` (try --list)");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = &cache_path {
        if let Err(e) = subvt_engine::global_cache().save_jsonl(path.as_ref()) {
            eprintln!("cannot write cache file {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &trace_path {
        let write = || -> std::io::Result<()> {
            let mut file = std::fs::File::create(path)?;
            subvt_engine::trace::global().write_jsonl(&mut file)
        };
        if let Err(e) = write() {
            eprintln!("cannot write trace file {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn print_help() {
    eprintln!("usage: repro [options] <experiment...|all|ext|everything>");
    eprintln!("       repro --list");
    eprintln!();
    eprintln!("options:");
    eprintln!("  --csv           CSV output instead of aligned text");
    eprintln!("  --backend <b>   device-model backend: analytic (default) | tcad");
    eprintln!("  --jobs <N>      engine worker threads (default: cores, or $SUBVT_JOBS)");
    eprintln!("  --trace <path>  write spans and counters as JSON lines on exit");
    eprintln!("  --cache <path>  load the result cache before, persist it after");
    eprintln!();
    eprintln!("Reproduces the tables and figures of 'Nanometer Device Scaling");
    eprintln!("in Subthreshold Circuits' (DAC 2007) from the subvt stack.");
}
