//! Command-line driver for the paper-reproduction experiments.
//!
//! Usage:
//!
//! ```text
//! repro all                 # run everything in paper order
//! repro table2 fig2 fig12   # run a subset
//! repro --csv fig6          # CSV output instead of aligned text
//! repro --list              # list experiment ids
//! ```

use std::process::ExitCode;

use subvt_exp::{run, ALL_EXPERIMENTS, EXTENSION_EXPERIMENTS};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut csv = false;
    let mut ids: Vec<String> = Vec::new();
    for arg in &args {
        match arg.as_str() {
            "--csv" => csv = true,
            "--list" => {
                for id in ALL_EXPERIMENTS.iter().chain(&EXTENSION_EXPERIMENTS) {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(ALL_EXPERIMENTS.iter().map(|s| (*s).to_owned())),
            "ext" => ids.extend(EXTENSION_EXPERIMENTS.iter().map(|s| (*s).to_owned())),
            "everything" => {
                ids.extend(ALL_EXPERIMENTS.iter().map(|s| (*s).to_owned()));
                ids.extend(EXTENSION_EXPERIMENTS.iter().map(|s| (*s).to_owned()));
            }
            other => ids.push(other.to_owned()),
        }
    }
    if ids.is_empty() {
        print_help();
        return ExitCode::FAILURE;
    }

    for id in &ids {
        match run(id) {
            Some(table) => {
                if csv {
                    print!("{}", table.to_csv());
                } else {
                    println!("{}", table.to_text());
                }
            }
            None => {
                eprintln!("unknown experiment `{id}` (try --list)");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn print_help() {
    eprintln!("usage: repro [--csv] <experiment...|all|ext|everything>");
    eprintln!("       repro --list");
    eprintln!();
    eprintln!("Reproduces the tables and figures of 'Nanometer Device Scaling");
    eprintln!("in Subthreshold Circuits' (DAC 2007) from the subvt stack.");
}
