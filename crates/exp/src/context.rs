//! Shared study context: both strategies designed once per process and
//! reused by every experiment (the design searches are the expensive
//! step).

use std::sync::OnceLock;

use subvt_core::strategy::{DesignError, NodeDesign, ScalingStrategy};
use subvt_core::{SubVthStrategy, SuperVthStrategy};

/// The paper's sub-V_th evaluation supply: 250 mV ("well within the
/// sub-V_th regime" — every Table 2 device has `V_th > 400 mV`).
pub const V_SUBVT: f64 = 0.25;

/// Designs for all four nodes under both strategies.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyContext {
    /// Super-V_th (Table 2) designs, 90 → 32 nm.
    pub supervth: Vec<NodeDesign>,
    /// Sub-V_th (Table 3) designs, 90 → 32 nm.
    pub subvth: Vec<NodeDesign>,
}

impl StudyContext {
    /// Runs both design flows. Costs a few hundred milliseconds in a
    /// release build; experiments share the result via [`StudyContext::cached`].
    ///
    /// # Errors
    ///
    /// Propagates [`DesignError`] from either flow.
    pub fn compute() -> Result<Self, DesignError> {
        // The two flows are independent; overlap them.
        let (sup, sub) = crossbeam::thread::scope(|s| {
            let h_sup = s.spawn(|_| SuperVthStrategy::default().design_all());
            let h_sub = s.spawn(|_| SubVthStrategy::default().design_all());
            (h_sup.join().expect("supervth panicked"), h_sub.join().expect("subvth panicked"))
        })
        .expect("design scope panicked");
        Ok(Self { supervth: sup?, subvth: sub? })
    }

    /// Process-wide cached context (design flows are deterministic).
    ///
    /// # Panics
    ///
    /// Panics if the design flows fail — the roadmap inputs are fixed, so
    /// a failure is a programming error, not an input error.
    pub fn cached() -> &'static StudyContext {
        static CTX: OnceLock<StudyContext> = OnceLock::new();
        CTX.get_or_init(|| {
            StudyContext::compute().expect("design flows failed on roadmap inputs")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_context_has_four_nodes_each() {
        let ctx = StudyContext::cached();
        assert_eq!(ctx.supervth.len(), 4);
        assert_eq!(ctx.subvth.len(), 4);
    }

    #[test]
    fn cached_is_singleton() {
        let a = StudyContext::cached() as *const _;
        let b = StudyContext::cached() as *const _;
        assert_eq!(a, b);
    }
}
