//! Shared study context: both strategies designed once per process and
//! reused by every experiment (the design searches are the expensive
//! step).
//!
//! Each flow's result lives in the engine's content-addressed cache
//! under the `design` namespace, keyed by the strategy's own parameters.
//! The first consumer pays for the searches; every later consumer — and
//! every later *process*, when the `repro` binary persists the cache with
//! `--cache <path>` — is served from the cache, which the trace counters
//! (`cache.design.hit` / `cache.design.miss`) make visible.

use std::sync::OnceLock;

use subvt_core::strategy::{DesignError, NodeDesign, ScalingStrategy};
use subvt_core::{SubVthStrategy, SuperVthStrategy};
use subvt_engine::KeyBuilder;
use subvt_model::DeviceModel;
use subvt_units::Temperature;

use crate::codec::DesignSet;

/// The paper's sub-V_th evaluation supply: 250 mV ("well within the
/// sub-V_th regime" — every Table 2 device has `V_th > 400 mV`).
pub const V_SUBVT: f64 = 0.25;

/// Designs for all four nodes under both strategies.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyContext {
    /// Super-V_th (Table 2) designs, 90 → 32 nm.
    pub supervth: Vec<NodeDesign>,
    /// Sub-V_th (Table 3) designs, 90 → 32 nm.
    pub subvth: Vec<NodeDesign>,
}

/// Cache key for the super-V_th flow: every strategy knob that shapes
/// the designs, plus the evaluation backend. The tag is versioned
/// against the [`DesignSet`] layout.
fn supervth_key(s: &SuperVthStrategy, model: &dyn DeviceModel, t: Temperature) -> u64 {
    KeyBuilder::new("design.v1")
        .str("supervth")
        .str(&model.cache_id())
        .f64(s.t_ox_shrink_rate)
        .f64(s.i_leak_90nm_pa)
        .f64(s.i_leak_growth)
        .f64(t.as_kelvin())
        .finish()
}

/// Cache key for the sub-V_th flow.
fn subvth_key(s: &SubVthStrategy, model: &dyn DeviceModel, t: Temperature) -> u64 {
    KeyBuilder::new("design.v1")
        .str("subvth")
        .str(&model.cache_id())
        .f64(s.i_off_target.get())
        .f64(t.as_kelvin())
        .finish()
}

/// Re-tags every design's devices with the operating temperature and
/// re-characterizes them, so downstream consumers (figure tables, pair
/// construction, supply re-biasing) all see temperature-consistent
/// characteristics. At room temperature this is the identity: the
/// designs come out of the flows already characterized at
/// [`Temperature::room`].
fn at_temperature(
    designs: Vec<NodeDesign>,
    t: Temperature,
    model: &dyn DeviceModel,
) -> Result<Vec<NodeDesign>, DesignError> {
    if t == Temperature::room() {
        return Ok(designs);
    }
    designs
        .into_iter()
        .map(|mut d| {
            d.nfet.temperature = t;
            d.pfet.temperature = t;
            d.nfet_chars = model.characterize(&d.nfet)?;
            d.pfet_chars = model.characterize(&d.pfet)?;
            Ok(d)
        })
        .collect()
}

fn design_cached(
    name: &'static str,
    key: u64,
    flow: impl FnOnce() -> Result<Vec<NodeDesign>, DesignError> + Send,
) -> Result<Vec<NodeDesign>, DesignError> {
    let set = subvt_engine::global_cache().try_get_or_compute("design", key, move || {
        let _span = subvt_engine::trace::span(format!("design.{name}"));
        flow().map(DesignSet)
    })?;
    Ok(set.0)
}

impl StudyContext {
    /// Runs (or recalls) both design flows. A cold run costs a few
    /// hundred milliseconds in a release build and overlaps the two
    /// flows on the engine pool; warm runs are cache lookups.
    ///
    /// # Errors
    ///
    /// Propagates [`DesignError`] from either flow.
    pub fn compute() -> Result<Self, DesignError> {
        Self::compute_with(subvt_model::analytic())
    }

    /// Like [`Self::compute`] but runs (or recalls) both flows through
    /// an explicit device-model backend. Each backend keeps its own
    /// entries in the `design` cache namespace, keyed by
    /// [`DeviceModel::cache_id`].
    ///
    /// # Errors
    ///
    /// Propagates [`DesignError`] from either flow.
    pub fn compute_with(model: &'static dyn DeviceModel) -> Result<Self, DesignError> {
        // The two flows are independent; overlap them. The process-wide
        // operating temperature keys the cache entries and re-tags the
        // designed devices, so `--temp` runs never collide with the
        // paper's room-temperature records.
        let t = crate::backend::temperature();
        let mut flows = subvt_engine::global().map(vec![true, false], move |is_super| {
            if is_super {
                let s = SuperVthStrategy::default();
                design_cached("supervth", supervth_key(&s, model, t), move || {
                    s.design_all_with(model)
                        .and_then(|d| at_temperature(d, t, model))
                })
            } else {
                let s = SubVthStrategy::default();
                design_cached("subvth", subvth_key(&s, model, t), move || {
                    s.design_all_with(model)
                        .and_then(|d| at_temperature(d, t, model))
                })
            }
        });
        let subvth = flows.pop().expect("two flows")?;
        let supervth = flows.pop().expect("two flows")?;
        Ok(Self { supervth, subvth })
    }

    /// Process-wide cached context (design flows are deterministic).
    ///
    /// # Panics
    ///
    /// Panics if the design flows fail — the roadmap inputs are fixed, so
    /// a failure is a programming error, not an input error.
    pub fn cached() -> &'static StudyContext {
        static CTX: OnceLock<StudyContext> = OnceLock::new();
        CTX.get_or_init(|| StudyContext::compute().expect("design flows failed on roadmap inputs"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_context_has_four_nodes_each() {
        let ctx = StudyContext::cached();
        assert_eq!(ctx.supervth.len(), 4);
        assert_eq!(ctx.subvth.len(), 4);
    }

    #[test]
    fn cached_is_singleton() {
        let a = StudyContext::cached() as *const _;
        let b = StudyContext::cached() as *const _;
        assert_eq!(a, b);
    }

    #[test]
    fn recompute_is_served_from_cache_and_identical() {
        let first = StudyContext::cached();
        let cache = subvt_engine::global_cache();
        let before = cache.stats().hits;
        let second = StudyContext::compute().unwrap();
        assert_eq!(*first, second, "cache recall must be bit-exact");
        assert!(
            cache.stats().hits >= before + 2,
            "both flows must be cache hits on recompute"
        );
    }

    #[test]
    fn strategy_knobs_change_the_cache_key() {
        let m = subvt_model::analytic();
        let room = Temperature::room();
        let a = supervth_key(&SuperVthStrategy::default(), m, room);
        let s = SuperVthStrategy {
            t_ox_shrink_rate: 0.30,
            ..Default::default()
        };
        assert_ne!(a, supervth_key(&s, m, room));
        assert_ne!(a, subvth_key(&SubVthStrategy::default(), m, room));
        assert_ne!(
            a,
            supervth_key(
                &SuperVthStrategy::default(),
                m,
                Temperature::from_kelvin(350.0)
            ),
            "temperature must key its own design entries"
        );
    }

    #[test]
    fn backend_changes_the_cache_key() {
        let s = SuperVthStrategy::default();
        let room = Temperature::room();
        let analytic = supervth_key(&s, subvt_model::analytic(), room);
        let tcad = supervth_key(&s, &subvt_tcad::model::TCAD_COARSE, room);
        assert_ne!(analytic, tcad, "backends must not share design entries");
    }

    #[test]
    fn room_temperature_retag_is_identity() {
        let ctx = StudyContext::cached();
        let again = at_temperature(
            ctx.supervth.clone(),
            Temperature::room(),
            subvt_model::analytic(),
        )
        .unwrap();
        assert_eq!(again, ctx.supervth);
        let hot = at_temperature(
            ctx.supervth.clone(),
            Temperature::from_kelvin(350.0),
            subvt_model::analytic(),
        )
        .unwrap();
        assert!(
            hot[0].nfet_chars.i_off.get() > ctx.supervth[0].nfet_chars.i_off.get(),
            "leakage must grow with temperature"
        );
    }
}
