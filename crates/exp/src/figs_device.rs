//! Device-level figures: Fig. 2 (S_S and I_on/I_off), Fig. 3 (I_on),
//! Fig. 7 (S_S vs gate length), Fig. 8 (energy/delay factors vs gate
//! length) and Fig. 9 (L_poly and S_S under both strategies).

use subvt_core::metrics::{delay_factor_fixed_ioff, energy_factor};
use subvt_core::subvth::SubVthStrategy;
use subvt_core::TechNode;
use subvt_physics::device::DeviceKind;
use subvt_physics::math::linspace;
use subvt_units::{Nanometers, Volts};

use crate::backend;
use crate::context::{StudyContext, V_SUBVT};
use crate::table::{fmt, Table};

/// Fig. 2: NFET inverse subthreshold slope and on/off ratio at
/// `V_dd = 250 mV` across nodes (super-V_th strategy).
///
/// Paper shape: S_S degrades ≈11 % (95 → 106 mV/dec) and I_on/I_off drops
/// ≈60 % between 90 nm and 32 nm.
pub fn fig2(ctx: &StudyContext) -> Table {
    let mut t = Table::new(
        "Fig 2: NFET S_S and I_on/I_off at V_dd = 250 mV (super-Vth scaling)",
        &["Node", "S_S (mV/dec)", "I_on/I_off @250mV", "ratio vs 90nm"],
    );
    let base_ratio = {
        let d = backend::at_subthreshold(&ctx.supervth[0], Volts::new(V_SUBVT));
        d.nfet_chars.on_off_ratio()
    };
    for d in &ctx.supervth {
        let sub = backend::at_subthreshold(d, Volts::new(V_SUBVT));
        let ratio = sub.nfet_chars.on_off_ratio();
        t.push_row(vec![
            d.node.name().to_owned(),
            fmt(d.nfet_chars.s_s.get(), 1),
            fmt(ratio, 0),
            fmt(ratio / base_ratio, 2),
        ]);
    }
    t
}

/// Fig. 3: NFET on-current at nominal `V_dd` and at 250 mV across nodes
/// (super-V_th strategy).
///
/// Paper shape: I_on falls with scaling under the leakage-constrained
/// flow, and falls faster in the sub-V_th regime.
pub fn fig3(ctx: &StudyContext) -> Table {
    let mut t = Table::new(
        "Fig 3: NFET I_on at nominal V_dd and at 250 mV (super-Vth scaling)",
        &[
            "Node",
            "I_on @nominal (uA/um)",
            "I_on @250mV (nA/um)",
            "nominal vs 90nm",
            "250mV vs 90nm",
        ],
    );
    let base_nom = ctx.supervth[0].nfet_chars.i_on.as_microamps();
    let base_sub = backend::at_subthreshold(&ctx.supervth[0], Volts::new(V_SUBVT))
        .nfet_chars
        .i_on
        .get()
        * 1.0e9;
    for d in &ctx.supervth {
        let nom = d.nfet_chars.i_on.as_microamps();
        let sub = backend::at_subthreshold(d, Volts::new(V_SUBVT))
            .nfet_chars
            .i_on
            .get()
            * 1.0e9;
        t.push_row(vec![
            d.node.name().to_owned(),
            fmt(nom, 0),
            fmt(sub, 1),
            fmt(nom / base_nom, 2),
            fmt(sub / base_sub, 2),
        ]);
    }
    t
}

/// Fig. 7: S_S as a function of gate length for the 45 nm node — doping
/// fixed (at the minimum-length optimum) versus doping re-optimized at
/// each length.
///
/// Paper shape: with fixed doping, lengthening the gate saturates; with
/// co-optimized doping S_S keeps improving toward the long-channel floor.
pub fn fig7() -> Table {
    let strategy = SubVthStrategy::default();
    let model = backend::model();
    let node = TechNode::N45;
    let lengths = linspace(32.0, 130.0, 11);

    // Fixed profile: the optimum at the minimum length.
    let fixed = strategy
        .optimize_doping_at_length_with(node, DeviceKind::Nfet, Nanometers::new(lengths[0]), model)
        .expect("doping at min length");

    let mut t = Table::new(
        "Fig 7: S_S vs gate length, 45 nm device (fixed vs optimized doping)",
        &[
            "L_poly (nm)",
            "S_S fixed doping (mV/dec)",
            "S_S optimized doping (mV/dec)",
        ],
    );
    for &l in &lengths {
        let mut dev_fixed = fixed;
        dev_fixed.geometry.l_poly = Nanometers::new(l);
        let ss_fixed = model
            .characterize(&dev_fixed)
            .map(|ch| ch.s_s.get())
            .unwrap_or(f64::NAN);
        let ss_opt = strategy
            .optimize_doping_at_length_with(node, DeviceKind::Nfet, Nanometers::new(l), model)
            .and_then(|p| Ok(model.characterize(&p)?.s_s.get()))
            .unwrap_or(f64::NAN);
        t.push_row(vec![fmt(l, 0), fmt(ss_fixed, 1), fmt(ss_opt, 1)]);
    }
    t
}

/// Fig. 8: energy factor `C_L·S_S²` and delay factor `C_L·S_S` as
/// functions of gate length for the 45 nm device with per-length
/// optimized doping.
///
/// Paper shape: both factors reach interior minima; the delay minimum is
/// shallow, so the energy-optimal length (60 nm in the paper) costs
/// negligible delay.
pub fn fig8() -> Table {
    let strategy = SubVthStrategy::default();
    let model = backend::model();
    let node = TechNode::N45;
    let lengths = linspace(32.0, 130.0, 11);

    let mut rows = Vec::new();
    for &l in &lengths {
        if let Ok(ch) = strategy
            .optimize_doping_at_length_with(node, DeviceKind::Nfet, Nanometers::new(l), model)
            .and_then(|p| Ok(model.characterize(&p)?))
        {
            rows.push((l, energy_factor(&ch), delay_factor_fixed_ioff(&ch)));
        }
    }
    let e0 = rows[0].1;
    let d0 = rows[0].2;

    let mut t = Table::new(
        "Fig 8: energy (C_L*S_S^2) and delay (C_L*S_S) factors vs gate length, 45 nm",
        &["L_poly (nm)", "energy factor (norm)", "delay factor (norm)"],
    );
    for (l, e, d) in rows {
        t.push_row(vec![fmt(l, 0), fmt(e / e0, 3), fmt(d / d0, 3)]);
    }
    t
}

/// Fig. 9: `L_poly` and `S_S` per node under both strategies.
///
/// Paper shape: the sub-V_th strategy uses longer channels scaling
/// 20–25 %/generation, holding S_S ≈ 80 mV/dec, while super-V_th L_poly
/// scales 30 %/generation and S_S degrades.
pub fn fig9(ctx: &StudyContext) -> Table {
    let mut t = Table::new(
        "Fig 9: L_poly and S_S under super-Vth and sub-Vth scaling",
        &[
            "Node",
            "L_poly super (nm)",
            "L_poly sub (nm)",
            "S_S super (mV/dec)",
            "S_S sub (mV/dec)",
        ],
    );
    for (sup, sub) in ctx.supervth.iter().zip(&ctx.subvth) {
        t.push_row(vec![
            sup.node.name().to_owned(),
            fmt(sup.nfet.geometry.l_poly.get(), 0),
            fmt(sub.nfet.geometry.l_poly.get(), 0),
            fmt(sup.nfet_chars.s_s.get(), 1),
            fmt(sub.nfet_chars.s_s.get(), 1),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_ratio_degrades_substantially() {
        let t = fig2(StudyContext::cached());
        let last_ratio: f64 = t.rows[3][3].parse().unwrap();
        // Paper: −60 %. Accept any substantial degradation (> 35 %).
        assert!(
            last_ratio < 0.65,
            "I_on/I_off ratio at 32 nm = {last_ratio}"
        );
    }

    #[test]
    fn fig3_subthreshold_current_falls_faster() {
        let t = fig3(StudyContext::cached());
        let nom_32: f64 = t.rows[3][3].parse().unwrap();
        let sub_32: f64 = t.rows[3][4].parse().unwrap();
        assert!(
            sub_32 < nom_32,
            "sub-Vth I_on must fall faster: {sub_32} vs {nom_32}"
        );
    }

    #[test]
    fn fig7_optimized_never_worse_than_fixed() {
        let t = fig7();
        for row in &t.rows {
            let fixed: f64 = row[1].parse().unwrap();
            let opt: f64 = row[2].parse().unwrap();
            assert!(opt <= fixed + 0.2, "L = {}: {opt} vs {fixed}", row[0]);
        }
    }

    #[test]
    fn fig8_energy_minimum_is_interior() {
        let t = fig8();
        let e: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        let min_idx = e
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(
            min_idx > 0 && min_idx < e.len() - 1,
            "energy minimum should be interior: {e:?}"
        );
    }

    #[test]
    fn fig9_subvth_channels_longer_and_flatter() {
        let t = fig9(StudyContext::cached());
        for row in &t.rows {
            let l_sup: f64 = row[1].parse().unwrap();
            let l_sub: f64 = row[2].parse().unwrap();
            assert!(l_sub > l_sup, "{}: {l_sub} should exceed {l_sup}", row[0]);
        }
        let ss_sub_first: f64 = t.rows[0][4].parse().unwrap();
        let ss_sub_last: f64 = t.rows[3][4].parse().unwrap();
        assert!(
            (ss_sub_last - ss_sub_first).abs() < 6.0,
            "sub-Vth S_S should stay nearly flat"
        );
    }
}
