//! Process-wide device-model backend selection.
//!
//! The `repro` binary picks a backend once (`--backend analytic|tcad`)
//! before any experiment runs; every design flow, figure and extension
//! then evaluates devices through [`model`]. The default is the analytic
//! compact model, which reproduces the historical output byte for byte.

use std::sync::OnceLock;

use subvt_circuits::inverter::CmosPair;
use subvt_core::strategy::NodeDesign;
use subvt_core::supervth::at_subthreshold_supply_with;
use subvt_model::{Backend, DeviceModel};
use subvt_units::Volts;

static SELECTED: OnceLock<Backend> = OnceLock::new();

/// Locks in the process-wide backend. The first selection wins; returns
/// `false` when a *different* backend was already locked (selecting the
/// active backend again is a no-op success).
pub fn configure(backend: Backend) -> bool {
    *SELECTED.get_or_init(|| backend) == backend
}

/// The selected backend; defaults to [`Backend::Analytic`] when nothing
/// was configured.
pub fn selected() -> Backend {
    *SELECTED.get_or_init(Backend::default)
}

/// The model instance experiments evaluate devices through. TCAD
/// selections use the coarse-mesh anchored model, which pays for one
/// anchor extraction and then runs design searches at analytic speed.
pub fn model() -> &'static dyn DeviceModel {
    match selected() {
        Backend::Analytic => subvt_model::analytic(),
        Backend::Tcad => &subvt_tcad::model::TCAD_COARSE,
    }
}

/// A node's circuit-level device pair, characterized through the
/// selected backend.
pub fn pair(design: &NodeDesign) -> CmosPair {
    design.cmos_pair_with(model())
}

/// Re-characterizes a design at a subthreshold supply through the
/// selected backend.
///
/// # Panics
///
/// Panics if the backend fails on the already-designed device — designs
/// come out of the same backend, so a failure here is a backend bug, not
/// an input error.
pub fn at_subthreshold(design: &NodeDesign, v_dd: Volts) -> NodeDesign {
    at_subthreshold_supply_with(design, v_dd, model())
        .expect("selected backend failed on a design it produced")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_backend_is_analytic() {
        // Nothing configures a backend in the test process, so the
        // default must route to the analytic model.
        assert_eq!(selected(), Backend::Analytic);
        assert_eq!(model().cache_id(), "analytic");
    }

    #[test]
    fn reconfiguring_same_backend_is_ok() {
        assert!(configure(Backend::Analytic));
        assert!(!configure(Backend::Tcad));
    }
}
