//! Process-wide device-model and circuit-backend selection.
//!
//! The `repro` binary picks backends once (`--backend analytic|tcad` for
//! device characterization, `--circuit-backend analytic|spice` for
//! circuit metrics) before any experiment runs; every design flow,
//! figure and extension then evaluates devices through [`model`] and
//! circuit metrics through [`circuit`]. The defaults are the analytic
//! paths, which reproduce the historical output byte for byte. The two
//! seams compose: `--backend tcad --circuit-backend spice` produces
//! Fig. 4–6 fully simulator-backed at both layers.

use std::sync::OnceLock;

use subvt_circuits::backend::{CircuitBackend, CircuitBackendKind};
use subvt_circuits::inverter::CmosPair;
use subvt_core::strategy::NodeDesign;
use subvt_core::supervth::at_subthreshold_supply_with;
use subvt_model::{Backend, DeviceModel};
use subvt_units::{Temperature, Volts};

static SELECTED: OnceLock<Backend> = OnceLock::new();
static CIRCUIT_SELECTED: OnceLock<CircuitBackendKind> = OnceLock::new();
static TEMPERATURE: OnceLock<Temperature> = OnceLock::new();

/// Locks in the process-wide backend. The first selection wins; returns
/// `false` when a *different* backend was already locked (selecting the
/// active backend again is a no-op success).
pub fn configure(backend: Backend) -> bool {
    *SELECTED.get_or_init(|| backend) == backend
}

/// The selected backend; defaults to [`Backend::Analytic`] when nothing
/// was configured.
pub fn selected() -> Backend {
    *SELECTED.get_or_init(Backend::default)
}

/// Resolves a backend selector to its model instance without touching
/// the process-wide selection — the construction path shared by the
/// `repro` CLI (through [`model`]) and the `subvt-serve` daemon (which
/// resolves per request). TCAD maps to the coarse-mesh anchored model,
/// which pays for one anchor extraction and then runs design searches
/// at analytic speed.
pub fn model_for(backend: Backend) -> &'static dyn DeviceModel {
    match backend {
        Backend::Analytic => subvt_model::analytic(),
        Backend::Tcad => &subvt_tcad::model::TCAD_COARSE,
    }
}

/// Resolves a circuit-backend selector to its instance without touching
/// the process-wide selection; the circuit-layer sibling of
/// [`model_for`].
pub fn circuit_for(kind: CircuitBackendKind) -> &'static dyn CircuitBackend {
    kind.instance()
}

/// The model instance experiments evaluate devices through.
pub fn model() -> &'static dyn DeviceModel {
    model_for(selected())
}

/// Locks in the process-wide circuit backend. The first selection wins;
/// returns `false` when a *different* backend was already locked
/// (selecting the active backend again is a no-op success).
pub fn configure_circuit(kind: CircuitBackendKind) -> bool {
    *CIRCUIT_SELECTED.get_or_init(|| kind) == kind
}

/// The selected circuit backend kind; defaults to
/// [`CircuitBackendKind::Analytic`] when nothing was configured.
pub fn circuit_selected() -> CircuitBackendKind {
    *CIRCUIT_SELECTED.get_or_init(CircuitBackendKind::default)
}

/// The circuit backend experiments evaluate SNM, delay and chain-energy
/// metrics through.
pub fn circuit() -> &'static dyn CircuitBackend {
    circuit_for(circuit_selected())
}

/// Locks in the process-wide operating temperature (the `repro --temp`
/// surface). The first selection wins; returns `false` when a
/// *different* temperature was already locked (re-selecting the active
/// temperature is a no-op success).
pub fn configure_temperature(t: Temperature) -> bool {
    *TEMPERATURE.get_or_init(|| t) == t
}

/// The selected operating temperature; defaults to
/// [`Temperature::room`] when nothing was configured — the paper's
/// fixed-temperature assumption.
pub fn temperature() -> Temperature {
    *TEMPERATURE.get_or_init(Temperature::room)
}

/// A node's circuit-level device pair, characterized through the
/// selected backend at the selected operating temperature.
pub fn pair(design: &NodeDesign) -> CmosPair {
    pair_at(design, temperature())
}

/// A node's circuit-level device pair at an explicit temperature —
/// the building block of the `ext-temp` sweep (and of [`pair`], which
/// passes the process-wide selection). Characterizations are lazy, so
/// retagging the device parameters is all the plumbing required.
pub fn pair_at(design: &NodeDesign, t: Temperature) -> CmosPair {
    let mut p = design.cmos_pair_with(model());
    p.nfet.temperature = t;
    p.pfet.temperature = t;
    p
}

/// Re-characterizes a design at a subthreshold supply through the
/// selected backend.
///
/// # Panics
///
/// Panics if the backend fails on the already-designed device — designs
/// come out of the same backend, so a failure here is a backend bug, not
/// an input error.
pub fn at_subthreshold(design: &NodeDesign, v_dd: Volts) -> NodeDesign {
    at_subthreshold_supply_with(design, v_dd, model())
        .expect("selected backend failed on a design it produced")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_backend_is_analytic() {
        // Nothing configures a backend in the test process, so the
        // default must route to the analytic model.
        assert_eq!(selected(), Backend::Analytic);
        assert_eq!(model().cache_id(), "analytic");
    }

    #[test]
    fn reconfiguring_same_backend_is_ok() {
        assert!(configure(Backend::Analytic));
        assert!(!configure(Backend::Tcad));
    }

    #[test]
    fn default_circuit_backend_is_analytic() {
        assert_eq!(circuit_selected(), CircuitBackendKind::Analytic);
        assert_eq!(circuit().cache_id(), "analytic");
    }

    #[test]
    fn explicit_resolution_covers_every_backend() {
        assert_eq!(model_for(Backend::Analytic).cache_id(), "analytic");
        assert!(model_for(Backend::Tcad).cache_id().starts_with("tcad"));
        for kind in CircuitBackendKind::ALL {
            assert_eq!(circuit_for(kind).name(), kind.as_str());
        }
    }

    #[test]
    fn reconfiguring_same_circuit_backend_is_ok() {
        assert!(configure_circuit(CircuitBackendKind::Analytic));
        assert!(!configure_circuit(CircuitBackendKind::Spice));
    }
}
