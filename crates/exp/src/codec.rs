//! Flat-float codec for design results, so a full strategy flow can live
//! in the engine's content-addressed cache (whose record type is
//! `Vec<f64>`).
//!
//! Every field is laid out positionally; [`DesignSet::decode`] rejects
//! records with the wrong length or unphysical discriminants, which the
//! cache treats as a schema mismatch (a miss, then recompute). Bump the
//! cache key tag in [`crate::context`] whenever this layout changes.

use subvt_core::roadmap::TechNode;
use subvt_core::strategy::NodeDesign;
use subvt_engine::Blob;
use subvt_physics::device::{DeviceCharacteristics, DeviceGeometry, DeviceKind, DeviceParams};
use subvt_units::{
    AmpsPerMicron, FaradsPerCm2, FaradsPerMicron, MilliVoltsPerDecade, Nanometers,
    PerCubicCentimeter, Seconds, Temperature, Volts,
};

/// Floats per encoded [`DeviceParams`] (kind + 5 geometry + 5 scalars).
const PARAMS_LEN: usize = 11;
/// Floats per encoded [`DeviceCharacteristics`].
const CHARS_LEN: usize = 17;
/// Floats per encoded [`NodeDesign`].
const DESIGN_LEN: usize = 1 + 2 * (PARAMS_LEN + CHARS_LEN);

/// A cacheable set of per-node designs (one full strategy flow).
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSet(pub Vec<NodeDesign>);

fn push_params(out: &mut Vec<f64>, p: &DeviceParams) {
    out.push(match p.kind {
        DeviceKind::Nfet => 0.0,
        DeviceKind::Pfet => 1.0,
    });
    let g = &p.geometry;
    out.extend([
        g.l_poly.get(),
        g.t_ox.get(),
        g.l_overlap.get(),
        g.x_j.get(),
        g.halo_sigma.get(),
        p.n_sub.get(),
        p.n_p_halo.get(),
        p.n_sd.get(),
        p.v_dd.as_volts(),
        p.temperature.as_kelvin(),
    ]);
}

fn push_chars(out: &mut Vec<f64>, c: &DeviceCharacteristics) {
    out.extend([
        c.l_eff.get(),
        c.n_eff.get(),
        c.c_ox.get(),
        c.w_dep.get(),
        c.s_s.get(),
        c.m,
        c.v_th0.as_volts(),
        c.v_th_lin.as_volts(),
        c.v_th_sat.as_volts(),
        c.dibl,
        c.mu0,
        c.i0.get(),
        c.i_off.get(),
        c.i_on.get(),
        c.c_g.get(),
        c.c_drain.get(),
        c.tau.get(),
    ]);
}

fn read_params(r: &[f64]) -> Option<DeviceParams> {
    let kind = if r[0] == 0.0 {
        DeviceKind::Nfet
    } else if r[0] == 1.0 {
        DeviceKind::Pfet
    } else {
        return None;
    };
    let kelvin = r[10];
    if !(kelvin.is_finite() && kelvin > 0.0) {
        return None;
    }
    Some(DeviceParams {
        kind,
        geometry: DeviceGeometry {
            l_poly: Nanometers::new(r[1]),
            t_ox: Nanometers::new(r[2]),
            l_overlap: Nanometers::new(r[3]),
            x_j: Nanometers::new(r[4]),
            halo_sigma: Nanometers::new(r[5]),
        },
        n_sub: PerCubicCentimeter::new(r[6]),
        n_p_halo: PerCubicCentimeter::new(r[7]),
        n_sd: PerCubicCentimeter::new(r[8]),
        v_dd: Volts::new(r[9]),
        temperature: Temperature::from_kelvin(kelvin),
    })
}

fn read_chars(r: &[f64]) -> DeviceCharacteristics {
    DeviceCharacteristics {
        l_eff: Nanometers::new(r[0]),
        n_eff: PerCubicCentimeter::new(r[1]),
        c_ox: FaradsPerCm2::new(r[2]),
        w_dep: Nanometers::new(r[3]),
        s_s: MilliVoltsPerDecade::new(r[4]),
        m: r[5],
        v_th0: Volts::new(r[6]),
        v_th_lin: Volts::new(r[7]),
        v_th_sat: Volts::new(r[8]),
        dibl: r[9],
        mu0: r[10],
        i0: AmpsPerMicron::new(r[11]),
        i_off: AmpsPerMicron::new(r[12]),
        i_on: AmpsPerMicron::new(r[13]),
        c_g: FaradsPerMicron::new(r[14]),
        c_drain: FaradsPerMicron::new(r[15]),
        tau: Seconds::new(r[16]),
    }
}

fn node_from_generation(g: f64) -> Option<TechNode> {
    TechNode::ALL
        .iter()
        .copied()
        .find(|n| f64::from(n.generation()) == g)
}

impl Blob for DesignSet {
    fn encode(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(1 + self.0.len() * DESIGN_LEN);
        out.push(self.0.len() as f64);
        for d in &self.0 {
            out.push(f64::from(d.node.generation()));
            push_params(&mut out, &d.nfet);
            push_params(&mut out, &d.pfet);
            push_chars(&mut out, &d.nfet_chars);
            push_chars(&mut out, &d.pfet_chars);
        }
        out
    }

    fn decode(record: &[f64]) -> Option<Self> {
        let (&count, rest) = record.split_first()?;
        if count < 0.0 || count.fract() != 0.0 {
            return None;
        }
        let count = count as usize;
        if rest.len() != count * DESIGN_LEN {
            return None;
        }
        let mut designs = Vec::with_capacity(count);
        for chunk in rest.chunks_exact(DESIGN_LEN) {
            let node = node_from_generation(chunk[0])?;
            let mut at = 1;
            let nfet = read_params(&chunk[at..at + PARAMS_LEN])?;
            at += PARAMS_LEN;
            let pfet = read_params(&chunk[at..at + PARAMS_LEN])?;
            at += PARAMS_LEN;
            let nfet_chars = read_chars(&chunk[at..at + CHARS_LEN]);
            at += CHARS_LEN;
            let pfet_chars = read_chars(&chunk[at..at + CHARS_LEN]);
            designs.push(NodeDesign {
                node,
                nfet,
                pfet,
                nfet_chars,
                pfet_chars,
            });
        }
        Some(Self(designs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subvt_core::strategy::ScalingStrategy;
    use subvt_core::SubVthStrategy;

    #[test]
    fn design_set_round_trips_exactly() {
        let designs = SubVthStrategy::default().design_all().unwrap();
        let set = DesignSet(designs);
        let decoded = DesignSet::decode(&set.encode()).unwrap();
        assert_eq!(decoded, set);
    }

    #[test]
    fn decode_rejects_malformed_records() {
        assert_eq!(DesignSet::decode(&[]), None);
        assert_eq!(DesignSet::decode(&[1.0, 2.0, 3.0]), None);
        assert_eq!(DesignSet::decode(&[-1.0]), None);
        let set = DesignSet(SubVthStrategy::default().design_all().unwrap());
        let mut bits = set.encode();
        bits[1] = 9.0; // no node has generation 9
        assert_eq!(DesignSet::decode(&bits), None);
        let mut bits = set.encode();
        bits.pop();
        assert_eq!(DesignSet::decode(&bits), None);
    }

    #[test]
    fn empty_set_round_trips() {
        assert_eq!(
            DesignSet::decode(&DesignSet(vec![]).encode()),
            Some(DesignSet(vec![]))
        );
    }
}
