//! Experiment harness reproducing every table and figure of
//! *"Nanometer Device Scaling in Subthreshold Circuits"* (DAC 2007).
//!
//! Each experiment module regenerates one of the paper's result
//! artefacts from the `subvt` stack (device physics → scaling flows →
//! circuit simulation) and renders it as an aligned text table or CSV.
//! The `repro` binary drives them:
//!
//! ```text
//! repro all            # every table and figure, paper order
//! repro table2 fig6    # a subset
//! repro --csv fig2     # CSV to stdout
//! ```
//!
//! Paper-vs-measured comparisons for every experiment are recorded in
//! the repository's `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod cachefile;
pub mod codec;
pub mod context;
pub mod extensions;
pub mod figs_circuit;
pub mod figs_compare;
pub mod figs_device;
pub mod report;
pub mod runner;
pub mod table;
pub mod tables;
pub mod tracefmt;

pub use cachefile::{CacheSession, SessionMode};
pub use context::StudyContext;
pub use runner::{
    run, run_all, run_guarded, FigureFailure, ALL_EXPERIMENTS, EXTENSION_EXPERIMENTS,
};
pub use table::Table;
