//! Per-run manifest (`repro --manifest <path>`).
//!
//! The manifest is one JSON object summarising a `repro` invocation for
//! CI artefacts and regression tracking: which backend produced the
//! numbers, how parallel the run was, how long each experiment took,
//! how the cache behaved per namespace, and how hard the solvers had to
//! work (Gummel/Poisson iteration quantiles). Schema:
//!
//! ```json
//! {
//!   "v": 2,
//!   "backend": "tcad.coarse.standard",
//!   "circuit_backend": "spice",
//!   "jobs": 8,
//!   "wall_us": 1234567,
//!   "experiments": [{"id": "fig2", "runs": 1, "dur_us": 98765}, ...],
//!   "cache": {"hits": 40, "misses": 2,
//!             "namespaces": [{"ns": "design", "hits": 40, "misses": 2}]},
//!   "counters": {"tcad.gummel.bias_points": 123, ...},
//!   "gauges": {...},
//!   "histograms": [{"name": "tcad.gummel.iterations", "count": 123,
//!                   "sum": 1.5e3, "min": 2, "max": 31,
//!                   "p50": 10, "p95": 20}, ...],
//!   "solvers": {
//!     "poisson": {"solves": 512, "diverged": 0},
//!     "gummel":  {"bias_points": 123, "stalls": 0, "poisson_failures": 0},
//!     "spice":   {"dc_solves": 322, "tran_runs": 8}
//!   },
//!   "failures": [{"id": "fig4", "message": "..."}],
//!   "recoveries": [{"site": "tcad.gummel", "step": "retry",
//!                   "detail": "...", "recovered": true}]
//! }
//! ```
//!
//! `min`/`max`/quantiles are `null` for empty histograms; `experiments`
//! aggregates `experiment.<id>` spans by id (an id re-run under
//! `repro everything` sums its durations and bumps `runs`). Schema v2
//! added the `failures` block (experiments that did not produce a table,
//! populated by `repro --keep-going`) and the `recoveries` block (every
//! solver recovery-ladder rung taken during the run).

use std::io::{self, Write};

use subvt_engine::cache::CacheStats;
use subvt_engine::recovery::RecoveryRecord;
use subvt_engine::trace::{self, TraceSnapshot};

use crate::runner::FigureFailure;

/// Schema version stamped into bench artifacts (`BENCH_serve.json`,
/// `BENCH_spice.json`).
pub const BENCH_SCHEMA: u64 = 1;

/// `git rev-parse --short=12 HEAD`, or `"unknown"` outside a checkout
/// (artifacts must still be writable from an exported tarball).
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// The provenance members every bench artifact carries, rendered as a
/// JSON fragment (no braces, no trailing comma):
/// `"schema":1,"rev":"…","generated_utc":"…"`.
pub fn provenance_fragment() -> String {
    format!(
        "\"schema\":{BENCH_SCHEMA},\"rev\":\"{}\",\"generated_utc\":\"{}\"",
        git_rev(),
        subvt_engine::clock::iso8601_utc(subvt_engine::clock::unix_now()),
    )
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Renders the manifest JSON from an explicit snapshot + cache stats
/// (the testable core of [`write_manifest`]).
pub fn render_manifest(
    snap: &TraceSnapshot,
    cache: &CacheStats,
    backend: &str,
    circuit_backend: &str,
    jobs: usize,
    failures: &[FigureFailure],
    recoveries: &[RecoveryRecord],
) -> String {
    let mut out = String::new();
    out.push_str("{\"v\":2,");
    out.push_str(&format!("\"backend\":{},", json_str(backend)));
    out.push_str(&format!(
        "\"circuit_backend\":{},",
        json_str(circuit_backend)
    ));
    out.push_str(&format!("\"jobs\":{jobs},"));
    out.push_str(&format!("\"wall_us\":{},", snap.wall_us));

    // Per-experiment durations from `experiment.<id>` spans, aggregated
    // by id in first-seen (i.e. completion) order.
    let mut experiments: Vec<(String, u64, u64)> = Vec::new();
    for s in &snap.spans {
        if let Some(id) = s.name.strip_prefix("experiment.") {
            match experiments.iter_mut().find(|(e, _, _)| e == id) {
                Some((_, runs, dur)) => {
                    *runs += 1;
                    *dur += s.dur_us;
                }
                None => experiments.push((id.to_owned(), 1, s.dur_us)),
            }
        }
    }
    out.push_str("\"experiments\":[");
    for (i, (id, runs, dur)) in experiments.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":{},\"runs\":{runs},\"dur_us\":{dur}}}",
            json_str(id)
        ));
    }
    out.push_str("],");

    out.push_str(&format!(
        "\"cache\":{{\"hits\":{},\"misses\":{},\"namespaces\":[",
        cache.hits, cache.misses
    ));
    for (i, (ns, hits, misses)) in cache.by_namespace.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"ns\":{},\"hits\":{hits},\"misses\":{misses}}}",
            json_str(ns)
        ));
    }
    out.push_str("]},");

    out.push_str("\"counters\":{");
    for (i, (name, value)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{value}", json_str(name)));
    }
    out.push_str("},");

    out.push_str("\"gauges\":{");
    for (i, (name, value)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{}", json_str(name), json_f64(*value)));
    }
    out.push_str("},");

    out.push_str("\"histograms\":[");
    for (i, (name, h)) in snap.hists.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{}}}",
            json_str(name),
            h.count,
            json_f64(h.sum),
            json_f64(h.min),
            json_f64(h.max),
            json_f64(h.quantile(0.5)),
            json_f64(h.quantile(0.95)),
        ));
    }
    out.push_str("],");

    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    out.push_str(&format!(
        "\"solvers\":{{\"poisson\":{{\"solves\":{},\"diverged\":{}}},\
         \"gummel\":{{\"bias_points\":{},\"stalls\":{},\"poisson_failures\":{}}},\
         \"spice\":{{\"dc_solves\":{},\"tran_runs\":{}}}}}",
        counter("tcad.poisson.solves"),
        counter("tcad.poisson.diverged"),
        counter("tcad.gummel.bias_points"),
        counter("tcad.gummel.stall"),
        counter("tcad.gummel.poisson_failures"),
        counter("spice.dc.solves"),
        counter("spice.tran.runs"),
    ));

    out.push_str(",\"failures\":[");
    for (i, f) in failures.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":{},\"message\":{}}}",
            json_str(&f.id),
            json_str(&f.message)
        ));
    }
    out.push_str("],");

    out.push_str("\"recoveries\":[");
    for (i, r) in recoveries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"site\":{},\"step\":{},\"detail\":{},\"recovered\":{}}}",
            json_str(&r.site),
            json_str(r.step.as_str()),
            json_str(&r.detail),
            r.recovered
        ));
    }
    out.push(']');

    out.push('}');
    out
}

/// Renders the `BENCH_spice.json` artifact from a trace snapshot of a
/// spice-backed `montecarlo` run: per-sample solve latencies (the
/// `montecarlo.sample_ms` histogram), the spice-over-analytic wall
/// ratio, failed samples, and the factor-reuse Newton counters. The
/// shape mirrors `BENCH_serve.json` (same provenance header and
/// `latency_ms` block) so `subvt-bench-diff` gates both trajectories.
///
/// # Errors
///
/// Returns a message when the snapshot holds no spice Monte-Carlo
/// samples — the run was analytic-backed or did not include the
/// `montecarlo` experiment.
pub fn render_spice_bench(snap: &TraceSnapshot) -> Result<String, String> {
    let hist = snap
        .hists
        .get("montecarlo.sample_ms")
        .filter(|h| h.count > 0)
        .ok_or(
            "no spice Monte-Carlo samples traced; \
             run `repro montecarlo --circuit-backend spice --bench <path>`",
        )?;
    let gauge = |name: &str| snap.gauges.get(name).copied().unwrap_or(f64::NAN);
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    let spice_ms = gauge("montecarlo.spice_ms");
    let elapsed_s = spice_ms / 1e3;
    let throughput = hist.count as f64 / elapsed_s.max(f64::MIN_POSITIVE);
    Ok(format!(
        "{{\"suite\":\"spice\",{},\"requests\":{},\"errors\":{},\
         \"elapsed_s\":{},\"throughput_rps\":{},\
         \"latency_ms\":{{\"min\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{},\"mean\":{}}},\
         \"analytic_ms\":{},\"spice_ms\":{},\"spice_over_analytic\":{},\
         \"counters\":{{\"spice.lu.factor\":{},\"spice.lu.resolve\":{},\
         \"spice.newton.warm_start\":{},\"spice.dc.solves\":{}}}}}",
        provenance_fragment(),
        hist.count,
        counter("montecarlo.failures"),
        json_f64(elapsed_s),
        json_f64(throughput),
        json_f64(hist.min),
        json_f64(hist.quantile(0.5)),
        json_f64(hist.quantile(0.9)),
        json_f64(hist.quantile(0.99)),
        json_f64(hist.max),
        json_f64(hist.mean()),
        json_f64(gauge("montecarlo.analytic_ms")),
        json_f64(spice_ms),
        json_f64(gauge("montecarlo.spice_over_analytic")),
        counter("spice.lu.factor"),
        counter("spice.lu.resolve"),
        counter("spice.newton.warm_start"),
        counter("spice.dc.solves"),
    ))
}

/// Drains the global tracer (running cache-stats flush hooks) and the
/// global recovery log, and writes the manifest for the current process:
/// global cache stats, the configured backend's cache id, the engine
/// pool width, plus the given figure failures.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_manifest(w: &mut impl Write, failures: &[FigureFailure]) -> io::Result<()> {
    let snap = trace::global().drain();
    let stats = subvt_engine::global_cache().stats();
    let recoveries = subvt_engine::recovery::drain();
    let manifest = render_manifest(
        &snap,
        &stats,
        &crate::backend::model().cache_id(),
        &crate::backend::circuit().cache_id(),
        subvt_engine::global().workers(),
        failures,
        &recoveries,
    );
    writeln!(w, "{manifest}")
}

/// [`write_manifest`] for a fleet parent: the parent's own v2 manifest
/// extended with a `"fleet"` block (`fleet_fragment`, an
/// already-rendered JSON value describing shards/restarts/reclaims)
/// and a `"workers"` array holding each worker's manifest verbatim —
/// the merge keeps every per-worker counter and recovery record
/// inspectable instead of flattening them away.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_fleet_manifest(
    w: &mut impl Write,
    failures: &[FigureFailure],
    fleet_fragment: &str,
    worker_manifests: &[String],
) -> io::Result<()> {
    let snap = trace::global().drain();
    let stats = subvt_engine::global_cache().stats();
    let recoveries = subvt_engine::recovery::drain();
    let manifest = render_manifest(
        &snap,
        &stats,
        &crate::backend::model().cache_id(),
        &crate::backend::circuit().cache_id(),
        subvt_engine::global().workers(),
        failures,
        &recoveries,
    );
    // render_manifest returns one closed JSON object; splice the fleet
    // blocks in before the final brace.
    let base = manifest
        .strip_suffix('}')
        .expect("render_manifest yields a closed object");
    let mut out = String::from(base);
    out.push_str(",\"fleet\":");
    out.push_str(fleet_fragment);
    out.push_str(",\"workers\":[");
    for (i, m) in worker_manifests.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(m.trim());
    }
    out.push_str("]}");
    writeln!(w, "{out}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracefmt;

    fn sample_snapshot() -> TraceSnapshot {
        let tracer = trace::Tracer::new();
        {
            let _e = tracer.span("experiment.fig2");
            drop(tracer.span("tcad.id_vg"));
        }
        drop(tracer.span("experiment.fig2"));
        tracer.add("tcad.gummel.bias_points", 12);
        tracer.observe("tcad.gummel.iterations", 9.0);
        tracer.gauge("design.ioff_target_log10", -9.0);
        tracer.snapshot()
    }

    fn sample_stats() -> CacheStats {
        CacheStats {
            hits: 5,
            misses: 2,
            by_namespace: vec![("design".into(), 5, 2)],
        }
    }

    #[test]
    fn manifest_is_valid_json_with_expected_fields() {
        let text = render_manifest(
            &sample_snapshot(),
            &sample_stats(),
            "tcad.coarse.standard",
            "spice",
            4,
            &[],
            &[],
        );
        let v = tracefmt::parse_json(&text).expect("manifest parses");
        assert_eq!(v.get("v").unwrap().as_u64(), Some(2));
        assert_eq!(
            v.get("backend").unwrap().as_str(),
            Some("tcad.coarse.standard")
        );
        assert_eq!(v.get("circuit_backend").unwrap().as_str(), Some("spice"));
        assert_eq!(v.get("jobs").unwrap().as_u64(), Some(4));
        let cache = v.get("cache").unwrap();
        assert_eq!(cache.get("hits").unwrap().as_u64(), Some(5));
        let ns = cache.get("namespaces").unwrap().as_arr().unwrap();
        assert_eq!(ns[0].get("ns").unwrap().as_str(), Some("design"));
        let solvers = v.get("solvers").unwrap();
        assert_eq!(
            solvers
                .get("gummel")
                .unwrap()
                .get("bias_points")
                .unwrap()
                .as_u64(),
            Some(12)
        );
    }

    #[test]
    fn experiments_aggregate_repeat_runs() {
        let text = render_manifest(
            &sample_snapshot(),
            &sample_stats(),
            "analytic",
            "analytic",
            1,
            &[],
            &[],
        );
        let v = tracefmt::parse_json(&text).unwrap();
        let exps = v.get("experiments").unwrap().as_arr().unwrap();
        assert_eq!(exps.len(), 1);
        assert_eq!(exps[0].get("id").unwrap().as_str(), Some("fig2"));
        assert_eq!(exps[0].get("runs").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn histogram_quantiles_serialise() {
        let text = render_manifest(
            &sample_snapshot(),
            &sample_stats(),
            "analytic",
            "analytic",
            1,
            &[],
            &[],
        );
        let v = tracefmt::parse_json(&text).unwrap();
        let hists = v.get("histograms").unwrap().as_arr().unwrap();
        let gummel = hists
            .iter()
            .find(|h| h.get("name").unwrap().as_str() == Some("tcad.gummel.iterations"))
            .unwrap();
        assert_eq!(gummel.get("count").unwrap().as_u64(), Some(1));
        assert!(gummel.get("p50").unwrap().as_f64().unwrap() >= 9.0);
    }

    #[test]
    fn spice_bench_artifact_renders_and_requires_samples() {
        let tracer = trace::Tracer::new();
        assert!(render_spice_bench(&tracer.snapshot())
            .unwrap_err()
            .contains("no spice Monte-Carlo samples"));
        for ms in [0.004, 0.008, 0.015, 0.04, 0.4] {
            tracer.observe_with("montecarlo.sample_ms", ms, &[0.005, 0.01, 0.05, 0.1, 1.0]);
        }
        tracer.gauge("montecarlo.spice_ms", 500.0);
        tracer.gauge("montecarlo.analytic_ms", 100.0);
        tracer.gauge("montecarlo.spice_over_analytic", 5.0);
        tracer.add("montecarlo.failures", 2);
        tracer.add("spice.lu.factor", 7);
        tracer.add("spice.lu.resolve", 93);
        tracer.add("spice.newton.warm_start", 50);
        let text = render_spice_bench(&tracer.snapshot()).unwrap();
        let v = tracefmt::parse_json(&text).expect("artifact parses");
        assert_eq!(v.get("suite").unwrap().as_str(), Some("spice"));
        assert_eq!(v.get("schema").unwrap().as_u64(), Some(BENCH_SCHEMA));
        assert_eq!(v.get("requests").unwrap().as_u64(), Some(5));
        assert_eq!(v.get("errors").unwrap().as_u64(), Some(2));
        let lat = v.get("latency_ms").unwrap();
        for key in ["min", "p50", "p90", "p99", "max", "mean"] {
            assert!(
                lat.get(key).unwrap().as_f64().unwrap().is_finite(),
                "latency_ms.{key}"
            );
        }
        assert_eq!(v.get("spice_over_analytic").unwrap().as_f64(), Some(5.0));
        let counters = v.get("counters").unwrap();
        assert_eq!(counters.get("spice.lu.resolve").unwrap().as_u64(), Some(93));
    }

    #[test]
    fn failures_and_recoveries_round_trip() {
        use subvt_engine::recovery::RecoveryStep;
        let failures = vec![FigureFailure {
            id: "fig4".into(),
            message: "injected \"panic\"".into(),
        }];
        let recoveries = vec![RecoveryRecord {
            site: "tcad.gummel".into(),
            step: RecoveryStep::DampingIncrease,
            detail: "relax 0.5".into(),
            recovered: true,
        }];
        let text = render_manifest(
            &sample_snapshot(),
            &sample_stats(),
            "analytic",
            "analytic",
            1,
            &failures,
            &recoveries,
        );
        let v = tracefmt::parse_json(&text).unwrap();
        let fails = v.get("failures").unwrap().as_arr().unwrap();
        assert_eq!(fails.len(), 1);
        assert_eq!(fails[0].get("id").unwrap().as_str(), Some("fig4"));
        assert_eq!(
            fails[0].get("message").unwrap().as_str(),
            Some("injected \"panic\"")
        );
        let recs = v.get("recoveries").unwrap().as_arr().unwrap();
        assert_eq!(recs[0].get("site").unwrap().as_str(), Some("tcad.gummel"));
        assert_eq!(
            recs[0].get("step").unwrap().as_str(),
            Some("damping_increase")
        );
        assert_eq!(recs[0].get("recovered").unwrap().as_bool(), Some(true));
    }
}
