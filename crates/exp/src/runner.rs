//! Experiment registry and dispatch for the `repro` binary.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::context::StudyContext;
use crate::table::Table;
use crate::{extensions, figs_circuit, figs_compare, figs_device, tables};

/// A structured record of an experiment that failed to produce its
/// table — the degradation unit for `repro --keep-going`, reported in
/// the manifest's `failures` block instead of aborting the sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FigureFailure {
    /// Experiment id (e.g. `fig4`).
    pub id: String,
    /// Panic payload or error message.
    pub message: String,
}

impl core::fmt::Display for FigureFailure {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "experiment `{}` failed: {}", self.id, self.message)
    }
}

/// All experiment identifiers in paper order.
pub const ALL_EXPERIMENTS: [&str; 14] = [
    "table1", "table2", "table3", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
    "fig10", "fig11", "fig12",
];

/// Extension studies beyond the paper's artefacts (run with `repro ext`
/// or by id).
pub const EXTENSION_EXPERIMENTS: [&str; 9] = [
    "ext-temperature",
    "ext-oxide",
    "ext-sram",
    "ext-variability",
    "ext-gates",
    "ext-backends",
    "ext-ringosc",
    "ext-temp",
    "montecarlo",
];

/// Runs one experiment by id. Returns `None` for an unknown id.
///
/// Experiments that need device designs recall them through the engine's
/// `design` cache (see [`StudyContext::compute`]) — the first consumer
/// pays for the flows, every later one is a recorded cache hit. Each
/// registered experiment records an `experiment.<id>` trace span.
pub fn run(id: &str) -> Option<Table> {
    let ctx = || {
        StudyContext::compute_with(crate::backend::model())
            .expect("design flows failed on roadmap inputs")
    };
    let _span = subvt_engine::trace::span(format!("experiment.{id}"))
        .attr("backend", crate::backend::model().cache_id())
        .attr("circuit_backend", crate::backend::circuit().cache_id());
    Some(match id {
        "table1" => tables::table1(),
        "table2" => tables::table2(&ctx()),
        "table3" => tables::table3(&ctx()),
        "fig2" => figs_device::fig2(&ctx()),
        "fig3" => figs_device::fig3(&ctx()),
        "fig4" => figs_circuit::fig4(&ctx()),
        "fig5" => figs_circuit::fig5(&ctx()),
        "fig6" => figs_circuit::fig6(&ctx()),
        "fig7" => figs_device::fig7(),
        "fig8" => figs_device::fig8(),
        "fig9" => figs_device::fig9(&ctx()),
        "fig10" => figs_compare::fig10(&ctx()),
        "fig11" => figs_compare::fig11(&ctx()),
        "fig12" => figs_compare::fig12(&ctx()),
        "ext-temperature" => extensions::ext_temperature(),
        "ext-oxide" => extensions::ext_oxide_scaling(),
        "ext-sram" => extensions::ext_sram(&ctx()),
        "ext-variability" => extensions::ext_variability(&ctx()),
        "ext-gates" => extensions::ext_gates(&ctx()),
        "ext-backends" => extensions::ext_backends(),
        "ext-ringosc" => extensions::ext_ringosc(&ctx()),
        "ext-temp" => extensions::ext_temp(&ctx()),
        "montecarlo" => extensions::montecarlo(&ctx()),
        _ => return None,
    })
}

/// Runs one experiment with panic isolation: a panicking experiment
/// (diverged solver, poisoned expectation, injected fault) becomes a
/// [`FigureFailure`] instead of tearing down the whole sweep. Returns
/// `None` for an unknown id, like [`run`].
///
/// The experiment body runs under `catch_unwind`; the registry closure
/// holds no shared mutable state beyond the engine's own panic-safe
/// caches, so unwinding cannot leave it inconsistent.
pub fn run_guarded(id: &str) -> Option<Result<Table, FigureFailure>> {
    if !ALL_EXPERIMENTS.contains(&id) && !EXTENSION_EXPERIMENTS.contains(&id) {
        return None;
    }
    // The fault-injection job-panic site lives here: each guarded
    // experiment is one "job", so `SUBVT_FAULTS=...,p_panic=...` chaos
    // runs exercise exactly this isolation boundary. Unarmed (the
    // default), `panic_point` is a no-op.
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        subvt_engine::faultinject::panic_point();
        run(id)
    }));
    Some(match outcome {
        Ok(Some(table)) => Ok(table),
        // Unreachable given the registry check above, but keep the
        // degradation total: an id that dispatches to nothing is a failure.
        Ok(None) => Err(FigureFailure {
            id: id.to_owned(),
            message: "experiment dispatched to no implementation".to_owned(),
        }),
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            subvt_engine::trace::global().add("repro.figure_failures", 1);
            Err(FigureFailure {
                id: id.to_owned(),
                message,
            })
        }
    })
}

/// Runs every experiment in paper order, concurrently on the engine
/// pool. Results are returned in registry order and are identical to a
/// serial `ALL_EXPERIMENTS.iter().map(run)` loop: every experiment is a
/// deterministic pure function of the (cached) study context.
pub fn run_all() -> Vec<Table> {
    let _span = subvt_engine::trace::span("runner.run_all");
    subvt_engine::global().map(ALL_EXPERIMENTS.to_vec(), |id| {
        run(id).expect("registered experiment")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_rejects_unknown() {
        assert!(run("fig99").is_none());
    }

    #[test]
    fn cheap_experiments_run() {
        // table1 needs no designs; smoke-test the dispatch path.
        let t = run("table1").unwrap();
        assert_eq!(t.rows.len(), 6);
    }

    #[test]
    fn extension_registry_dispatches() {
        for id in EXTENSION_EXPERIMENTS {
            // Only check the cheap ones here (context-heavy extensions are
            // exercised by the extensions module's own tests).
            if id == "ext-temperature" {
                assert!(run(id).is_some());
            }
        }
    }

    #[test]
    fn run_guarded_reports_unknown_and_catches_panics() {
        assert!(run_guarded("fig99").is_none());
        // table1 is cheap and infallible.
        let ok = run_guarded("table1").unwrap();
        assert!(ok.is_ok());
    }

    #[test]
    fn registry_is_complete() {
        assert_eq!(ALL_EXPERIMENTS.len(), 14);
        // Extensions: Ext A-H plus the backend-routed Monte Carlo.
        assert_eq!(EXTENSION_EXPERIMENTS.len(), 9);
        assert!(EXTENSION_EXPERIMENTS.contains(&"montecarlo"));
        // 3 tables + 11 figures (Fig. 2 through Fig. 12).
        assert_eq!(
            ALL_EXPERIMENTS
                .iter()
                .filter(|s| s.starts_with("table"))
                .count(),
            3
        );
        assert_eq!(
            ALL_EXPERIMENTS
                .iter()
                .filter(|s| s.starts_with("fig"))
                .count(),
            11
        );
    }
}
