//! Circuit-level figures on the super-V_th devices: Fig. 4 (inverter
//! SNM), Fig. 5 (FO1 delay) and Fig. 6 (chain energy and V_min).

use subvt_circuits::chain::InverterChain;
use subvt_circuits::snm::noise_margins;
use subvt_core::metrics::energy_factor;
use subvt_core::strategy::NodeDesign;
use subvt_units::Volts;

use crate::context::{StudyContext, V_SUBVT};
use crate::table::{fmt, Table};

/// VTC sample count for SNM extraction.
const VTC_POINTS: usize = 161;

/// SNM of a node's inverter at the given supply, via the selected
/// circuit backend's VTC and the paper's gain = −1 definition. Returns
/// NaN if the solve fails or the inverter has no restoring region at
/// that supply.
pub fn snm_at(design: &NodeDesign, v_dd: Volts) -> f64 {
    let pair = crate::backend::pair(design);
    crate::backend::circuit()
        .vtc(&pair, v_dd, VTC_POINTS)
        .ok()
        .and_then(|vtc| noise_margins(&vtc))
        .map(|nm| nm.snm())
        .unwrap_or(f64::NAN)
}

/// Measured FO1 delay of a node's inverter at the given supply, through
/// the selected circuit backend. Returns NaN on measurement failure.
pub fn delay_at(design: &NodeDesign, v_dd: Volts) -> f64 {
    let pair = crate::backend::pair(design);
    crate::backend::circuit()
        .fo1_delay(&pair, v_dd)
        .map(|d| d.average().get())
        .unwrap_or(f64::NAN)
}

/// Fig. 4: simulated inverter SNM at nominal `V_dd` and at 250 mV across
/// nodes (super-V_th strategy).
///
/// Paper shape: SNM degrades more than 10 % between 90 nm and 32 nm.
pub fn fig4(ctx: &StudyContext) -> Table {
    let rows: Vec<(String, f64, f64)> = run_per_node(&ctx.supervth, |d| {
        let nominal = snm_at(d, d.nfet.v_dd);
        let sub = snm_at(d, Volts::new(V_SUBVT));
        (nominal, sub)
    });
    let base_sub = rows[0].2;
    let mut t = Table::new(
        "Fig 4: simulated inverter SNM (super-Vth scaling)",
        &[
            "Node",
            "SNM @nominal (mV)",
            "SNM @250mV (mV)",
            "250mV SNM vs 90nm",
        ],
    );
    for (name, nominal, sub) in rows {
        t.push_row(vec![
            name,
            fmt(nominal * 1e3, 1),
            fmt(sub * 1e3, 1),
            fmt(sub / base_sub, 3),
        ]);
    }
    t
}

/// Fig. 5: simulated FO1 inverter delay at nominal `V_dd` and at 250 mV
/// across nodes (super-V_th strategy), normalized to 90 nm.
///
/// Paper shape: nominal delay improves with scaling (slower than 30 %/gen);
/// 250 mV delay is *non-monotonic* — it increases except at 32 nm —
/// because V_th wanders under the leakage-constrained flow.
pub fn fig5(ctx: &StudyContext) -> Table {
    let rows: Vec<(String, f64, f64)> = run_per_node(&ctx.supervth, |d| {
        let nominal = delay_at(d, d.nfet.v_dd);
        let sub = delay_at(d, Volts::new(V_SUBVT));
        (nominal, sub)
    });
    let base_nom = rows[0].1;
    let base_sub = rows[0].2;
    let mut t = Table::new(
        "Fig 5: simulated FO1 inverter delay (super-Vth scaling)",
        &[
            "Node",
            "t_p @nominal (ps)",
            "t_p @250mV (ns)",
            "nominal vs 90nm",
            "250mV vs 90nm",
        ],
    );
    for (name, nominal, sub) in rows {
        t.push_row(vec![
            name,
            fmt(nominal * 1e12, 1),
            fmt(sub * 1e9, 1),
            fmt(nominal / base_nom, 2),
            fmt(sub / base_sub, 2),
        ]);
    }
    t
}

/// Fig. 6: energy per cycle and `V_min` for a 30-inverter chain at
/// activity 0.1 (super-V_th strategy), with the `C_L·S_S²` factor
/// overlay.
///
/// Paper shape: energy falls with scaling but `V_min` *rises* ~40 mV from
/// 90 nm to 32 nm; the `C_L·S_S²` factor tracks the measured energy.
pub fn fig6(ctx: &StudyContext) -> Table {
    let mut rows = Vec::new();
    for d in &ctx.supervth {
        let chain = InverterChain::paper_chain(crate::backend::pair(d));
        let mep = crate::backend::circuit()
            .minimum_energy_point(&chain)
            .expect("chain MEP search failed");
        // The Eq. 8 factor uses width-normalized capacitance; scale by
        // the node's device width so it overlays the absolute energy of
        // the width-scaled chain.
        let factor = energy_factor(&d.nfet_chars) * d.node.dimension_scale();
        rows.push((
            d.node.name().to_owned(),
            mep.energy.as_femtojoules(),
            mep.v_min.as_millivolts(),
            factor,
        ));
    }
    let e0 = rows[0].1;
    let f0 = rows[0].3;
    let mut t = Table::new(
        "Fig 6: energy/cycle and V_min, 30-inverter chain, alpha = 0.1 (super-Vth)",
        &[
            "Node",
            "E/cycle @Vmin (fJ)",
            "V_min (mV)",
            "E vs 90nm",
            "C_L*S_S^2 vs 90nm",
        ],
    );
    for (name, e, vmin, f) in rows {
        t.push_row(vec![
            name,
            fmt(e, 3),
            fmt(vmin, 0),
            fmt(e / e0, 2),
            fmt(f / f0, 2),
        ]);
    }
    t
}

/// Runs a per-node closure in parallel across the four nodes (each SPICE
/// measurement is independent). Results keep the input node order.
fn run_per_node<F>(designs: &[NodeDesign], f: F) -> Vec<(String, f64, f64)>
where
    F: Fn(&NodeDesign) -> (f64, f64) + Send + Sync + 'static,
{
    subvt_engine::global().map(designs.to_vec(), move |d| {
        let (a, b) = f(&d);
        (d.node.name().to_owned(), a, b)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_snm_degrades_at_250mv() {
        let t = fig4(StudyContext::cached());
        let first: f64 = t.rows[0][2].parse().unwrap();
        let last: f64 = t.rows[3][2].parse().unwrap();
        // Paper: >10 % degradation 90 → 32 nm.
        assert!(
            last < 0.95 * first,
            "SNM should degrade: 90nm {first} mV vs 32nm {last} mV"
        );
        // Sub-V_th SNM magnitudes in the tens of mV.
        assert!(first > 40.0 && first < 120.0);
    }

    #[test]
    fn fig6_vmin_rises_with_scaling() {
        let t = fig6(StudyContext::cached());
        let first: f64 = t.rows[0][2].parse().unwrap();
        let last: f64 = t.rows[3][2].parse().unwrap();
        // Paper: V_min increases by ~40 mV between 90 nm and 32 nm.
        assert!(
            last > first + 5.0,
            "V_min should rise with super-Vth scaling: {first} -> {last} mV"
        );
    }

    #[test]
    fn fig6_energy_factor_tracks_energy() {
        let t = fig6(StudyContext::cached());
        for row in &t.rows {
            let e: f64 = row[3].parse().unwrap();
            let f: f64 = row[4].parse().unwrap();
            // Eq. 8 validation: the factor tracks measured energy within
            // ~35 % (the paper's Fig. 6 shows a close match).
            assert!(
                (e - f).abs() < 0.35_f64.max(0.35 * e),
                "E {e} vs factor {f}"
            );
        }
    }
}
