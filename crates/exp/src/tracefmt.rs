//! Parsing and validation of the engine's trace sinks, plus the
//! `repro trace-report` renderer.
//!
//! The engine writes two machine-readable formats (see
//! `subvt_engine::trace`): JSON-lines (schema `v2`) and Chrome
//! trace-event JSON. This module re-reads both through a small
//! recursive-descent JSON parser — deliberately independent of the
//! writers, so round-trip tests catch malformed output instead of
//! mirroring its bugs — validates the structural invariants (every line
//! valid JSON, span tree acyclic, parent ids resolve, histogram bucket
//! counts sum to the sample count) and renders a self-time-sorted span
//! tree with counter/histogram tables.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects (`None` otherwise).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Non-negative integer value, if this is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a human-readable description with a byte offset.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let token = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "non-utf8".to_owned())?;
    token
        .parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{token}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_owned())?;
                        // Surrogates never occur in our writers; map them
                        // to the replacement character rather than erroring.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through untouched).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| "non-utf8".to_owned())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected , or ] at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected member name at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected : at byte {pos}", pos = *pos));
        }
        *pos += 1;
        members.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected , or }} at byte {pos}", pos = *pos)),
        }
    }
}

/// One span read back from a sink.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Span id.
    pub id: u64,
    /// Parent span id, `None` for roots.
    pub parent: Option<u64>,
    /// Span name.
    pub name: String,
    /// Start, µs since trace epoch.
    pub start_us: u64,
    /// Duration, µs.
    pub dur_us: u64,
    /// Executor lane (`tid` in the Chrome form).
    pub worker: u32,
}

/// One histogram read back from the JSONL sink.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceHist {
    /// Metric name.
    pub name: String,
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample (`NaN` when the sink wrote `null`).
    pub min: f64,
    /// Largest sample (`NaN` when the sink wrote `null`).
    pub max: f64,
    /// Ascending bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts (`bounds.len() + 1` entries incl. overflow).
    pub counts: Vec<u64>,
}

/// A fully parsed trace, independent of which sink produced it.
#[derive(Debug, Clone, Default)]
pub struct TraceFile {
    /// Schema version from the meta line (0 when absent — pre-v2).
    pub v: u64,
    /// All spans.
    pub spans: Vec<TraceSpan>,
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → value.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub hists: BTreeMap<String, TraceHist>,
    /// Wall time from the meta line, µs.
    pub wall_us: u64,
}

fn num_or_nan(v: Option<&Json>) -> f64 {
    match v {
        Some(Json::Num(x)) => *x,
        _ => f64::NAN,
    }
}

/// Parses a JSON-lines trace (schema v1 or v2 — v1 span lines lack
/// `id`/`parent`/`worker` and map to defaults).
///
/// # Errors
///
/// Returns the first offending line's number and parse error.
pub fn parse_jsonl(text: &str) -> Result<TraceFile, String> {
    let mut out = TraceFile::default();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = parse_json(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let kind = value
            .get("type")
            .and_then(Json::as_str)
            .ok_or(format!("line {}: missing \"type\"", lineno + 1))?;
        let name = || {
            value
                .get("name")
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or(format!("line {}: missing \"name\"", lineno + 1))
        };
        match kind {
            "span" => out.spans.push(TraceSpan {
                id: value.get("id").and_then(Json::as_u64).unwrap_or(0),
                parent: value.get("parent").and_then(Json::as_u64),
                name: name()?,
                start_us: value.get("start_us").and_then(Json::as_u64).unwrap_or(0),
                dur_us: value.get("dur_us").and_then(Json::as_u64).unwrap_or(0),
                worker: value.get("worker").and_then(Json::as_u64).unwrap_or(0) as u32,
            }),
            "counter" => {
                let v = value
                    .get("value")
                    .and_then(Json::as_u64)
                    .ok_or(format!("line {}: counter without value", lineno + 1))?;
                out.counters.insert(name()?, v);
            }
            "gauge" => {
                out.gauges.insert(name()?, num_or_nan(value.get("value")));
            }
            "hist" => {
                let bounds = value
                    .get("bounds")
                    .and_then(Json::as_arr)
                    .map(|a| a.iter().map(|b| num_or_nan(Some(b))).collect())
                    .unwrap_or_default();
                let counts = value
                    .get("counts")
                    .and_then(Json::as_arr)
                    .map(|a| {
                        a.iter()
                            .map(|c| c.as_u64().unwrap_or(0))
                            .collect::<Vec<u64>>()
                    })
                    .unwrap_or_default();
                let h = TraceHist {
                    name: name()?,
                    count: value.get("count").and_then(Json::as_u64).unwrap_or(0),
                    sum: num_or_nan(value.get("sum")),
                    min: num_or_nan(value.get("min")),
                    max: num_or_nan(value.get("max")),
                    bounds,
                    counts,
                };
                out.hists.insert(h.name.clone(), h);
            }
            "meta" => {
                out.v = value.get("v").and_then(Json::as_u64).unwrap_or(0);
                out.wall_us = value.get("wall_us").and_then(Json::as_u64).unwrap_or(0);
            }
            other => return Err(format!("line {}: unknown type `{other}`", lineno + 1)),
        }
    }
    Ok(out)
}

/// One Chrome trace event with the mandatory fields.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeEvent {
    /// Event name.
    pub name: String,
    /// Phase: `X` (complete), `M` (metadata), `C` (counter), …
    pub ph: String,
    /// Process id.
    pub pid: u64,
    /// Thread id (the executor lane for spans).
    pub tid: u64,
    /// Timestamp, µs.
    pub ts: u64,
    /// Duration, µs.
    pub dur: u64,
    /// The `args` object, if present.
    pub args: Option<Json>,
}

/// Parses a Chrome trace-event file, requiring `pid`/`tid`/`ts`/`dur`/
/// `name`/`ph` on **every** event — the strict contract the Perfetto UI
/// and our round-trip tests rely on.
///
/// # Errors
///
/// Describes the first malformed event.
pub fn parse_chrome(text: &str) -> Result<Vec<ChromeEvent>, String> {
    let root = parse_json(text)?;
    let events = root
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut out = Vec::with_capacity(events.len());
    for (i, ev) in events.iter().enumerate() {
        let field = |key: &str| {
            ev.get(key)
                .and_then(Json::as_u64)
                .ok_or(format!("event {i}: missing or invalid \"{key}\""))
        };
        out.push(ChromeEvent {
            name: ev
                .get("name")
                .and_then(Json::as_str)
                .ok_or(format!("event {i}: missing \"name\""))?
                .to_owned(),
            ph: ev
                .get("ph")
                .and_then(Json::as_str)
                .ok_or(format!("event {i}: missing \"ph\""))?
                .to_owned(),
            pid: field("pid")?,
            tid: field("tid")?,
            ts: field("ts")?,
            dur: field("dur")?,
            args: ev.get("args").cloned(),
        });
    }
    Ok(out)
}

/// Lifts Chrome complete/counter events back into a [`TraceFile`]
/// (metadata rows are dropped), so one validator and one report renderer
/// serve both formats.
pub fn trace_from_chrome(events: &[ChromeEvent]) -> TraceFile {
    let mut out = TraceFile::default();
    for ev in events {
        match ev.ph.as_str() {
            "X" => out.spans.push(TraceSpan {
                id: ev
                    .args
                    .as_ref()
                    .and_then(|a| a.get("id"))
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
                parent: ev
                    .args
                    .as_ref()
                    .and_then(|a| a.get("parent"))
                    .and_then(Json::as_u64),
                name: ev.name.clone(),
                start_us: ev.ts,
                dur_us: ev.dur,
                worker: ev.tid as u32,
            }),
            "C" => {
                let v = ev
                    .args
                    .as_ref()
                    .and_then(|a| a.get("value"))
                    .and_then(Json::as_u64)
                    .unwrap_or(0);
                out.counters.insert(ev.name.clone(), v);
                out.wall_us = out.wall_us.max(ev.ts);
            }
            _ => {}
        }
    }
    out
}

/// Checks the structural invariants of a parsed trace: span ids unique,
/// every parent id resolves to a span in the file, the parent graph is
/// acyclic, and each histogram's bucket counts sum to its sample count.
///
/// # Errors
///
/// Describes the first violated invariant.
pub fn validate(trace: &TraceFile) -> Result<(), String> {
    let mut ids = HashSet::with_capacity(trace.spans.len());
    for s in &trace.spans {
        if s.id == 0 {
            return Err(format!("span `{}` has id 0", s.name));
        }
        if !ids.insert(s.id) {
            return Err(format!("duplicate span id {}", s.id));
        }
    }
    let parent_of: HashMap<u64, Option<u64>> =
        trace.spans.iter().map(|s| (s.id, s.parent)).collect();
    for s in &trace.spans {
        if let Some(p) = s.parent {
            if !parent_of.contains_key(&p) {
                return Err(format!(
                    "span {} (`{}`): parent {p} unresolved",
                    s.id, s.name
                ));
            }
        }
        // Walk the parent chain; revisiting the start means a cycle.
        let mut cursor = s.parent;
        let mut hops = 0usize;
        while let Some(p) = cursor {
            if p == s.id || hops > trace.spans.len() {
                return Err(format!("span {} (`{}`): parent cycle", s.id, s.name));
            }
            hops += 1;
            cursor = parent_of.get(&p).copied().flatten();
        }
    }
    for h in trace.hists.values() {
        let bucket_sum: u64 = h.counts.iter().sum();
        if bucket_sum != h.count {
            return Err(format!(
                "hist `{}`: bucket counts sum to {bucket_sum}, count is {}",
                h.name, h.count
            ));
        }
        if !h.bounds.is_empty() && h.counts.len() != h.bounds.len() + 1 {
            return Err(format!(
                "hist `{}`: {} bounds but {} buckets",
                h.name,
                h.bounds.len(),
                h.counts.len()
            ));
        }
    }
    Ok(())
}

/// Aggregated node of the report's span tree: spans with the same name
/// under the same parent group are merged.
struct ReportNode {
    name: String,
    count: u64,
    total_us: u64,
    self_us: u64,
    children: Vec<ReportNode>,
}

fn build_nodes(
    span_ids: &[usize],
    spans: &[TraceSpan],
    children_of: &HashMap<u64, Vec<usize>>,
) -> Vec<ReportNode> {
    // Group sibling spans by name, preserving first-seen order.
    let mut groups: Vec<(String, Vec<usize>)> = Vec::new();
    for &idx in span_ids {
        let name = &spans[idx].name;
        match groups.iter_mut().find(|(n, _)| n == name) {
            Some((_, members)) => members.push(idx),
            None => groups.push((name.clone(), vec![idx])),
        }
    }
    let mut nodes: Vec<ReportNode> = groups
        .into_iter()
        .map(|(name, members)| {
            let total_us: u64 = members.iter().map(|&i| spans[i].dur_us).sum();
            let child_ids: Vec<usize> = members
                .iter()
                .flat_map(|&i| {
                    children_of
                        .get(&spans[i].id)
                        .map(Vec::as_slice)
                        .unwrap_or(&[])
                })
                .copied()
                .collect();
            let children = build_nodes(&child_ids, spans, children_of);
            let child_total: u64 = child_ids.iter().map(|&i| spans[i].dur_us).sum();
            ReportNode {
                name,
                count: members.len() as u64,
                total_us,
                // Children on other workers can overlap the parent, so
                // clamp instead of underflowing.
                self_us: total_us.saturating_sub(child_total),
                children,
            }
        })
        .collect();
    nodes.sort_by_key(|n| std::cmp::Reverse(n.self_us));
    nodes
}

fn render_node(out: &mut String, node: &ReportNode, depth: usize) {
    let indent = "  ".repeat(depth);
    let label = format!("{indent}{}", node.name);
    let _ = writeln!(
        out,
        "  {label:<44} {:>6} {:>12} {:>12}",
        node.count,
        format_us(node.total_us),
        format_us(node.self_us)
    );
    for child in &node.children {
        render_node(out, child, depth + 1);
    }
}

fn format_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1.0e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1.0e3)
    } else {
        format!("{us}us")
    }
}

/// Estimated quantile of a parsed histogram, mirroring the engine's
/// bucket-walk estimator.
fn hist_quantile(h: &TraceHist, q: f64) -> f64 {
    if h.count == 0 {
        return f64::NAN;
    }
    let target = (q.clamp(0.0, 1.0) * h.count as f64).ceil().max(1.0) as u64;
    let mut cum = 0u64;
    for (i, &c) in h.counts.iter().enumerate() {
        cum += c;
        if cum >= target {
            return match h.bounds.get(i) {
                Some(&b) => b.min(h.max),
                None => h.max,
            };
        }
    }
    h.max
}

/// Renders the `repro trace-report` text: a span tree aggregated by name
/// and sorted by self time, then counter, gauge and histogram tables.
pub fn render_report(trace: &TraceFile) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} spans, {} counters, {} histograms, wall {}",
        trace.spans.len(),
        trace.counters.len(),
        trace.hists.len(),
        format_us(trace.wall_us)
    );

    let ids: HashSet<u64> = trace.spans.iter().map(|s| s.id).collect();
    let mut children_of: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut roots: Vec<usize> = Vec::new();
    for (idx, s) in trace.spans.iter().enumerate() {
        match s.parent {
            // Tolerate unresolved parents here (validate() reports them):
            // treat such spans as roots so the report still renders.
            Some(p) if ids.contains(&p) => children_of.entry(p).or_default().push(idx),
            _ => roots.push(idx),
        }
    }
    if !trace.spans.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "  {:<44} {:>6} {:>12} {:>12}",
            "span (self-time sorted)", "count", "total", "self"
        );
        for node in build_nodes(&roots, &trace.spans, &children_of) {
            render_node(&mut out, &node, 0);
        }
    }

    if !trace.counters.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "  {:<44} {:>12}", "counter", "value");
        for (name, value) in &trace.counters {
            let _ = writeln!(out, "  {name:<44} {value:>12}");
        }
    }
    if !trace.gauges.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "  {:<44} {:>12}", "gauge", "value");
        for (name, value) in &trace.gauges {
            let _ = writeln!(out, "  {name:<44} {value:>12.3}");
        }
    }
    if !trace.hists.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "  {:<44} {:>8} {:>10} {:>10} {:>10} {:>10}",
            "histogram", "count", "mean", "p50", "p95", "max"
        );
        for (name, h) in &trace.hists {
            let mean = if h.count > 0 {
                h.sum / h.count as f64
            } else {
                f64::NAN
            };
            let _ = writeln!(
                out,
                "  {name:<44} {:>8} {mean:>10.2} {:>10.2} {:>10.2} {:>10.2}",
                h.count,
                hist_quantile(h, 0.5),
                hist_quantile(h, 0.95),
                h.max
            );
        }
    }
    out
}

/// Renders a run manifest (the `repro --manifest` JSON, schema v2) as a
/// human-readable summary: run configuration, per-experiment timings,
/// cache behaviour, and — when present — the failures and recoveries
/// blocks. Used by `repro trace-report` when it sniffs a manifest file.
pub fn render_manifest_report(manifest: &Json) -> String {
    let mut out = String::new();
    let str_of = |key: &str| manifest.get(key).and_then(Json::as_str).unwrap_or("?");
    let u64_of = |key: &str| manifest.get(key).and_then(Json::as_u64).unwrap_or(0);
    let _ = writeln!(
        out,
        "manifest v{}: backend {}, circuit backend {}, {} jobs, wall {}",
        u64_of("v"),
        str_of("backend"),
        str_of("circuit_backend"),
        u64_of("jobs"),
        format_us(u64_of("wall_us"))
    );

    if let Some(exps) = manifest.get("experiments").and_then(Json::as_arr) {
        if !exps.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "  {:<20} {:>6} {:>12}", "experiment", "runs", "total");
            for e in exps {
                let _ = writeln!(
                    out,
                    "  {:<20} {:>6} {:>12}",
                    e.get("id").and_then(Json::as_str).unwrap_or("?"),
                    e.get("runs").and_then(Json::as_u64).unwrap_or(0),
                    format_us(e.get("dur_us").and_then(Json::as_u64).unwrap_or(0))
                );
            }
        }
    }

    if let Some(cache) = manifest.get("cache") {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "  cache: {} hits, {} misses",
            cache.get("hits").and_then(Json::as_u64).unwrap_or(0),
            cache.get("misses").and_then(Json::as_u64).unwrap_or(0)
        );
    }

    let failures = manifest
        .get("failures")
        .and_then(Json::as_arr)
        .unwrap_or(&[]);
    let _ = writeln!(out);
    if failures.is_empty() {
        let _ = writeln!(out, "  failures: none");
    } else {
        let _ = writeln!(out, "  failures: {}", failures.len());
        for f in failures {
            let _ = writeln!(
                out,
                "    {}: {}",
                f.get("id").and_then(Json::as_str).unwrap_or("?"),
                f.get("message").and_then(Json::as_str).unwrap_or("?")
            );
        }
    }

    let recoveries = manifest
        .get("recoveries")
        .and_then(Json::as_arr)
        .unwrap_or(&[]);
    if recoveries.is_empty() {
        let _ = writeln!(out, "  recoveries: none");
    } else {
        let _ = writeln!(out, "  recoveries: {}", recoveries.len());
        for r in recoveries {
            let _ = writeln!(
                out,
                "    {} via {} ({}): {}",
                r.get("site").and_then(Json::as_str).unwrap_or("?"),
                r.get("step").and_then(Json::as_str).unwrap_or("?"),
                if r.get("recovered").and_then(Json::as_bool) == Some(true) {
                    "recovered"
                } else {
                    "failed"
                },
                r.get("detail").and_then(Json::as_str).unwrap_or("")
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parser_handles_the_grammar() {
        let v = parse_json(r#"{"a":[1,2.5,-3e2],"b":"x\n\"y","c":null,"d":true,"e":{}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\n\"y"));
        assert_eq!(v.get("c"), Some(&Json::Null));
        assert_eq!(v.get("d"), Some(&Json::Bool(true)));
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json("").is_err());
    }

    #[test]
    fn manifest_report_lists_failures_and_recoveries() {
        let manifest = parse_json(
            r#"{"v":2,"backend":"analytic","circuit_backend":"analytic","jobs":2,
                "wall_us":1500,"experiments":[{"id":"fig2","runs":1,"dur_us":1000}],
                "cache":{"hits":3,"misses":1,"namespaces":[]},
                "failures":[{"id":"fig4","message":"injected job panic"}],
                "recoveries":[{"site":"spice.dc","step":"gmin_stepping",
                               "detail":"","recovered":true}]}"#,
        )
        .unwrap();
        let report = render_manifest_report(&manifest);
        assert!(report.contains("manifest v2"));
        assert!(report.contains("fig2"));
        assert!(report.contains("failures: 1"));
        assert!(report.contains("fig4: injected job panic"));
        assert!(report.contains("spice.dc via gmin_stepping (recovered)"));
    }

    #[test]
    fn manifest_report_handles_clean_runs() {
        let manifest = parse_json(
            r#"{"v":2,"backend":"analytic","circuit_backend":"spice","jobs":1,
                "wall_us":10,"experiments":[],"cache":{"hits":0,"misses":0,
                "namespaces":[]},"failures":[],"recoveries":[]}"#,
        )
        .unwrap();
        let report = render_manifest_report(&manifest);
        assert!(report.contains("failures: none"));
        assert!(report.contains("recoveries: none"));
    }

    #[test]
    fn jsonl_round_trip_from_engine_writer() {
        let tracer = subvt_engine::trace::Tracer::new();
        {
            let _outer = tracer.span("outer");
            drop(tracer.span("inner").attr("k", 3u64));
        }
        tracer.add("c1", 7);
        tracer.observe_with("h1", 3.0, &[1.0, 5.0]);
        let mut buf = Vec::new();
        tracer.write_jsonl(&mut buf).unwrap();
        let trace = parse_jsonl(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(trace.v, subvt_engine::trace::SCHEMA_VERSION);
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.counters["c1"], 7);
        assert_eq!(trace.hists["h1"].count, 1);
        validate(&trace).unwrap();
        let inner = trace.spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = trace.spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
    }

    #[test]
    fn chrome_round_trip_from_engine_writer() {
        let tracer = subvt_engine::trace::Tracer::new();
        {
            let _outer = tracer.span("outer");
            drop(tracer.span("inner"));
        }
        tracer.add("c1", 2);
        let mut buf = Vec::new();
        tracer.write_chrome(&mut buf).unwrap();
        let events = parse_chrome(std::str::from_utf8(&buf).unwrap()).unwrap();
        // process_name + >=1 thread_name + 2 spans + 1 counter.
        assert!(events.len() >= 5, "{events:?}");
        assert!(events.iter().all(|e| e.pid == 1));
        let trace = trace_from_chrome(&events);
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.counters["c1"], 2);
        validate(&trace).unwrap();
    }

    #[test]
    fn validate_rejects_broken_traces() {
        let mut t = TraceFile::default();
        t.spans.push(TraceSpan {
            id: 1,
            parent: Some(99),
            name: "orphan".into(),
            start_us: 0,
            dur_us: 1,
            worker: 0,
        });
        assert!(validate(&t).unwrap_err().contains("unresolved"));

        let mut t = TraceFile::default();
        t.spans.push(TraceSpan {
            id: 1,
            parent: Some(2),
            name: "a".into(),
            start_us: 0,
            dur_us: 1,
            worker: 0,
        });
        t.spans.push(TraceSpan {
            id: 2,
            parent: Some(1),
            name: "b".into(),
            start_us: 0,
            dur_us: 1,
            worker: 0,
        });
        assert!(validate(&t).unwrap_err().contains("cycle"));

        let mut t = TraceFile::default();
        t.hists.insert(
            "h".into(),
            TraceHist {
                name: "h".into(),
                count: 3,
                sum: 1.0,
                min: 0.0,
                max: 1.0,
                bounds: vec![1.0],
                counts: vec![1, 1],
            },
        );
        assert!(validate(&t).unwrap_err().contains("sum to"));
    }

    #[test]
    fn report_renders_tree_and_tables() {
        let tracer = subvt_engine::trace::Tracer::new();
        {
            let _e = tracer.span("experiment.x");
            drop(tracer.span("design.sub"));
            drop(tracer.span("design.sub"));
        }
        tracer.add("cache.design.hit", 4);
        tracer.observe("design.bisect.steps", 31.0);
        let mut buf = Vec::new();
        tracer.write_jsonl(&mut buf).unwrap();
        let trace = parse_jsonl(std::str::from_utf8(&buf).unwrap()).unwrap();
        let report = render_report(&trace);
        assert!(report.contains("experiment.x"), "{report}");
        assert!(report.contains("design.sub"), "{report}");
        assert!(report.contains("cache.design.hit"), "{report}");
        assert!(report.contains("design.bisect.steps"), "{report}");
        // The two design.sub spans aggregate to one row with count 2.
        let sub_line = report.lines().find(|l| l.contains("design.sub")).unwrap();
        assert!(sub_line.contains(" 2 "), "{sub_line}");
    }
}
