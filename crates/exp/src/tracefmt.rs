//! Parsing and validation of the engine's trace sinks, plus the
//! `repro trace-report` renderer.
//!
//! The engine writes two machine-readable formats (see
//! `subvt_engine::trace`): JSON-lines (schema `v2`) and Chrome
//! trace-event JSON. This module re-reads both through a small
//! recursive-descent JSON parser — deliberately independent of the
//! writers, so round-trip tests catch malformed output instead of
//! mirroring its bugs — validates the structural invariants (every line
//! valid JSON, span tree acyclic, parent ids resolve, histogram bucket
//! counts sum to the sample count) and renders a self-time-sorted span
//! tree with counter/histogram tables.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects (`None` otherwise).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Non-negative integer value, if this is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a human-readable description with a byte offset.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let token = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "non-utf8".to_owned())?;
    token
        .parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{token}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_owned())?;
                        // Surrogates never occur in our writers; map them
                        // to the replacement character rather than erroring.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through untouched).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| "non-utf8".to_owned())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected , or ] at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected member name at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected : at byte {pos}", pos = *pos));
        }
        *pos += 1;
        members.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected , or }} at byte {pos}", pos = *pos)),
        }
    }
}

/// One span read back from a sink.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Span id.
    pub id: u64,
    /// Parent span id, `None` for roots.
    pub parent: Option<u64>,
    /// Span name.
    pub name: String,
    /// Start, µs since trace epoch.
    pub start_us: u64,
    /// Duration, µs.
    pub dur_us: u64,
    /// Executor lane (`tid` in the Chrome form).
    pub worker: u32,
    /// Typed attributes (the JSONL `attrs` object / the Chrome `args`
    /// members other than `id`/`parent`), in source order.
    pub attrs: Vec<(String, Json)>,
}

impl TraceSpan {
    /// Looks up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&Json> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// An attribute as a non-negative integer.
    pub fn attr_u64(&self, key: &str) -> Option<u64> {
        self.attr(key).and_then(Json::as_u64)
    }

    /// An attribute as a string.
    pub fn attr_str(&self, key: &str) -> Option<&str> {
        self.attr(key).and_then(Json::as_str)
    }
}

/// One histogram read back from the JSONL sink.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceHist {
    /// Metric name.
    pub name: String,
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample (`NaN` when the sink wrote `null`).
    pub min: f64,
    /// Largest sample (`NaN` when the sink wrote `null`).
    pub max: f64,
    /// Ascending bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts (`bounds.len() + 1` entries incl. overflow).
    pub counts: Vec<u64>,
}

/// A fully parsed trace, independent of which sink produced it.
#[derive(Debug, Clone, Default)]
pub struct TraceFile {
    /// Schema version from the meta line (0 when absent — pre-v2).
    pub v: u64,
    /// All spans.
    pub spans: Vec<TraceSpan>,
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → value.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub hists: BTreeMap<String, TraceHist>,
    /// Wall time from the meta line, µs.
    pub wall_us: u64,
}

fn num_or_nan(v: Option<&Json>) -> f64 {
    match v {
        Some(Json::Num(x)) => *x,
        _ => f64::NAN,
    }
}

/// Parses a JSON-lines trace (schema v1 or v2 — v1 span lines lack
/// `id`/`parent`/`worker` and map to defaults).
///
/// # Errors
///
/// Returns the first offending line's number and parse error.
pub fn parse_jsonl(text: &str) -> Result<TraceFile, String> {
    let mut out = TraceFile::default();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = parse_json(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let kind = value
            .get("type")
            .and_then(Json::as_str)
            .ok_or(format!("line {}: missing \"type\"", lineno + 1))?;
        let name = || {
            value
                .get("name")
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or(format!("line {}: missing \"name\"", lineno + 1))
        };
        match kind {
            "span" => out.spans.push(TraceSpan {
                id: value.get("id").and_then(Json::as_u64).unwrap_or(0),
                parent: value.get("parent").and_then(Json::as_u64),
                name: name()?,
                start_us: value.get("start_us").and_then(Json::as_u64).unwrap_or(0),
                dur_us: value.get("dur_us").and_then(Json::as_u64).unwrap_or(0),
                worker: value.get("worker").and_then(Json::as_u64).unwrap_or(0) as u32,
                attrs: match value.get("attrs") {
                    Some(Json::Obj(members)) => members.clone(),
                    _ => Vec::new(),
                },
            }),
            "counter" => {
                let v = value
                    .get("value")
                    .and_then(Json::as_u64)
                    .ok_or(format!("line {}: counter without value", lineno + 1))?;
                out.counters.insert(name()?, v);
            }
            "gauge" => {
                out.gauges.insert(name()?, num_or_nan(value.get("value")));
            }
            "hist" => {
                let bounds = value
                    .get("bounds")
                    .and_then(Json::as_arr)
                    .map(|a| a.iter().map(|b| num_or_nan(Some(b))).collect())
                    .unwrap_or_default();
                let counts = value
                    .get("counts")
                    .and_then(Json::as_arr)
                    .map(|a| {
                        a.iter()
                            .map(|c| c.as_u64().unwrap_or(0))
                            .collect::<Vec<u64>>()
                    })
                    .unwrap_or_default();
                let h = TraceHist {
                    name: name()?,
                    count: value.get("count").and_then(Json::as_u64).unwrap_or(0),
                    sum: num_or_nan(value.get("sum")),
                    min: num_or_nan(value.get("min")),
                    max: num_or_nan(value.get("max")),
                    bounds,
                    counts,
                };
                out.hists.insert(h.name.clone(), h);
            }
            "meta" => {
                out.v = value.get("v").and_then(Json::as_u64).unwrap_or(0);
                out.wall_us = value.get("wall_us").and_then(Json::as_u64).unwrap_or(0);
            }
            other => return Err(format!("line {}: unknown type `{other}`", lineno + 1)),
        }
    }
    Ok(out)
}

/// One Chrome trace event with the mandatory fields.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeEvent {
    /// Event name.
    pub name: String,
    /// Phase: `X` (complete), `M` (metadata), `C` (counter), …
    pub ph: String,
    /// Process id.
    pub pid: u64,
    /// Thread id (the executor lane for spans).
    pub tid: u64,
    /// Timestamp, µs.
    pub ts: u64,
    /// Duration, µs.
    pub dur: u64,
    /// The `args` object, if present.
    pub args: Option<Json>,
}

/// Parses a Chrome trace-event file, requiring `pid`/`tid`/`ts`/`dur`/
/// `name`/`ph` on **every** event — the strict contract the Perfetto UI
/// and our round-trip tests rely on.
///
/// # Errors
///
/// Describes the first malformed event.
pub fn parse_chrome(text: &str) -> Result<Vec<ChromeEvent>, String> {
    let root = parse_json(text)?;
    let events = root
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut out = Vec::with_capacity(events.len());
    for (i, ev) in events.iter().enumerate() {
        let field = |key: &str| {
            ev.get(key)
                .and_then(Json::as_u64)
                .ok_or(format!("event {i}: missing or invalid \"{key}\""))
        };
        out.push(ChromeEvent {
            name: ev
                .get("name")
                .and_then(Json::as_str)
                .ok_or(format!("event {i}: missing \"name\""))?
                .to_owned(),
            ph: ev
                .get("ph")
                .and_then(Json::as_str)
                .ok_or(format!("event {i}: missing \"ph\""))?
                .to_owned(),
            pid: field("pid")?,
            tid: field("tid")?,
            ts: field("ts")?,
            dur: field("dur")?,
            args: ev.get("args").cloned(),
        });
    }
    Ok(out)
}

/// Lifts Chrome complete/counter events back into a [`TraceFile`]
/// (metadata rows are dropped), so one validator and one report renderer
/// serve both formats.
pub fn trace_from_chrome(events: &[ChromeEvent]) -> TraceFile {
    let mut out = TraceFile::default();
    for ev in events {
        match ev.ph.as_str() {
            "X" => out.spans.push(TraceSpan {
                id: ev
                    .args
                    .as_ref()
                    .and_then(|a| a.get("id"))
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
                parent: ev
                    .args
                    .as_ref()
                    .and_then(|a| a.get("parent"))
                    .and_then(Json::as_u64),
                name: ev.name.clone(),
                start_us: ev.ts,
                dur_us: ev.dur,
                worker: ev.tid as u32,
                attrs: match &ev.args {
                    Some(Json::Obj(members)) => members
                        .iter()
                        .filter(|(k, _)| k != "id" && k != "parent")
                        .cloned()
                        .collect(),
                    _ => Vec::new(),
                },
            }),
            "C" => {
                let v = ev
                    .args
                    .as_ref()
                    .and_then(|a| a.get("value"))
                    .and_then(Json::as_u64)
                    .unwrap_or(0);
                out.counters.insert(ev.name.clone(), v);
                out.wall_us = out.wall_us.max(ev.ts);
            }
            _ => {}
        }
    }
    out
}

/// Checks the structural invariants of a parsed trace: span ids unique,
/// every parent id resolves to a span in the file, the parent graph is
/// acyclic, and each histogram's bucket counts sum to its sample count.
///
/// # Errors
///
/// Describes the first violated invariant.
pub fn validate(trace: &TraceFile) -> Result<(), String> {
    let mut ids = HashSet::with_capacity(trace.spans.len());
    for s in &trace.spans {
        if s.id == 0 {
            return Err(format!("span `{}` has id 0", s.name));
        }
        if !ids.insert(s.id) {
            return Err(format!("duplicate span id {}", s.id));
        }
    }
    let parent_of: HashMap<u64, Option<u64>> =
        trace.spans.iter().map(|s| (s.id, s.parent)).collect();
    for s in &trace.spans {
        if let Some(p) = s.parent {
            if !parent_of.contains_key(&p) {
                return Err(format!(
                    "span {} (`{}`): parent {p} unresolved",
                    s.id, s.name
                ));
            }
        }
        // Walk the parent chain; revisiting the start means a cycle.
        let mut cursor = s.parent;
        let mut hops = 0usize;
        while let Some(p) = cursor {
            if p == s.id || hops > trace.spans.len() {
                return Err(format!("span {} (`{}`): parent cycle", s.id, s.name));
            }
            hops += 1;
            cursor = parent_of.get(&p).copied().flatten();
        }
    }
    for h in trace.hists.values() {
        let bucket_sum: u64 = h.counts.iter().sum();
        if bucket_sum != h.count {
            return Err(format!(
                "hist `{}`: bucket counts sum to {bucket_sum}, count is {}",
                h.name, h.count
            ));
        }
        if !h.bounds.is_empty() && h.counts.len() != h.bounds.len() + 1 {
            return Err(format!(
                "hist `{}`: {} bounds but {} buckets",
                h.name,
                h.bounds.len(),
                h.counts.len()
            ));
        }
    }
    Ok(())
}

/// Serializes a [`Json`] value back to compact JSON text.
pub fn render_json(value: &Json) -> String {
    match value {
        Json::Null => "null".to_owned(),
        Json::Bool(b) => b.to_string(),
        Json::Num(v) => {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_owned()
            }
        }
        Json::Str(s) => {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
        Json::Arr(items) => {
            let inner: Vec<String> = items.iter().map(render_json).collect();
            format!("[{}]", inner.join(","))
        }
        Json::Obj(members) => {
            let inner: Vec<String> = members
                .iter()
                .map(|(k, v)| format!("{}:{}", render_json(&Json::Str(k.clone())), render_json(v)))
                .collect();
            format!("{{{}}}", inner.join(","))
        }
    }
}

/// Worker-lane offset applied to server spans by [`stitch`], so the
/// stitched Chrome export renders client and server rows separately.
pub const STITCH_SERVER_LANE_BASE: u32 = 100;

/// Stitches a client-side trace and a server-side trace into one
/// parent-linked tree.
///
/// The wire protocol propagates trace context: the client stamps each
/// request with its open span id, and the server records that id as the
/// `client_span` attribute of its per-request root span (keeping each
/// per-process trace self-contained and valid on its own). Stitching
/// re-parents every such server root onto the named client span, shifts
/// the server timeline by the median offset that centers each server
/// request span inside its client span (the two processes have
/// unrelated trace epochs; the residual is the symmetric network/queue
/// delay), moves server spans onto lanes
/// `worker + STITCH_SERVER_LANE_BASE`, and merges the metric registries
/// (counters sum; a server histogram or gauge whose name collides with
/// a client one is kept under a `server.` prefix).
///
/// # Errors
///
/// When the two traces share span ids (the client must reserve a high
/// id range via `subvt_engine::trace::raise_id_floor`), or when no
/// server span references a client span (nothing to stitch).
pub fn stitch(client: &TraceFile, server: &TraceFile) -> Result<TraceFile, String> {
    let client_ids: HashSet<u64> = client.spans.iter().map(|s| s.id).collect();
    for s in &server.spans {
        if client_ids.contains(&s.id) {
            return Err(format!(
                "span id {} appears in both traces; the client must reserve \
                 a disjoint id range (trace::raise_id_floor)",
                s.id
            ));
        }
    }
    let client_by_id: HashMap<u64, &TraceSpan> = client.spans.iter().map(|s| (s.id, s)).collect();

    // Matched pairs: server request roots naming a client span.
    let mut offsets: Vec<i128> = Vec::new();
    let mut reparent: HashMap<u64, u64> = HashMap::new();
    for s in &server.spans {
        if s.parent.is_some() {
            continue;
        }
        let Some(client_span) = s.attr_u64("client_span") else {
            continue;
        };
        let Some(c) = client_by_id.get(&client_span) else {
            continue;
        };
        reparent.insert(s.id, client_span);
        let client_mid = i128::from(c.start_us) * 2 + i128::from(c.dur_us);
        let server_mid = i128::from(s.start_us) * 2 + i128::from(s.dur_us);
        offsets.push((client_mid - server_mid) / 2);
    }
    if offsets.is_empty() {
        return Err(
            "no server span carries a `client_span` attribute matching a client span; \
             nothing to stitch"
                .to_owned(),
        );
    }
    offsets.sort_unstable();
    let offset = offsets[offsets.len() / 2];

    let mut out = client.clone();
    out.v = client.v.max(server.v);
    for s in &server.spans {
        let mut merged = s.clone();
        merged.start_us = (i128::from(s.start_us) + offset).max(0) as u64;
        merged.worker = s.worker + STITCH_SERVER_LANE_BASE;
        if let Some(&new_parent) = reparent.get(&s.id) {
            merged.parent = Some(new_parent);
        }
        out.wall_us = out.wall_us.max(merged.start_us + merged.dur_us);
        out.spans.push(merged);
    }
    for (name, value) in &server.counters {
        *out.counters.entry(name.clone()).or_insert(0) += value;
    }
    for (name, value) in &server.gauges {
        if out.gauges.contains_key(name) {
            out.gauges.insert(format!("server.{name}"), *value);
        } else {
            out.gauges.insert(name.clone(), *value);
        }
    }
    for (name, hist) in &server.hists {
        let key = if out.hists.contains_key(name) {
            format!("server.{name}")
        } else {
            name.clone()
        };
        let mut hist = hist.clone();
        hist.name = key.clone();
        out.hists.insert(key, hist);
    }
    Ok(out)
}

/// Writes a parsed (e.g. stitched) [`TraceFile`] as Chrome trace-event
/// JSON — the same shape the engine's native sink emits, so Perfetto
/// and [`parse_chrome`] both accept it. Lanes at or above
/// [`STITCH_SERVER_LANE_BASE`] are labelled as server lanes.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_chrome_from(trace: &TraceFile, w: &mut impl std::io::Write) -> std::io::Result<()> {
    write!(w, "{{\"traceEvents\":[")?;
    let mut first = true;
    let sep = |w: &mut dyn std::io::Write, first: &mut bool| -> std::io::Result<()> {
        if *first {
            *first = false;
            writeln!(w)
        } else {
            writeln!(w, ",")
        }
    };
    sep(w, &mut first)?;
    write!(
        w,
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"ts\":0,\"dur\":0,\"args\":{{\"name\":\"subvt-stitched\"}}}}"
    )?;
    let mut lanes: Vec<u32> = trace.spans.iter().map(|s| s.worker).collect();
    lanes.push(0);
    lanes.sort_unstable();
    lanes.dedup();
    for lane in &lanes {
        let label = if *lane == 0 {
            "client".to_owned()
        } else if *lane < STITCH_SERVER_LANE_BASE {
            format!("client-worker-{}", lane - 1)
        } else if *lane == STITCH_SERVER_LANE_BASE {
            "server".to_owned()
        } else {
            format!("server-worker-{}", lane - STITCH_SERVER_LANE_BASE - 1)
        };
        sep(w, &mut first)?;
        write!(
            w,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\"ts\":0,\"dur\":0,\"args\":{{\"name\":{}}}}}",
            render_json(&Json::Str(label))
        )?;
    }
    for s in &trace.spans {
        sep(w, &mut first)?;
        write!(
            w,
            "{{\"name\":{},\"cat\":\"subvt\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"id\":{},\"parent\":{}",
            render_json(&Json::Str(s.name.clone())),
            s.worker,
            s.start_us,
            s.dur_us,
            s.id,
            match s.parent {
                Some(p) => p.to_string(),
                None => "null".to_owned(),
            }
        )?;
        for (k, v) in &s.attrs {
            write!(
                w,
                ",{}:{}",
                render_json(&Json::Str(k.clone())),
                render_json(v)
            )?;
        }
        write!(w, "}}}}")?;
    }
    for (name, value) in &trace.counters {
        sep(w, &mut first)?;
        write!(
            w,
            "{{\"name\":{},\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":{},\"dur\":0,\"args\":{{\"value\":{}}}}}",
            render_json(&Json::Str(name.clone())),
            trace.wall_us,
            value
        )?;
    }
    writeln!(w)?;
    writeln!(w, "],\"displayTimeUnit\":\"ms\"}}")
}

/// One line of the daemon's structured JSONL access log (`--access-log`;
/// schema in DESIGN.md §6).
#[derive(Debug, Clone, PartialEq)]
pub struct AccessRecord {
    /// UTC timestamp (`YYYY-MM-DDTHH:MM:SSZ`).
    pub ts: String,
    /// Wire-propagated trace id (or the server-synthesized `srv-…` id
    /// when the client sent none).
    pub trace_id: String,
    /// Echoed request id.
    pub id: String,
    /// Request method.
    pub method: String,
    /// `ok` or the protocol error code.
    pub outcome: String,
    /// Cache provenance (`hit|coalesced|computed`) when applicable.
    pub cached: Option<String>,
    /// Server request-span id (0 for pre-admission rejections).
    pub span: u64,
    /// Per-phase durations in µs, in pipeline order.
    pub phases: Vec<(String, u64)>,
    /// End-to-end server-side duration, µs.
    pub total_us: u64,
}

/// Parses a JSONL access log.
///
/// # Errors
///
/// Reports the first malformed line (number + reason).
pub fn parse_access_log(text: &str) -> Result<Vec<AccessRecord>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = parse_json(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let str_of = |key: &str| -> Result<String, String> {
            value
                .get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or(format!("line {}: missing string `{key}`", lineno + 1))
        };
        let phases = match value.get("phases") {
            Some(Json::Obj(members)) => members
                .iter()
                .filter_map(|(k, v)| v.as_u64().map(|us| (k.clone(), us)))
                .collect(),
            _ => Vec::new(),
        };
        out.push(AccessRecord {
            ts: str_of("ts")?,
            trace_id: str_of("trace_id")?,
            id: value
                .get("id")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_owned(),
            method: str_of("method")?,
            outcome: str_of("outcome")?,
            cached: value
                .get("cached")
                .and_then(Json::as_str)
                .map(str::to_owned),
            span: value.get("span").and_then(Json::as_u64).unwrap_or(0),
            phases,
            total_us: value.get("total_us").and_then(Json::as_u64).unwrap_or(0),
        });
    }
    Ok(out)
}

/// Renders an access log as a per-method summary: request counts,
/// outcomes, cache provenance, and latency/phase breakdowns. Used by
/// `repro trace-report` when it sniffs an access-log file.
pub fn render_access_report(records: &[AccessRecord]) -> String {
    let mut out = String::new();
    let errors = records.iter().filter(|r| r.outcome != "ok").count();
    let _ = writeln!(
        out,
        "access log: {} requests, {} errors",
        records.len(),
        errors
    );
    if records.is_empty() {
        return out;
    }

    let mut methods: Vec<&str> = records.iter().map(|r| r.method.as_str()).collect();
    methods.sort_unstable();
    methods.dedup();
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "  {:<14} {:>6} {:>6} {:>5} {:>9} {:>5} {:>10} {:>10} {:>10}",
        "method", "count", "errors", "hit", "coalesced", "comp", "mean", "p99", "max"
    );
    for method in methods {
        let rows: Vec<&AccessRecord> = records.iter().filter(|r| r.method == method).collect();
        let errs = rows.iter().filter(|r| r.outcome != "ok").count();
        let provenance = |kind: &str| {
            rows.iter()
                .filter(|r| r.cached.as_deref() == Some(kind))
                .count()
        };
        let mut totals: Vec<u64> = rows.iter().map(|r| r.total_us).collect();
        totals.sort_unstable();
        let mean = totals.iter().sum::<u64>() as f64 / totals.len() as f64;
        let p99 = totals[((totals.len() as f64 * 0.99).ceil() as usize).clamp(1, totals.len()) - 1];
        let _ = writeln!(
            out,
            "  {:<14} {:>6} {:>6} {:>5} {:>9} {:>5} {:>10} {:>10} {:>10}",
            method,
            rows.len(),
            errs,
            provenance("hit"),
            provenance("coalesced"),
            provenance("computed"),
            format_us(mean as u64),
            format_us(p99),
            format_us(*totals.last().unwrap_or(&0))
        );
    }

    // Mean time per pipeline phase, across everything that ran.
    let mut phase_totals: Vec<(String, u64, u64)> = Vec::new(); // (name, sum, n)
    for r in records {
        for (name, us) in &r.phases {
            match phase_totals.iter_mut().find(|(n, _, _)| n == name) {
                Some(entry) => {
                    entry.1 += us;
                    entry.2 += 1;
                }
                None => phase_totals.push((name.clone(), *us, 1)),
            }
        }
    }
    if !phase_totals.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "  {:<14} {:>10} {:>10}", "phase", "mean", "total");
        for (name, sum, n) in &phase_totals {
            let _ = writeln!(
                out,
                "  {:<14} {:>10} {:>10}",
                name,
                format_us(sum / n.max(&1)),
                format_us(*sum)
            );
        }
    }
    out
}

/// Aggregated node of the report's span tree: spans with the same name
/// under the same parent group are merged.
struct ReportNode {
    name: String,
    count: u64,
    total_us: u64,
    self_us: u64,
    children: Vec<ReportNode>,
}

fn build_nodes(
    span_ids: &[usize],
    spans: &[TraceSpan],
    children_of: &HashMap<u64, Vec<usize>>,
) -> Vec<ReportNode> {
    // Group sibling spans by name, preserving first-seen order.
    let mut groups: Vec<(String, Vec<usize>)> = Vec::new();
    for &idx in span_ids {
        let name = &spans[idx].name;
        match groups.iter_mut().find(|(n, _)| n == name) {
            Some((_, members)) => members.push(idx),
            None => groups.push((name.clone(), vec![idx])),
        }
    }
    let mut nodes: Vec<ReportNode> = groups
        .into_iter()
        .map(|(name, members)| {
            let total_us: u64 = members.iter().map(|&i| spans[i].dur_us).sum();
            let child_ids: Vec<usize> = members
                .iter()
                .flat_map(|&i| {
                    children_of
                        .get(&spans[i].id)
                        .map(Vec::as_slice)
                        .unwrap_or(&[])
                })
                .copied()
                .collect();
            let children = build_nodes(&child_ids, spans, children_of);
            let child_total: u64 = child_ids.iter().map(|&i| spans[i].dur_us).sum();
            ReportNode {
                name,
                count: members.len() as u64,
                total_us,
                // Children on other workers can overlap the parent, so
                // clamp instead of underflowing.
                self_us: total_us.saturating_sub(child_total),
                children,
            }
        })
        .collect();
    nodes.sort_by_key(|n| std::cmp::Reverse(n.self_us));
    nodes
}

fn render_node(out: &mut String, node: &ReportNode, depth: usize) {
    let indent = "  ".repeat(depth);
    let label = format!("{indent}{}", node.name);
    let _ = writeln!(
        out,
        "  {label:<44} {:>6} {:>12} {:>12}",
        node.count,
        format_us(node.total_us),
        format_us(node.self_us)
    );
    for child in &node.children {
        render_node(out, child, depth + 1);
    }
}

fn format_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1.0e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1.0e3)
    } else {
        format!("{us}us")
    }
}

/// Estimated quantile of a parsed histogram, mirroring the engine's
/// bucket-walk estimator.
fn hist_quantile(h: &TraceHist, q: f64) -> f64 {
    if h.count == 0 {
        return f64::NAN;
    }
    let target = (q.clamp(0.0, 1.0) * h.count as f64).ceil().max(1.0) as u64;
    let mut cum = 0u64;
    for (i, &c) in h.counts.iter().enumerate() {
        cum += c;
        if cum >= target {
            return match h.bounds.get(i) {
                Some(&b) => b.min(h.max),
                None => h.max,
            };
        }
    }
    h.max
}

/// Renders the `repro trace-report` text: a span tree aggregated by name
/// and sorted by self time, then counter, gauge and histogram tables.
pub fn render_report(trace: &TraceFile) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} spans, {} counters, {} histograms, wall {}",
        trace.spans.len(),
        trace.counters.len(),
        trace.hists.len(),
        format_us(trace.wall_us)
    );

    let ids: HashSet<u64> = trace.spans.iter().map(|s| s.id).collect();
    let mut children_of: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut roots: Vec<usize> = Vec::new();
    for (idx, s) in trace.spans.iter().enumerate() {
        match s.parent {
            // Tolerate unresolved parents here (validate() reports them):
            // treat such spans as roots so the report still renders.
            Some(p) if ids.contains(&p) => children_of.entry(p).or_default().push(idx),
            _ => roots.push(idx),
        }
    }
    if !trace.spans.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "  {:<44} {:>6} {:>12} {:>12}",
            "span (self-time sorted)", "count", "total", "self"
        );
        for node in build_nodes(&roots, &trace.spans, &children_of) {
            render_node(&mut out, &node, 0);
        }
    }

    if !trace.counters.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "  {:<44} {:>12}", "counter", "value");
        for (name, value) in &trace.counters {
            let _ = writeln!(out, "  {name:<44} {value:>12}");
        }
    }
    if !trace.gauges.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "  {:<44} {:>12}", "gauge", "value");
        for (name, value) in &trace.gauges {
            let _ = writeln!(out, "  {name:<44} {value:>12.3}");
        }
    }
    if !trace.hists.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "  {:<44} {:>8} {:>10} {:>10} {:>10} {:>10}",
            "histogram", "count", "mean", "p50", "p95", "max"
        );
        for (name, h) in &trace.hists {
            let mean = if h.count > 0 {
                h.sum / h.count as f64
            } else {
                f64::NAN
            };
            let _ = writeln!(
                out,
                "  {name:<44} {:>8} {mean:>10.2} {:>10.2} {:>10.2} {:>10.2}",
                h.count,
                hist_quantile(h, 0.5),
                hist_quantile(h, 0.95),
                h.max
            );
        }
    }
    out
}

/// Renders a run manifest (the `repro --manifest` JSON, schema v2) as a
/// human-readable summary: run configuration, per-experiment timings,
/// cache behaviour, and — when present — the failures and recoveries
/// blocks. Used by `repro trace-report` when it sniffs a manifest file.
pub fn render_manifest_report(manifest: &Json) -> String {
    let mut out = String::new();
    let str_of = |key: &str| manifest.get(key).and_then(Json::as_str).unwrap_or("?");
    let u64_of = |key: &str| manifest.get(key).and_then(Json::as_u64).unwrap_or(0);
    let _ = writeln!(
        out,
        "manifest v{}: backend {}, circuit backend {}, {} jobs, wall {}",
        u64_of("v"),
        str_of("backend"),
        str_of("circuit_backend"),
        u64_of("jobs"),
        format_us(u64_of("wall_us"))
    );

    if let Some(exps) = manifest.get("experiments").and_then(Json::as_arr) {
        if !exps.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "  {:<20} {:>6} {:>12}", "experiment", "runs", "total");
            for e in exps {
                let _ = writeln!(
                    out,
                    "  {:<20} {:>6} {:>12}",
                    e.get("id").and_then(Json::as_str).unwrap_or("?"),
                    e.get("runs").and_then(Json::as_u64).unwrap_or(0),
                    format_us(e.get("dur_us").and_then(Json::as_u64).unwrap_or(0))
                );
            }
        }
    }

    if let Some(cache) = manifest.get("cache") {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "  cache: {} hits, {} misses",
            cache.get("hits").and_then(Json::as_u64).unwrap_or(0),
            cache.get("misses").and_then(Json::as_u64).unwrap_or(0)
        );
    }

    let failures = manifest
        .get("failures")
        .and_then(Json::as_arr)
        .unwrap_or(&[]);
    let _ = writeln!(out);
    if failures.is_empty() {
        let _ = writeln!(out, "  failures: none");
    } else {
        let _ = writeln!(out, "  failures: {}", failures.len());
        for f in failures {
            let _ = writeln!(
                out,
                "    {}: {}",
                f.get("id").and_then(Json::as_str).unwrap_or("?"),
                f.get("message").and_then(Json::as_str).unwrap_or("?")
            );
        }
    }

    let recoveries = manifest
        .get("recoveries")
        .and_then(Json::as_arr)
        .unwrap_or(&[]);
    if recoveries.is_empty() {
        let _ = writeln!(out, "  recoveries: none");
    } else {
        let _ = writeln!(out, "  recoveries: {}", recoveries.len());
        for r in recoveries {
            let _ = writeln!(
                out,
                "    {} via {} ({}): {}",
                r.get("site").and_then(Json::as_str).unwrap_or("?"),
                r.get("step").and_then(Json::as_str).unwrap_or("?"),
                if r.get("recovered").and_then(Json::as_bool) == Some(true) {
                    "recovered"
                } else {
                    "failed"
                },
                r.get("detail").and_then(Json::as_str).unwrap_or("")
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parser_handles_the_grammar() {
        let v = parse_json(r#"{"a":[1,2.5,-3e2],"b":"x\n\"y","c":null,"d":true,"e":{}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\n\"y"));
        assert_eq!(v.get("c"), Some(&Json::Null));
        assert_eq!(v.get("d"), Some(&Json::Bool(true)));
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json("").is_err());
    }

    #[test]
    fn manifest_report_lists_failures_and_recoveries() {
        let manifest = parse_json(
            r#"{"v":2,"backend":"analytic","circuit_backend":"analytic","jobs":2,
                "wall_us":1500,"experiments":[{"id":"fig2","runs":1,"dur_us":1000}],
                "cache":{"hits":3,"misses":1,"namespaces":[]},
                "failures":[{"id":"fig4","message":"injected job panic"}],
                "recoveries":[{"site":"spice.dc","step":"gmin_stepping",
                               "detail":"","recovered":true}]}"#,
        )
        .unwrap();
        let report = render_manifest_report(&manifest);
        assert!(report.contains("manifest v2"));
        assert!(report.contains("fig2"));
        assert!(report.contains("failures: 1"));
        assert!(report.contains("fig4: injected job panic"));
        assert!(report.contains("spice.dc via gmin_stepping (recovered)"));
    }

    #[test]
    fn manifest_report_handles_clean_runs() {
        let manifest = parse_json(
            r#"{"v":2,"backend":"analytic","circuit_backend":"spice","jobs":1,
                "wall_us":10,"experiments":[],"cache":{"hits":0,"misses":0,
                "namespaces":[]},"failures":[],"recoveries":[]}"#,
        )
        .unwrap();
        let report = render_manifest_report(&manifest);
        assert!(report.contains("failures: none"));
        assert!(report.contains("recoveries: none"));
    }

    #[test]
    fn jsonl_round_trip_from_engine_writer() {
        let tracer = subvt_engine::trace::Tracer::new();
        {
            let _outer = tracer.span("outer");
            drop(tracer.span("inner").attr("k", 3u64));
        }
        tracer.add("c1", 7);
        tracer.observe_with("h1", 3.0, &[1.0, 5.0]);
        let mut buf = Vec::new();
        tracer.write_jsonl(&mut buf).unwrap();
        let trace = parse_jsonl(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(trace.v, subvt_engine::trace::SCHEMA_VERSION);
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.counters["c1"], 7);
        assert_eq!(trace.hists["h1"].count, 1);
        validate(&trace).unwrap();
        let inner = trace.spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = trace.spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
    }

    #[test]
    fn chrome_round_trip_from_engine_writer() {
        let tracer = subvt_engine::trace::Tracer::new();
        {
            let _outer = tracer.span("outer");
            drop(tracer.span("inner"));
        }
        tracer.add("c1", 2);
        let mut buf = Vec::new();
        tracer.write_chrome(&mut buf).unwrap();
        let events = parse_chrome(std::str::from_utf8(&buf).unwrap()).unwrap();
        // process_name + >=1 thread_name + 2 spans + 1 counter.
        assert!(events.len() >= 5, "{events:?}");
        assert!(events.iter().all(|e| e.pid == 1));
        let trace = trace_from_chrome(&events);
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.counters["c1"], 2);
        validate(&trace).unwrap();
    }

    #[test]
    fn validate_rejects_broken_traces() {
        let mut t = TraceFile::default();
        t.spans.push(TraceSpan {
            id: 1,
            parent: Some(99),
            name: "orphan".into(),
            start_us: 0,
            dur_us: 1,
            worker: 0,
            attrs: Vec::new(),
        });
        assert!(validate(&t).unwrap_err().contains("unresolved"));

        let mut t = TraceFile::default();
        t.spans.push(TraceSpan {
            id: 1,
            parent: Some(2),
            name: "a".into(),
            start_us: 0,
            dur_us: 1,
            worker: 0,
            attrs: Vec::new(),
        });
        t.spans.push(TraceSpan {
            id: 2,
            parent: Some(1),
            name: "b".into(),
            start_us: 0,
            dur_us: 1,
            worker: 0,
            attrs: Vec::new(),
        });
        assert!(validate(&t).unwrap_err().contains("cycle"));

        let mut t = TraceFile::default();
        t.hists.insert(
            "h".into(),
            TraceHist {
                name: "h".into(),
                count: 3,
                sum: 1.0,
                min: 0.0,
                max: 1.0,
                bounds: vec![1.0],
                counts: vec![1, 1],
            },
        );
        assert!(validate(&t).unwrap_err().contains("sum to"));
    }

    #[test]
    fn report_renders_tree_and_tables() {
        let tracer = subvt_engine::trace::Tracer::new();
        {
            let _e = tracer.span("experiment.x");
            drop(tracer.span("design.sub"));
            drop(tracer.span("design.sub"));
        }
        tracer.add("cache.design.hit", 4);
        tracer.observe("design.bisect.steps", 31.0);
        let mut buf = Vec::new();
        tracer.write_jsonl(&mut buf).unwrap();
        let trace = parse_jsonl(std::str::from_utf8(&buf).unwrap()).unwrap();
        let report = render_report(&trace);
        assert!(report.contains("experiment.x"), "{report}");
        assert!(report.contains("design.sub"), "{report}");
        assert!(report.contains("cache.design.hit"), "{report}");
        assert!(report.contains("design.bisect.steps"), "{report}");
        // The two design.sub spans aggregate to one row with count 2.
        let sub_line = report.lines().find(|l| l.contains("design.sub")).unwrap();
        assert!(sub_line.contains(" 2 "), "{sub_line}");
    }

    #[test]
    fn render_json_round_trips_through_the_parser() {
        let value = Json::Obj(vec![
            ("s".into(), Json::Str("a\"b\\c\nd\u{1}".into())),
            (
                "a".into(),
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::Num(-2.5)]),
            ),
            ("n".into(), Json::Num(42.0)),
        ]);
        let text = render_json(&value);
        assert_eq!(parse_json(&text).unwrap(), value);
    }

    fn span(id: u64, parent: Option<u64>, name: &str, start_us: u64, dur_us: u64) -> TraceSpan {
        TraceSpan {
            id,
            parent,
            name: name.into(),
            start_us,
            dur_us,
            worker: 0,
            attrs: Vec::new(),
        }
    }

    fn stitch_fixture() -> (TraceFile, TraceFile) {
        let mut client = TraceFile {
            v: 2,
            ..TraceFile::default()
        };
        // Client epoch starts at 10_000µs; request span covers the wire
        // round-trip.
        client
            .spans
            .push(span(1 << 32, None, "client.request", 10_000, 2_000));
        client.wall_us = 12_000;
        client.counters.insert("loadgen.sent".into(), 1);

        let mut server = TraceFile {
            v: 2,
            ..TraceFile::default()
        };
        // Server epoch is unrelated: its 500µs request span sits at
        // 777_000µs of its own trace.
        let mut req = span(7, None, "serve.request", 777_000, 500);
        req.attrs
            .push(("client_span".into(), Json::Num((1u64 << 32) as f64)));
        req.attrs
            .push(("trace_id".into(), Json::Str("lg-1".into())));
        server.spans.push(req);
        server.spans.push(span(8, Some(7), "compute", 777_100, 300));
        server.wall_us = 777_500;
        server.counters.insert("serve.accepted".into(), 1);
        (client, server)
    }

    #[test]
    fn stitch_reparents_and_realigns_server_spans() {
        let (client, server) = stitch_fixture();
        let stitched = stitch(&client, &server).unwrap();
        validate(&stitched).unwrap();
        assert_eq!(stitched.spans.len(), 3);
        let req = stitched.spans.iter().find(|s| s.id == 7).unwrap();
        // Re-parented onto the client span and centered inside it:
        // client mid 11_000 − server half-width 250 = 10_750.
        assert_eq!(req.parent, Some(1 << 32));
        assert_eq!(req.start_us, 10_750);
        assert_eq!(req.worker, STITCH_SERVER_LANE_BASE);
        // The child moved by the same offset and kept its parent.
        let compute = stitched.spans.iter().find(|s| s.id == 8).unwrap();
        assert_eq!(compute.parent, Some(7));
        assert_eq!(compute.start_us, 10_850);
        // Registries merged.
        assert_eq!(stitched.counters["loadgen.sent"], 1);
        assert_eq!(stitched.counters["serve.accepted"], 1);
    }

    #[test]
    fn stitch_rejects_id_collisions_and_unmatched_traces() {
        let (client, server) = stitch_fixture();
        let mut colliding = server.clone();
        colliding.spans[0].id = 1 << 32;
        assert!(stitch(&client, &colliding)
            .unwrap_err()
            .contains("both traces"));

        let mut unmatched = server.clone();
        unmatched.spans[0].attrs.clear();
        assert!(stitch(&client, &unmatched)
            .unwrap_err()
            .contains("nothing to stitch"));
    }

    #[test]
    fn stitched_chrome_export_round_trips() {
        let (client, server) = stitch_fixture();
        let stitched = stitch(&client, &server).unwrap();
        let mut buf = Vec::new();
        write_chrome_from(&stitched, &mut buf).unwrap();
        let text = std::str::from_utf8(&buf).unwrap();
        let events = parse_chrome(text).unwrap();
        let reparsed = trace_from_chrome(&events);
        validate(&reparsed).unwrap();
        assert_eq!(reparsed.spans.len(), stitched.spans.len());
        let req = reparsed.spans.iter().find(|s| s.id == 7).unwrap();
        assert_eq!(req.parent, Some(1 << 32));
        assert_eq!(req.attr_str("trace_id"), Some("lg-1"));
        assert_eq!(reparsed.counters["serve.accepted"], 1);
    }

    #[test]
    fn access_log_parses_and_renders() {
        let text = concat!(
            "{\"ts\":\"2026-08-08T00:00:00Z\",\"trace_id\":\"lg-1\",\"id\":\"c1\",",
            "\"method\":\"vtc\",\"outcome\":\"ok\",\"cached\":\"computed\",\"span\":7,",
            "\"phases\":{\"queue_us\":10,\"compute_us\":200,\"serialize_us\":5},",
            "\"total_us\":215}\n",
            "{\"ts\":\"2026-08-08T00:00:01Z\",\"trace_id\":\"lg-2\",\"id\":\"c2\",",
            "\"method\":\"vtc\",\"outcome\":\"ok\",\"cached\":\"hit\",\"span\":9,",
            "\"phases\":{\"queue_us\":2,\"compute_us\":1,\"serialize_us\":3},",
            "\"total_us\":6}\n",
            "{\"ts\":\"2026-08-08T00:00:02Z\",\"trace_id\":\"lg-3\",\"id\":\"c3\",",
            "\"method\":\"isub\",\"outcome\":\"overloaded\",\"span\":0,\"total_us\":1}\n",
        );
        let records = parse_access_log(text).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].cached.as_deref(), Some("computed"));
        assert_eq!(records[0].phases.len(), 3);
        assert_eq!(records[2].outcome, "overloaded");
        assert_eq!(records[2].cached, None);

        let report = render_access_report(&records);
        assert!(report.contains("3 requests, 1 errors"), "{report}");
        assert!(report.contains("vtc"), "{report}");
        assert!(report.contains("isub"), "{report}");
        assert!(report.contains("compute_us"), "{report}");

        assert!(parse_access_log("{\"ts\":\"x\"}")
            .unwrap_err()
            .contains("line 1"));
    }
}
