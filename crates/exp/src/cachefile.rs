//! Shared persistent-cache session handling for long-lived processes.
//!
//! Both entry points that persist the engine's result cache — the
//! one-shot `repro` CLI and the `subvt-serve` daemon — need the same
//! open/close choreography, packaged as [`CacheSession`] so the two
//! binaries cannot drift apart. A session opens in one of three modes:
//!
//! * **Primary** — won the advisory [`CacheLock`] (reclaiming it first
//!   if the recorded holder is dead): loads the base file with
//!   quarantine accounting, *adopts* any orphaned segments a crashed
//!   fleet left under `<cache>.d/`, and on clean close rewrites the
//!   canonical file through the atomic temp-file path (compacting
//!   superseded duplicates and the adopted segments away).
//! * **Segment** — a live process holds the primary lock, so this
//!   session claims a leased per-process segment
//!   (`<cache>.d/seg-p<pid>-<n>.jsonl`) instead of degrading: it loads
//!   the base file and every peer segment leniently for warm hits, and
//!   write-through appends each freshly computed entry to its own
//!   segment. The next primary-lock holder compacts it in. Concurrent
//!   runs therefore *all* persist — nobody loses their work to the
//!   lock race anymore.
//! * **ReadOnly** — the segment claim also failed (pathological);
//!   loads what it can and persists nothing, loudly: the engine
//!   publishes the `cache.<file-stem>.readonly` gauge and
//!   [`CacheSession::open`] prints a one-line warning, so a degraded
//!   process is observable in `/metrics` and in its logs instead of
//!   silently not persisting.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use subvt_engine::cache::seg::{self, AdoptReport, SegmentSession};
use subvt_engine::cache::{quarantine_path, CacheLock, LoadReport};

/// Distinguishes sibling sessions opened by one process (tests, mostly)
/// so their segment names cannot collide.
static SESSION_SEQ: AtomicU64 = AtomicU64::new(0);

/// How an open [`CacheSession`] persists results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionMode {
    /// Holds the primary lock; closes by rewriting the canonical file.
    Primary,
    /// Holds a leased segment; closes by sealing the segment for the
    /// next compaction.
    Segment,
    /// Persists nothing.
    ReadOnly,
}

enum State {
    Primary {
        lock: CacheLock,
        adopted: AdoptReport,
    },
    Segment {
        session: Arc<SegmentSession>,
    },
    ReadOnly,
}

/// An open session against a persistent cache file: a persistence mode
/// (primary lock, leased segment, or observable read-only degradation)
/// plus the loaded entries.
pub struct CacheSession {
    path: PathBuf,
    state: State,
    report: LoadReport,
}

impl CacheSession {
    /// Opens `path` against the process-wide cache. Mode selection and
    /// loading are described on the module; every load summary goes to
    /// stderr.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the lock/lease files or the cache
    /// file (a missing cache file is not an error — it loads empty).
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let cache = subvt_engine::global_cache();
        if let Some(lock) = CacheLock::acquire(path)? {
            let mut report = cache.load_jsonl_report(path)?;
            let adopted = seg::adopt_dead_segments(path, cache)?;
            if !adopted.adopted.is_empty() {
                eprintln!(
                    "adopted {} orphaned cache segment(s): {} entries, {} damaged lines quarantined",
                    adopted.adopted.len(),
                    adopted.loaded,
                    adopted.quarantined
                );
            }
            report.loaded += adopted.loaded;
            report.quarantined += adopted.quarantined;
            let session = Self {
                path: path.to_owned(),
                state: State::Primary { lock, adopted },
                report,
            };
            session.log_load();
            return Ok(session);
        }
        // A live process holds the primary lock: claim a segment so
        // this run still persists.
        let name = format!(
            "p{}-{}",
            std::process::id(),
            SESSION_SEQ.fetch_add(1, Ordering::Relaxed)
        );
        match SegmentSession::claim(path, &name, seg::DEFAULT_TTL_SECS)? {
            Some(session) => {
                let session = Arc::new(session);
                let mut report = cache.load_jsonl_lenient(path)?;
                for peer in peer_segments(path, session.path())? {
                    let r = cache.load_jsonl_lenient(&peer)?;
                    report.loaded += r.loaded;
                    report.superseded += r.superseded;
                }
                let own = session.load_into(cache)?;
                report.loaded += own.loaded;
                cache.set_persist(Some(session.persist_hook()));
                // Not read-only: this session persists through its
                // segment. Overwrite the gauge the losing lock acquire
                // published.
                subvt_engine::trace::gauge(&subvt_engine::cache::readonly_gauge_name(path), 0.0);
                eprintln!(
                    "cache file {} is held by another process; persisting to segment {}",
                    path.display(),
                    session.path().display()
                );
                let session = Self {
                    path: path.to_owned(),
                    state: State::Segment { session },
                    report,
                };
                session.log_load();
                Ok(session)
            }
            None => {
                eprintln!(
                    "warning: cache file {} is locked by another process; \
                     running read-only (no results will be persisted)",
                    path.display()
                );
                let report = cache.load_jsonl_lenient(path)?;
                let session = Self {
                    path: path.to_owned(),
                    state: State::ReadOnly,
                    report,
                };
                session.log_load();
                Ok(session)
            }
        }
    }

    /// Opens an explicit *segment* session named `name` — the fleet
    /// worker path. No primary-lock attempt, no peer-segment loads
    /// (fleet shards are disjoint; each worker sees the base file plus
    /// its own scrubbed leftovers). `Ok(None)` means a live process
    /// already holds this segment name.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn open_segment(path: &Path, name: &str) -> std::io::Result<Option<Self>> {
        let cache = subvt_engine::global_cache();
        let Some(session) = SegmentSession::claim(path, name, seg::DEFAULT_TTL_SECS)? else {
            return Ok(None);
        };
        let session = Arc::new(session);
        let mut report = cache.load_jsonl_lenient(path)?;
        let own = session.load_into(cache)?;
        report.loaded += own.loaded;
        cache.set_persist(Some(session.persist_hook()));
        Ok(Some(Self {
            path: path.to_owned(),
            state: State::Segment { session },
            report,
        }))
    }

    fn log_load(&self) {
        if self.report.loaded > 0 {
            eprintln!(
                "loaded {} cached results from {}",
                self.report.loaded,
                self.path.display()
            );
        }
        if self.report.superseded > 0 {
            eprintln!("  ({} superseded entries dropped)", self.report.superseded);
        }
        if self.report.quarantined > 0 {
            eprintln!(
                "  ({} corrupted lines quarantined to {})",
                self.report.quarantined,
                quarantine_path(&self.path).display()
            );
        }
    }

    /// This session's persistence mode.
    pub fn mode(&self) -> SessionMode {
        match &self.state {
            State::Primary { .. } => SessionMode::Primary,
            State::Segment { .. } => SessionMode::Segment,
            State::ReadOnly => SessionMode::ReadOnly,
        }
    }

    /// Whether this session persists nothing. Note that losing the
    /// primary lock no longer implies read-only — a segment session
    /// persists through its segment.
    pub fn read_only(&self) -> bool {
        matches!(self.state, State::ReadOnly)
    }

    /// The cache file path this session manages.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The segment file this session appends to (segment mode only).
    pub fn segment_path(&self) -> Option<&Path> {
        match &self.state {
            State::Segment { session } => Some(session.path()),
            _ => None,
        }
    }

    /// What the open-time load found (base file plus adopted or peer
    /// segments, depending on mode).
    pub fn load_report(&self) -> LoadReport {
        self.report
    }

    /// Closes the session. Primary: rewrites the canonical file
    /// (atomic temp-file + rename, compacting superseded duplicates
    /// and adopted segments) and releases the lock. Segment: seals the
    /// segment (kept for the next compaction if non-empty) and
    /// releases the lease. Returns the number of entries made durable
    /// by *this* close (segment mode: lines this session appended;
    /// read-only: 0).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the save.
    pub fn close(self) -> std::io::Result<usize> {
        match self.state {
            State::Primary { lock, adopted } => {
                let written = subvt_engine::global_cache().save_jsonl(&self.path)?;
                // The adopted segments' entries are durable in the
                // canonical file now; retire the source files.
                seg::remove_adopted(&self.path, &adopted);
                drop(lock);
                Ok(written)
            }
            State::Segment { session } => {
                subvt_engine::global_cache().set_persist(None);
                let appended = session.appended() as usize;
                session.close();
                Ok(appended)
            }
            State::ReadOnly => Ok(0),
        }
    }
}

/// Every peer segment under `path`'s segment directory except `own`.
/// Sorted for deterministic load order.
fn peer_segments(path: &Path, own: &Path) -> std::io::Result<Vec<PathBuf>> {
    let dir = seg::segment_dir(path);
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut peers: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p != own
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("seg-") && n.ends_with(".jsonl"))
        })
        .collect();
    peers.sort();
    Ok(peers)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("subvt-exp-cachefile-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}.jsonl"))
    }

    #[test]
    fn open_missing_file_is_writable_and_empty() {
        let path = temp_path("fresh");
        std::fs::remove_file(&path).ok();
        let session = CacheSession::open(&path).unwrap();
        assert!(!session.read_only());
        assert_eq!(session.mode(), SessionMode::Primary);
        assert_eq!(session.load_report(), LoadReport::default());
        session.close().unwrap();
        assert!(path.exists(), "close must persist the (compacted) file");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn second_session_persists_through_a_segment() {
        let path = temp_path("contended");
        std::fs::remove_file(&path).ok();
        let holder = CacheSession::open(&path).unwrap();
        assert_eq!(holder.mode(), SessionMode::Primary);
        let second = CacheSession::open(&path).unwrap();
        assert_eq!(
            second.mode(),
            SessionMode::Segment,
            "losing the lock must claim a segment, not fail or go read-only"
        );
        assert!(
            !second.read_only(),
            "a segment session persists — it is not read-only"
        );
        let gauge = subvt_engine::trace::global()
            .snapshot()
            .gauges
            .get(subvt_engine::cache::readonly_gauge_name(&path).as_str())
            .copied();
        assert_eq!(gauge, Some(0.0), "segment fallback clears the gauge");
        second.close().unwrap();
        holder.close().unwrap();
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir_all(seg::segment_dir(&path)).ok();
    }

    #[test]
    fn stale_primary_lock_is_reclaimed_by_open() {
        let path = temp_path("stale-lock");
        std::fs::remove_file(&path).ok();
        // A crashed holder: lock file recording a pid that cannot be a
        // live process.
        let lock_path = {
            let mut os = path.as_os_str().to_owned();
            os.push(".lock");
            PathBuf::from(os)
        };
        std::fs::write(&lock_path, "999999999\n").unwrap();
        let session = CacheSession::open(&path).unwrap();
        assert_eq!(
            session.mode(),
            SessionMode::Primary,
            "a dead holder's lock must be reclaimed read-write"
        );
        session.close().unwrap();
        assert!(path.exists());
        std::fs::remove_file(&path).ok();
    }
}
