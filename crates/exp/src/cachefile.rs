//! Shared persistent-cache session handling for long-lived processes.
//!
//! Both entry points that persist the engine's result cache — the
//! one-shot `repro` CLI and the `subvt-serve` daemon — need the same
//! open/close choreography: take the advisory [`CacheLock`], degrade to
//! read-only (observably!) when another process holds it, load the
//! JSON-lines file with quarantine accounting, and on clean shutdown
//! rewrite the file through the atomic temp-file path, which also
//! compacts superseded duplicate entries. [`CacheSession`] packages
//! that choreography so the two binaries cannot drift apart.
//!
//! Read-only degradation is deliberately loud: the engine publishes a
//! `cache.<file-stem>.readonly` gauge when the lock acquire loses, and
//! [`CacheSession::open`] prints a one-line warning, so a degraded
//! server is observable in `/metrics` and in its logs instead of
//! silently not persisting.

use std::path::{Path, PathBuf};

use subvt_engine::cache::{quarantine_path, CacheLock, LoadReport};

/// An open session against a persistent cache file: lock (or observable
/// read-only degradation) plus the loaded entries.
#[derive(Debug)]
pub struct CacheSession {
    path: PathBuf,
    lock: Option<CacheLock>,
    report: LoadReport,
}

impl CacheSession {
    /// Opens `path` against the process-wide cache: acquires the
    /// advisory lock (degrading to read-only with a warning and the
    /// `cache.<stem>.readonly` gauge when another process holds it) and
    /// loads every intact entry, logging the load summary to stderr.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the lock file or the cache file
    /// (missing cache file is not an error — it loads empty).
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let lock = CacheLock::acquire(path)?;
        if lock.is_none() {
            eprintln!(
                "warning: cache file {} is locked by another process; \
                 running read-only (no results will be persisted)",
                path.display()
            );
        }
        let report = subvt_engine::global_cache().load_jsonl_report(path)?;
        if report.loaded > 0 {
            eprintln!(
                "loaded {} cached results from {}",
                report.loaded,
                path.display()
            );
        }
        if report.superseded > 0 {
            eprintln!("  ({} superseded entries dropped)", report.superseded);
        }
        if report.quarantined > 0 {
            eprintln!(
                "  ({} corrupted lines quarantined to {})",
                report.quarantined,
                quarantine_path(path).display()
            );
        }
        Ok(Self {
            path: path.to_owned(),
            lock,
            report,
        })
    }

    /// Whether this session lost the lock race and runs read-only.
    pub fn read_only(&self) -> bool {
        self.lock.is_none()
    }

    /// The cache file path this session manages.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// What the open-time load found.
    pub fn load_report(&self) -> LoadReport {
        self.report
    }

    /// Closes the session: a lock-holding session rewrites the file
    /// (atomic temp-file + rename, compacting superseded duplicates)
    /// and releases the lock; a read-only session only releases its
    /// state. Returns the number of entries written (0 when
    /// read-only).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the save.
    pub fn close(self) -> std::io::Result<usize> {
        let written = match &self.lock {
            Some(_) => subvt_engine::global_cache().save_jsonl(&self.path)?,
            None => 0,
        };
        drop(self.lock);
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("subvt-exp-cachefile-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}.jsonl"))
    }

    #[test]
    fn open_missing_file_is_writable_and_empty() {
        let path = temp_path("fresh");
        std::fs::remove_file(&path).ok();
        let session = CacheSession::open(&path).unwrap();
        assert!(!session.read_only());
        assert_eq!(session.load_report(), LoadReport::default());
        session.close().unwrap();
        assert!(path.exists(), "close must persist the (compacted) file");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn second_session_degrades_to_read_only() {
        let path = temp_path("contended");
        std::fs::remove_file(&path).ok();
        let holder = CacheSession::open(&path).unwrap();
        assert!(!holder.read_only());
        let loser = CacheSession::open(&path).unwrap();
        assert!(loser.read_only(), "losing the lock must degrade, not fail");
        assert_eq!(loser.close().unwrap(), 0, "read-only close writes nothing");
        let gauge = subvt_engine::trace::global()
            .snapshot()
            .gauges
            .get(subvt_engine::cache::readonly_gauge_name(&path).as_str())
            .copied();
        assert_eq!(gauge, Some(1.0), "degradation must publish the gauge");
        holder.close().unwrap();
        std::fs::remove_file(&path).ok();
    }
}
