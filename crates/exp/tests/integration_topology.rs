//! Tier-1 integration: degenerate equivalences and physical sanity
//! bounds for the declarative topology layer.
//!
//! A two-input gate with its inputs tied together (`OtherInput::Common`)
//! is electrically an inverter with a perturbed pull network: the NAND's
//! series NFET stack halves the pulldown drive while its parallel PFETs
//! double the pullup (and dually for the NOR). In subthreshold that
//! drive-ratio change shifts the switching threshold by roughly
//! `m·v_T·ln(4)/2` — a few tens of millivolts — but must NOT change the
//! logic function, the output rails, or the noise-margin picture. These
//! tests pin that equivalence at every Table 2 node, against both the
//! analytic and the SPICE inverter, and bound the ring oscillator
//! against the analytic FO1 delay.

use subvt_circuits::delay::analytic_fo1_delay;
use subvt_circuits::gates::{GateKind, OtherInput};
use subvt_circuits::inverter::{analytic_vtc, Vtc};
use subvt_circuits::snm::noise_margins;
use subvt_circuits::topology::{cached_gate_vtc, cached_inverter_vtc, cached_ring_oscillation};
use subvt_exp::StudyContext;
use subvt_units::Volts;

/// The paper's sub-V_th evaluation supply.
const V_DD: f64 = 0.25;
/// Input-axis resolution for the transfer curves.
const POINTS: usize = 61;

/// Input voltage at which the transfer curve crosses `v_dd/2`, by
/// linear interpolation on the falling transition.
fn switching_threshold(vtc: &Vtc) -> f64 {
    let half = vtc.v_dd / 2.0;
    for w in vtc.v_in.windows(2).zip(vtc.v_out.windows(2)) {
        let ((x0, x1), (y0, y1)) = ((w.0[0], w.0[1]), (w.1[0], w.1[1]));
        if (y0 >= half) != (y1 >= half) {
            return x0 + (half - y0) / (y1 - y0) * (x1 - x0);
        }
    }
    panic!("transfer curve never crosses v_dd/2");
}

fn snm_of(vtc: &Vtc) -> f64 {
    noise_margins(vtc)
        .expect("transfer curve has unity-gain points")
        .snm()
}

#[test]
fn common_input_gates_degenerate_to_the_inverter_at_every_node() {
    let ctx = StudyContext::cached();
    let v = Volts::new(V_DD);
    for design in &ctx.supervth {
        let pair = subvt_exp::backend::pair(design);
        let inv = cached_inverter_vtc(&pair, v, POINTS).expect("inverter VTC");
        let inv_vm = switching_threshold(&inv);
        let inv_snm = snm_of(&inv);
        let ana_snm = snm_of(&analytic_vtc(&pair, v, POINTS));
        for kind in [GateKind::Nand2, GateKind::Nor2] {
            let gate = cached_gate_vtc(&pair, kind, v, OtherInput::Common, POINTS)
                .expect("degenerate gate VTC");
            // Full output rails at the sweep ends (within a few mV of
            // the supply/ground like the inverter itself).
            assert!(
                (gate.v_out[0] - V_DD).abs() < 0.01 && gate.v_out[POINTS - 1].abs() < 0.01,
                "{:?} at {}: degenerate gate does not rail ({:.4}, {:.4})",
                kind,
                design.node.name(),
                gate.v_out[0],
                gate.v_out[POINTS - 1],
            );
            // Switching threshold within the stack-effect shift budget.
            let vm = switching_threshold(&gate);
            assert!(
                (vm - inv_vm).abs() < 0.040,
                "{:?} at {}: V_M {:.4} vs inverter {:.4}",
                kind,
                design.node.name(),
                vm,
                inv_vm,
            );
            // Noise margins within tolerance of both inverter models.
            let snm = snm_of(&gate);
            assert!(
                (snm - inv_snm).abs() < 0.035,
                "{:?} at {}: SNM {:.4} vs spice inverter {:.4}",
                kind,
                design.node.name(),
                snm,
                inv_snm,
            );
            assert!(
                (snm - ana_snm).abs() < 0.045,
                "{:?} at {}: SNM {:.4} vs analytic inverter {:.4}",
                kind,
                design.node.name(),
                snm,
                ana_snm,
            );
        }
    }
}

#[test]
fn ring_period_tracks_twice_stages_times_fo1() {
    let ctx = StudyContext::cached();
    let pair = subvt_exp::backend::pair(&ctx.supervth[0]);
    let v = Volts::new(V_DD);
    let stages = 5;
    let osc = cached_ring_oscillation(&pair, v, stages, 1500).expect("ring oscillates");
    let fo1 = analytic_fo1_delay(&pair, v).get();
    let expected = 2.0 * stages as f64 * fo1;
    let ratio = osc.period.get() / expected;
    assert!(
        (0.5..=3.0).contains(&ratio),
        "ring period {:.3e} s vs 2*N*FO1 {:.3e} s (ratio {ratio:.2})",
        osc.period.get(),
        expected,
    );
    assert!(
        (osc.stage_delay.get() - osc.period.get() / (2.0 * stages as f64)).abs()
            < 1e-9 * osc.period.get(),
        "stage delay must be period/(2N)"
    );
}

#[test]
fn topology_measurements_are_cache_resident_on_rerun() {
    let ctx = StudyContext::cached();
    let pair = subvt_exp::backend::pair(&ctx.supervth[0]);
    let v = Volts::new(V_DD);
    // Populate.
    cached_gate_vtc(&pair, GateKind::Nand2, v, OtherInput::Common, POINTS).unwrap();
    let cache = subvt_engine::global_cache();
    let (hits, misses) = {
        let s = cache.stats();
        (s.hits, s.misses)
    };
    // Rerun: identical compiled bench, identical key, no new miss.
    let again = cached_gate_vtc(&pair, GateKind::Nand2, v, OtherInput::Common, POINTS).unwrap();
    let s = cache.stats();
    assert_eq!(s.misses, misses, "warm rerun must not miss");
    assert!(s.hits > hits, "warm rerun must hit");
    assert_eq!(again.v_out.len(), POINTS);
}
