//! All-region compact I–V model for circuit simulation.
//!
//! EKV-style interpolation `I = I_spec·[F(u_f) − F(u_r)]` with
//! `F(v) = ln²(1+e^{v/2})`, anchored so the weak-inversion limit is
//! *exactly* the paper's Eq. 1 (the anchor shift `δ` absorbs the
//! prefactor mismatch between the EKV specific current and Eq. 1's
//! `μ·C_d·v_T²` form). Strong inversion adds vertical-field mobility
//! degradation and a velocity-saturation factor.
//!
//! The model is source-referenced and polarity-free: callers pass
//! *magnitude-frame* `v_gs`/`v_ds` (the circuit layer maps PFET node
//! voltages into this frame). Currents are per micron of width.

use subvt_units::{AmpsPerMicron, Nanometers, Volts};

use crate::device::{DeviceCharacteristics, DeviceKind, DeviceParams};
use crate::math::ekv_f;
use crate::mobility::{effective_mobility, saturation_velocity};

/// All-region MOSFET I–V model, width-normalized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosModel {
    /// Polarity this model was built for (affects mobility and v_sat).
    pub kind: DeviceKind,
    /// Linear-region threshold voltage (`V_ds = 50 mV` reference).
    pub v_th_lin: Volts,
    /// DIBL coefficient, V/V.
    pub dibl: f64,
    /// Subthreshold slope factor.
    pub m: f64,
    /// Eq. 1 prefactor `I₀` (weak-inversion anchor).
    pub i0: AmpsPerMicron,
    /// Low-field mobility, cm²/Vs.
    pub mu0: f64,
    /// Oxide capacitance, F/cm².
    pub c_ox_f_per_cm2: f64,
    /// Effective channel length.
    pub l_eff: Nanometers,
    /// Oxide thickness (for the mobility-degradation coefficient).
    pub t_ox: Nanometers,
    /// Thermal voltage, V.
    pub v_t: f64,
    /// Reference `V_ds` at which `v_th_lin` is defined.
    pub v_ds_ref: Volts,
}

impl MosModel {
    /// Builds the model from a parameter set and its characterization.
    pub fn from_device(params: &DeviceParams, chars: &DeviceCharacteristics) -> Self {
        Self {
            kind: params.kind,
            v_th_lin: chars.v_th_lin,
            dibl: chars.dibl,
            m: chars.m,
            i0: chars.i0,
            mu0: chars.mu0,
            c_ox_f_per_cm2: chars.c_ox.get(),
            l_eff: chars.l_eff,
            t_ox: params.geometry.t_ox,
            v_t: params.temperature.thermal_voltage().as_volts(),
            v_ds_ref: Volts::new(0.05),
        }
    }

    /// Bias-dependent threshold including DIBL:
    /// `V_th(V_ds) = V_th,lin − DIBL·(V_ds − V_ds,ref)`.
    pub fn v_th(&self, v_ds: Volts) -> Volts {
        Volts::new(
            self.v_th_lin.as_volts()
                - self.dibl * (v_ds.as_volts() - self.v_ds_ref.as_volts()).max(0.0),
        )
    }

    /// EKV specific current `I_spec = 2·m·μ·C_ox·v_T²·(W/L_eff)` per µm
    /// of width, at low-field mobility.
    pub fn i_spec(&self) -> f64 {
        let w_over_l = 1.0e-4 / self.l_eff.as_cm();
        2.0 * self.m * self.mu0 * self.c_ox_f_per_cm2 * self.v_t * self.v_t * w_over_l
    }

    /// The weak-inversion anchor shift `δ = m·v_T·ln(I_spec/I₀)`, which
    /// makes the EKV weak-inversion limit coincide with Eq. 1.
    pub fn anchor_shift(&self) -> f64 {
        self.m * self.v_t * (self.i_spec() / self.i0.get()).ln()
    }

    /// Drain current at magnitude-frame biases (`v_gs`, `v_ds ≥ 0`).
    ///
    /// Smooth and monotone in both arguments; negative `v_ds` is handled
    /// by channel symmetry (returns negative current).
    pub fn drain_current(&self, v_gs: Volts, v_ds: Volts) -> AmpsPerMicron {
        if v_ds.as_volts() < 0.0 {
            // Source/drain symmetry: swap terminals.
            let swapped = self.drain_current(
                Volts::new(v_gs.as_volts() - v_ds.as_volts()),
                Volts::new(-v_ds.as_volts()),
            );
            return AmpsPerMicron::new(-swapped.get());
        }
        let v_th = self.v_th(v_ds).as_volts();
        let delta = self.anchor_shift();
        let mvt = self.m * self.v_t;
        let u_f = (v_gs.as_volts() - v_th - delta) / mvt;
        let u_r = u_f - v_ds.as_volts() / self.v_t;
        let overdrive = (v_gs.as_volts() - v_th).max(0.0);
        let mu_eff = effective_mobility(self.mu0, Volts::new(overdrive), self.t_ox);
        let i_spec_eff = self.i_spec() * mu_eff / self.mu0;
        let i_dd = i_spec_eff * (ekv_f(u_f) - ekv_f(u_r));

        // Velocity saturation: critical field E_c = 2·v_sat/μ_eff. The
        // degradation freezes at V_dsat = V_ov/(1 + V_ov/E_c·L) — below
        // the triode-peak voltage — which keeps I(V_ds) monotone while
        // leaving subthreshold operation (V_ov ≤ 0) untouched.
        let v_sat = saturation_velocity(self.kind);
        let e_c_l = 2.0 * v_sat / mu_eff * self.l_eff.as_cm();
        let v_dsat = overdrive / (1.0 + overdrive / e_c_l);
        let v_ds_eff = v_ds.as_volts().min(v_dsat);
        let f_sat = 1.0 / (1.0 + (v_ds_eff / e_c_l).max(0.0));
        AmpsPerMicron::new(i_dd * f_sat)
    }

    /// Transconductance `∂I_d/∂V_gs` by central difference, A/(µm·V).
    pub fn gm(&self, v_gs: Volts, v_ds: Volts) -> f64 {
        let h = 1.0e-5;
        let hi = self.drain_current(Volts::new(v_gs.as_volts() + h), v_ds);
        let lo = self.drain_current(Volts::new(v_gs.as_volts() - h), v_ds);
        (hi.get() - lo.get()) / (2.0 * h)
    }

    /// Output conductance `∂I_d/∂V_ds` by central difference, A/(µm·V).
    pub fn gds(&self, v_gs: Volts, v_ds: Volts) -> f64 {
        let h = 1.0e-5;
        let hi = self.drain_current(v_gs, Volts::new(v_ds.as_volts() + h));
        let lo = self.drain_current(v_gs, Volts::new(v_ds.as_volts() - h));
        (hi.get() - lo.get()) / (2.0 * h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subthreshold::subthreshold_current;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;
    use subvt_units::Temperature;

    fn model() -> MosModel {
        let p = DeviceParams::reference_90nm_nfet();
        MosModel::from_device(&p, &p.characterize())
    }

    #[test]
    fn weak_inversion_matches_eq1() {
        // Deep in subthreshold the EKV interpolation must reproduce the
        // paper's Eq. 1 within a fraction of a percent.
        let m = model();
        let t = Temperature::room();
        let p = DeviceParams::reference_90nm_nfet();
        let ch = p.characterize();
        for (vgs, vds) in [(0.0, 0.25), (0.1, 0.25), (0.2, 0.1), (0.15, 0.05)] {
            let v_th = m.v_th(Volts::new(vds));
            let eq1 = subthreshold_current(ch.i0, Volts::new(vgs), Volts::new(vds), v_th, ch.m, t);
            let ekv = m.drain_current(Volts::new(vgs), Volts::new(vds));
            assert!(
                (ekv.get() / eq1.get() - 1.0).abs() < 0.02,
                "vgs={vgs} vds={vds}: ekv {:.3e} vs eq1 {:.3e}",
                ekv.get(),
                eq1.get()
            );
        }
    }

    #[test]
    fn strong_inversion_current_is_hundreds_of_microamps() {
        let m = model();
        let ion = m.drain_current(Volts::new(1.2), Volts::new(1.2));
        assert!(
            ion.as_microamps() > 100.0 && ion.as_microamps() < 1500.0,
            "got {} µA/µm",
            ion.as_microamps()
        );
    }

    #[test]
    fn current_is_antisymmetric_in_vds() {
        let m = model();
        // Swapping source and drain with the gate bias adjusted must
        // mirror the current (channel symmetry in weak inversion, where
        // the model is exactly symmetric).
        let i_fwd = m.drain_current(Volts::new(0.2), Volts::new(0.15));
        let i_rev = m.drain_current(Volts::new(0.05), Volts::new(-0.15));
        assert!(i_rev.get() < 0.0);
        assert!((i_fwd.get() + i_rev.get()).abs() < 0.05 * i_fwd.get().abs());
    }

    #[test]
    fn zero_vds_means_zero_current() {
        let m = model();
        let i = m.drain_current(Volts::new(0.5), Volts::new(0.0));
        assert!(i.get().abs() < 1e-15);
    }

    #[test]
    fn gm_positive_and_peaks_above_threshold() {
        let m = model();
        let sub = m.gm(Volts::new(0.2), Volts::new(1.0));
        let strong = m.gm(Volts::new(1.0), Volts::new(1.0));
        assert!(sub > 0.0 && strong > sub);
    }

    #[test]
    fn saturation_flattens_output_curve() {
        let m = model();
        let g_lin = m.gds(Volts::new(1.2), Volts::new(0.05));
        let g_sat = m.gds(Volts::new(1.2), Volts::new(1.0));
        assert!(g_sat < 0.3 * g_lin);
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn monotone_in_vgs(vgs in 0.0f64..1.2, dv in 1e-3f64..0.2) {
            let m = model();
            let vds = Volts::new(0.6);
            let a = m.drain_current(Volts::new(vgs), vds);
            let b = m.drain_current(Volts::new(vgs + dv), vds);
            prop_assert!(b.get() > a.get());
        }

        #[test]
        fn monotone_in_vds(vds in 0.0f64..1.2, dv in 1e-3f64..0.2) {
            let m = model();
            let vgs = Volts::new(0.8);
            let a = m.drain_current(vgs, Volts::new(vds));
            let b = m.drain_current(vgs, Volts::new(vds + dv));
            prop_assert!(b.get() >= a.get() * (1.0 - 1e-9));
        }

        #[test]
        fn current_finite_over_operating_box(
            vgs in -0.3f64..1.4,
            vds in -1.4f64..1.4,
        ) {
            let m = model();
            let i = m.drain_current(Volts::new(vgs), Volts::new(vds));
            prop_assert!(i.get().is_finite());
        }
    }
}
