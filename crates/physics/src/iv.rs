//! All-region compact I–V model for circuit simulation.
//!
//! EKV-style interpolation `I = I_spec·[F(u_f) − F(u_r)]` with
//! `F(v) = ln²(1+e^{v/2})`, anchored so the weak-inversion limit is
//! *exactly* the paper's Eq. 1 (the anchor shift `δ` absorbs the
//! prefactor mismatch between the EKV specific current and Eq. 1's
//! `μ·C_d·v_T²` form). Strong inversion adds vertical-field mobility
//! degradation and a velocity-saturation factor.
//!
//! The model is source-referenced and polarity-free: callers pass
//! *magnitude-frame* `v_gs`/`v_ds` (the circuit layer maps PFET node
//! voltages into this frame). Currents are per micron of width.

use subvt_units::{AmpsPerMicron, Nanometers, Volts};

use crate::device::{DeviceCharacteristics, DeviceKind, DeviceParams};
use crate::math::{ekv_f, ekv_f_prime};
use crate::mobility::{effective_mobility, mobility_theta, saturation_velocity};

/// All-region MOSFET I–V model, width-normalized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosModel {
    /// Polarity this model was built for (affects mobility and v_sat).
    pub kind: DeviceKind,
    /// Linear-region threshold voltage (`V_ds = 50 mV` reference).
    pub v_th_lin: Volts,
    /// DIBL coefficient, V/V.
    pub dibl: f64,
    /// Subthreshold slope factor.
    pub m: f64,
    /// Eq. 1 prefactor `I₀` (weak-inversion anchor).
    pub i0: AmpsPerMicron,
    /// Low-field mobility, cm²/Vs.
    pub mu0: f64,
    /// Oxide capacitance, F/cm².
    pub c_ox_f_per_cm2: f64,
    /// Effective channel length.
    pub l_eff: Nanometers,
    /// Oxide thickness (for the mobility-degradation coefficient).
    pub t_ox: Nanometers,
    /// Thermal voltage, V.
    pub v_t: f64,
    /// Reference `V_ds` at which `v_th_lin` is defined.
    pub v_ds_ref: Volts,
}

impl MosModel {
    /// Builds the model from a parameter set and its characterization.
    pub fn from_device(params: &DeviceParams, chars: &DeviceCharacteristics) -> Self {
        Self {
            kind: params.kind,
            v_th_lin: chars.v_th_lin,
            dibl: chars.dibl,
            m: chars.m,
            i0: chars.i0,
            mu0: chars.mu0,
            c_ox_f_per_cm2: chars.c_ox.get(),
            l_eff: chars.l_eff,
            t_ox: params.geometry.t_ox,
            v_t: params.temperature.thermal_voltage().as_volts(),
            v_ds_ref: Volts::new(0.05),
        }
    }

    /// Bias-dependent threshold including DIBL:
    /// `V_th(V_ds) = V_th,lin − DIBL·(V_ds − V_ds,ref)`.
    pub fn v_th(&self, v_ds: Volts) -> Volts {
        Volts::new(
            self.v_th_lin.as_volts()
                - self.dibl * (v_ds.as_volts() - self.v_ds_ref.as_volts()).max(0.0),
        )
    }

    /// EKV specific current `I_spec = 2·m·μ·C_ox·v_T²·(W/L_eff)` per µm
    /// of width, at low-field mobility.
    pub fn i_spec(&self) -> f64 {
        let w_over_l = 1.0e-4 / self.l_eff.as_cm();
        2.0 * self.m * self.mu0 * self.c_ox_f_per_cm2 * self.v_t * self.v_t * w_over_l
    }

    /// The weak-inversion anchor shift `δ = m·v_T·ln(I_spec/I₀)`, which
    /// makes the EKV weak-inversion limit coincide with Eq. 1.
    pub fn anchor_shift(&self) -> f64 {
        self.m * self.v_t * (self.i_spec() / self.i0.get()).ln()
    }

    /// Drain current at magnitude-frame biases (`v_gs`, `v_ds ≥ 0`).
    ///
    /// Smooth and monotone in both arguments; negative `v_ds` is handled
    /// by channel symmetry (returns negative current).
    pub fn drain_current(&self, v_gs: Volts, v_ds: Volts) -> AmpsPerMicron {
        if v_ds.as_volts() < 0.0 {
            // Source/drain symmetry: swap terminals.
            let swapped = self.drain_current(
                Volts::new(v_gs.as_volts() - v_ds.as_volts()),
                Volts::new(-v_ds.as_volts()),
            );
            return AmpsPerMicron::new(-swapped.get());
        }
        let v_th = self.v_th(v_ds).as_volts();
        let delta = self.anchor_shift();
        let mvt = self.m * self.v_t;
        let u_f = (v_gs.as_volts() - v_th - delta) / mvt;
        let u_r = u_f - v_ds.as_volts() / self.v_t;
        let overdrive = (v_gs.as_volts() - v_th).max(0.0);
        let mu_eff = effective_mobility(self.mu0, Volts::new(overdrive), self.t_ox);
        let i_spec_eff = self.i_spec() * mu_eff / self.mu0;
        let i_dd = i_spec_eff * (ekv_f(u_f) - ekv_f(u_r));

        // Velocity saturation: critical field E_c = 2·v_sat/μ_eff. The
        // degradation freezes at V_dsat = V_ov/(1 + V_ov/E_c·L) — below
        // the triode-peak voltage — which keeps I(V_ds) monotone while
        // leaving subthreshold operation (V_ov ≤ 0) untouched.
        let v_sat = saturation_velocity(self.kind);
        let e_c_l = 2.0 * v_sat / mu_eff * self.l_eff.as_cm();
        let v_dsat = overdrive / (1.0 + overdrive / e_c_l);
        let v_ds_eff = v_ds.as_volts().min(v_dsat);
        let f_sat = 1.0 / (1.0 + (v_ds_eff / e_c_l).max(0.0));
        AmpsPerMicron::new(i_dd * f_sat)
    }

    /// Drain current plus its analytic partial derivatives
    /// `(I, ∂I/∂V_gs, ∂I/∂V_ds)` at magnitude-frame biases.
    ///
    /// The current is computed through the exact operation sequence of
    /// [`MosModel::drain_current`], so the value component is bit-for-bit
    /// identical to it — circuit residuals assembled from either entry
    /// point agree exactly. The derivatives are the chain rule applied to
    /// every smooth factor; at the model's kinks (the `max`/`min` clamps
    /// on DIBL, overdrive, and `V_dsat`) the one-sided derivative of the
    /// active branch is returned, matching what a forward difference
    /// converges to from inside the branch.
    pub fn drain_current_and_derivs(&self, v_gs: Volts, v_ds: Volts) -> (AmpsPerMicron, f64, f64) {
        if v_ds.as_volts() < 0.0 {
            // Source/drain symmetry: I(g, d) = −J(g − d, −d), so
            // ∂I/∂g = −J_g and ∂I/∂d = J_g + J_d.
            let (swapped, j_g, j_d) = self.drain_current_and_derivs(
                Volts::new(v_gs.as_volts() - v_ds.as_volts()),
                Volts::new(-v_ds.as_volts()),
            );
            return (AmpsPerMicron::new(-swapped.get()), -j_g, j_g + j_d);
        }

        // Value path: identical expressions, in identical order, to
        // `drain_current`.
        let v_th = self.v_th(v_ds).as_volts();
        let delta = self.anchor_shift();
        let mvt = self.m * self.v_t;
        let u_f = (v_gs.as_volts() - v_th - delta) / mvt;
        let u_r = u_f - v_ds.as_volts() / self.v_t;
        let overdrive = (v_gs.as_volts() - v_th).max(0.0);
        let mu_eff = effective_mobility(self.mu0, Volts::new(overdrive), self.t_ox);
        let i_spec_eff = self.i_spec() * mu_eff / self.mu0;
        let i_dd = i_spec_eff * (ekv_f(u_f) - ekv_f(u_r));
        let v_sat = saturation_velocity(self.kind);
        let e_c_l = 2.0 * v_sat / mu_eff * self.l_eff.as_cm();
        let v_dsat = overdrive / (1.0 + overdrive / e_c_l);
        let v_ds_eff = v_ds.as_volts().min(v_dsat);
        let f_sat = 1.0 / (1.0 + (v_ds_eff / e_c_l).max(0.0));
        let current = AmpsPerMicron::new(i_dd * f_sat);

        // Derivative path (pure chain rule; does not perturb the value
        // computation above).
        let dref = self.v_ds_ref.as_volts();
        // V_th(V_ds) = V_th,lin − DIBL·max(V_ds − V_ds,ref, 0).
        let dvth_dd = if v_ds.as_volts() > dref {
            -self.dibl
        } else {
            0.0
        };
        let uf_g = 1.0 / mvt;
        let uf_d = -dvth_dd / mvt;
        let ur_g = uf_g;
        let ur_d = uf_d - 1.0 / self.v_t;
        // Overdrive clamp: derivative active only above threshold.
        let ov_active = v_gs.as_volts() - v_th > 0.0;
        let ov_g = if ov_active { 1.0 } else { 0.0 };
        let ov_d = if ov_active { -dvth_dd } else { 0.0 };
        // μ_eff = μ₀/D with D = 1 + θ·overdrive.
        let theta = mobility_theta(self.t_ox);
        let denom = 1.0 + theta * overdrive;
        let ispec = self.i_spec();
        let ispec_eff_g = -ispec * theta * ov_g / (denom * denom);
        let ispec_eff_d = -ispec * theta * ov_d / (denom * denom);
        let ff = ekv_f(u_f);
        let fr = ekv_f(u_r);
        let ffp = ekv_f_prime(u_f);
        let frp = ekv_f_prime(u_r);
        let i_dd_g = ispec_eff_g * (ff - fr) + i_spec_eff * (ffp * uf_g - frp * ur_g);
        let i_dd_d = ispec_eff_d * (ff - fr) + i_spec_eff * (ffp * uf_d - frp * ur_d);
        // E_c·L = E0·D grows as mobility degrades.
        let e0 = 2.0 * v_sat * self.l_eff.as_cm() / self.mu0;
        let ecl_g = e0 * theta * ov_g;
        let ecl_d = e0 * theta * ov_d;
        // V_dsat = ov·E/(E + ov) → quotient rule.
        let sum = e_c_l + overdrive;
        let vdsat_g = (ov_g * e_c_l * e_c_l + overdrive * overdrive * ecl_g) / (sum * sum);
        let vdsat_d = (ov_d * e_c_l * e_c_l + overdrive * overdrive * ecl_d) / (sum * sum);
        // V_ds,eff = min(V_ds, V_dsat): whichever branch is active wins.
        let (veff_g, veff_d) = if v_ds.as_volts() < v_dsat {
            (0.0, 1.0)
        } else {
            (vdsat_g, vdsat_d)
        };
        // f_sat = 1/S with S = 1 + V_ds,eff/E_c·L (V_ds,eff ≥ 0 here).
        let s = 1.0 + v_ds_eff / e_c_l;
        let fsat_g = -(veff_g * e_c_l - v_ds_eff * ecl_g) / (e_c_l * e_c_l) / (s * s);
        let fsat_d = -(veff_d * e_c_l - v_ds_eff * ecl_d) / (e_c_l * e_c_l) / (s * s);
        let di_dg = i_dd_g * f_sat + i_dd * fsat_g;
        let di_dd = i_dd_d * f_sat + i_dd * fsat_d;
        (current, di_dg, di_dd)
    }

    /// Transconductance `∂I_d/∂V_gs` by central difference, A/(µm·V).
    pub fn gm(&self, v_gs: Volts, v_ds: Volts) -> f64 {
        let h = 1.0e-5;
        let hi = self.drain_current(Volts::new(v_gs.as_volts() + h), v_ds);
        let lo = self.drain_current(Volts::new(v_gs.as_volts() - h), v_ds);
        (hi.get() - lo.get()) / (2.0 * h)
    }

    /// Output conductance `∂I_d/∂V_ds` by central difference, A/(µm·V).
    pub fn gds(&self, v_gs: Volts, v_ds: Volts) -> f64 {
        let h = 1.0e-5;
        let hi = self.drain_current(v_gs, Volts::new(v_ds.as_volts() + h));
        let lo = self.drain_current(v_gs, Volts::new(v_ds.as_volts() - h));
        (hi.get() - lo.get()) / (2.0 * h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subthreshold::subthreshold_current;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;
    use subvt_units::Temperature;

    fn model() -> MosModel {
        let p = DeviceParams::reference_90nm_nfet();
        MosModel::from_device(&p, &p.characterize())
    }

    #[test]
    fn weak_inversion_matches_eq1() {
        // Deep in subthreshold the EKV interpolation must reproduce the
        // paper's Eq. 1 within a fraction of a percent.
        let m = model();
        let t = Temperature::room();
        let p = DeviceParams::reference_90nm_nfet();
        let ch = p.characterize();
        for (vgs, vds) in [(0.0, 0.25), (0.1, 0.25), (0.2, 0.1), (0.15, 0.05)] {
            let v_th = m.v_th(Volts::new(vds));
            let eq1 = subthreshold_current(ch.i0, Volts::new(vgs), Volts::new(vds), v_th, ch.m, t);
            let ekv = m.drain_current(Volts::new(vgs), Volts::new(vds));
            assert!(
                (ekv.get() / eq1.get() - 1.0).abs() < 0.02,
                "vgs={vgs} vds={vds}: ekv {:.3e} vs eq1 {:.3e}",
                ekv.get(),
                eq1.get()
            );
        }
    }

    #[test]
    fn strong_inversion_current_is_hundreds_of_microamps() {
        let m = model();
        let ion = m.drain_current(Volts::new(1.2), Volts::new(1.2));
        assert!(
            ion.as_microamps() > 100.0 && ion.as_microamps() < 1500.0,
            "got {} µA/µm",
            ion.as_microamps()
        );
    }

    #[test]
    fn current_is_antisymmetric_in_vds() {
        let m = model();
        // Swapping source and drain with the gate bias adjusted must
        // mirror the current (channel symmetry in weak inversion, where
        // the model is exactly symmetric).
        let i_fwd = m.drain_current(Volts::new(0.2), Volts::new(0.15));
        let i_rev = m.drain_current(Volts::new(0.05), Volts::new(-0.15));
        assert!(i_rev.get() < 0.0);
        assert!((i_fwd.get() + i_rev.get()).abs() < 0.05 * i_fwd.get().abs());
    }

    #[test]
    fn zero_vds_means_zero_current() {
        let m = model();
        let i = m.drain_current(Volts::new(0.5), Volts::new(0.0));
        assert!(i.get().abs() < 1e-15);
    }

    #[test]
    fn gm_positive_and_peaks_above_threshold() {
        let m = model();
        let sub = m.gm(Volts::new(0.2), Volts::new(1.0));
        let strong = m.gm(Volts::new(1.0), Volts::new(1.0));
        assert!(sub > 0.0 && strong > sub);
    }

    #[test]
    fn saturation_flattens_output_curve() {
        let m = model();
        let g_lin = m.gds(Volts::new(1.2), Volts::new(0.05));
        let g_sat = m.gds(Volts::new(1.2), Volts::new(1.0));
        assert!(g_sat < 0.3 * g_lin);
    }

    #[test]
    fn derivs_value_is_bitwise_identical_to_drain_current() {
        let m = model();
        let p = DeviceParams::reference_90nm_nfet();
        let pm = MosModel::from_device(
            &DeviceParams {
                kind: DeviceKind::Pfet,
                ..p
            },
            &DeviceParams {
                kind: DeviceKind::Pfet,
                ..p
            }
            .characterize(),
        );
        for model in [&m, &pm] {
            for vgs in [-0.2, 0.0, 0.15, 0.25, 0.4, 0.8, 1.2] {
                for vds in [-1.2, -0.3, 0.0, 0.05, 0.125, 0.25, 0.6, 1.2] {
                    let plain = model.drain_current(Volts::new(vgs), Volts::new(vds));
                    let (with_derivs, _, _) =
                        model.drain_current_and_derivs(Volts::new(vgs), Volts::new(vds));
                    assert_eq!(
                        plain.get().to_bits(),
                        with_derivs.get().to_bits(),
                        "vgs={vgs} vds={vds}"
                    );
                }
            }
        }
    }

    #[test]
    fn analytic_derivs_match_central_differences() {
        // Validate the chain rule against the existing central-difference
        // gm/gds across weak inversion, moderate inversion, strong
        // inversion, triode, saturation, and the reversed-channel branch.
        // Bias points sit away from the model's clamp kinks, where the
        // one-sided analytic derivative and a symmetric difference would
        // legitimately disagree.
        let m = model();
        for (vgs, vds) in [
            (0.1, 0.25),
            (0.2, 0.07),
            (0.25, 0.3),
            (0.45, 0.6),
            (0.8, 0.04),
            (0.8, 0.9),
            (1.2, 0.3),
            (1.2, 1.2),
            (0.2, -0.2),
            (0.9, -0.5),
        ] {
            let (i, di_dg, di_dd) = m.drain_current_and_derivs(Volts::new(vgs), Volts::new(vds));
            let gm = m.gm(Volts::new(vgs), Volts::new(vds));
            let gds = m.gds(Volts::new(vgs), Volts::new(vds));
            // Central differences carry O(h²) truncation plus cancellation
            // noise relative to the local conductance scale.
            let scale = gm.abs().max(gds.abs()).max(1e-12);
            assert!(
                (di_dg - gm).abs() <= 1e-4 * scale + 1e-12,
                "gm at vgs={vgs} vds={vds}: analytic {di_dg:e} vs numeric {gm:e} (I={:e})",
                i.get()
            );
            assert!(
                (di_dd - gds).abs() <= 1e-4 * scale + 1e-12,
                "gds at vgs={vgs} vds={vds}: analytic {di_dd:e} vs numeric {gds:e}"
            );
        }
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn monotone_in_vgs(vgs in 0.0f64..1.2, dv in 1e-3f64..0.2) {
            let m = model();
            let vds = Volts::new(0.6);
            let a = m.drain_current(Volts::new(vgs), vds);
            let b = m.drain_current(Volts::new(vgs + dv), vds);
            prop_assert!(b.get() > a.get());
        }

        #[test]
        fn monotone_in_vds(vds in 0.0f64..1.2, dv in 1e-3f64..0.2) {
            let m = model();
            let vgs = Volts::new(0.8);
            let a = m.drain_current(vgs, Volts::new(vds));
            let b = m.drain_current(vgs, Volts::new(vds + dv));
            prop_assert!(b.get() >= a.get() * (1.0 - 1e-9));
        }

        #[test]
        fn current_finite_over_operating_box(
            vgs in -0.3f64..1.4,
            vds in -1.4f64..1.4,
        ) {
            let m = model();
            let i = m.drain_current(Volts::new(vgs), Volts::new(vds));
            prop_assert!(i.get().is_finite());
        }
    }
}
