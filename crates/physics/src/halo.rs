//! Halo (pocket) doping: a pair of Gaussian profiles at the source and
//! drain channel edges, superimposed on the uniform substrate doping —
//! the same construction the paper uses (its §2.2, after refs \[3\]\[12\]).
//!
//! For compact-model purposes the quantity that matters is the *effective
//! channel doping* `N_eff(L_eff)`: the average along the channel. For long
//! channels the halos are isolated bumps and `N_eff → N_sub`; as `L_eff`
//! shrinks the halos merge and `N_eff` rises toward `N_sub + N_p,halo`,
//! which is exactly the mechanism behind halo-induced threshold roll-up
//! (`ΔV_th,halo`) and the `S_S` degradation studied in the paper's Fig. 7.

use subvt_units::{Nanometers, PerCubicCentimeter};

use crate::math::erf;

/// A pair of lateral-Gaussian halo pockets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HaloProfile {
    /// Peak halo doping *above the substrate level* (the paper's
    /// `N_p,halo`; its `N_halo` is `N_sub + N_p,halo`).
    pub peak: PerCubicCentimeter,
    /// Lateral standard deviation of each Gaussian pocket.
    pub sigma: Nanometers,
}

impl HaloProfile {
    /// Creates a halo profile.
    ///
    /// # Panics
    ///
    /// Panics if `peak` is negative or `sigma` is not positive.
    pub fn new(peak: PerCubicCentimeter, sigma: Nanometers) -> Self {
        assert!(peak.get() >= 0.0, "halo peak must be non-negative");
        assert!(sigma.get() > 0.0, "halo sigma must be positive");
        Self { peak, sigma }
    }

    /// Local halo doping contribution at position `x` along a channel of
    /// length `l_eff` (pockets centred at `x = 0` and `x = l_eff`).
    pub fn local_density(&self, x: Nanometers, l_eff: Nanometers) -> PerCubicCentimeter {
        let s = self.sigma.get();
        let xs = x.get();
        let xd = l_eff.get() - x.get();
        let g = |d: f64| (-d * d / (2.0 * s * s)).exp();
        PerCubicCentimeter::new(self.peak.get() * (g(xs) + g(xd)))
    }

    /// Channel-average halo contribution for a channel of length `l_eff`:
    ///
    /// `⟨N_halo⟩ = (2·N_p·σ/L)·√(π/2)·erf(L/(σ·√2))`
    ///
    /// (the closed-form average of the two Gaussians over `[0, L]`).
    ///
    /// # Panics
    ///
    /// Panics if `l_eff` is not positive.
    pub fn channel_average(&self, l_eff: Nanometers) -> PerCubicCentimeter {
        assert!(l_eff.get() > 0.0, "channel length must be positive");
        let s = self.sigma.get();
        let l = l_eff.get();
        let avg = 2.0 * self.peak.get() * s / l
            * (core::f64::consts::PI / 2.0).sqrt()
            * erf(l / (s * core::f64::consts::SQRT_2));
        PerCubicCentimeter::new(avg)
    }
}

/// Effective channel doping `N_eff = N_sub + ⟨N_halo⟩(L_eff)`.
///
/// # Examples
///
/// ```
/// use subvt_physics::halo::{effective_channel_doping, HaloProfile};
/// use subvt_units::{Nanometers, PerCubicCentimeter};
///
/// let halo = HaloProfile::new(PerCubicCentimeter::new(2.0e18), Nanometers::new(7.5));
/// let short = effective_channel_doping(
///     PerCubicCentimeter::new(1.5e18), &halo, Nanometers::new(30.0));
/// let long = effective_channel_doping(
///     PerCubicCentimeter::new(1.5e18), &halo, Nanometers::new(300.0));
/// assert!(short.get() > long.get()); // halos merge at short L
/// ```
pub fn effective_channel_doping(
    n_sub: PerCubicCentimeter,
    halo: &HaloProfile,
    l_eff: Nanometers,
) -> PerCubicCentimeter {
    PerCubicCentimeter::new(n_sub.get() + halo.channel_average(l_eff).get())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::trapz;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    fn halo() -> HaloProfile {
        HaloProfile::new(PerCubicCentimeter::new(2.11e18), Nanometers::new(7.5))
    }

    #[test]
    fn long_channel_average_vanishes() {
        let avg = halo().channel_average(Nanometers::new(10_000.0));
        assert!(avg.get() < 0.01 * halo().peak.get());
    }

    #[test]
    fn short_channel_average_approaches_double_peak() {
        // When L ≪ σ the two pockets overlap fully: local density → 2·peak.
        let h = halo();
        let avg = h.channel_average(Nanometers::new(0.5));
        assert!(avg.get() > 1.9 * h.peak.get());
    }

    #[test]
    fn closed_form_matches_numerical_average() {
        let h = halo();
        for l in [15.0, 45.0, 75.0, 150.0] {
            let l_eff = Nanometers::new(l);
            let xs: Vec<f64> = (0..=400).map(|i| l * i as f64 / 400.0).collect();
            let ys: Vec<f64> = xs
                .iter()
                .map(|&x| h.local_density(Nanometers::new(x), l_eff).get())
                .collect();
            let numeric = trapz(&xs, &ys) / l;
            let closed = h.channel_average(l_eff).get();
            assert!(
                (closed / numeric - 1.0).abs() < 1e-3,
                "L = {l}: closed {closed:e} vs numeric {numeric:e}"
            );
        }
    }

    #[test]
    fn paper_90nm_effective_doping_ballpark() {
        // Paper Table 2 at 90 nm: N_sub = 1.52e18, N_halo = 3.63e18
        // (peak above substrate = 2.11e18). For L_eff ≈ 45 nm the channel
        // average lands mid-way: N_eff ≈ 2.2–2.6e18.
        let n_eff = effective_channel_doping(
            PerCubicCentimeter::new(1.52e18),
            &halo(),
            Nanometers::new(45.0),
        );
        assert!(
            n_eff.get() > 2.2e18 && n_eff.get() < 2.6e18,
            "got {n_eff:e}"
        );
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn average_monotone_decreasing_in_length(
            l in 5.0f64..500.0,
            factor in 1.05f64..10.0,
        ) {
            let h = halo();
            let short = h.channel_average(Nanometers::new(l));
            let long = h.channel_average(Nanometers::new(l * factor));
            prop_assert!(long.get() <= short.get() * (1.0 + 1e-12));
        }

        #[test]
        fn average_scales_linearly_with_peak(
            l in 10.0f64..300.0,
            peak in 1.0e17f64..1.0e19,
        ) {
            let sigma = Nanometers::new(6.0);
            let h1 = HaloProfile::new(PerCubicCentimeter::new(peak), sigma);
            let h2 = HaloProfile::new(PerCubicCentimeter::new(2.0 * peak), sigma);
            let l = Nanometers::new(l);
            let a1 = h1.channel_average(l).get();
            let a2 = h2.channel_average(l).get();
            prop_assert!((a2 / a1 - 2.0).abs() < 1e-9);
        }

        #[test]
        fn effective_doping_bounded(
            l in 5.0f64..1000.0,
            n_sub in 5.0e17f64..5.0e18,
        ) {
            let h = halo();
            let n_sub = PerCubicCentimeter::new(n_sub);
            let n_eff = effective_channel_doping(n_sub, &h, Nanometers::new(l));
            prop_assert!(n_eff.get() >= n_sub.get());
            prop_assert!(n_eff.get() <= n_sub.get() + 2.0 * h.peak.get() * (1.0 + 1e-9));
        }
    }
}
