//! Carrier mobility models: doping-dependent low-field mobility
//! (Caughey–Thomas form with Arora-style parameters), a simple
//! vertical-field degradation term, and saturation velocities.

use subvt_units::consts::{V_SAT_N, V_SAT_P};
use subvt_units::{Nanometers, PerCubicCentimeter, Temperature, Volts};

use crate::device::DeviceKind;

/// Caughey–Thomas doping-dependent low-field mobility, cm²/V·s.
///
/// Parameters follow the classic silicon fits (Arora et al.): electrons
/// `μ_min = 88`, `μ_max = 1340`, `N_ref = 1.26e17`, `α = 0.88`; holes
/// `μ_min = 54`, `μ_max = 460`, `N_ref = 2.35e17`, `α = 0.88`.
///
/// # Examples
///
/// ```
/// use subvt_physics::mobility::low_field_mobility;
/// use subvt_physics::device::DeviceKind;
/// use subvt_units::PerCubicCentimeter;
///
/// let light = low_field_mobility(DeviceKind::Nfet, PerCubicCentimeter::new(1.0e15));
/// let heavy = low_field_mobility(DeviceKind::Nfet, PerCubicCentimeter::new(5.0e18));
/// assert!(light > 1200.0 && heavy < 200.0);
/// ```
pub fn low_field_mobility(kind: DeviceKind, doping: PerCubicCentimeter) -> f64 {
    let n = doping.get().abs();
    let (mu_min, mu_max, n_ref, alpha) = match kind {
        DeviceKind::Nfet => (88.0, 1340.0, 1.26e17, 0.88),
        DeviceKind::Pfet => (54.0, 460.0, 2.35e17, 0.88),
    };
    mu_min + (mu_max - mu_min) / (1.0 + (n / n_ref).powf(alpha))
}

/// Temperature-corrected low-field mobility: lattice (phonon) scattering
/// weakens the mobility as `(T/300 K)^{−1.5}` — the dominant temperature
/// dependence for channel dopings in the paper's range.
///
/// # Examples
///
/// ```
/// use subvt_physics::mobility::low_field_mobility_at;
/// use subvt_physics::device::DeviceKind;
/// use subvt_units::{PerCubicCentimeter, Temperature};
///
/// let n = PerCubicCentimeter::new(2.0e18);
/// let cold = low_field_mobility_at(DeviceKind::Nfet, n, Temperature::from_celsius(-25.0));
/// let hot = low_field_mobility_at(DeviceKind::Nfet, n, Temperature::from_celsius(100.0));
/// assert!(cold > hot);
/// ```
pub fn low_field_mobility_at(
    kind: DeviceKind,
    doping: PerCubicCentimeter,
    temperature: Temperature,
) -> f64 {
    let t_ratio = temperature.as_kelvin() / 300.0;
    low_field_mobility(kind, doping) * t_ratio.powf(-1.5)
}

/// Vertical-field (gate-overdrive) mobility degradation:
/// `μ_eff = μ₀ / (1 + θ·max(V_gs − V_th, 0))` with `θ ∝ 1/T_ox`.
///
/// The coefficient reproduces the familiar `θ ≈ 0.1–0.3 V⁻¹` range for
/// 1.5–2.5 nm oxides. Irrelevant in subthreshold (overdrive ≤ 0) where it
/// returns `μ₀` unchanged.
pub fn effective_mobility(mu0: f64, overdrive: Volts, t_ox: Nanometers) -> f64 {
    let theta = mobility_theta(t_ox);
    mu0 / (1.0 + theta * overdrive.as_volts().max(0.0))
}

/// The vertical-field degradation coefficient `θ = 0.3 / max(T_ox, 0.5 nm)`
/// used by [`effective_mobility`] — exposed so analytic Jacobians can
/// differentiate the degradation term without re-deriving the constant.
pub fn mobility_theta(t_ox: Nanometers) -> f64 {
    0.3 / t_ox.get().max(0.5)
}

/// Saturation velocity in cm/s for the carrier type of `kind`.
pub fn saturation_velocity(kind: DeviceKind) -> f64 {
    match kind {
        DeviceKind::Nfet => V_SAT_N,
        DeviceKind::Pfet => V_SAT_P,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn electron_mobility_reference_points() {
        // At N = 1e17 (near N_ref) electron mobility ≈ 800 cm²/Vs.
        let mu = low_field_mobility(DeviceKind::Nfet, PerCubicCentimeter::new(1.0e17));
        assert!((mu - 790.0).abs() < 60.0, "got {mu}");
        // Heavy doping approaches mu_min.
        let mu = low_field_mobility(DeviceKind::Nfet, PerCubicCentimeter::new(1.0e20));
        assert!(mu < 110.0);
    }

    #[test]
    fn holes_slower_than_electrons() {
        for n in [1e15, 1e16, 1e17, 1e18, 1e19] {
            let d = PerCubicCentimeter::new(n);
            assert!(
                low_field_mobility(DeviceKind::Pfet, d) < low_field_mobility(DeviceKind::Nfet, d)
            );
        }
    }

    #[test]
    fn no_degradation_in_subthreshold() {
        let mu = effective_mobility(300.0, Volts::new(-0.2), Nanometers::new(2.1));
        assert_eq!(mu, 300.0);
    }

    #[test]
    fn degradation_grows_with_overdrive() {
        let t_ox = Nanometers::new(2.1);
        let a = effective_mobility(300.0, Volts::new(0.3), t_ox);
        let b = effective_mobility(300.0, Volts::new(0.8), t_ox);
        assert!(b < a && a < 300.0);
    }

    #[test]
    fn temperature_scaling_is_three_halves_power() {
        let n = PerCubicCentimeter::new(1.0e18);
        let base = low_field_mobility(DeviceKind::Nfet, n);
        let at_600 = low_field_mobility_at(DeviceKind::Nfet, n, Temperature::from_kelvin(600.0));
        assert!((at_600 / base - 8.0f64.sqrt().recip()).abs() < 1e-9);
        let at_300 = low_field_mobility_at(DeviceKind::Nfet, n, Temperature::room());
        assert!((at_300 - base).abs() < 1e-9);
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn mobility_monotone_decreasing_in_doping(
            n in 1.0e14f64..1.0e20,
            factor in 1.01f64..100.0,
        ) {
            let lo = low_field_mobility(DeviceKind::Nfet, PerCubicCentimeter::new(n));
            let hi = low_field_mobility(DeviceKind::Nfet, PerCubicCentimeter::new(n * factor));
            prop_assert!(hi <= lo);
        }

        #[test]
        fn mobility_bounded(n in 1.0e13f64..1.0e21) {
            let mu = low_field_mobility(DeviceKind::Nfet, PerCubicCentimeter::new(n));
            prop_assert!(mu > 80.0 && mu < 1400.0);
        }
    }
}
