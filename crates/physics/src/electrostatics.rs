//! MOS electrostatics: oxide capacitance, depletion width and charge,
//! flat-band voltage and the long-channel threshold voltage.

use subvt_units::consts::{EPS_OX, EPS_SI, E_G_300K, Q};
use subvt_units::{FaradsPerCm2, Nanometers, PerCubicCentimeter, Temperature, Volts};

use crate::silicon::fermi_potential;

/// Oxide capacitance per unit area, `C_ox = ε_ox / T_ox`.
///
/// # Examples
///
/// ```
/// use subvt_physics::electrostatics::oxide_capacitance;
/// use subvt_units::Nanometers;
/// let cox = oxide_capacitance(Nanometers::new(2.1));
/// assert!((cox.get() - 1.64e-6).abs() < 0.03e-6);
/// ```
///
/// # Panics
///
/// Panics if `t_ox` is not positive.
pub fn oxide_capacitance(t_ox: Nanometers) -> FaradsPerCm2 {
    assert!(t_ox.get() > 0.0, "oxide thickness must be positive");
    FaradsPerCm2::new(EPS_OX / t_ox.as_cm())
}

/// Depletion width under surface band bending `ψ_s` in a body of doping
/// `n_eff`: `W_dep = √(2·ε_si·ψ_s / (q·N))`.
///
/// # Panics
///
/// Panics if the doping or band bending is not positive.
pub fn depletion_width(n_eff: PerCubicCentimeter, surface_potential: Volts) -> Nanometers {
    assert!(n_eff.get() > 0.0, "doping must be positive");
    assert!(
        surface_potential.as_volts() > 0.0,
        "band bending must be positive for a depletion region"
    );
    let w_cm = (2.0 * EPS_SI * surface_potential.as_volts() / (Q * n_eff.get())).sqrt();
    Nanometers::new(w_cm * 1.0e7)
}

/// Maximum (threshold-condition) depletion width, evaluated at
/// `ψ_s = 2·φ_F`.
pub fn max_depletion_width(n_eff: PerCubicCentimeter, temperature: Temperature) -> Nanometers {
    let phi_f = fermi_potential(n_eff, temperature);
    depletion_width(n_eff, phi_f * 2.0)
}

/// Bulk depletion charge per unit area at band bending `ψ_s`,
/// `Q_dep = √(2·q·ε_si·N·ψ_s)` in C/cm².
pub fn depletion_charge(n_eff: PerCubicCentimeter, surface_potential: Volts) -> f64 {
    assert!(n_eff.get() > 0.0 && surface_potential.as_volts() > 0.0);
    (2.0 * Q * EPS_SI * n_eff.get() * surface_potential.as_volts()).sqrt()
}

/// Body-effect coefficient `γ = √(2·q·ε_si·N) / C_ox` in V^½.
pub fn body_factor(n_eff: PerCubicCentimeter, c_ox: FaradsPerCm2) -> f64 {
    (2.0 * Q * EPS_SI * n_eff.get()).sqrt() / c_ox.get()
}

/// Flat-band voltage of an n⁺-poly gate over a p-body (NFET frame):
/// `V_fb = −(E_g/2 + φ_F)`. The degenerate poly pins the gate Fermi level
/// at the conduction-band edge.
pub fn flat_band_voltage(n_body: PerCubicCentimeter, temperature: Temperature) -> Volts {
    let phi_f = fermi_potential(n_body, temperature);
    Volts::new(-(E_G_300K / 2.0 + phi_f.as_volts()))
}

/// Long-channel threshold voltage
/// `V_th0 = V_fb + 2·φ_F + √(2·q·ε_si·N·2φ_F)/C_ox` for body doping `n_eff`.
///
/// This is the paper's `V_th0` component (its §2.2): the intrinsic
/// threshold before short-channel roll-off and halo roll-up corrections.
///
/// # Examples
///
/// ```
/// use subvt_physics::electrostatics::{long_channel_vth, oxide_capacitance};
/// use subvt_units::{Nanometers, PerCubicCentimeter, Temperature};
///
/// let cox = oxide_capacitance(Nanometers::new(2.1));
/// let vth0 = long_channel_vth(
///     PerCubicCentimeter::new(1.52e18),
///     cox,
///     Temperature::room(),
/// );
/// // Hand calculation gives ≈ 0.36 V for the paper's 90 nm N_sub.
/// assert!((vth0.as_volts() - 0.36).abs() < 0.05);
/// ```
pub fn long_channel_vth(
    n_eff: PerCubicCentimeter,
    c_ox: FaradsPerCm2,
    temperature: Temperature,
) -> Volts {
    let phi_f = fermi_potential(n_eff, temperature);
    let v_fb = flat_band_voltage(n_eff, temperature);
    let q_dep = depletion_charge(n_eff, phi_f * 2.0);
    Volts::new(v_fb.as_volts() + 2.0 * phi_f.as_volts() + q_dep / c_ox.get())
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    const ROOM: Temperature = Temperature::room();

    #[test]
    fn depletion_width_hand_check() {
        // N = 2e18, ψ_s = 1.0 V → W_dep ≈ 25.4 nm.
        let w = depletion_width(PerCubicCentimeter::new(2.0e18), Volts::new(1.0));
        assert!((w.get() - 25.4).abs() < 0.5, "got {w}");
    }

    #[test]
    fn body_factor_hand_check() {
        // N = 1e18, T_ox = 2 nm: γ = √(2·1.6e-19·1.04e-12·1e18)/1.73e-6 ≈ 0.33.
        let cox = oxide_capacitance(Nanometers::new(2.0));
        let g = body_factor(PerCubicCentimeter::new(1.0e18), cox);
        assert!((g - 0.33).abs() < 0.02, "got {g}");
    }

    #[test]
    fn flat_band_is_strongly_negative() {
        let vfb = flat_band_voltage(PerCubicCentimeter::new(2.0e18), ROOM);
        assert!(vfb.as_volts() < -1.0 && vfb.as_volts() > -1.2);
    }

    #[test]
    fn vth0_rises_with_doping() {
        let cox = oxide_capacitance(Nanometers::new(2.1));
        let lo = long_channel_vth(PerCubicCentimeter::new(1.0e18), cox, ROOM);
        let hi = long_channel_vth(PerCubicCentimeter::new(4.0e18), cox, ROOM);
        assert!(hi > lo);
    }

    #[test]
    fn vth0_rises_with_thicker_oxide() {
        let n = PerCubicCentimeter::new(2.0e18);
        let lo = long_channel_vth(n, oxide_capacitance(Nanometers::new(1.5)), ROOM);
        let hi = long_channel_vth(n, oxide_capacitance(Nanometers::new(3.0)), ROOM);
        assert!(hi > lo);
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn depletion_width_monotone(
            n in 1.0e16f64..1.0e19,
            factor in 1.1f64..50.0,
        ) {
            let psi = Volts::new(1.0);
            let wide = depletion_width(PerCubicCentimeter::new(n), psi);
            let narrow = depletion_width(PerCubicCentimeter::new(n * factor), psi);
            prop_assert!(narrow < wide);
        }

        #[test]
        fn charge_balance_identity(n in 1.0e16f64..1.0e19, psi in 0.1f64..1.5) {
            // Q_dep == q·N·W_dep must hold by construction.
            let nd = PerCubicCentimeter::new(n);
            let psi = Volts::new(psi);
            let q_dep = depletion_charge(nd, psi);
            let w = depletion_width(nd, psi).as_cm();
            prop_assert!((q_dep - Q * n * w).abs() <= q_dep * 1e-10);
        }

        #[test]
        fn vth0_is_physical(n in 5.0e17f64..8.0e18, tox in 1.0f64..3.0) {
            let cox = oxide_capacitance(Nanometers::new(tox));
            let vth = long_channel_vth(PerCubicCentimeter::new(n), cox, ROOM);
            // Threshold of a poly-gate bulk NFET stays in a sane window
            // (light doping with a thin oxide can approach zero).
            prop_assert!(vth.as_volts() > -0.05 && vth.as_volts() < 1.5);
        }
    }
}
