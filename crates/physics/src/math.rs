//! Small numerical toolbox: special functions, root finding, minimization
//! and grid helpers shared across the workspace.
//!
//! Nothing here is device-specific; it exists because the workspace takes
//! no numerical dependencies (there is no established Rust TCAD/SPICE
//! ecosystem to lean on).

/// Error function `erf(x)`, via the Abramowitz & Stegun 7.1.26 rational
/// approximation (|error| ≤ 1.5e-7), extended to negative arguments by
/// odd symmetry.
///
/// # Examples
///
/// ```
/// use subvt_physics::math::erf;
/// assert!((erf(0.0)).abs() < 1e-6);
/// assert!((erf(1.0) - 0.8427).abs() < 1e-3);
/// assert!((erf(-1.0) + 0.8427).abs() < 1e-3);
/// ```
pub fn erf(x: f64) -> f64 {
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;

    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Numerically safe `ln(1 + e^x)` (softplus), avoiding overflow for large
/// `x` and underflow for very negative `x`.
pub fn softplus(x: f64) -> f64 {
    if x > 35.0 {
        x
    } else if x < -35.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// The EKV interpolation function `F(v) = ln²(1 + e^{v/2})`, which tends to
/// `e^v` in weak inversion (`v ≪ 0`) and `(v/2)²` in strong inversion.
pub fn ekv_f(v: f64) -> f64 {
    let s = softplus(v / 2.0);
    s * s
}

/// Numerically safe logistic `σ(x) = 1 / (1 + e^{−x})`, evaluated through
/// the non-overflowing branch for each sign.
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Derivative `F'(v)` of [`ekv_f`]: since `F(v) = s(v/2)²` with `s` the
/// softplus and `s'(x) = σ(x)`, `F'(v) = s(v/2)·σ(v/2)`. Tends to `e^v`
/// in weak inversion and `v/2` in strong inversion.
pub fn ekv_f_prime(v: f64) -> f64 {
    softplus(v / 2.0) * sigmoid(v / 2.0)
}

/// Result of a bracketing root search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Root {
    /// Abscissa of the root.
    pub x: f64,
    /// Residual `f(x)` at the returned abscissa.
    pub residual: f64,
    /// Iterations consumed.
    pub iterations: usize,
}

/// Error raised when a bracketing solver is given a bad bracket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BracketError;

impl core::fmt::Display for BracketError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "function does not change sign over the given bracket")
    }
}

impl std::error::Error for BracketError {}

/// Finds a root of `f` in `[a, b]` by bisection.
///
/// Robust (always converges for a valid bracket) and accurate to `tol` in
/// `x`. Used where the target function is cheap, monotone, and possibly
/// non-smooth (e.g. table-driven interpolants).
///
/// # Errors
///
/// Returns [`BracketError`] if `f(a)` and `f(b)` have the same sign.
pub fn bisect<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    tol: f64,
    max_iter: usize,
) -> Result<Root, BracketError> {
    let (mut lo, mut hi) = (a.min(b), a.max(b));
    let (mut flo, fhi) = (f(lo), f(hi));
    if flo == 0.0 {
        return Ok(Root {
            x: lo,
            residual: 0.0,
            iterations: 0,
        });
    }
    if fhi == 0.0 {
        return Ok(Root {
            x: hi,
            residual: 0.0,
            iterations: 0,
        });
    }
    if flo.signum() == fhi.signum() {
        return Err(BracketError);
    }
    let mut iterations = 0;
    while hi - lo > tol && iterations < max_iter {
        let mid = 0.5 * (lo + hi);
        let fmid = f(mid);
        iterations += 1;
        if fmid == 0.0 {
            return Ok(Root {
                x: mid,
                residual: 0.0,
                iterations,
            });
        }
        if fmid.signum() == flo.signum() {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    let x = 0.5 * (lo + hi);
    Ok(Root {
        x,
        residual: f(x),
        iterations,
    })
}

/// Finds a root of `f` in `[a, b]` by Brent's method (inverse quadratic
/// interpolation with bisection fallback). Converges superlinearly on
/// smooth functions; used for threshold-voltage and bias solves.
///
/// # Errors
///
/// Returns [`BracketError`] if `f(a)` and `f(b)` have the same sign.
pub fn brent<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    tol: f64,
    max_iter: usize,
) -> Result<Root, BracketError> {
    let (mut a, mut b) = (a, b);
    let (mut fa, mut fb) = (f(a), f(b));
    if fa == 0.0 {
        return Ok(Root {
            x: a,
            residual: 0.0,
            iterations: 0,
        });
    }
    if fb == 0.0 {
        return Ok(Root {
            x: b,
            residual: 0.0,
            iterations: 0,
        });
    }
    if fa.signum() == fb.signum() {
        return Err(BracketError);
    }
    if fa.abs() < fb.abs() {
        core::mem::swap(&mut a, &mut b);
        core::mem::swap(&mut fa, &mut fb);
    }
    let (mut c, mut fc) = (a, fa);
    let mut d = b - a;
    let mut mflag = true;
    let mut iterations = 0;

    while iterations < max_iter && fb != 0.0 && (b - a).abs() > tol {
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant.
            b - fb * (b - a) / (fb - fa)
        };

        let lo = (3.0 * a + b) / 4.0;
        let cond = !((lo..=b).contains(&s) || (b..=lo).contains(&s))
            || (mflag && (s - b).abs() >= (b - c).abs() / 2.0)
            || (!mflag && (s - b).abs() >= (c - d).abs() / 2.0)
            || (mflag && (b - c).abs() < tol)
            || (!mflag && (c - d).abs() < tol);
        if cond {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }

        let fs = f(s);
        iterations += 1;
        d = c;
        c = b;
        fc = fb;
        if fa.signum() != fs.signum() {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            core::mem::swap(&mut a, &mut b);
            core::mem::swap(&mut fa, &mut fb);
        }
    }
    Ok(Root {
        x: b,
        residual: fb,
        iterations,
    })
}

/// Result of a 1-D minimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Minimum {
    /// Abscissa of the minimum.
    pub x: f64,
    /// Function value at the minimum.
    pub value: f64,
    /// Iterations consumed.
    pub iterations: usize,
}

/// Golden-section search for the minimum of a unimodal `f` on `[a, b]`.
///
/// Used by the sub-V_th flow to locate the energy-optimal `L_poly`
/// (paper Fig. 8). Tolerant of flat minima: returns the midpoint of the
/// final bracket.
pub fn golden_section<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    tol: f64,
    max_iter: usize,
) -> Minimum {
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let (mut a, mut b) = (a.min(b), a.max(b));
    let mut c = b - (b - a) * INV_PHI;
    let mut d = a + (b - a) * INV_PHI;
    let mut fc = f(c);
    let mut fd = f(d);
    let mut iterations = 0;
    while (b - a).abs() > tol && iterations < max_iter {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - (b - a) * INV_PHI;
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + (b - a) * INV_PHI;
            fd = f(d);
        }
        iterations += 1;
    }
    let x = 0.5 * (a + b);
    Minimum {
        x,
        value: f(x),
        iterations,
    }
}

/// `n` evenly spaced samples covering `[start, stop]` inclusive.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn linspace(start: f64, stop: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "linspace needs at least two points");
    let step = (stop - start) / (n - 1) as f64;
    (0..n).map(|i| start + step * i as f64).collect()
}

/// `n` logarithmically spaced samples covering `[start, stop]` inclusive.
///
/// # Panics
///
/// Panics if `n < 2` or either bound is non-positive.
pub fn logspace(start: f64, stop: f64, n: usize) -> Vec<f64> {
    assert!(start > 0.0 && stop > 0.0, "logspace needs positive bounds");
    linspace(start.ln(), stop.ln(), n)
        .into_iter()
        .map(f64::exp)
        .collect()
}

/// Trapezoidal integration of samples `y` over abscissae `x`.
///
/// # Panics
///
/// Panics if the slices differ in length or have fewer than two points.
pub fn trapz(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "trapz needs matching slices");
    assert!(x.len() >= 2, "trapz needs at least two samples");
    x.windows(2)
        .zip(y.windows(2))
        .map(|(xs, ys)| 0.5 * (ys[0] + ys[1]) * (xs[1] - xs[0]))
        .sum()
}

/// Linear interpolation of `(xs, ys)` at `x`, clamping outside the range.
///
/// # Panics
///
/// Panics if the slices differ in length, are empty, or `xs` is not sorted
/// ascending (debug builds only for the sortedness check).
pub fn interp1(xs: &[f64], ys: &[f64], x: f64) -> f64 {
    assert_eq!(xs.len(), ys.len(), "interp1 needs matching slices");
    assert!(!xs.is_empty(), "interp1 needs at least one sample");
    debug_assert!(xs.windows(2).all(|w| w[0] <= w[1]), "xs must be sorted");
    if x <= xs[0] {
        return ys[0];
    }
    if x >= xs[xs.len() - 1] {
        return ys[ys.len() - 1];
    }
    let idx = xs.partition_point(|&v| v < x);
    let (x0, x1) = (xs[idx - 1], xs[idx]);
    let (y0, y1) = (ys[idx - 1], ys[idx]);
    if x1 == x0 {
        y0
    } else {
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn erf_reference_values() {
        // Abramowitz & Stegun table values.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204999),
            (1.0, 0.8427008),
            (2.0, 0.9953223),
            (3.0, 0.9999779),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 2e-6, "erf({x})");
            assert!((erf(-x) + want).abs() < 2e-6, "erf(-{x})");
        }
    }

    #[test]
    fn softplus_limits() {
        assert!((softplus(100.0) - 100.0).abs() < 1e-9);
        assert!(softplus(-100.0) < 1e-40);
        assert!((softplus(0.0) - (2.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn ekv_f_asymptotes() {
        // Weak inversion: F(v) → e^v.
        let v = -12.0;
        assert!((ekv_f(v) / v.exp() - 1.0).abs() < 5e-3);
        // Strong inversion: F(v) → (v/2)².
        let v = 40.0;
        assert!((ekv_f(v) / (v / 2.0_f64).powi(2) - 1.0).abs() < 0.2);
    }

    #[test]
    fn sigmoid_symmetry_and_limits() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
        assert!((sigmoid(40.0) - 1.0).abs() < 1e-15);
        assert!(sigmoid(-745.0) >= 0.0); // no underflow panic, stays finite
        for x in [-8.0, -1.5, 0.0, 0.3, 2.0, 9.0] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-14, "σ({x})");
        }
    }

    #[test]
    fn ekv_f_prime_matches_central_difference() {
        let h = 1e-6;
        for v in [-30.0, -8.0, -1.0, 0.0, 0.5, 2.0, 10.0, 60.0] {
            let num = (ekv_f(v + h) - ekv_f(v - h)) / (2.0 * h);
            let ana = ekv_f_prime(v);
            let scale = num.abs().max(1e-12);
            assert!(
                ((ana - num) / scale).abs() < 1e-6,
                "F'({v}): analytic {ana} vs numeric {num}"
            );
        }
    }

    #[test]
    fn bisect_finds_sqrt2() {
        let root = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12, 200).unwrap();
        assert!((root.x - 2.0_f64.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn brent_finds_cos_root() {
        let root = brent(|x| x.cos(), 1.0, 2.0, 1e-14, 100).unwrap();
        assert!((root.x - core::f64::consts::FRAC_PI_2).abs() < 1e-10);
    }

    #[test]
    fn brent_rejects_bad_bracket() {
        assert_eq!(
            brent(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100),
            Err(BracketError)
        );
    }

    #[test]
    fn golden_section_quadratic() {
        let min = golden_section(|x| (x - 1.3).powi(2) + 0.5, -4.0, 6.0, 1e-10, 300);
        assert!((min.x - 1.3).abs() < 1e-7);
        assert!((min.value - 0.5).abs() < 1e-12);
    }

    #[test]
    fn linspace_endpoints_and_spacing() {
        let xs = linspace(0.0, 1.0, 5);
        assert_eq!(xs, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn logspace_is_geometric() {
        let xs = logspace(1.0, 100.0, 3);
        assert!((xs[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn trapz_linear_exact() {
        let x = linspace(0.0, 2.0, 9);
        let y: Vec<f64> = x.iter().map(|&v| 3.0 * v).collect();
        assert!((trapz(&x, &y) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn interp1_clamps_and_interpolates() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [0.0, 10.0, 40.0];
        assert_eq!(interp1(&xs, &ys, -1.0), 0.0);
        assert_eq!(interp1(&xs, &ys, 3.0), 40.0);
        assert!((interp1(&xs, &ys, 0.5) - 5.0).abs() < 1e-12);
        assert!((interp1(&xs, &ys, 1.5) - 25.0).abs() < 1e-12);
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn erf_is_odd_and_bounded(x in -6.0f64..6.0) {
            prop_assert!((erf(x) + erf(-x)).abs() < 1e-12);
            prop_assert!(erf(x).abs() <= 1.0 + 1e-12);
        }

        #[test]
        fn erf_is_monotone(a in -4.0f64..4.0, d in 1e-3f64..1.0) {
            prop_assert!(erf(a + d) >= erf(a));
        }

        #[test]
        fn brent_matches_bisect(c in -0.9f64..0.9) {
            let f = |x: f64| x * x * x - c;
            let rb = brent(f, -2.0, 2.0, 1e-13, 200).unwrap();
            let ri = bisect(f, -2.0, 2.0, 1e-13, 200).unwrap();
            prop_assert!((rb.x - ri.x).abs() < 1e-9);
        }

        #[test]
        fn golden_section_brackets_parabola(center in -5.0f64..5.0) {
            let min = golden_section(|x| (x - center).powi(2), -10.0, 10.0, 1e-9, 400);
            prop_assert!((min.x - center).abs() < 1e-6);
        }

        #[test]
        fn interp1_within_hull(x in 0.0f64..2.0) {
            let xs = [0.0, 1.0, 2.0];
            let ys = [1.0, -1.0, 5.0];
            let v = interp1(&xs, &ys, x);
            prop_assert!((-1.0..=5.0).contains(&v));
        }
    }
}
