//! Inverse subthreshold slope `S_S` — the paper's Eq. 2(b) — and the
//! subthreshold slope factor `m`.
//!
//! `S_S` is the paper's central device metric: it sets noise margins
//! (Eq. 3), the energy-optimal supply `V_min = K_Vmin·S_S`, and both the
//! delay factor `C_L·S_S/I_off` (Eq. 6) and energy factor `C_L·S_S²`
//! (Eq. 8).

use subvt_units::consts::LN_10;
use subvt_units::{MilliVoltsPerDecade, Nanometers, Temperature, Volts};

/// Inverse subthreshold slope of a short-channel MOSFET — paper Eq. 2(b):
///
/// `S_S = 2.3·v_T·(1 + 3·T_ox/W_dep)·(1 + (11·T_ox/W_dep)·e^{−π·L_eff/(2·(W_dep+3·T_ox))})`
///
/// The first parenthesis is the long-channel body-factor term
/// (`m = 1 + C_dep/C_ox` with `C_dep/C_ox ≈ 3·T_ox/W_dep` since
/// `ε_si ≈ 3·ε_ox`); the final exponential term drives the degradation as
/// `L_eff` shrinks relative to `T_ox` and `W_dep` — the mechanism the
/// paper identifies behind sub-V_th scaling problems.
///
/// # Examples
///
/// ```
/// use subvt_physics::swing::inverse_subthreshold_slope;
/// use subvt_units::{Nanometers, Temperature};
///
/// let ss = inverse_subthreshold_slope(
///     Nanometers::new(45.0),  // L_eff
///     Nanometers::new(2.1),   // T_ox
///     Nanometers::new(23.0),  // W_dep
///     Temperature::room(),
/// );
/// assert!(ss.get() > 60.0 && ss.get() < 120.0);
/// ```
///
/// # Panics
///
/// Panics if any length is not positive.
pub fn inverse_subthreshold_slope(
    l_eff: Nanometers,
    t_ox: Nanometers,
    w_dep: Nanometers,
    temperature: Temperature,
) -> MilliVoltsPerDecade {
    assert!(
        l_eff.get() > 0.0 && t_ox.get() > 0.0 && w_dep.get() > 0.0,
        "lengths must be positive"
    );
    let vt = temperature.thermal_voltage().as_volts();
    let ratio = t_ox.get() / w_dep.get();
    let body = 1.0 + 3.0 * ratio;
    let sce = 1.0
        + 11.0
            * ratio
            * (-core::f64::consts::PI * l_eff.get() / (2.0 * (w_dep.get() + 3.0 * t_ox.get())))
                .exp();
    MilliVoltsPerDecade::from_volts_per_decade(LN_10 * vt * body * sce)
}

/// Long-channel limit of Eq. 2(b): `S_S = 2.3·v_T·(1 + 3·T_ox/W_dep)`,
/// i.e. `2.3·v_T·m` (paper Eq. 2(a)).
pub fn long_channel_slope(
    t_ox: Nanometers,
    w_dep: Nanometers,
    temperature: Temperature,
) -> MilliVoltsPerDecade {
    assert!(
        t_ox.get() > 0.0 && w_dep.get() > 0.0,
        "lengths must be positive"
    );
    let vt = temperature.thermal_voltage().as_volts();
    MilliVoltsPerDecade::from_volts_per_decade(LN_10 * vt * (1.0 + 3.0 * t_ox.get() / w_dep.get()))
}

/// Subthreshold slope factor `m = S_S / (2.3·v_T)` — the ideality factor
/// appearing in the paper's Eq. 1 and Eq. 3. Folding the short-channel
/// term of Eq. 2(b) into `m` keeps the current and VTC expressions
/// consistent with the simulated swing.
pub fn slope_factor(s_s: MilliVoltsPerDecade, temperature: Temperature) -> f64 {
    let vt = temperature.thermal_voltage().as_volts();
    s_s.as_volts_per_decade() / (LN_10 * vt)
}

/// Thermal floor `2.3·v_T` (≈59.5 mV/dec at 300 K): the slope of an ideal
/// device with `m = 1`.
pub fn thermal_floor(temperature: Temperature) -> MilliVoltsPerDecade {
    MilliVoltsPerDecade::from_volts_per_decade(LN_10 * temperature.thermal_voltage().as_volts())
}

/// Ratio of on- to off-current implied by a slope at supply `v_dd`,
/// `I_on/I_off = 10^{V_dd / S_S}` — the identity
/// `S_S = V_dd / log10(I_on/I_off)` the paper uses before Eq. 6.
pub fn on_off_ratio_from_slope(s_s: MilliVoltsPerDecade, v_dd: Volts) -> f64 {
    10.0_f64.powf(v_dd.as_volts() / s_s.as_volts_per_decade())
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    const ROOM: Temperature = Temperature::room();

    #[test]
    fn thermal_floor_at_room() {
        assert!((thermal_floor(ROOM).get() - 59.5).abs() < 0.3);
    }

    #[test]
    fn long_channel_limit_of_eq2b() {
        // For very long channels Eq. 2(b) must collapse to Eq. 2(a).
        let t_ox = Nanometers::new(2.1);
        let w_dep = Nanometers::new(23.0);
        let full = inverse_subthreshold_slope(Nanometers::new(5000.0), t_ox, w_dep, ROOM);
        let lc = long_channel_slope(t_ox, w_dep, ROOM);
        assert!((full.get() - lc.get()).abs() < 1e-6);
    }

    #[test]
    fn paper_90nm_class_value() {
        // 90 nm-class super-V_th device (L_eff ≈ 45 nm, T_ox = 2.1 nm,
        // W_dep ≈ 23 nm): S_S in the 75–95 mV/dec window of the paper's
        // Fig. 2.
        let ss = inverse_subthreshold_slope(
            Nanometers::new(45.0),
            Nanometers::new(2.1),
            Nanometers::new(23.0),
            ROOM,
        );
        assert!(ss.get() > 75.0 && ss.get() < 95.0, "got {ss}");
    }

    #[test]
    fn slope_degrades_as_length_shrinks() {
        let t_ox = Nanometers::new(2.0);
        let w_dep = Nanometers::new(20.0);
        let long = inverse_subthreshold_slope(Nanometers::new(100.0), t_ox, w_dep, ROOM);
        let short = inverse_subthreshold_slope(Nanometers::new(15.0), t_ox, w_dep, ROOM);
        assert!(short.get() > long.get());
    }

    #[test]
    fn slope_factor_round_trips() {
        let ss = MilliVoltsPerDecade::new(80.0);
        let m = slope_factor(ss, ROOM);
        assert!((m * thermal_floor(ROOM).get() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn on_off_ratio_identity() {
        // S_S = 95 mV/dec at 250 mV → 10^(250/95) ≈ 427.
        let ratio = on_off_ratio_from_slope(MilliVoltsPerDecade::new(95.0), Volts::new(0.25));
        assert!((ratio - 427.0).abs() < 5.0, "got {ratio}");
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn slope_above_thermal_floor(
            l in 5.0f64..1000.0,
            tox in 1.0f64..3.5,
            wdep in 8.0f64..60.0,
        ) {
            let ss = inverse_subthreshold_slope(
                Nanometers::new(l),
                Nanometers::new(tox),
                Nanometers::new(wdep),
                ROOM,
            );
            prop_assert!(ss.get() >= thermal_floor(ROOM).get());
        }

        #[test]
        fn slope_monotone_decreasing_in_length(
            l in 5.0f64..500.0,
            factor in 1.05f64..10.0,
        ) {
            let t_ox = Nanometers::new(2.0);
            let w_dep = Nanometers::new(20.0);
            let short = inverse_subthreshold_slope(Nanometers::new(l), t_ox, w_dep, ROOM);
            let long = inverse_subthreshold_slope(
                Nanometers::new(l * factor), t_ox, w_dep, ROOM);
            prop_assert!(long.get() <= short.get() + 1e-12);
        }

        #[test]
        fn thinner_oxide_improves_long_channel_slope(
            tox in 1.0f64..3.0,
            wdep in 10.0f64..50.0,
        ) {
            let a = long_channel_slope(Nanometers::new(tox), Nanometers::new(wdep), ROOM);
            let b = long_channel_slope(
                Nanometers::new(0.8 * tox), Nanometers::new(wdep), ROOM);
            prop_assert!(b.get() < a.get());
        }
    }
}
