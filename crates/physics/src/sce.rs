//! Short-channel effects: the quasi-2-D characteristic length, threshold
//! roll-off with drain-induced barrier lowering (DIBL), and the composed
//! short-channel threshold voltage
//! `V_th = V_th0(N_eff) − ΔV_th,SCE` (paper §2.2, after ref \[11\]).
//!
//! The halo roll-up `ΔV_th,halo` the paper describes is captured here
//! implicitly: `V_th0` is evaluated with the *effective* channel doping
//! from [`crate::halo`], which rises as the channel shortens, opposing the
//! SCE roll-off — exactly the "flat V_th vs L" compensation the paper's
//! Fig. 1(c) flow tunes for.

use subvt_units::consts::{EPS_OX_REL, EPS_SI_REL};
use subvt_units::{FaradsPerCm2, Nanometers, PerCubicCentimeter, Temperature, Volts};

use crate::electrostatics::{long_channel_vth, max_depletion_width};
use crate::silicon::{built_in_potential, fermi_potential};

/// Quasi-2-D characteristic (scale) length
/// `ℓ = √((ε_si/ε_ox)·T_ox·W_dep)` that governs how deeply the drain field
/// penetrates the channel (Taur & Ning §3.2.1 / ref \[11\]).
pub fn characteristic_length(t_ox: Nanometers, w_dep: Nanometers) -> Nanometers {
    assert!(t_ox.get() > 0.0 && w_dep.get() > 0.0);
    Nanometers::new((EPS_SI_REL / EPS_OX_REL * t_ox.get() * w_dep.get()).sqrt())
}

/// Calibration prefactor on the quasi-2-D roll-off.
///
/// The textbook barrier-lowering solution assumes a uniform channel; real
/// halo-engineered devices place extra doping exactly where the drain
/// field penetrates, suppressing roll-off below the uniform-channel
/// estimate. `0.5` calibrates the 90 nm-class reference device to the
/// ≈80 mV/V DIBL and ≈400 mV `V_th,sat` reported for published LSTP
/// processes (and by the paper's Table 2).
pub const K_SCE: f64 = 0.5;

/// Threshold roll-off from short-channel effects plus DIBL:
///
/// `ΔV_th,SCE = K_SCE·[2·(V_bi − 2φ_F) + V_ds] · e^{−L_eff/(2ℓ)}`
///
/// following the quasi-2-D barrier-lowering solution (Liu et al. / ref
/// \[11\]) with the [`K_SCE`] calibration; always non-negative.
#[allow(clippy::too_many_arguments)]
pub fn sce_roll_off(
    l_eff: Nanometers,
    t_ox: Nanometers,
    n_eff: PerCubicCentimeter,
    n_sd: PerCubicCentimeter,
    v_ds: Volts,
    temperature: Temperature,
) -> Volts {
    assert!(l_eff.get() > 0.0, "channel length must be positive");
    let w_dep = max_depletion_width(n_eff, temperature);
    let ell = characteristic_length(t_ox, w_dep);
    let v_bi = built_in_potential(n_sd, n_eff, temperature);
    let phi_f = fermi_potential(n_eff, temperature);
    let barrier = 2.0 * (v_bi.as_volts() - 2.0 * phi_f.as_volts()) + v_ds.as_volts().max(0.0);
    let drop = K_SCE * barrier * (-l_eff.get() / (2.0 * ell.get())).exp();
    Volts::new(drop.max(0.0))
}

/// DIBL coefficient in V/V: `∂V_th/∂V_ds` evaluated from the roll-off
/// model (the `V_ds`-linear part of [`sce_roll_off`]).
pub fn dibl(
    l_eff: Nanometers,
    t_ox: Nanometers,
    n_eff: PerCubicCentimeter,
    temperature: Temperature,
) -> f64 {
    let w_dep = max_depletion_width(n_eff, temperature);
    let ell = characteristic_length(t_ox, w_dep);
    K_SCE * (-l_eff.get() / (2.0 * ell.get())).exp()
}

/// Short-channel threshold voltage:
/// `V_th(L, V_ds) = V_th0(N_eff) − ΔV_th,SCE(L, V_ds)`.
///
/// `n_eff` should already include the halo contribution at this `L_eff`
/// (see [`crate::halo::effective_channel_doping`]), which supplies the
/// paper's `ΔV_th,halo` roll-up term.
pub fn short_channel_vth(
    l_eff: Nanometers,
    t_ox: Nanometers,
    c_ox: FaradsPerCm2,
    n_eff: PerCubicCentimeter,
    n_sd: PerCubicCentimeter,
    v_ds: Volts,
    temperature: Temperature,
) -> Volts {
    let vth0 = long_channel_vth(n_eff, c_ox, temperature);
    let roll = sce_roll_off(l_eff, t_ox, n_eff, n_sd, v_ds, temperature);
    Volts::new(vth0.as_volts() - roll.as_volts())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::electrostatics::oxide_capacitance;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    const ROOM: Temperature = Temperature::room();
    const N_SD: PerCubicCentimeter = PerCubicCentimeter::new(1.0e20);

    #[test]
    fn characteristic_length_hand_check() {
        // T_ox = 2.1 nm, W_dep = 23 nm: ℓ = √(3·2.1·23) ≈ 12 nm.
        let ell = characteristic_length(Nanometers::new(2.1), Nanometers::new(23.0));
        assert!((ell.get() - 12.03).abs() < 0.1, "got {ell}");
    }

    #[test]
    fn roll_off_grows_as_channel_shrinks() {
        let t_ox = Nanometers::new(2.1);
        let n = PerCubicCentimeter::new(2.4e18);
        let vds = Volts::new(1.2);
        let long = sce_roll_off(Nanometers::new(100.0), t_ox, n, N_SD, vds, ROOM);
        let short = sce_roll_off(Nanometers::new(25.0), t_ox, n, N_SD, vds, ROOM);
        assert!(short.as_volts() > 5.0 * long.as_volts());
    }

    #[test]
    fn roll_off_grows_with_drain_bias() {
        let t_ox = Nanometers::new(2.1);
        let n = PerCubicCentimeter::new(2.4e18);
        let l = Nanometers::new(45.0);
        let lin = sce_roll_off(l, t_ox, n, N_SD, Volts::new(0.05), ROOM);
        let sat = sce_roll_off(l, t_ox, n, N_SD, Volts::new(1.2), ROOM);
        assert!(sat > lin);
    }

    #[test]
    fn dibl_in_plausible_range_for_90nm() {
        // The 90 nm-class device should show tens of mV/V of DIBL.
        let d = dibl(
            Nanometers::new(45.0),
            Nanometers::new(2.1),
            PerCubicCentimeter::new(2.4e18),
            ROOM,
        );
        assert!(d > 0.02 && d < 0.3, "got {d}");
    }

    #[test]
    fn short_channel_vth_below_long_channel() {
        let t_ox = Nanometers::new(2.1);
        let c_ox = oxide_capacitance(t_ox);
        let n = PerCubicCentimeter::new(2.4e18);
        let vth_long = long_channel_vth(n, c_ox, ROOM);
        let vth_short = short_channel_vth(
            Nanometers::new(30.0),
            t_ox,
            c_ox,
            n,
            N_SD,
            Volts::new(1.2),
            ROOM,
        );
        assert!(vth_short < vth_long);
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn roll_off_nonnegative_and_bounded(
            l in 10.0f64..300.0,
            n in 5.0e17f64..8.0e18,
            vds in 0.0f64..1.5,
        ) {
            let roll = sce_roll_off(
                Nanometers::new(l),
                Nanometers::new(2.0),
                PerCubicCentimeter::new(n),
                N_SD,
                Volts::new(vds),
                ROOM,
            );
            prop_assert!(roll.as_volts() >= 0.0);
            // Cannot exceed the full barrier prefactor.
            prop_assert!(roll.as_volts() < 4.0);
        }

        #[test]
        fn higher_doping_suppresses_dibl(
            l in 15.0f64..100.0,
            n in 5.0e17f64..3.0e18,
        ) {
            let t_ox = Nanometers::new(2.0);
            let d_lo = dibl(Nanometers::new(l), t_ox, PerCubicCentimeter::new(n), ROOM);
            let d_hi = dibl(Nanometers::new(l), t_ox, PerCubicCentimeter::new(4.0 * n), ROOM);
            prop_assert!(d_hi < d_lo);
        }
    }
}
