//! Gate and load capacitance models, width-normalized (F/µm).
//!
//! The paper's delay metric `τ = C_g·V_dd/I_on` and its sub-V_th factors
//! `C_L·S_S/I_off` and `C_L·S_S²` all hinge on how capacitance scales.
//! We model, per micron of gate width:
//!
//! * intrinsic gate capacitance `C_ox·L_poly` (the full poly footprint
//!   couples through the oxide),
//! * gate/source-drain overlap capacitance `C_ox·L_ov` per side,
//! * a fringe term `≈0.04 fF/µm` per side, nearly scaling-invariant
//!   (it depends on the logarithm of geometry ratios),
//! * a drain junction/diffusion term proportional to the junction depth.

use subvt_units::consts::EPS_OX;
use subvt_units::{FaradsPerCm2, FaradsPerMicron, Nanometers};

/// Per-side fringe capacitance, `(2·ε_ox/π)·ln(1 + T_poly/T_ox)` — the
/// classic conformal-mapping estimate with `T_poly ≈ 60 nm` of gate stack.
pub fn fringe_per_side(t_ox: Nanometers) -> FaradsPerMicron {
    const T_POLY_NM: f64 = 60.0;
    let per_cm = 2.0 * EPS_OX / core::f64::consts::PI * (1.0 + T_POLY_NM / t_ox.get()).ln();
    // Per cm of width → per µm of width.
    FaradsPerMicron::new(per_cm * 1.0e-4)
}

/// Total gate capacitance per micron of width:
/// `C_g = C_ox·L_poly + 2·C_ox·L_ov + 2·C_fringe`.
///
/// # Examples
///
/// ```
/// use subvt_physics::capacitance::gate_capacitance;
/// use subvt_physics::electrostatics::oxide_capacitance;
/// use subvt_units::Nanometers;
///
/// let t_ox = Nanometers::new(2.1);
/// let cg = gate_capacitance(
///     oxide_capacitance(t_ox), Nanometers::new(65.0), Nanometers::new(10.0), t_ox);
/// assert!(cg.as_femtofarads() > 1.0 && cg.as_femtofarads() < 2.5);
/// ```
pub fn gate_capacitance(
    c_ox: FaradsPerCm2,
    l_poly: Nanometers,
    l_overlap: Nanometers,
    t_ox: Nanometers,
) -> FaradsPerMicron {
    assert!(l_poly.get() > 0.0, "gate length must be positive");
    assert!(l_overlap.get() >= 0.0, "overlap must be non-negative");
    let intrinsic = c_ox.times_length_cm(l_poly.as_cm());
    let overlap = c_ox.times_length_cm(2.0 * l_overlap.as_cm());
    let fringe = fringe_per_side(t_ox) * 2.0;
    intrinsic + overlap + fringe
}

/// Drain-side parasitic capacitance per micron of width: one overlap,
/// one fringe, plus a junction term `≈0.4·C_ox·x_j` standing in for the
/// depletion capacitance of the drain diffusion sidewall.
pub fn drain_capacitance(
    c_ox: FaradsPerCm2,
    l_overlap: Nanometers,
    x_j: Nanometers,
    t_ox: Nanometers,
) -> FaradsPerMicron {
    assert!(x_j.get() > 0.0, "junction depth must be positive");
    let overlap = c_ox.times_length_cm(l_overlap.as_cm());
    let junction = c_ox.times_length_cm(0.4 * x_j.as_cm());
    overlap + fringe_per_side(t_ox) + junction
}

/// Fan-out-of-one load: the driven gate's input capacitance plus the
/// driver's own drain parasitics.
pub fn fo1_load(c_gate_load: FaradsPerMicron, c_drain_driver: FaradsPerMicron) -> FaradsPerMicron {
    c_gate_load + c_drain_driver
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::electrostatics::oxide_capacitance;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn fringe_is_tens_of_attofarads() {
        let f = fringe_per_side(Nanometers::new(2.1));
        let ff = f.as_femtofarads();
        assert!(ff > 0.02 && ff < 0.12, "got {ff} fF/µm");
    }

    #[test]
    fn fringe_nearly_scale_invariant() {
        // Between 2.1 nm and 1.53 nm oxides the fringe changes < 15 %.
        let a = fringe_per_side(Nanometers::new(2.1)).get();
        let b = fringe_per_side(Nanometers::new(1.53)).get();
        assert!((b / a - 1.0).abs() < 0.15);
    }

    #[test]
    fn gate_cap_90nm_ballpark() {
        // ≈1.07 fF intrinsic + 0.33 fF overlap + ~0.15 fF fringe.
        let t_ox = Nanometers::new(2.1);
        let cg = gate_capacitance(
            oxide_capacitance(t_ox),
            Nanometers::new(65.0),
            Nanometers::new(10.0),
            t_ox,
        );
        assert!((cg.as_femtofarads() - 1.55).abs() < 0.25, "got {cg:?}");
    }

    #[test]
    fn drain_cap_smaller_than_gate_cap() {
        let t_ox = Nanometers::new(2.1);
        let c_ox = oxide_capacitance(t_ox);
        let cg = gate_capacitance(c_ox, Nanometers::new(65.0), Nanometers::new(10.0), t_ox);
        let cd = drain_capacitance(c_ox, Nanometers::new(10.0), Nanometers::new(30.0), t_ox);
        assert!(cd.get() < cg.get());
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn gate_cap_monotone_in_length(
            l in 15.0f64..150.0,
            dl in 1.0f64..50.0,
        ) {
            let t_ox = Nanometers::new(2.0);
            let c_ox = oxide_capacitance(t_ox);
            let lov = Nanometers::new(8.0);
            let a = gate_capacitance(c_ox, Nanometers::new(l), lov, t_ox);
            let b = gate_capacitance(c_ox, Nanometers::new(l + dl), lov, t_ox);
            prop_assert!(b.get() > a.get());
        }

        #[test]
        fn thinner_oxide_raises_area_cap(
            l in 15.0f64..150.0,
            tox in 1.2f64..3.0,
        ) {
            let lov = Nanometers::new(5.0);
            let a = gate_capacitance(
                oxide_capacitance(Nanometers::new(tox)), Nanometers::new(l), lov,
                Nanometers::new(tox));
            let b = gate_capacitance(
                oxide_capacitance(Nanometers::new(0.8 * tox)), Nanometers::new(l), lov,
                Nanometers::new(0.8 * tox));
            prop_assert!(b.get() > a.get());
        }
    }
}
