//! Compact bulk-MOSFET device physics for subthreshold scaling studies.
//!
//! This crate implements the analytical device model underlying
//! *"Nanometer Device Scaling in Subthreshold Circuits"* (Hanson et al.,
//! DAC 2007): the four-knob bulk transistor (`L_poly`, `T_ox`, `N_sub`,
//! `N_p,halo`) with Gaussian halo pockets, quasi-2-D short-channel
//! threshold roll-off, the paper's Eq. 2(b) subthreshold swing, the Eq. 1
//! weak-inversion current, and a smooth all-region I–V for circuit
//! simulation.
//!
//! The heavier 2-D numerical counterpart (the MEDICI substitute) lives in
//! `subvt-tcad`; the scaling strategies that *drive* this model live in
//! `subvt-core`.
//!
//! # Quick tour
//!
//! ```
//! use subvt_physics::device::DeviceParams;
//!
//! // The paper's 90 nm-class reference NFET.
//! let dev = DeviceParams::reference_90nm_nfet();
//! let ch = dev.characterize();
//!
//! println!("S_S    = {:.1}", ch.s_s);
//! println!("V_th   = {:.3}", ch.v_th_sat);
//! println!("I_off  = {:.1} pA/um", ch.i_off.as_picoamps());
//! println!("tau    = {:.2} ps", ch.tau.as_picoseconds());
//! # assert!(ch.s_s.get() > 60.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capacitance;
pub mod device;
pub mod electrostatics;
pub mod halo;
pub mod iv;
pub mod math;
pub mod mobility;
pub mod sce;
pub mod silicon;
pub mod subthreshold;
pub mod swing;

pub use device::{DeviceCharacteristics, DeviceGeometry, DeviceKind, DeviceParams};
pub use iv::MosModel;
