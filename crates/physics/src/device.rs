//! The four-knob bulk-MOSFET description the paper scales —
//! `L_poly`, `T_ox`, `N_sub`, `N_p,halo` plus `V_dd` — and its compact
//! characterization: threshold components, subthreshold swing, leakage,
//! on-current, capacitances and intrinsic delay.

use subvt_units::{
    AmpsPerMicron, FaradsPerCm2, FaradsPerMicron, Nanometers, PerCubicCentimeter, Seconds,
    Temperature, Volts,
};

use crate::capacitance::{drain_capacitance, gate_capacitance};
use crate::electrostatics::{long_channel_vth, max_depletion_width, oxide_capacitance};
use crate::halo::{effective_channel_doping, HaloProfile};
use crate::iv::MosModel;
use crate::mobility::low_field_mobility_at;
use crate::sce::{dibl, sce_roll_off};
use crate::subthreshold::{off_current, specific_current};
use crate::swing::{inverse_subthreshold_slope, slope_factor};
use subvt_units::MilliVoltsPerDecade;

/// Carrier-type polarity of a MOSFET.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DeviceKind {
    /// n-channel device (electron conduction, p-type body).
    Nfet,
    /// p-channel device (hole conduction, n-type body). Characterized in
    /// its own magnitude frame; sign handling lives in the circuit layer.
    Pfet,
}

impl core::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DeviceKind::Nfet => write!(f, "NFET"),
            DeviceKind::Pfet => write!(f, "PFET"),
        }
    }
}

/// Physical dimensions of the device. Everything except `t_ox` scales with
/// the process generation; whether it tracks `l_poly` (super-V_th rule) or
/// the node pitch (sub-V_th rule) is decided by the scaling flows in
/// `subvt-core`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DeviceGeometry {
    /// Physical (post-etch) gate length — the paper's `L_poly`.
    pub l_poly: Nanometers,
    /// Gate oxide thickness `T_ox`.
    pub t_ox: Nanometers,
    /// Gate/source-drain overlap per side; `L_eff = L_poly − 2·L_ov`.
    pub l_overlap: Nanometers,
    /// Source/drain junction depth `x_j`.
    pub x_j: Nanometers,
    /// Lateral standard deviation of each Gaussian halo pocket.
    pub halo_sigma: Nanometers,
}

impl DeviceGeometry {
    /// Effective (electrical) channel length `L_eff = L_poly − 2·L_ov`.
    ///
    /// # Panics
    ///
    /// Panics if the overlap consumes the whole gate.
    pub fn l_eff(&self) -> Nanometers {
        let l = self.l_poly.get() - 2.0 * self.l_overlap.get();
        assert!(
            l > 0.0,
            "overlap ({}) consumes the gate ({})",
            self.l_overlap,
            self.l_poly
        );
        Nanometers::new(l)
    }
}

/// Complete description of one transistor at one operating point — the
/// paper's §2.2 model: four scaling parameters plus `V_dd`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DeviceParams {
    /// Polarity.
    pub kind: DeviceKind,
    /// Physical dimensions.
    pub geometry: DeviceGeometry,
    /// Uniform substrate (well) doping `N_sub`.
    pub n_sub: PerCubicCentimeter,
    /// Peak halo doping above substrate, `N_p,halo`.
    pub n_p_halo: PerCubicCentimeter,
    /// Source/drain doping (fixed at 1e20 cm⁻³ across generations).
    pub n_sd: PerCubicCentimeter,
    /// Nominal supply voltage.
    pub v_dd: Volts,
    /// Operating temperature.
    pub temperature: Temperature,
}

impl DeviceParams {
    /// The paper's reference 90 nm-class NFET (Table 2, 90 nm column):
    /// `L_poly = 65 nm`, `T_ox = 2.1 nm`, `N_sub = 1.52e18`,
    /// `N_p,halo = 2.11e18` (so `N_halo = 3.63e18`), `V_dd = 1.2 V`.
    ///
    /// # Examples
    ///
    /// ```
    /// use subvt_physics::device::DeviceParams;
    /// let dev = DeviceParams::reference_90nm_nfet();
    /// let ch = dev.characterize();
    /// assert!(ch.v_th_sat.as_volts() > 0.3 && ch.v_th_sat.as_volts() < 0.55);
    /// ```
    pub fn reference_90nm_nfet() -> Self {
        Self {
            kind: DeviceKind::Nfet,
            geometry: DeviceGeometry {
                l_poly: Nanometers::new(65.0),
                t_ox: Nanometers::new(2.1),
                l_overlap: Nanometers::new(10.0),
                x_j: Nanometers::new(30.0),
                halo_sigma: Nanometers::new(7.5),
            },
            n_sub: PerCubicCentimeter::new(1.52e18),
            n_p_halo: PerCubicCentimeter::new(2.11e18),
            n_sd: PerCubicCentimeter::new(1.0e20),
            v_dd: Volts::new(1.2),
            temperature: Temperature::room(),
        }
    }

    /// The halo profile implied by `n_p_halo` and the geometry.
    pub fn halo(&self) -> HaloProfile {
        HaloProfile::new(self.n_p_halo, self.geometry.halo_sigma)
    }

    /// Effective channel doping at this device's channel length.
    pub fn n_eff(&self) -> PerCubicCentimeter {
        effective_channel_doping(self.n_sub, &self.halo(), self.geometry.l_eff())
    }

    /// Runs the full compact characterization.
    pub fn characterize(&self) -> DeviceCharacteristics {
        characterize(self)
    }

    /// Builds the all-region I–V model for circuit simulation.
    pub fn mos_model(&self) -> MosModel {
        MosModel::from_device(self, &self.characterize())
    }
}

impl subvt_engine::Keyed for DeviceParams {
    /// The canonical cache-key field stream for a device: polarity plus
    /// every physical input the characterization depends on. All model
    /// backends (analytic and TCAD) key their caches through this one
    /// sequence.
    fn absorb(&self, kb: subvt_engine::KeyBuilder) -> subvt_engine::KeyBuilder {
        let geom = &self.geometry;
        kb.str(match self.kind {
            DeviceKind::Nfet => "nfet",
            DeviceKind::Pfet => "pfet",
        })
        .f64(geom.l_poly.get())
        .f64(geom.t_ox.get())
        .f64(geom.l_overlap.get())
        .f64(geom.x_j.get())
        .f64(geom.halo_sigma.get())
        .f64(self.n_sub.get())
        .f64(self.n_p_halo.get())
        .f64(self.n_sd.get())
        .f64(self.v_dd.as_volts())
        .f64(self.temperature.as_kelvin())
    }
}

/// Everything the scaling flows and circuit analyses need to know about a
/// characterized device. All currents and capacitances are per micron of
/// gate width.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DeviceCharacteristics {
    /// Effective channel length.
    pub l_eff: Nanometers,
    /// Effective channel doping (substrate + channel-averaged halo).
    pub n_eff: PerCubicCentimeter,
    /// Oxide capacitance per area.
    pub c_ox: FaradsPerCm2,
    /// Threshold-condition depletion width at `N_eff`.
    pub w_dep: Nanometers,
    /// Inverse subthreshold slope (paper Eq. 2b).
    pub s_s: MilliVoltsPerDecade,
    /// Subthreshold slope factor `m = S_S/(2.3·v_T)`.
    pub m: f64,
    /// Long-channel threshold with substrate doping only — the paper's
    /// `V_th0` before halo roll-up.
    pub v_th0: Volts,
    /// Linear-region threshold (`V_ds = 50 mV`), halo roll-up included.
    pub v_th_lin: Volts,
    /// Saturation threshold (`V_ds = V_dd`) — the paper's `V_th,sat`.
    pub v_th_sat: Volts,
    /// DIBL coefficient `∂V_th/∂V_ds` in V/V.
    pub dibl: f64,
    /// Low-field channel mobility at `N_eff`, cm²/Vs.
    pub mu0: f64,
    /// Eq. 1 prefactor `I₀` (current at `V_gs = V_th`).
    pub i0: AmpsPerMicron,
    /// Off-current at `V_gs = 0`, `V_ds = V_dd`.
    pub i_off: AmpsPerMicron,
    /// On-current at `V_gs = V_ds = V_dd` (all-region model, so valid for
    /// both nominal and subthreshold supplies).
    pub i_on: AmpsPerMicron,
    /// Gate capacitance per micron of width.
    pub c_g: FaradsPerMicron,
    /// Drain parasitic capacitance per micron of width.
    pub c_drain: FaradsPerMicron,
    /// Intrinsic delay `τ = C_g·V_dd/I_on`.
    pub tau: Seconds,
}

impl DeviceCharacteristics {
    /// On/off current ratio at the characterized supply.
    pub fn on_off_ratio(&self) -> f64 {
        self.i_on.get() / self.i_off.get()
    }
}

/// Characterizes a device with the compact model. See
/// [`DeviceParams::characterize`] for the ergonomic entry point.
pub fn characterize(params: &DeviceParams) -> DeviceCharacteristics {
    let geom = &params.geometry;
    let t = params.temperature;
    let l_eff = geom.l_eff();
    let n_eff = params.n_eff();
    let c_ox = oxide_capacitance(geom.t_ox);
    let w_dep = max_depletion_width(n_eff, t);
    let s_s = inverse_subthreshold_slope(l_eff, geom.t_ox, w_dep, t);
    let m = slope_factor(s_s, t);

    let v_th0 = long_channel_vth(params.n_sub, c_ox, t);
    let v_th_long_eff = long_channel_vth(n_eff, c_ox, t);
    let roll_lin = sce_roll_off(l_eff, geom.t_ox, n_eff, params.n_sd, Volts::new(0.05), t);
    let roll_sat = sce_roll_off(l_eff, geom.t_ox, n_eff, params.n_sd, params.v_dd, t);
    let v_th_lin = v_th_long_eff - roll_lin;
    let v_th_sat = v_th_long_eff - roll_sat;
    let dibl_coeff = dibl(l_eff, geom.t_ox, n_eff, t);

    let mu0 = low_field_mobility_at(params.kind, n_eff, t);
    let i0 = specific_current(l_eff, w_dep, mu0, t);
    let i_off = off_current(i0, v_th_sat, params.v_dd, m, t);

    let c_g = gate_capacitance(c_ox, geom.l_poly, geom.l_overlap, geom.t_ox);
    let c_drain = drain_capacitance(c_ox, geom.l_overlap, geom.x_j, geom.t_ox);

    let mut chars = DeviceCharacteristics {
        l_eff,
        n_eff,
        c_ox,
        w_dep,
        s_s,
        m,
        v_th0,
        v_th_lin,
        v_th_sat,
        dibl: dibl_coeff,
        mu0,
        i0,
        i_off,
        i_on: AmpsPerMicron::new(0.0),
        c_g,
        c_drain,
        tau: Seconds::new(0.0),
    };
    let model = MosModel::from_device(params, &chars);
    let i_on = model.drain_current(params.v_dd, params.v_dd);
    chars.i_on = i_on;
    chars.tau = Seconds::new(c_g.get() * params.v_dd.as_volts() / i_on.get().max(1e-30));
    chars
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn reference_90nm_matches_paper_scale() {
        let ch = DeviceParams::reference_90nm_nfet().characterize();
        // Paper Table 2 / Fig. 2 at 90 nm: V_th,sat = 403 mV,
        // I_off = 100 pA/µm, S_S ≈ 95 mV/dec. Our compact model should
        // land in the same regime (±25 % on V_th, order of magnitude on
        // I_off, ±15 mV/dec on S_S).
        assert!(
            (ch.v_th_sat.as_volts() - 0.40).abs() < 0.12,
            "V_th,sat = {}",
            ch.v_th_sat
        );
        assert!(
            ch.i_off.as_picoamps() > 5.0 && ch.i_off.as_picoamps() < 2000.0,
            "I_off = {} pA/µm",
            ch.i_off.as_picoamps()
        );
        assert!(
            ch.s_s.get() > 72.0 && ch.s_s.get() < 100.0,
            "S_S = {}",
            ch.s_s
        );
        // Nominal on-current in the LSTP range of hundreds of µA/µm.
        assert!(
            ch.i_on.as_microamps() > 100.0 && ch.i_on.as_microamps() < 1500.0,
            "I_on = {} µA/µm",
            ch.i_on.as_microamps()
        );
    }

    #[test]
    fn on_off_ratio_is_large_at_nominal_vdd() {
        let ch = DeviceParams::reference_90nm_nfet().characterize();
        assert!(ch.on_off_ratio() > 1.0e5);
    }

    #[test]
    fn pfet_is_slower_but_same_electrostatics() {
        let mut p = DeviceParams::reference_90nm_nfet();
        p.kind = DeviceKind::Pfet;
        let n = DeviceParams::reference_90nm_nfet().characterize();
        let pch = p.characterize();
        assert!(pch.i_on.get() < n.i_on.get());
        assert_eq!(pch.s_s, n.s_s);
        assert_eq!(pch.v_th_sat, n.v_th_sat);
    }

    #[test]
    fn vth_sat_below_vth_lin_via_dibl() {
        let ch = DeviceParams::reference_90nm_nfet().characterize();
        assert!(ch.v_th_sat < ch.v_th_lin);
        assert!(ch.dibl > 0.0 && ch.dibl < 0.5);
    }

    #[test]
    fn halo_raises_threshold() {
        let base = DeviceParams::reference_90nm_nfet();
        let mut no_halo = base;
        no_halo.n_p_halo = PerCubicCentimeter::new(1.0e10);
        let with = base.characterize();
        let without = no_halo.characterize();
        assert!(with.v_th_sat > without.v_th_sat);
    }

    #[test]
    fn keyed_stream_distinguishes_devices() {
        use subvt_engine::KeyBuilder;
        let p = DeviceParams::reference_90nm_nfet();
        let key = |p: &DeviceParams| KeyBuilder::new("t").keyed(p).finish();
        assert_eq!(key(&p), key(&p));
        let mut q = p;
        q.kind = DeviceKind::Pfet;
        assert_ne!(key(&p), key(&q));
        let mut q = p;
        q.n_p_halo = PerCubicCentimeter::new(3.0e18);
        assert_ne!(key(&p), key(&q));
    }

    #[test]
    fn l_eff_panics_when_overlap_eats_gate() {
        let mut p = DeviceParams::reference_90nm_nfet();
        p.geometry.l_overlap = Nanometers::new(40.0);
        let result = std::panic::catch_unwind(move || p.geometry.l_eff());
        assert!(result.is_err());
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn shorter_channel_degrades_swing(
            l_poly in 30.0f64..120.0,
        ) {
            let mut a = DeviceParams::reference_90nm_nfet();
            a.geometry.l_poly = Nanometers::new(l_poly);
            let mut b = a;
            b.geometry.l_poly = Nanometers::new(l_poly * 1.3);
            prop_assert!(a.characterize().s_s.get() >= b.characterize().s_s.get() - 1e-9);
        }

        #[test]
        fn leakage_falls_with_substrate_doping(
            n_sub in 1.0e18f64..3.0e18,
        ) {
            let mut a = DeviceParams::reference_90nm_nfet();
            a.n_sub = PerCubicCentimeter::new(n_sub);
            let mut b = a;
            b.n_sub = PerCubicCentimeter::new(n_sub * 1.5);
            prop_assert!(b.characterize().i_off.get() < a.characterize().i_off.get());
        }

        #[test]
        fn characterization_is_finite(
            l_poly in 30.0f64..150.0,
            t_ox in 1.2f64..3.0,
            n_sub in 5.0e17f64..5.0e18,
            vdd in 0.15f64..1.3,
        ) {
            let mut p = DeviceParams::reference_90nm_nfet();
            p.geometry.l_poly = Nanometers::new(l_poly);
            p.geometry.t_ox = Nanometers::new(t_ox);
            p.n_sub = PerCubicCentimeter::new(n_sub);
            p.v_dd = Volts::new(vdd);
            let ch = p.characterize();
            prop_assert!(ch.i_off.get().is_finite() && ch.i_off.get() > 0.0);
            prop_assert!(ch.i_on.get().is_finite() && ch.i_on.get() > 0.0);
            prop_assert!(ch.tau.get().is_finite() && ch.tau.get() > 0.0);
            prop_assert!(ch.i_on.get() > ch.i_off.get());
        }
    }
}
