//! Weak-inversion drain current — the paper's Eq. 1:
//!
//! `I_sub = (W/L_eff)·μ_eff·C_d·v_T²·e^{(V_gs−V_th)/(m·v_T)}·(1 − e^{−V_ds/v_T})`
//!
//! with `C_d = ε_si/W_dep` the depletion capacitance. All currents are
//! width-normalized (per µm of gate width).

use subvt_units::consts::EPS_SI;
use subvt_units::{AmpsPerMicron, Nanometers, Temperature, Volts};

/// The bias-independent prefactor of Eq. 1,
/// `I₀ = (W/L_eff)·μ_eff·C_d·v_T²` per micron of width — the paper's
/// `I_o,N`/`I_o,P` (current at `V_gs = V_th`, `V_ds ≫ v_T`).
///
/// # Panics
///
/// Panics if `l_eff` or `w_dep` is not positive, or mobility is not
/// positive.
pub fn specific_current(
    l_eff: Nanometers,
    w_dep: Nanometers,
    mobility: f64,
    temperature: Temperature,
) -> AmpsPerMicron {
    assert!(
        l_eff.get() > 0.0 && w_dep.get() > 0.0,
        "lengths must be positive"
    );
    assert!(mobility > 0.0, "mobility must be positive");
    let vt = temperature.thermal_voltage().as_volts();
    let c_dep = EPS_SI / w_dep.as_cm(); // F/cm²
    let w_over_l = 1.0e-4 / l_eff.as_cm(); // 1 µm of width over L in cm
    AmpsPerMicron::new(w_over_l * mobility * c_dep * vt * vt)
}

/// Weak-inversion drain current at the given biases — Eq. 1 in full.
///
/// `i0` is the prefactor from [`specific_current`]; `m` the slope factor
/// from [`crate::swing::slope_factor`].
pub fn subthreshold_current(
    i0: AmpsPerMicron,
    v_gs: Volts,
    v_ds: Volts,
    v_th: Volts,
    m: f64,
    temperature: Temperature,
) -> AmpsPerMicron {
    assert!(m >= 1.0, "slope factor must be ≥ 1");
    let vt = temperature.thermal_voltage().as_volts();
    let gate = ((v_gs.as_volts() - v_th.as_volts()) / (m * vt)).exp();
    let drain = 1.0 - (-v_ds.as_volts() / vt).exp();
    AmpsPerMicron::new(i0.get() * gate * drain)
}

/// Off-current: Eq. 1 at `V_gs = 0`, `V_ds = V_dd` (the leakage the
/// paper's budgets constrain). `v_th` should be the *saturation*
/// threshold (computed at `V_ds = V_dd`) so DIBL is included.
pub fn off_current(
    i0: AmpsPerMicron,
    v_th_sat: Volts,
    v_dd: Volts,
    m: f64,
    temperature: Temperature,
) -> AmpsPerMicron {
    subthreshold_current(i0, Volts::new(0.0), v_dd, v_th_sat, m, temperature)
}

/// Subthreshold on-current: Eq. 1 at `V_gs = V_ds = V_dd` for a
/// sub-V_th supply (`V_dd < V_th`).
pub fn on_current_subvt(
    i0: AmpsPerMicron,
    v_th_sat: Volts,
    v_dd: Volts,
    m: f64,
    temperature: Temperature,
) -> AmpsPerMicron {
    subthreshold_current(i0, v_dd, v_dd, v_th_sat, m, temperature)
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    const ROOM: Temperature = Temperature::room();

    fn i0_90nm() -> AmpsPerMicron {
        // 90 nm-class: L_eff = 45 nm, W_dep = 23 nm, μ ≈ 250 cm²/Vs.
        specific_current(Nanometers::new(45.0), Nanometers::new(23.0), 250.0, ROOM)
    }

    #[test]
    fn specific_current_hand_check() {
        // I₀ = (1e-4/45e-7)·250·(1.04e-12/23e-7)·(0.02585)²
        //    = 22.2·250·4.5e-7·6.68e-4 ≈ 1.67 µA/µm.
        let i0 = i0_90nm();
        assert!(
            (i0.as_microamps() - 1.67).abs() < 0.1,
            "got {}",
            i0.as_microamps()
        );
    }

    #[test]
    fn off_current_matches_paper_scale() {
        // With V_th ≈ 0.40 V and m ≈ 1.55 the 90 nm off-current should be
        // within an order of magnitude of the paper's 100 pA/µm budget.
        let i_off = off_current(i0_90nm(), Volts::new(0.40), Volts::new(1.2), 1.55, ROOM);
        assert!(
            i_off.as_picoamps() > 10.0 && i_off.as_picoamps() < 1000.0,
            "got {} pA/µm",
            i_off.as_picoamps()
        );
    }

    #[test]
    fn decade_per_swing() {
        // Raising V_gs by one S_S (= 2.3·m·v_T) multiplies current by 10.
        let m = 1.5;
        let vt = ROOM.thermal_voltage().as_volts();
        let swing = core::f64::consts::LN_10 * m * vt;
        let i0 = i0_90nm();
        let low = subthreshold_current(
            i0,
            Volts::new(0.10),
            Volts::new(0.5),
            Volts::new(0.4),
            m,
            ROOM,
        );
        let high = subthreshold_current(
            i0,
            Volts::new(0.10 + swing),
            Volts::new(0.5),
            Volts::new(0.4),
            m,
            ROOM,
        );
        assert!((high.get() / low.get() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn drain_saturation_term() {
        // For V_ds ≫ v_T the (1 − e^{−V_ds/v_T}) term saturates at 1.
        let i0 = i0_90nm();
        let a = subthreshold_current(
            i0,
            Volts::new(0.1),
            Volts::new(0.2),
            Volts::new(0.4),
            1.5,
            ROOM,
        );
        let b = subthreshold_current(
            i0,
            Volts::new(0.1),
            Volts::new(1.2),
            Volts::new(0.4),
            1.5,
            ROOM,
        );
        assert!((b.get() / a.get() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn on_off_ratio_equals_exponential_identity() {
        // I_on/I_off at V_dd must equal e^{V_dd/(m·v_T)} up to the
        // drain-term correction (identical at the two biases when
        // V_dd ≫ v_T).
        let m = 1.4;
        let v_dd = Volts::new(0.25);
        let i0 = i0_90nm();
        let vth = Volts::new(0.42);
        let on = on_current_subvt(i0, vth, v_dd, m, ROOM);
        let off = off_current(i0, vth, v_dd, m, ROOM);
        let vt = ROOM.thermal_voltage().as_volts();
        let want = (v_dd.as_volts() / (m * vt)).exp();
        assert!((on.get() / off.get() / want - 1.0).abs() < 1e-9);
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn current_monotone_in_vgs(
            vgs in 0.0f64..0.4,
            dv in 0.001f64..0.1,
        ) {
            let i0 = i0_90nm();
            let f = |v: f64| subthreshold_current(
                i0, Volts::new(v), Volts::new(0.25), Volts::new(0.4), 1.5, ROOM);
            prop_assert!(f(vgs + dv).get() > f(vgs).get());
        }

        #[test]
        fn current_monotone_in_vds(
            vds in 0.0f64..0.5,
            dv in 0.001f64..0.1,
        ) {
            let i0 = i0_90nm();
            let f = |v: f64| subthreshold_current(
                i0, Volts::new(0.2), Volts::new(v), Volts::new(0.4), 1.5, ROOM);
            prop_assert!(f(vds + dv).get() >= f(vds).get());
        }

        #[test]
        fn off_current_monotone_decreasing_in_vth(
            vth in 0.2f64..0.6,
            dv in 0.01f64..0.2,
        ) {
            let i0 = i0_90nm();
            let hi = off_current(i0, Volts::new(vth), Volts::new(1.0), 1.5, ROOM);
            let lo = off_current(i0, Volts::new(vth + dv), Volts::new(1.0), 1.5, ROOM);
            prop_assert!(lo.get() < hi.get());
        }
    }
}
