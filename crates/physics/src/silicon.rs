//! Bulk-silicon material relations: intrinsic density, Fermi potentials,
//! built-in junction potential.

use subvt_units::consts::{E_G_300K, N_C_300K, N_I_300K, N_V_300K};
use subvt_units::{PerCubicCentimeter, Temperature, Volts};

/// Intrinsic carrier density `n_i(T)`, via `n_i = √(N_c·N_v)·e^{-E_g/2kT}`
/// with the density-of-states normalized so `n_i(300 K)` matches the
/// tabulated value.
///
/// # Examples
///
/// ```
/// use subvt_physics::silicon::intrinsic_density;
/// use subvt_units::Temperature;
/// let ni = intrinsic_density(Temperature::room());
/// assert!((ni.get() / 1.0e10 - 1.0).abs() < 1e-6);
/// ```
pub fn intrinsic_density(temperature: Temperature) -> PerCubicCentimeter {
    let t = temperature.as_kelvin();
    let vt = temperature.thermal_voltage().as_volts();
    // N_c, N_v scale as T^{3/2}; anchor the prefactor at 300 K.
    let scale = (t / 300.0).powf(1.5);
    let raw = (N_C_300K * N_V_300K).sqrt() * scale * (-E_G_300K / (2.0 * vt)).exp();
    let anchor = (N_C_300K * N_V_300K).sqrt()
        * (-E_G_300K / (2.0 * Temperature::room().thermal_voltage().as_volts())).exp();
    PerCubicCentimeter::new(raw * N_I_300K / anchor)
}

/// Fermi potential `φ_F = v_T · ln(N_a / n_i)` of a p-type region with
/// acceptor density `n_a` (positive for p-type in the NFET body frame).
///
/// # Panics
///
/// Panics if `n_a` is not positive.
pub fn fermi_potential(n_a: PerCubicCentimeter, temperature: Temperature) -> Volts {
    assert!(n_a.get() > 0.0, "doping density must be positive");
    let ni = intrinsic_density(temperature);
    Volts::new(temperature.thermal_voltage().as_volts() * n_a.ln_ratio(ni))
}

/// Built-in potential of an n⁺/p junction with source/drain doping `n_d`
/// and body doping `n_a`: `V_bi = v_T · ln(N_d·N_a / n_i²)`.
///
/// # Panics
///
/// Panics if either density is not positive.
pub fn built_in_potential(
    n_d: PerCubicCentimeter,
    n_a: PerCubicCentimeter,
    temperature: Temperature,
) -> Volts {
    assert!(
        n_d.get() > 0.0 && n_a.get() > 0.0,
        "doping must be positive"
    );
    let ni = intrinsic_density(temperature).get();
    let vt = temperature.thermal_voltage().as_volts();
    Volts::new(vt * (n_d.get() * n_a.get() / (ni * ni)).ln())
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn fermi_potential_of_heavy_p_doping() {
        // N_a = 1e18: φ_F = 0.02585·ln(1e8) ≈ 0.476 V.
        let phi = fermi_potential(PerCubicCentimeter::new(1.0e18), Temperature::room());
        assert!((phi.as_volts() - 0.476).abs() < 3e-3);
    }

    #[test]
    fn built_in_potential_of_sd_junction() {
        // N_d = 1e20, N_a = 2e18 → V_bi ≈ vT·ln(2e18·1e20/1e20) ≈ 1.09 V.
        let vbi = built_in_potential(
            PerCubicCentimeter::new(1.0e20),
            PerCubicCentimeter::new(2.0e18),
            Temperature::room(),
        );
        assert!((vbi.as_volts() - 1.09).abs() < 0.02);
    }

    #[test]
    fn intrinsic_density_rises_with_temperature() {
        let lo = intrinsic_density(Temperature::from_kelvin(250.0));
        let hi = intrinsic_density(Temperature::from_kelvin(400.0));
        assert!(hi.get() > 1e3 * lo.get());
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn fermi_potential_monotone_in_doping(
            a in 1.0e15f64..1.0e19,
            factor in 1.1f64..100.0,
        ) {
            let t = Temperature::room();
            let lo = fermi_potential(PerCubicCentimeter::new(a), t);
            let hi = fermi_potential(PerCubicCentimeter::new(a * factor), t);
            prop_assert!(hi > lo);
        }

        #[test]
        fn built_in_exceeds_each_fermi_potential(
            nd in 1.0e19f64..1.0e20,
            na in 1.0e16f64..1.0e19,
        ) {
            let t = Temperature::room();
            let vbi = built_in_potential(
                PerCubicCentimeter::new(nd),
                PerCubicCentimeter::new(na),
                t,
            );
            let phi = fermi_potential(PerCubicCentimeter::new(na), t);
            prop_assert!(vbi > phi);
        }
    }
}
