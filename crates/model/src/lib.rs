//! Backend-agnostic device evaluation.
//!
//! The paper evaluates every candidate device in 2-D TCAD (MEDICI); this
//! reproduction's fast path is the compact analytic model. The
//! [`DeviceModel`] trait decouples *what* consumes a characterization
//! (design flows, circuit analyses, figures) from *how* it is produced,
//! so the same doping search or SNM sweep runs against either backend:
//!
//! * [`AnalyticModel`] — the compact model in `subvt-physics`, evaluated
//!   inline (microseconds per device, infallible).
//! * `TcadModel` (in `subvt-tcad`, which sits above this crate) — the
//!   2-D Poisson/drift-diffusion solver behind the engine's
//!   content-addressed cache, calibrated to the compact reference.
//!
//! Consumers hold a `&'static dyn DeviceModel` — both shipped backends
//! are available as statics, which keeps pair/design types `Copy`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::str::FromStr;

use subvt_physics::device::{DeviceCharacteristics, DeviceParams};

/// Why a model backend failed to characterize a device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The backend ran but could not produce a physical result (solver
    /// divergence, degenerate extraction, …).
    Backend {
        /// Name of the backend that failed.
        backend: &'static str,
        /// Human-readable failure description.
        message: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Backend { backend, message } => {
                write!(f, "{backend} backend failed: {message}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// A device-evaluation backend: anything that can turn a parameter set
/// into a full characterization.
///
/// Implementations must be deterministic for a given parameter set —
/// the design searches bisect over model outputs, and the experiment
/// layer caches results keyed by parameters plus [`cache_id`].
///
/// [`cache_id`]: DeviceModel::cache_id
pub trait DeviceModel: Send + Sync + fmt::Debug {
    /// Short backend name used in CLI output and error messages.
    fn name(&self) -> &'static str;

    /// Stable identifier distinguishing configurations of the same
    /// backend (mesh density, calibration fidelity) in cache keys.
    /// Defaults to [`name`](DeviceModel::name).
    fn cache_id(&self) -> String {
        self.name().to_string()
    }

    /// Characterizes a device through this backend.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] when the backend cannot produce a result.
    fn characterize(&self, params: &DeviceParams) -> Result<DeviceCharacteristics, ModelError>;
}

/// The compact analytic model (the paper's Eqs. 1–2 framework in
/// `subvt-physics`). Infallible and fast; the reference backend every
/// tier-1 artefact is generated with.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalyticModel;

impl DeviceModel for AnalyticModel {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn characterize(&self, params: &DeviceParams) -> Result<DeviceCharacteristics, ModelError> {
        Ok(params.characterize())
    }
}

/// The process-wide analytic backend instance.
pub static ANALYTIC: AnalyticModel = AnalyticModel;

/// The analytic backend as a trait object — the default model handle
/// everywhere a `&'static dyn DeviceModel` is stored.
pub fn analytic() -> &'static dyn DeviceModel {
    &ANALYTIC
}

/// CLI-facing backend selector (`repro --backend analytic|tcad`). The
/// mapping to a concrete [`DeviceModel`] lives in the experiment layer,
/// which knows both backends.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Backend {
    /// Compact analytic model (default).
    #[default]
    Analytic,
    /// 2-D TCAD, calibrated to the compact reference device.
    Tcad,
}

impl Backend {
    /// Every selectable backend.
    pub const ALL: [Backend; 2] = [Backend::Analytic, Backend::Tcad];

    /// The CLI spelling of this backend.
    pub fn as_str(self) -> &'static str {
        match self {
            Backend::Analytic => "analytic",
            Backend::Tcad => "tcad",
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "analytic" => Ok(Backend::Analytic),
            "tcad" => Ok(Backend::Tcad),
            other => Err(format!(
                "unknown backend '{other}' (expected 'analytic' or 'tcad')"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_model_matches_direct_characterization() {
        let p = DeviceParams::reference_90nm_nfet();
        let via_trait = analytic().characterize(&p).unwrap();
        assert_eq!(via_trait, p.characterize(), "trait dispatch must be exact");
    }

    #[test]
    fn analytic_cache_id_is_name() {
        assert_eq!(analytic().cache_id(), "analytic");
        assert_eq!(analytic().name(), "analytic");
    }

    #[test]
    fn backend_round_trips_through_str() {
        for b in Backend::ALL {
            assert_eq!(b.as_str().parse::<Backend>(), Ok(b));
            assert_eq!(format!("{b}").parse::<Backend>(), Ok(b));
        }
        assert!("medici".parse::<Backend>().is_err());
        assert_eq!(Backend::default(), Backend::Analytic);
    }

    #[test]
    fn model_error_displays_backend_and_message() {
        let e = ModelError::Backend {
            backend: "tcad",
            message: "Poisson diverged".into(),
        };
        let s = e.to_string();
        assert!(s.contains("tcad") && s.contains("Poisson diverged"), "{s}");
    }
}
