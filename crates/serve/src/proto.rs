//! Wire protocol: newline-framed JSON requests and responses.
//!
//! One request per line, one response line per request, always in
//! order on a connection:
//!
//! ```text
//! → {"id":"r1","method":"fo1","params":{"node":"45nm","strategy":"subvth","v_dd":0.3}}
//! ← {"id":"r1","ok":true,"cached":"computed","result":{"tp_hl_s":...,"tp_lh_s":...,"average_s":...}}
//! → {"id":"r2","method":"topology","params":{"op":"ring_freq","node":"ref90","v_dd":0.25,"stages":5}}
//! ← {"id":"r2","ok":true,"cached":"computed","result":{"stages":5,...,"f_osc_hz":...,"period_s":...}}
//! → {"id":"r3","method":"nope"}
//! ← {"id":"r3","ok":false,"error":{"code":"unknown_method","message":"unknown method `nope`"}}
//! ```
//!
//! Circuit methods (`vtc`, `snm`, `fo1`, `chain_energy`, `mep`,
//! `topology`) accept an optional `temp_k` field (kelvin, default 300)
//! mirroring `repro --temp`; `topology` dispatches on `op` ∈
//! `gate_snm` | `ring_freq` | `temp_sweep`.
//!
//! `result` is always the **last** member of a success line, so the
//! payload can be recovered byte-identically by slicing between
//! `"result":` and the final `}` — no JSON round-trip required (floats
//! would not survive one). [`crate::Client`] relies on this.

use subvt_exp::tracefmt::{self, Json};

/// Typed reasons a request fails. The wire form is the snake_case
/// string from [`ErrorCode::as_str`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not valid JSON, or the request shape was wrong.
    BadRequest,
    /// The method name is not part of the protocol.
    UnknownMethod,
    /// The admission queue is full; retry later.
    Overloaded,
    /// The server is draining for shutdown; no new work is admitted.
    ShuttingDown,
    /// The compute panicked on every attempt.
    ComputePanicked,
    /// The compute exceeded its per-request deadline on every attempt.
    DeadlineExceeded,
    /// The request key was quarantined by an earlier exhaustion; the
    /// body was refused without running.
    Quarantined,
    /// The compute ran and returned a domain error (solver failure,
    /// unknown experiment id, ...).
    ComputeFailed,
}

impl ErrorCode {
    /// The stable wire string for this code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownMethod => "unknown_method",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::ComputePanicked => "compute_panicked",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::Quarantined => "quarantined",
            ErrorCode::ComputeFailed => "compute_failed",
        }
    }
}

impl core::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Wire-propagated trace context: the optional `trace` member of a
/// request line.
///
/// ```text
/// {"id":"c1","method":"vtc","params":{...},"trace":{"id":"lg1f3a-7","parent":4294967296}}
/// ```
///
/// `id` names the client's end-to-end trace (free-form, logged
/// verbatim in the access log); `parent` is the client-side span id
/// the daemon's per-request span tree should hang under when the two
/// traces are stitched (`repro trace-stitch`). Clients reserve a high
/// span-id range (`subvt_engine::trace::raise_id_floor`) so `parent`
/// can never collide with the ids the server allocates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceContext {
    /// Client-chosen trace id, echoed into the access log.
    pub id: String,
    /// Client-side span id to parent the server's request span onto.
    pub parent: u64,
}

/// A parsed request envelope: the caller's echo id, the method name,
/// the (possibly absent) params object, and the (possibly absent)
/// trace context.
#[derive(Debug, Clone)]
pub struct Request {
    /// Caller-chosen id echoed verbatim in the response.
    pub id: String,
    /// Method name, e.g. `"idvg"`.
    pub method: String,
    /// The `params` member (`Json::Null` when absent).
    pub params: Json,
    /// The `trace` member (`None` when absent).
    pub trace: Option<TraceContext>,
}

/// Parses one request line.
///
/// # Errors
///
/// A human-readable message when the line is not valid JSON or the
/// envelope members are missing/mistyped; the caller answers with
/// [`ErrorCode::BadRequest`].
pub fn parse_request(line: &str) -> Result<Request, String> {
    let json = tracefmt::parse_json(line.trim()).map_err(|e| format!("invalid JSON: {e}"))?;
    let id = match json.get("id") {
        Some(Json::Str(s)) => s.clone(),
        Some(Json::Num(n)) => fmt_f64(*n),
        Some(_) => return Err("`id` must be a string or number".to_owned()),
        None => return Err("missing `id`".to_owned()),
    };
    let method = match json.get("method") {
        Some(Json::Str(s)) => s.clone(),
        _ => return Err("missing string `method`".to_owned()),
    };
    let params = json.get("params").cloned().unwrap_or(Json::Null);
    let trace = match json.get("trace") {
        None | Some(Json::Null) => None,
        Some(t) => {
            let trace_id = match t.get("id") {
                Some(Json::Str(s)) => s.clone(),
                _ => return Err("`trace.id` must be a string".to_owned()),
            };
            let parent = match t.get("parent").and_then(Json::as_u64) {
                Some(p) => p,
                None => return Err("`trace.parent` must be a non-negative integer".to_owned()),
            };
            Some(TraceContext {
                id: trace_id,
                parent,
            })
        }
    };
    Ok(Request {
        id,
        method,
        params,
        trace,
    })
}

/// Renders the `,"trace":{...}` request-line fragment for a context
/// (empty string for `None`). Shared by [`crate::Client`] and
/// `subvt-loadgen` so both stamp the same wire shape.
pub fn trace_fragment(trace: Option<(&str, u64)>) -> String {
    match trace {
        Some((id, parent)) => format!(",\"trace\":{{\"id\":{},\"parent\":{parent}}}", json_str(id)),
        None => String::new(),
    }
}

/// Renders a success response line. `payload` must already be valid
/// JSON; `cached` reports how the payload was satisfied
/// (`hit|coalesced|computed`) or is omitted when `None` (diagnostic
/// methods that bypass the cache).
pub fn ok_line(id: &str, cached: Option<&str>, payload: &str) -> String {
    match cached {
        Some(how) => format!(
            "{{\"id\":{},\"ok\":true,\"cached\":{},\"result\":{payload}}}",
            json_str(id),
            json_str(how)
        ),
        None => format!(
            "{{\"id\":{},\"ok\":true,\"result\":{payload}}}",
            json_str(id)
        ),
    }
}

/// Renders an error response line.
pub fn error_line(id: &str, code: ErrorCode, message: &str) -> String {
    format!(
        "{{\"id\":{},\"ok\":false,\"error\":{{\"code\":{},\"message\":{}}}}}",
        json_str(id),
        json_str(code.as_str()),
        json_str(message)
    )
}

/// Escapes `s` as a JSON string literal (quotes included).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number: shortest round-trip decimal,
/// with non-finite values mapped to `null` (JSON has no NaN/inf).
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_owned()
    }
}

/// Renders a `[..]` JSON array of numbers.
pub fn fmt_f64s(vs: &[f64]) -> String {
    let mut out = String::with_capacity(vs.len() * 8 + 2);
    out.push('[');
    for (i, v) in vs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&fmt_f64(*v));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_request() {
        let r = parse_request(r#"{"id":"a","method":"ping"}"#).unwrap();
        assert_eq!(r.id, "a");
        assert_eq!(r.method, "ping");
        assert!(matches!(r.params, Json::Null));
    }

    #[test]
    fn numeric_ids_are_accepted() {
        let r = parse_request(r#"{"id":7,"method":"ping"}"#).unwrap();
        assert_eq!(r.id, "7.0"); // echoed as rendered; round-trips fine
    }

    #[test]
    fn malformed_lines_are_rejected_with_context() {
        assert!(parse_request("not json")
            .unwrap_err()
            .contains("invalid JSON"));
        assert!(parse_request(r#"{"method":"x"}"#)
            .unwrap_err()
            .contains("id"));
        assert!(parse_request(r#"{"id":"x"}"#)
            .unwrap_err()
            .contains("method"));
    }

    #[test]
    fn trace_context_round_trips() {
        let r = parse_request(r#"{"id":"a","method":"ping"}"#).unwrap();
        assert_eq!(r.trace, None);

        let line = format!(
            "{{\"id\":\"a\",\"method\":\"ping\",\"params\":{{}}{}}}",
            trace_fragment(Some(("lg-1", 1 << 32)))
        );
        let r = parse_request(&line).unwrap();
        let trace = r.trace.unwrap();
        assert_eq!(trace.id, "lg-1");
        assert_eq!(trace.parent, 1 << 32);
        assert_eq!(trace_fragment(None), "");

        let err = parse_request(r#"{"id":"a","method":"ping","trace":{"id":5}}"#).unwrap_err();
        assert!(err.contains("trace.id"), "{err}");
        let err = parse_request(r#"{"id":"a","method":"ping","trace":{"id":"t","parent":-1}}"#)
            .unwrap_err();
        assert!(err.contains("trace.parent"), "{err}");
    }

    #[test]
    fn response_lines_put_result_last() {
        let line = ok_line("r1", Some("hit"), "{\"x\":1.0}");
        assert!(line.ends_with(",\"result\":{\"x\":1.0}}"));
        let idx = line.find("\"result\":").unwrap();
        assert_eq!(&line[idx + 9..line.len() - 1], "{\"x\":1.0}");
    }

    #[test]
    fn error_lines_carry_typed_codes() {
        let line = error_line("r2", ErrorCode::Overloaded, "queue full");
        let json = tracefmt::parse_json(&line).unwrap();
        assert_eq!(json.get("ok").and_then(Json::as_bool), Some(false));
        let err = json.get("error").unwrap();
        assert_eq!(err.get("code").and_then(Json::as_str), Some("overloaded"));
    }

    #[test]
    fn json_numbers_round_trip() {
        for v in [0.0, 1.0, 0.1, -2.5e-17, 1.2345678901234567] {
            let s = fmt_f64(v);
            let back: f64 = s.parse().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{s}");
        }
        assert_eq!(fmt_f64(f64::NAN), "null");
    }

    #[test]
    fn strings_escape_controls_and_quotes() {
        assert_eq!(json_str("a\"b\\c\n"), r#""a\"b\\c\n""#);
    }
}
