//! Characterization-as-a-service for the `subvt` stack.
//!
//! The one-shot `repro` CLI answers "regenerate figure N"; this crate
//! answers the interactive question — "what is the FO1 delay of the
//! 45 nm sub-V_th design at 300 mV?" — without paying process startup,
//! design-flow, or TCAD-anchor cost per question. `subvt-serve` is a
//! std-only daemon speaking newline-framed JSON over TCP (plus a
//! minimal HTTP/1.1 shim for `GET /metrics` and `GET /healthz`) that
//! exposes device characterization (I_d–V_gs sweeps, extracted
//! subthreshold parameters, per-node device models) and circuit-metric
//! queries (VTC, SNM, FO1 delay, chain energy, minimum-energy point)
//! across the `analytic|tcad` device and `analytic|spice` circuit
//! backends — see DESIGN.md §8.
//!
//! The serving pipeline, in request order:
//!
//! * **Admission control** ([`admission`]): a bounded queue between
//!   connection threads and the worker pool. A full queue rejects with
//!   a typed `overloaded` error immediately — clients never hang on an
//!   unbounded backlog.
//! * **Request dedup** ([`query`] keys + the engine cache): identical
//!   requests share one cache key in the `serve.resp` namespace, so N
//!   concurrent identical requests are computed exactly once (the
//!   engine's single-flight in-flight slot) and answered N times.
//! * **Sweep batching** ([`server`]): a worker popping an `idvg`
//!   request steals every queued request that differs only in bias
//!   points and computes the union sweep in one executor pass.
//! * **Supervision**: every compute runs under
//!   [`subvt_engine::Supervisor`] with a per-request deadline; a
//!   panicking (poison) request is quarantined and subsequently refused
//!   with a typed error while the server keeps serving.
//! * **Observability** ([`observatory`], [`accesslog`]): queue depth,
//!   in-flight gauge, dedup/batch counters and per-endpoint latency
//!   histograms land in the engine's metrics registry and are exported
//!   through `GET /metrics` as conformant Prometheus text, alongside
//!   rolling-window (last N seconds) latency quantiles and `--slo`
//!   error-budget burn rates. Each request runs under a per-request
//!   span tree (`serve.request` → `admission`/`dedup`/`batch.merge`/
//!   `compute`/`serialize`) that parents onto the client's span when
//!   the request carries wire trace context ([`proto::TraceContext`]),
//!   and `--access-log` appends one structured JSONL line per request.
//!
//! Graceful shutdown (SIGTERM / ctrl-c / the `shutdown` method) stops
//! accepting, rejects still-queued and new work with `shutting_down`,
//! drains in-flight computes bounded by the request deadline, and
//! compacts the persistent cache before exit.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod accesslog;
pub mod admission;
pub mod client;
pub mod observatory;
pub mod proto;
pub mod query;
pub mod server;
pub mod signal;

pub use client::{Client, Response};
pub use observatory::SloRule;
pub use proto::ErrorCode;
pub use query::Query;
pub use server::{Config, Server};
