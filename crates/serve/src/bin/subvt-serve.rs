//! The `subvt-serve` daemon binary.
//!
//! ```text
//! subvt-serve                          # listen on 127.0.0.1:7171
//! subvt-serve --addr 127.0.0.1:0       # free port (printed on stdout)
//! subvt-serve --cache serve.jsonl      # persist the response/design cache
//! subvt-serve --workers 4 --queue 128  # pool and admission sizing
//! subvt-serve --deadline-ms 10000      # per-request compute deadline
//! subvt-serve --backend tcad --circuit-backend spice
//! subvt-serve --slo vtc=p99:50 --access-log access.jsonl
//! subvt-serve --trace serve-trace.json --trace-format chrome
//! ```
//!
//! The first stdout line is always `subvt-serve listening on <addr>`,
//! so scripts can scrape the bound port. SIGTERM/ctrl-c (or the
//! `shutdown` method) triggers a graceful drain: queued and new
//! requests get typed `shutting_down` rejections, in-flight computes
//! finish bounded by the deadline, and the cache is compacted to disk
//! before exit.

use std::io::Write;
use std::process::ExitCode;
use std::time::Duration;

use subvt_circuits::backend::CircuitBackendKind;
use subvt_model::Backend;
use subvt_serve::{signal, Config, Server, SloRule};

#[derive(Clone, Copy, PartialEq, Eq)]
enum TraceFormat {
    Jsonl,
    Chrome,
}

fn main() -> ExitCode {
    let mut config = Config {
        addr: "127.0.0.1:7171".to_owned(),
        watch_signals: true,
        ..Config::default()
    };
    let mut trace_path: Option<std::path::PathBuf> = None;
    let mut trace_format = TraceFormat::Jsonl;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => {
                let Some(addr) = iter.next() else {
                    eprintln!("--addr needs HOST:PORT");
                    return ExitCode::FAILURE;
                };
                config.addr = addr.clone();
            }
            "--workers" => {
                let Some(n) = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                else {
                    eprintln!("--workers needs a positive integer");
                    return ExitCode::FAILURE;
                };
                config.workers = n;
            }
            "--queue" => {
                let Some(n) = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                else {
                    eprintln!("--queue needs a positive integer");
                    return ExitCode::FAILURE;
                };
                config.queue_capacity = n;
            }
            "--deadline-ms" => {
                let Some(ms) = iter
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .filter(|&n| n > 0)
                else {
                    eprintln!("--deadline-ms needs a positive integer");
                    return ExitCode::FAILURE;
                };
                config.deadline = Duration::from_millis(ms);
            }
            "--max-attempts" => {
                let Some(n) = iter
                    .next()
                    .and_then(|v| v.parse::<u32>().ok())
                    .filter(|&n| n > 0)
                else {
                    eprintln!("--max-attempts needs a positive integer");
                    return ExitCode::FAILURE;
                };
                config.max_attempts = n;
            }
            "--cache" => {
                let Some(path) = iter.next() else {
                    eprintln!("--cache needs a file path");
                    return ExitCode::FAILURE;
                };
                config.cache_path = Some(path.into());
            }
            "--jobs" => {
                let Some(n) = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                else {
                    eprintln!("--jobs needs a positive integer");
                    return ExitCode::FAILURE;
                };
                if !subvt_engine::configure_jobs(n) {
                    eprintln!("--jobs must come before any work is scheduled");
                    return ExitCode::FAILURE;
                }
            }
            "--backend" => {
                let Some(b) = iter.next().and_then(|v| v.parse::<Backend>().ok()) else {
                    eprintln!("--backend needs one of: analytic, tcad");
                    return ExitCode::FAILURE;
                };
                if !subvt_exp::backend::configure(b) {
                    eprintln!("--backend given twice with conflicting values");
                    return ExitCode::FAILURE;
                }
            }
            "--circuit-backend" => {
                let Some(k) = iter
                    .next()
                    .and_then(|v| v.parse::<CircuitBackendKind>().ok())
                else {
                    eprintln!("--circuit-backend needs one of: analytic, spice");
                    return ExitCode::FAILURE;
                };
                if !subvt_exp::backend::configure_circuit(k) {
                    eprintln!("--circuit-backend given twice with conflicting values");
                    return ExitCode::FAILURE;
                }
            }
            "--slo" => {
                let Some(spec) = iter.next() else {
                    eprintln!("--slo needs METHOD=QUANTILE:MS (e.g. vtc=p99:50)");
                    return ExitCode::FAILURE;
                };
                match SloRule::parse(spec) {
                    Ok(rule) => config.slos.push(rule),
                    Err(e) => {
                        eprintln!("bad --slo `{spec}`: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--access-log" => {
                let Some(path) = iter.next() else {
                    eprintln!("--access-log needs a file path");
                    return ExitCode::FAILURE;
                };
                config.access_log = Some(path.into());
            }
            "--window-secs" => {
                let Some(n) = iter
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .filter(|&n| n > 0)
                else {
                    eprintln!("--window-secs needs a positive integer");
                    return ExitCode::FAILURE;
                };
                config.window_secs = n;
            }
            "--trace" => {
                let Some(path) = iter.next() else {
                    eprintln!("--trace needs a file path");
                    return ExitCode::FAILURE;
                };
                trace_path = Some(path.into());
            }
            "--trace-format" => {
                let format = match iter.next().map(String::as_str) {
                    Some("jsonl") => TraceFormat::Jsonl,
                    Some("chrome") => TraceFormat::Chrome,
                    _ => {
                        eprintln!("--trace-format needs one of: jsonl, chrome");
                        return ExitCode::FAILURE;
                    }
                };
                trace_format = format;
            }
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    signal::install();
    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot start server: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("subvt-serve listening on {}", server.addr());
    std::io::stdout().flush().ok();
    let joined = server.join();
    if let Some(path) = &trace_path {
        if let Err(e) = write_trace(path, trace_format) {
            eprintln!("cannot write trace {}: {e}", path.display());
        }
    }
    match joined {
        Ok(()) => {
            eprintln!("subvt-serve: graceful shutdown complete");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("shutdown error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn write_trace(path: &std::path::Path, format: TraceFormat) -> std::io::Result<()> {
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    let tracer = subvt_engine::trace::global();
    match format {
        TraceFormat::Jsonl => tracer.write_jsonl(&mut out)?,
        TraceFormat::Chrome => tracer.write_chrome(&mut out)?,
    }
    out.flush()
}

fn print_help() {
    eprintln!("usage: subvt-serve [options]");
    eprintln!();
    eprintln!("options:");
    eprintln!("  --addr HOST:PORT     bind address (default 127.0.0.1:7171; port 0 = free port)");
    eprintln!("  --workers N          compute worker threads (default 2)");
    eprintln!("  --queue N            admission queue capacity (default 64)");
    eprintln!("  --deadline-ms N      per-request compute deadline (default 30000)");
    eprintln!("  --max-attempts N     supervisor attempts before quarantine (default 1)");
    eprintln!("  --cache PATH         persist the response/design cache across restarts");
    eprintln!("  --jobs N             engine worker threads (default: cores, or $SUBVT_JOBS)");
    eprintln!("  --backend B          device backend for `experiment`: analytic | tcad");
    eprintln!("  --circuit-backend B  circuit backend for `experiment`: analytic | spice");
    eprintln!("  --slo M=Q:MS         latency SLO, repeatable (e.g. vtc=p99:50; Q: p50|p95|p99)");
    eprintln!("  --access-log PATH    append one JSONL line per request (DESIGN.md section 6)");
    eprintln!("  --window-secs N      rolling latency/SLO window (default 60)");
    eprintln!("  --trace PATH         write the request span tree on shutdown");
    eprintln!("  --trace-format F     trace file format: jsonl (default) | chrome");
    eprintln!();
    eprintln!("Protocol: newline-framed JSON over TCP, plus GET /metrics and");
    eprintln!("GET /healthz over the same port. See DESIGN.md section 8.");
}
