//! Rolling-window latency observatory and SLO tracking.
//!
//! Lifetime histograms (the `serve.latency.*` families in the trace
//! registry) answer "how has this daemon done since boot"; operations
//! needs "how is it doing *now*". The observatory keeps, per method, a
//! ring of per-second buckets over the last `window_secs` seconds and
//! answers rolling p50/p95/p99 from only the live slots — a restart-free
//! sliding window with O(window) memory per method and no timestamps
//! stored per sample.
//!
//! SLO rules (`--slo method=p99:ms`) ride on the same samples. A rule
//! like `vtc=p99:15` allows 1% of `vtc` requests over 15 ms; every
//! request over the threshold consumes error budget. The **burn rate**
//! is the standard SRE ratio: observed violation fraction over the
//! window divided by the allowed fraction (`1 − quantile`), so burn 1.0
//! means "spending budget exactly as fast as the SLO allows", and
//! anything sustained above 1.0 eventually violates the SLO. Breaches
//! also bump the `serve.slo.breach.<method>` counter in the trace
//! registry so they show up in traces and `metrics` snapshots.

use std::sync::Mutex;
use std::time::Instant;

use subvt_engine::trace::{self, Histogram};

/// Latency histogram bounds, milliseconds — shared by the lifetime
/// `serve.latency.*` histograms and the observatory's rolling slots.
pub const MS_BOUNDS: [f64; 14] = [
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0, 5000.0, 15000.0,
];

/// The quantile an SLO rule constrains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantile {
    /// Median.
    P50,
    /// 95th percentile.
    P95,
    /// 99th percentile.
    P99,
}

impl Quantile {
    /// The rank as a fraction (`P99` → 0.99).
    pub fn fraction(self) -> f64 {
        match self {
            Quantile::P50 => 0.50,
            Quantile::P95 => 0.95,
            Quantile::P99 => 0.99,
        }
    }

    /// The stable label string (`"p99"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Quantile::P50 => "p50",
            Quantile::P95 => "p95",
            Quantile::P99 => "p99",
        }
    }
}

/// One SLO rule: "this `method`'s `quantile` stays under
/// `threshold_ms`".
#[derive(Debug, Clone, PartialEq)]
pub struct SloRule {
    /// The method the rule constrains.
    pub method: String,
    /// Which quantile the threshold applies to.
    pub quantile: Quantile,
    /// Latency threshold, milliseconds.
    pub threshold_ms: f64,
}

impl SloRule {
    /// Parses the `--slo` flag syntax: `method=p99:ms`, e.g.
    /// `vtc=p99:15` or `idvg=p50:2.5`.
    ///
    /// # Errors
    ///
    /// A usage message naming the offending part.
    pub fn parse(spec: &str) -> Result<SloRule, String> {
        let (method, rest) = spec
            .split_once('=')
            .ok_or_else(|| format!("`{spec}`: expected method=p50|p95|p99:ms"))?;
        let (quantile, ms) = rest
            .split_once(':')
            .ok_or_else(|| format!("`{spec}`: expected a `:ms` threshold after the quantile"))?;
        let quantile = match quantile {
            "p50" => Quantile::P50,
            "p95" => Quantile::P95,
            "p99" => Quantile::P99,
            other => return Err(format!("`{spec}`: unknown quantile `{other}`")),
        };
        let threshold_ms = ms
            .parse::<f64>()
            .ok()
            .filter(|v| v.is_finite() && *v > 0.0)
            .ok_or_else(|| format!("`{spec}`: threshold must be a positive number of ms"))?;
        if method.is_empty() {
            return Err(format!("`{spec}`: empty method name"));
        }
        Ok(SloRule {
            method: method.to_owned(),
            quantile,
            threshold_ms,
        })
    }
}

/// One second of one method's samples. `sec` stamps which wall second
/// the slot currently holds; a slot whose stamp has fallen out of the
/// window is dead and gets reset on reuse.
struct Slot {
    sec: u64,
    hist: Histogram,
    /// Violations per rule index (only rules matching the method).
    violations: Vec<u64>,
}

struct MethodRing {
    method: String,
    /// Indices into `Observatory::rules` that constrain this method.
    rule_idx: Vec<usize>,
    slots: Vec<Slot>,
}

struct ObsState {
    rings: Vec<MethodRing>,
    /// Lifetime breach count per rule.
    breach_total: Vec<u64>,
}

/// The rolling-window collector. One per server; see the module docs.
pub struct Observatory {
    epoch: Instant,
    window_secs: u64,
    rules: Vec<SloRule>,
    state: Mutex<ObsState>,
}

/// One method's rolling-window summary.
#[derive(Debug, Clone)]
pub struct MethodWindow {
    /// Method name.
    pub method: String,
    /// Samples inside the window.
    pub count: u64,
    /// Rolling quantiles, milliseconds (`NaN` when `count` is 0).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// One SLO rule's live status.
#[derive(Debug, Clone)]
pub struct SloStatus {
    /// The rule being reported.
    pub rule: SloRule,
    /// The constrained quantile's current rolling value, ms.
    pub current_ms: f64,
    /// Lifetime count of requests over the threshold.
    pub breach_total: u64,
    /// Error-budget burn rate over the window (see module docs);
    /// `NaN` with no samples.
    pub burn_rate: f64,
}

/// Everything `/metrics` needs from the observatory, captured at once.
#[derive(Debug, Clone)]
pub struct ObsSnapshot {
    /// The configured window length, seconds.
    pub window_secs: u64,
    /// Per-method rolling summaries, method-sorted.
    pub methods: Vec<MethodWindow>,
    /// Per-rule SLO statuses, in `--slo` order.
    pub slos: Vec<SloStatus>,
}

impl Observatory {
    /// Creates an observatory with the given window and rules.
    /// `window_secs` is clamped up to 1.
    pub fn new(window_secs: u64, rules: Vec<SloRule>) -> Self {
        let breach_total = vec![0; rules.len()];
        Self {
            epoch: Instant::now(),
            window_secs: window_secs.max(1),
            rules,
            state: Mutex::new(ObsState {
                rings: Vec::new(),
                breach_total,
            }),
        }
    }

    fn now_sec(&self) -> u64 {
        self.epoch.elapsed().as_secs()
    }

    /// Records one request latency for `method`.
    pub fn record(&self, method: &str, ms: f64) {
        self.record_at(method, ms, self.now_sec());
    }

    fn record_at(&self, method: &str, ms: f64, sec: u64) {
        let mut state = self.state.lock().expect("observatory lock");
        let state = &mut *state;
        let ring_pos = match state.rings.iter().position(|r| r.method == method) {
            Some(pos) => pos,
            None => {
                let rule_idx = self
                    .rules
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.method == method)
                    .map(|(i, _)| i)
                    .collect::<Vec<_>>();
                let slots = (0..self.window_secs)
                    .map(|_| Slot {
                        sec: u64::MAX,
                        hist: Histogram::new(&MS_BOUNDS),
                        violations: vec![0; rule_idx.len()],
                    })
                    .collect();
                state.rings.push(MethodRing {
                    method: method.to_owned(),
                    rule_idx,
                    slots,
                });
                state.rings.len() - 1
            }
        };
        let ring = &mut state.rings[ring_pos];
        let slot = &mut ring.slots[(sec % self.window_secs) as usize];
        if slot.sec != sec {
            slot.sec = sec;
            slot.hist = Histogram::new(&MS_BOUNDS);
            slot.violations.iter_mut().for_each(|v| *v = 0);
        }
        slot.hist.record(ms);
        for (local, &rule) in ring.rule_idx.iter().enumerate() {
            if ms > self.rules[rule].threshold_ms {
                slot.violations[local] += 1;
                state.breach_total[rule] += 1;
                trace::add(&format!("serve.slo.breach.{method}"), 1);
            }
        }
    }

    /// Captures the rolling summaries and SLO statuses.
    pub fn snapshot(&self) -> ObsSnapshot {
        self.snapshot_at(self.now_sec())
    }

    fn snapshot_at(&self, now_sec: u64) -> ObsSnapshot {
        let state = self.state.lock().expect("observatory lock");
        let live = |slot: &Slot| slot.sec <= now_sec && now_sec - slot.sec < self.window_secs;
        let mut methods = Vec::with_capacity(state.rings.len());
        let mut slos: Vec<Option<SloStatus>> = vec![None; self.rules.len()];
        for ring in &state.rings {
            // Merge the live slots into one window histogram.
            let mut merged = Histogram::new(&MS_BOUNDS);
            let mut violations = vec![0u64; ring.rule_idx.len()];
            for slot in ring.slots.iter().filter(|s| live(s)) {
                for (m, c) in merged.counts.iter_mut().zip(&slot.hist.counts) {
                    *m += c;
                }
                merged.count += slot.hist.count;
                merged.sum += slot.hist.sum;
                merged.min = merged.min.min(slot.hist.min);
                merged.max = merged.max.max(slot.hist.max);
                for (v, s) in violations.iter_mut().zip(&slot.violations) {
                    *v += s;
                }
            }
            for (local, &rule) in ring.rule_idx.iter().enumerate() {
                let q = self.rules[rule].quantile;
                let allowed = 1.0 - q.fraction();
                let burn = if merged.count == 0 {
                    f64::NAN
                } else {
                    (violations[local] as f64 / merged.count as f64) / allowed
                };
                slos[rule] = Some(SloStatus {
                    rule: self.rules[rule].clone(),
                    current_ms: merged.quantile(q.fraction()),
                    breach_total: state.breach_total[rule],
                    burn_rate: burn,
                });
            }
            methods.push(MethodWindow {
                method: ring.method.clone(),
                count: merged.count,
                p50: merged.quantile(0.50),
                p95: merged.quantile(0.95),
                p99: merged.quantile(0.99),
            });
        }
        // Rules whose method has seen no traffic at all still report.
        for (i, slot) in slos.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(SloStatus {
                    rule: self.rules[i].clone(),
                    current_ms: f64::NAN,
                    breach_total: state.breach_total[i],
                    burn_rate: f64::NAN,
                });
            }
        }
        methods.sort_by(|a, b| a.method.cmp(&b.method));
        ObsSnapshot {
            window_secs: self.window_secs,
            methods,
            slos: slos.into_iter().flatten().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slo_specs_parse_and_reject() {
        let rule = SloRule::parse("vtc=p99:15").unwrap();
        assert_eq!(rule.method, "vtc");
        assert_eq!(rule.quantile, Quantile::P99);
        assert_eq!(rule.threshold_ms, 15.0);
        assert_eq!(SloRule::parse("idvg=p50:2.5").unwrap().threshold_ms, 2.5);
        for bad in ["vtc", "vtc=p98:1", "vtc=p99", "vtc=p99:-1", "=p99:1"] {
            assert!(SloRule::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn rolling_quantiles_track_only_the_window() {
        let obs = Observatory::new(10, Vec::new());
        // Seconds 0..5: slow requests. Seconds 20..25: fast ones.
        for sec in 0..5 {
            obs.record_at("vtc", 200.0, sec);
        }
        // At t=4 only the slow ones exist.
        let early = obs.snapshot_at(4);
        assert_eq!(early.methods[0].count, 5);
        assert!(early.methods[0].p50 >= 100.0);
        for sec in 20..25 {
            obs.record_at("vtc", 1.0, sec);
        }
        // At t=24 the slow samples are >10 s old: evicted.
        let snap = obs.snapshot_at(24);
        let vtc = &snap.methods[0];
        assert_eq!(vtc.count, 5);
        assert!(vtc.p99 <= 1.0, "stale slow samples leaked: {}", vtc.p99);
    }

    #[test]
    fn slo_breaches_count_and_burn() {
        let obs = Observatory::new(60, vec![SloRule::parse("vtc=p95:10").unwrap()]);
        // 100 samples, 10 over threshold → violation fraction 0.10,
        // allowed 0.05 → burn 2.0.
        for i in 0..100u64 {
            let ms = if i < 10 { 50.0 } else { 1.0 };
            obs.record_at("vtc", ms, i % 30);
        }
        let snap = obs.snapshot_at(30);
        assert_eq!(snap.slos.len(), 1);
        let slo = &snap.slos[0];
        assert_eq!(slo.breach_total, 10);
        assert!((slo.burn_rate - 2.0).abs() < 1e-9, "{}", slo.burn_rate);
        assert!(slo.current_ms > 10.0, "{}", slo.current_ms);
        // Untouched methods don't appear; unmatched rules still do.
        assert_eq!(snap.methods.len(), 1);
    }

    #[test]
    fn unmatched_rules_report_nan_until_traffic() {
        let obs = Observatory::new(5, vec![SloRule::parse("snm=p50:5").unwrap()]);
        obs.record_at("vtc", 1.0, 0);
        let snap = obs.snapshot_at(0);
        let slo = &snap.slos[0];
        assert_eq!(slo.rule.method, "snm");
        assert!(slo.current_ms.is_nan());
        assert_eq!(slo.breach_total, 0);
    }
}
