//! SIGTERM / SIGINT → graceful-shutdown flag, with no libc crate.
//!
//! The workspace is std-only, so the handlers are installed through a
//! direct `extern "C"` declaration of POSIX `signal(2)` — the one
//! place in the workspace that needs `unsafe`. The handler body only
//! stores a relaxed [`AtomicBool`], which is async-signal-safe. On
//! non-unix targets installation is a no-op and the flag is driven
//! solely by [`request_shutdown`] (the `shutdown` admin method).

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether a shutdown was requested by signal or by
/// [`request_shutdown`].
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

/// Raises the process-wide shutdown flag (used by the `shutdown`
/// protocol method and by tests).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// Clears the flag — test-only escape hatch so sequential in-process
/// servers in one test binary don't see each other's shutdowns.
pub fn reset_for_tests() {
    SHUTDOWN.store(false, Ordering::Relaxed);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        super::SHUTDOWN.store(true, Ordering::Relaxed);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    pub fn install() {
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        // SAFETY: `signal` is the POSIX call; the handler only touches
        // an atomic, which is async-signal-safe.
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs SIGINT/SIGTERM handlers that raise the shutdown flag
/// (no-op off unix).
pub fn install() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trips() {
        reset_for_tests();
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
        reset_for_tests();
        assert!(!shutdown_requested());
    }
}
