//! Admission control: a bounded job queue between connection threads
//! and the worker pool.
//!
//! Bounding the queue is the daemon's overload story. A full queue
//! rejects at submit time — the connection thread answers with a typed
//! `overloaded` error in microseconds instead of parking the client on
//! an unbounded backlog whose latency it cannot see. Closing the queue
//! (shutdown) flushes everything still queued back to the caller so
//! each admitted-but-unstarted request gets a typed `shutting_down`
//! answer rather than a dropped connection.
//!
//! The queue depth is published to the metrics registry as the
//! `serve.queue.depth` gauge on every transition.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use subvt_engine::trace;

use crate::query::Query;

/// One admitted request: everything a worker needs to compute and
/// answer it.
#[derive(Debug)]
pub struct Job {
    /// Request id, echoed in the response line.
    pub id: String,
    /// The parsed, canonical query.
    pub query: Query,
    /// Channel back to the connection thread; carries the full
    /// response line.
    pub reply: mpsc::Sender<String>,
    /// When the job was admitted (for queue-wait accounting).
    pub admitted: Instant,
    /// End-to-end trace id (wire-propagated, or server-synthesized).
    pub trace_id: String,
    /// The request span opened on the connection thread; workers
    /// parent their phase spans (`dedup`, `compute`, `serialize`)
    /// under it so the whole pipeline renders as one tree.
    pub request_span: u64,
}

/// Why a submission was refused. The job is handed back so the caller
/// can answer on its connection.
#[derive(Debug)]
pub enum Rejected {
    /// The queue is at capacity.
    Full(Job),
    /// The queue is closed for shutdown.
    Closed(Job),
}

struct State {
    queue: VecDeque<Job>,
    open: bool,
}

/// The bounded, closable admission queue.
pub struct Admission {
    capacity: usize,
    state: Mutex<State>,
    ready: Condvar,
}

impl Admission {
    /// Creates an open queue holding at most `capacity` jobs
    /// (clamped up to 1).
    pub fn new(capacity: usize) -> Self {
        trace::gauge("serve.queue.depth", 0.0);
        Self {
            capacity: capacity.max(1),
            state: Mutex::new(State {
                queue: VecDeque::new(),
                open: true,
            }),
            ready: Condvar::new(),
        }
    }

    /// Admits a job, waking one worker.
    ///
    /// # Errors
    ///
    /// [`Rejected::Full`] at capacity, [`Rejected::Closed`] after
    /// [`Admission::close`]; both return the job to the caller.
    // Rejected deliberately carries the whole Job back so the caller can
    // answer on its own connection; boxing would add an allocation to
    // every rejection on the overload path.
    #[allow(clippy::result_large_err)]
    pub fn submit(&self, job: Job) -> Result<(), Rejected> {
        let mut state = self.state.lock().expect("admission lock");
        if !state.open {
            return Err(Rejected::Closed(job));
        }
        if state.queue.len() >= self.capacity {
            return Err(Rejected::Full(job));
        }
        state.queue.push_back(job);
        trace::gauge("serve.queue.depth", state.queue.len() as f64);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once the queue is closed (any
    /// jobs still queued at close time were flushed, not handed out).
    pub fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().expect("admission lock");
        loop {
            if let Some(job) = state.queue.pop_front() {
                trace::gauge("serve.queue.depth", state.queue.len() as f64);
                return Some(job);
            }
            if !state.open {
                return None;
            }
            state = self.ready.wait(state).expect("admission wait");
        }
    }

    /// Removes and returns every queued job whose query shares
    /// `group` as its [`Query::idvg_group`] — the sweep-batching
    /// steal. Order is preserved.
    pub fn steal_idvg_group(&self, group: u64) -> Vec<Job> {
        let mut state = self.state.lock().expect("admission lock");
        let mut stolen = Vec::new();
        let mut rest = VecDeque::with_capacity(state.queue.len());
        for job in state.queue.drain(..) {
            if job.query.idvg_group() == Some(group) {
                stolen.push(job);
            } else {
                rest.push_back(job);
            }
        }
        state.queue = rest;
        trace::gauge("serve.queue.depth", state.queue.len() as f64);
        stolen
    }

    /// Closes the queue: subsequent submits are rejected, blocked
    /// `pop` calls return `None`, and every job still queued is
    /// returned for typed rejection.
    pub fn close(&self) -> Vec<Job> {
        let mut state = self.state.lock().expect("admission lock");
        state.open = false;
        let flushed: Vec<Job> = state.queue.drain(..).collect();
        trace::gauge("serve.queue.depth", 0.0);
        drop(state);
        self.ready.notify_all();
        flushed
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.state.lock().expect("admission lock").queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subvt_exp::tracefmt::parse_json;

    fn job(tag: &str, method: &str, params: &str) -> (Job, mpsc::Receiver<String>) {
        let (tx, rx) = mpsc::channel();
        let query = Query::from_request(method, &parse_json(params).unwrap()).unwrap();
        (
            Job {
                id: tag.to_owned(),
                query,
                reply: tx,
                admitted: Instant::now(),
                trace_id: format!("t-{tag}"),
                request_span: 0,
            },
            rx,
        )
    }

    #[test]
    fn full_queue_rejects_with_the_job() {
        let adm = Admission::new(1);
        let (a, _rxa) = job("a", "sleep", r#"{"ms":1}"#);
        let (b, _rxb) = job("b", "sleep", r#"{"ms":1}"#);
        adm.submit(a).unwrap();
        match adm.submit(b) {
            Err(Rejected::Full(j)) => assert_eq!(j.id, "b"),
            other => panic!("expected Full, got {other:?}"),
        }
    }

    #[test]
    fn close_flushes_queued_jobs_and_unblocks_pop() {
        let adm = std::sync::Arc::new(Admission::new(8));
        let (a, _rxa) = job("a", "sleep", r#"{"ms":1}"#);
        adm.submit(a).unwrap();
        let flushed = adm.close();
        assert_eq!(flushed.len(), 1);
        assert!(adm.pop().is_none(), "closed+empty pop must return None");
        let (c, _rxc) = job("c", "sleep", r#"{"ms":1}"#);
        assert!(matches!(adm.submit(c), Err(Rejected::Closed(_))));
    }

    #[test]
    fn steal_takes_only_the_compatible_group() {
        let adm = Admission::new(8);
        let (a, _ra) = job("a", "idvg", r#"{"node":"ref90","v_ds":0.05,"v_gs":[0.1]}"#);
        let (b, _rb) = job("b", "idvg", r#"{"node":"ref90","v_ds":0.05,"v_gs":[0.2]}"#);
        let (c, _rc) = job("c", "idvg", r#"{"node":"ref90","v_ds":1.2,"v_gs":[0.2]}"#);
        let (d, _rd) = job("d", "sleep", r#"{"ms":1}"#);
        let group = a.query.idvg_group().unwrap();
        for j in [a, b, c, d] {
            adm.submit(j).unwrap();
        }
        let stolen = adm.steal_idvg_group(group);
        assert_eq!(
            stolen.iter().map(|j| j.id.as_str()).collect::<Vec<_>>(),
            ["a", "b"]
        );
        assert_eq!(adm.depth(), 2);
    }
}
