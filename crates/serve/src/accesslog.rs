//! Structured JSONL access log: one line per compute-path request.
//!
//! Enabled with `--access-log <path>`. Every line is a self-contained
//! JSON object (schema in DESIGN.md §6):
//!
//! ```text
//! {"ts":"2026-08-08T12:00:00Z","trace_id":"lg1f3a-2","id":"c2","method":"vtc",
//!  "outcome":"ok","cached":"computed","span":17,
//!  "phases":{"queue_us":41,"compute_us":1873,"serialize_us":12},"total_us":1940}
//! ```
//!
//! `trace_id` is the wire-propagated client trace id (or the daemon's
//! synthesized `srv-…` id), `span` is the daemon's request-span id in
//! the emitted trace — so one grep connects an access-log line to its
//! span tree, and the `obs-smoke` CI job asserts every logged trace_id
//! resolves in the Chrome trace. Rejected requests (overloaded,
//! shutting down, bad query) are logged too, with `span` 0 and no
//! `cached`/`phases`; admin methods (`ping`, `metrics`, …) are not
//! logged. Lines are appended and flushed one at a time, so the log
//! tails cleanly and survives crashes up to the last request.
//!
//! The counterpart parser/renderer lives in `subvt_exp::tracefmt`
//! (`parse_access_log` / `render_access_report`), which `repro
//! trace-report` applies when it sniffs an access-log file.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use subvt_engine::clock;

use crate::proto::json_str;

/// Everything one access-log line records about a finished request.
#[derive(Debug, Clone)]
pub struct AccessEntry<'a> {
    /// End-to-end trace id.
    pub trace_id: &'a str,
    /// Echoed request id.
    pub id: &'a str,
    /// Request method.
    pub method: &'a str,
    /// `"ok"` or the typed error code string.
    pub outcome: &'a str,
    /// Cache provenance (`hit|coalesced|computed`), when the request
    /// reached the cacheable pipeline.
    pub cached: Option<&'a str>,
    /// Daemon request-span id (0 for pre-admission rejections).
    pub span: u64,
    /// Per-phase durations, µs, in pipeline order; empty for
    /// rejections.
    pub phases: &'a [(&'a str, u64)],
    /// End-to-end server-side duration, µs.
    pub total_us: u64,
}

/// An append-only, line-buffered JSONL access log. One per server;
/// connection and worker threads share it behind a mutex (a request's
/// line is written exactly once, so contention is one lock per
/// request).
pub struct AccessLog {
    out: Mutex<BufWriter<File>>,
}

impl AccessLog {
    /// Opens (appending) or creates the log file.
    ///
    /// # Errors
    ///
    /// Propagates the open error.
    pub fn open(path: &Path) -> std::io::Result<AccessLog> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(AccessLog {
            out: Mutex::new(BufWriter::new(file)),
        })
    }

    /// Appends one request line and flushes it. I/O errors are counted
    /// (`serve.accesslog.errors`) rather than propagated — logging must
    /// never fail a request.
    pub fn write(&self, entry: &AccessEntry<'_>) {
        let mut line = String::with_capacity(192);
        line.push_str("{\"ts\":");
        line.push_str(&json_str(&clock::iso8601_utc(clock::unix_now())));
        line.push_str(",\"trace_id\":");
        line.push_str(&json_str(entry.trace_id));
        line.push_str(",\"id\":");
        line.push_str(&json_str(entry.id));
        line.push_str(",\"method\":");
        line.push_str(&json_str(entry.method));
        line.push_str(",\"outcome\":");
        line.push_str(&json_str(entry.outcome));
        if let Some(cached) = entry.cached {
            line.push_str(",\"cached\":");
            line.push_str(&json_str(cached));
        }
        line.push_str(&format!(",\"span\":{}", entry.span));
        if !entry.phases.is_empty() {
            line.push_str(",\"phases\":{");
            for (i, (name, us)) in entry.phases.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push_str(&format!("{}:{us}", json_str(name)));
            }
            line.push('}');
        }
        line.push_str(&format!(",\"total_us\":{}}}\n", entry.total_us));

        let mut out = self.out.lock().expect("access log lock");
        if out
            .write_all(line.as_bytes())
            .and_then(|()| out.flush())
            .is_err()
        {
            subvt_engine::trace::add("serve.accesslog.errors", 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_round_trip_through_the_tracefmt_parser() {
        let dir = std::env::temp_dir().join(format!(
            "subvt-accesslog-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("access.jsonl");
        let _ = std::fs::remove_file(&path);

        let log = AccessLog::open(&path).unwrap();
        log.write(&AccessEntry {
            trace_id: "lg-1",
            id: "c1",
            method: "vtc",
            outcome: "ok",
            cached: Some("computed"),
            span: 17,
            phases: &[("queue_us", 41), ("compute_us", 1873), ("serialize_us", 12)],
            total_us: 1940,
        });
        log.write(&AccessEntry {
            trace_id: "lg-2",
            id: "c2",
            method: "idvg",
            outcome: "overloaded",
            cached: None,
            span: 0,
            phases: &[],
            total_us: 3,
        });

        let text = std::fs::read_to_string(&path).unwrap();
        let records = subvt_exp::tracefmt::parse_access_log(&text).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].trace_id, "lg-1");
        assert_eq!(records[0].cached.as_deref(), Some("computed"));
        assert_eq!(
            records[0].phases,
            vec![
                ("queue_us".to_owned(), 41),
                ("compute_us".to_owned(), 1873),
                ("serialize_us".to_owned(), 12)
            ]
        );
        assert_eq!(records[0].total_us, 1940);
        assert!(records[0].ts.ends_with('Z'));
        assert_eq!(records[1].outcome, "overloaded");
        assert_eq!(records[1].span, 0);
        assert!(records[1].phases.is_empty());

        std::fs::remove_dir_all(&dir).ok();
    }
}
