//! The daemon: accept loop, worker pool, sweep batching, metrics
//! export, and graceful shutdown.
//!
//! Threading model — three kinds of threads, decoupled by the
//! [`Admission`] queue:
//!
//! * The **accept loop** (one thread) hands each TCP connection to a
//!   detached connection thread and watches the shutdown flag.
//! * **Connection threads** (one per client) parse request lines,
//!   answer admin methods inline (`ping`, `metrics`, `healthz`,
//!   `shutdown`), and submit compute methods to the admission queue —
//!   answering `overloaded` / `shutting_down` immediately when the
//!   queue refuses. One request is in flight per connection; responses
//!   stay in request order.
//! * **Worker threads** (a small fixed pool) pop jobs, steal
//!   batch-compatible `idvg` requests queued behind them, and run each
//!   compute under the engine [`Supervisor`] with a per-request
//!   deadline, answering through the job's reply channel.
//!
//! Dedup happens between the worker and the compute: the response
//! payload is keyed by [`Query::key`] in the engine cache's
//! `serve.resp` namespace, so concurrent identical requests
//! single-flight (one compute, N answers) and — with `--cache` — warm
//! restarts answer from disk without recomputing anything.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use subvt_engine::supervisor::{JobError, RetryPolicy, Supervisor};
use subvt_engine::{trace, KeyBuilder, Lookup};
use subvt_exp::CacheSession;

use crate::admission::{Admission, Job, Rejected};
use crate::proto::{self, ErrorCode};
use crate::query::{self, Query, TextBlob};
use crate::signal;

/// Cache namespace holding rendered response payloads.
pub const RESPONSE_NS: &str = "serve.resp";

/// Latency histogram bounds, milliseconds.
const MS_BOUNDS: [f64; 14] = [
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0, 5000.0, 15000.0,
];

/// Server configuration. `Default` is tuned for tests and local use.
#[derive(Debug, Clone)]
pub struct Config {
    /// Bind address; port 0 picks a free port.
    pub addr: String,
    /// Worker threads serving computes.
    pub workers: usize,
    /// Admission queue capacity; beyond it requests are rejected
    /// `overloaded`.
    pub queue_capacity: usize,
    /// Per-request compute deadline.
    pub deadline: Duration,
    /// Supervisor attempts per request (1 = quarantine on first
    /// panic).
    pub max_attempts: u32,
    /// Extra wall-clock allowance past `deadline` when draining
    /// workers at shutdown.
    pub drain_grace: Duration,
    /// Persistent response/design cache file (loaded at start, saved
    /// compacted at shutdown).
    pub cache_path: Option<PathBuf>,
    /// Also honor the process-wide SIGTERM/SIGINT flag (the binary
    /// sets this; in-process tests leave it off).
    pub watch_signals: bool,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            queue_capacity: 64,
            deadline: Duration::from_secs(30),
            max_attempts: 1,
            drain_grace: Duration::from_secs(2),
            cache_path: None,
            watch_signals: false,
        }
    }
}

struct Shared {
    admission: Admission,
    supervisor: Supervisor,
    shutdown: AtomicBool,
    inflight: AtomicI64,
    deadline: Duration,
}

impl Shared {
    fn shutting_down(&self, watch_signals: bool) -> bool {
        self.shutdown.load(Ordering::SeqCst) || (watch_signals && signal::shutdown_requested())
    }

    fn inflight_delta(&self, delta: i64) {
        let now = self.inflight.fetch_add(delta, Ordering::SeqCst) + delta;
        trace::gauge("serve.inflight", now as f64);
    }
}

/// A running daemon. Dropping it without [`Server::join`] leaves
/// threads running; always join (the binary does) or at least
/// [`Server::shutdown`] first.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    cache: Mutex<Option<CacheSession>>,
    drain_grace: Duration,
}

impl Server {
    /// Binds, loads the persistent cache (if configured), and spawns
    /// the accept loop and worker pool. Returns once the socket is
    /// listening.
    ///
    /// # Errors
    ///
    /// I/O errors from the bind or from opening the cache file.
    pub fn start(config: Config) -> std::io::Result<Server> {
        let cache = match &config.cache_path {
            Some(path) => Some(CacheSession::open(path)?),
            None => None,
        };
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let shared = Arc::new(Shared {
            admission: Admission::new(config.queue_capacity),
            supervisor: Supervisor::new(RetryPolicy {
                max_attempts: config.max_attempts,
                deadline: Some(config.deadline),
            }),
            shutdown: AtomicBool::new(false),
            inflight: AtomicI64::new(0),
            deadline: config.deadline,
        });

        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        let accept = {
            let shared = Arc::clone(&shared);
            let watch_signals = config.watch_signals;
            std::thread::Builder::new()
                .name("serve-accept".to_owned())
                .spawn(move || accept_loop(&listener, &shared, watch_signals))
                .expect("spawn accept loop")
        };

        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
            workers,
            cache: Mutex::new(cache),
            drain_grace: config.drain_grace,
        })
    }

    /// The bound address (with the real port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests graceful shutdown: stop accepting, reject queued and
    /// new work with `shutting_down`, drain in-flight computes.
    /// Returns immediately; [`Server::join`] completes the drain.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Blocks until the server exits (signal, `shutdown` method, or
    /// [`Server::shutdown`]), drains the workers bounded by
    /// `deadline + drain_grace`, then saves and compacts the
    /// persistent cache.
    ///
    /// # Errors
    ///
    /// I/O errors from the final cache save.
    pub fn join(mut self) -> std::io::Result<()> {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // In-flight computes are bounded by the supervisor deadline;
        // wait that long plus the grace, then abandon stragglers (the
        // executor's catch_unwind keeps them from taking the process
        // down with us).
        let patience = self.shared.deadline + self.drain_grace;
        let waited = Instant::now();
        for worker in self.workers.drain(..) {
            loop {
                if worker.is_finished() {
                    let _ = worker.join();
                    break;
                }
                if waited.elapsed() > patience {
                    trace::add("serve.drain.abandoned", 1);
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        trace::gauge("serve.inflight", 0.0);
        if let Some(session) = self.cache.lock().expect("cache lock").take() {
            let written = session.close()?;
            eprintln!("cache compacted ({written} entries written)");
        }
        Ok(())
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, watch_signals: bool) {
    loop {
        if shared.shutting_down(watch_signals) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                let _ = std::thread::Builder::new()
                    .name("serve-conn".to_owned())
                    .spawn(move || {
                        let _ = handle_conn(&shared, stream);
                    });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    // Typed rejection for everything admitted but not yet started —
    // the drain bound stays `deadline`, not `queue × deadline`.
    for job in shared.admission.close() {
        trace::add("serve.rejected.shutdown", 1);
        let _ = job.reply.send(proto::error_line(
            &job.id,
            ErrorCode::ShuttingDown,
            "server is shutting down; request was not started",
        ));
    }
}

fn handle_conn(shared: &Arc<Shared>, stream: TcpStream) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client closed
        }
        if line.starts_with("GET ") || line.starts_with("HEAD ") {
            return handle_http(&mut reader, &mut writer, &line);
        }
        if line.trim().is_empty() {
            continue;
        }
        let response = handle_line(shared, &line);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
}

/// Serves one JSON request line to one response line (inline admin
/// methods; queued compute methods).
fn handle_line(shared: &Arc<Shared>, line: &str) -> String {
    let req = match proto::parse_request(line) {
        Ok(req) => req,
        Err(msg) => {
            trace::add("serve.errors.bad_request", 1);
            return proto::error_line("", ErrorCode::BadRequest, &msg);
        }
    };
    match req.method.as_str() {
        // Admin methods answer inline: they must work under overload
        // and during drain, so they never touch the queue.
        "ping" => proto::ok_line(&req.id, None, "{\"pong\":true}"),
        "healthz" => proto::ok_line(&req.id, None, "{\"status\":\"ok\"}"),
        "metrics" => proto::ok_line(&req.id, None, &metrics_json()),
        "shutdown" => {
            shared.shutdown.store(true, Ordering::SeqCst);
            signal::request_shutdown();
            proto::ok_line(&req.id, None, "{\"shutting_down\":true}")
        }
        method => {
            let query = match Query::from_request(method, &req.params) {
                Ok(q) => q,
                Err((code, msg)) => {
                    trace::add(&format!("serve.errors.{}", code.as_str()), 1);
                    return proto::error_line(&req.id, code, &msg);
                }
            };
            let (reply, rx) = mpsc::channel();
            let job = Job {
                id: req.id.clone(),
                query,
                reply,
                admitted: Instant::now(),
            };
            match shared.admission.submit(job) {
                Ok(()) => match rx.recv() {
                    Ok(response) => response,
                    Err(_) => proto::error_line(
                        &req.id,
                        ErrorCode::ShuttingDown,
                        "server shut down before the request completed",
                    ),
                },
                Err(Rejected::Full(job)) => {
                    trace::add("serve.rejected.overload", 1);
                    proto::error_line(
                        &job.id,
                        ErrorCode::Overloaded,
                        "admission queue is full; retry later",
                    )
                }
                Err(Rejected::Closed(job)) => {
                    trace::add("serve.rejected.shutdown", 1);
                    proto::error_line(
                        &job.id,
                        ErrorCode::ShuttingDown,
                        "server is shutting down; no new work admitted",
                    )
                }
            }
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.admission.pop() {
        match job.query.idvg_group() {
            Some(group) => {
                let mut batch = vec![job];
                batch.extend(shared.admission.steal_idvg_group(group));
                if batch.len() > 1 {
                    serve_idvg_batch(shared, batch);
                } else {
                    serve_one(shared, batch.remove(0));
                }
            }
            None => serve_one(shared, job),
        }
    }
}

/// Runs `query` under the supervisor with the request deadline,
/// mapping every failure to its typed protocol error.
fn run_supervised(shared: &Shared, key: u64, query: &Query) -> Result<String, (ErrorCode, String)> {
    let body = query.clone();
    match shared
        .supervisor
        .run(subvt_engine::global(), key, query.method(), move || {
            query::compute(&body)
        }) {
        Ok(Ok(payload)) => Ok(payload),
        Ok(Err(msg)) => Err((ErrorCode::ComputeFailed, msg)),
        Err(JobError::Panicked { message, attempts }) => Err((
            ErrorCode::ComputePanicked,
            format!("compute panicked ({attempts} attempts): {message}"),
        )),
        Err(JobError::DeadlineExceeded { deadline, .. }) => Err((
            ErrorCode::DeadlineExceeded,
            format!("compute exceeded its {deadline:?} deadline"),
        )),
        Err(JobError::Quarantined) => Err((
            ErrorCode::Quarantined,
            "request key is quarantined by an earlier failure".to_owned(),
        )),
    }
}

fn count_lookup(outcome: Lookup) -> &'static str {
    match outcome {
        Lookup::Hit => {
            trace::add("serve.dedup.hits", 1);
            "hit"
        }
        Lookup::Coalesced => {
            trace::add("serve.dedup.coalesced", 1);
            "coalesced"
        }
        Lookup::Computed => {
            trace::add("serve.computed", 1);
            "computed"
        }
    }
}

fn finish(job: &Job, method: &str, started: Instant, line: String) {
    trace::observe_with(
        &format!("serve.latency.{method}"),
        started.elapsed().as_secs_f64() * 1e3,
        &MS_BOUNDS,
    );
    trace::observe_with(
        "serve.queue.wait_ms",
        (started - job.admitted).as_secs_f64() * 1e3,
        &MS_BOUNDS,
    );
    let _ = job.reply.send(line);
}

fn serve_one(shared: &Arc<Shared>, job: Job) {
    let method = job.query.method();
    let started = Instant::now();
    trace::add(&format!("serve.req.{method}"), 1);
    shared.inflight_delta(1);
    let line = if job.query.cacheable() {
        let key = job.query.key();
        let (result, outcome) =
            subvt_engine::global_cache().try_get_or_compute_outcome(RESPONSE_NS, key, || {
                run_supervised(shared, key, &job.query).map(TextBlob)
            });
        match result {
            Ok(TextBlob(payload)) => proto::ok_line(&job.id, Some(count_lookup(outcome)), &payload),
            Err((code, msg)) => {
                trace::add(&format!("serve.errors.{}", code.as_str()), 1);
                proto::error_line(&job.id, code, &msg)
            }
        }
    } else {
        match run_supervised(shared, job.query.key(), &job.query) {
            Ok(payload) => proto::ok_line(&job.id, None, &payload),
            Err((code, msg)) => {
                trace::add(&format!("serve.errors.{}", code.as_str()), 1);
                proto::error_line(&job.id, code, &msg)
            }
        }
    };
    finish(&job, method, started, line);
    shared.inflight_delta(-1);
}

/// Serves a stolen batch of bias-compatible `idvg` requests: one
/// supervised union sweep over the engine pool, then one cache insert
/// and reply per member.
fn serve_idvg_batch(shared: &Arc<Shared>, batch: Vec<Job>) {
    let started = Instant::now();
    let members = batch.len() as i64;
    trace::add("serve.batch.runs", 1);
    trace::add("serve.batch.merged", (batch.len() - 1) as u64);
    for job in &batch {
        trace::add(&format!("serve.req.{}", job.query.method()), 1);
    }
    shared.inflight_delta(members);

    let Query::IdVg {
        sel, backend, v_ds, ..
    } = batch[0].query
    else {
        unreachable!("idvg_group only matches IdVg queries");
    };

    // Union of every member's bias points, deduped bit-exactly,
    // ascending; one executor pass computes them all.
    let mut union: Vec<f64> = batch
        .iter()
        .flat_map(|job| match &job.query {
            Query::IdVg { v_gs, .. } => v_gs.as_slice(),
            _ => &[],
        })
        .copied()
        .collect();
    union.sort_by(f64::total_cmp);
    union.dedup_by(|a, b| a.to_bits() == b.to_bits());

    let batch_key = KeyBuilder::new("serve.batch.run")
        .u64(batch[0].query.idvg_group().unwrap_or(0))
        .f64s(&union)
        .finish();
    let points = union.clone();
    let swept =
        match shared
            .supervisor
            .run(subvt_engine::global(), batch_key, "idvg.batch", move || {
                query::idvg_currents(sel, backend, v_ds, &points)
            }) {
            Ok(Ok(currents)) => Ok(currents),
            Ok(Err(msg)) => Err((ErrorCode::ComputeFailed, msg)),
            Err(JobError::Panicked { message, attempts }) => Err((
                ErrorCode::ComputePanicked,
                format!("compute panicked ({attempts} attempts): {message}"),
            )),
            Err(JobError::DeadlineExceeded { deadline, .. }) => Err((
                ErrorCode::DeadlineExceeded,
                format!("compute exceeded its {deadline:?} deadline"),
            )),
            Err(JobError::Quarantined) => Err((
                ErrorCode::Quarantined,
                "request key is quarantined by an earlier failure".to_owned(),
            )),
        };

    match swept {
        Ok(currents) => {
            let lookup: std::collections::HashMap<u64, f64> = union
                .iter()
                .zip(&currents)
                .map(|(v, i)| (v.to_bits(), *i))
                .collect();
            for job in batch {
                let Query::IdVg { ref v_gs, .. } = job.query else {
                    unreachable!();
                };
                let i_d: Vec<f64> = v_gs.iter().map(|v| lookup[&v.to_bits()]).collect();
                let payload = query::idvg_payload(v_gs, &i_d);
                let key = job.query.key();
                let (result, outcome) = subvt_engine::global_cache()
                    .try_get_or_compute_outcome::<TextBlob, std::convert::Infallible>(
                        RESPONSE_NS,
                        key,
                        || Ok(TextBlob(payload.clone())),
                    );
                let cached = count_lookup(outcome);
                let text = match result {
                    Ok(TextBlob(text)) => text,
                    Err(never) => match never {},
                };
                let line = proto::ok_line(&job.id, Some(cached), &text);
                finish(&job, "idvg", started, line);
            }
        }
        Err((code, msg)) => {
            for job in batch {
                trace::add(&format!("serve.errors.{}", code.as_str()), 1);
                let line = proto::error_line(&job.id, code, &msg);
                finish(&job, "idvg", started, line);
            }
        }
    }
    shared.inflight_delta(-members);
}

/// JSON metrics payload for the `metrics` protocol method: counters
/// and gauges only (histograms live in `/metrics`).
fn metrics_json() -> String {
    let snap = trace::global().drain();
    let mut out = String::from("{\"counters\":{");
    for (i, (name, value)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{value}", proto::json_str(name)));
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, value)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{}:{}",
            proto::json_str(name),
            proto::fmt_f64(*value)
        ));
    }
    out.push_str("}}");
    out
}

/// Plain-text exposition for `GET /metrics`: one line per counter,
/// gauge, and histogram statistic, in a stable grep-friendly format.
fn metrics_text() -> String {
    let snap = trace::global().drain();
    let mut out = String::new();
    for (name, value) in &snap.counters {
        out.push_str(&format!("subvt_counter{{name=\"{name}\"}} {value}\n"));
    }
    for (name, value) in &snap.gauges {
        out.push_str(&format!("subvt_gauge{{name=\"{name}\"}} {value}\n"));
    }
    for (name, hist) in &snap.hists {
        let stats = [
            ("count", hist.count as f64),
            ("sum", hist.sum),
            ("mean", hist.mean()),
            ("min", hist.min),
            ("max", hist.max),
            ("p50", hist.quantile(0.5)),
            ("p90", hist.quantile(0.9)),
            ("p99", hist.quantile(0.99)),
        ];
        for (stat, v) in stats {
            out.push_str(&format!(
                "subvt_hist{{name=\"{name}\",stat=\"{stat}\"}} {v}\n"
            ));
        }
    }
    out
}

/// Minimal HTTP/1.1 responder for `GET /metrics` and `GET /healthz`.
fn handle_http(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    request_line: &str,
) -> std::io::Result<()> {
    // Drain the header block; we need nothing from it.
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header.trim().is_empty() {
            break;
        }
    }
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    let (status, body) = match path {
        "/healthz" => ("200 OK", "ok\n".to_owned()),
        "/metrics" => ("200 OK", metrics_text()),
        _ => ("404 Not Found", "not found\n".to_owned()),
    };
    let head_only = request_line.starts_with("HEAD ");
    write!(
        writer,
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    if !head_only {
        writer.write_all(body.as_bytes())?;
    }
    writer.flush()
}
