//! The daemon: accept loop, worker pool, sweep batching, metrics
//! export, and graceful shutdown.
//!
//! Threading model — three kinds of threads, decoupled by the
//! [`Admission`] queue:
//!
//! * The **accept loop** (one thread) hands each TCP connection to a
//!   detached connection thread and watches the shutdown flag.
//! * **Connection threads** (one per client) parse request lines,
//!   answer admin methods inline (`ping`, `metrics`, `healthz`,
//!   `shutdown`), and submit compute methods to the admission queue —
//!   answering `overloaded` / `shutting_down` immediately when the
//!   queue refuses. One request is in flight per connection; responses
//!   stay in request order.
//! * **Worker threads** (a small fixed pool) pop jobs, steal
//!   batch-compatible `idvg` requests queued behind them, and run each
//!   compute under the engine [`Supervisor`] with a per-request
//!   deadline, answering through the job's reply channel.
//!
//! Dedup happens between the worker and the compute: the response
//! payload is keyed by [`Query::key`] in the engine cache's
//! `serve.resp` namespace, so concurrent identical requests
//! single-flight (one compute, N answers) and — with `--cache` — warm
//! restarts answer from disk without recomputing anything.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use subvt_engine::supervisor::{JobError, RetryPolicy, Supervisor};
use subvt_engine::{trace, KeyBuilder, Lookup};
use subvt_exp::CacheSession;

use crate::accesslog::{AccessEntry, AccessLog};
use crate::admission::{Admission, Job, Rejected};
use crate::observatory::{Observatory, SloRule, MS_BOUNDS};
use crate::proto::{self, ErrorCode};
use crate::query::{self, Query, TextBlob};
use crate::signal;

/// Cache namespace holding rendered response payloads.
pub const RESPONSE_NS: &str = "serve.resp";

/// Upper bound on one protocol request line (JSON params can be large
/// — `idvg` bias arrays — but not unbounded).
const MAX_PROTO_LINE: usize = 1 << 20;

/// Upper bound on one HTTP request/header line.
const MAX_HTTP_LINE: usize = 8 << 10;

/// Upper bound on the number of HTTP header lines drained.
const MAX_HTTP_HEADERS: usize = 100;

/// Server configuration. `Default` is tuned for tests and local use.
#[derive(Debug, Clone)]
pub struct Config {
    /// Bind address; port 0 picks a free port.
    pub addr: String,
    /// Worker threads serving computes.
    pub workers: usize,
    /// Admission queue capacity; beyond it requests are rejected
    /// `overloaded`.
    pub queue_capacity: usize,
    /// Per-request compute deadline.
    pub deadline: Duration,
    /// Supervisor attempts per request (1 = quarantine on first
    /// panic).
    pub max_attempts: u32,
    /// Extra wall-clock allowance past `deadline` when draining
    /// workers at shutdown.
    pub drain_grace: Duration,
    /// Persistent response/design cache file (loaded at start, saved
    /// compacted at shutdown).
    pub cache_path: Option<PathBuf>,
    /// Also honor the process-wide SIGTERM/SIGINT flag (the binary
    /// sets this; in-process tests leave it off).
    pub watch_signals: bool,
    /// Structured JSONL access log (one line per compute-path
    /// request); `None` disables logging.
    pub access_log: Option<PathBuf>,
    /// SLO rules (`--slo method=p99:ms`) tracked by the observatory.
    pub slos: Vec<SloRule>,
    /// Rolling-window length for the latency observatory, seconds.
    pub window_secs: u64,
    /// How long an idle new connection (or a stalled HTTP header
    /// block) may sit before it is timed out — the half-open guard.
    /// Cleared after a connection's first protocol request, so
    /// long-lived idle protocol clients are unaffected.
    pub http_timeout: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            queue_capacity: 64,
            deadline: Duration::from_secs(30),
            max_attempts: 1,
            drain_grace: Duration::from_secs(2),
            cache_path: None,
            watch_signals: false,
            access_log: None,
            slos: Vec::new(),
            window_secs: 60,
            http_timeout: Duration::from_secs(5),
        }
    }
}

struct Shared {
    admission: Admission,
    supervisor: Supervisor,
    shutdown: AtomicBool,
    inflight: AtomicI64,
    deadline: Duration,
    observatory: Observatory,
    access_log: Option<AccessLog>,
    http_timeout: Duration,
}

impl Shared {
    fn shutting_down(&self, watch_signals: bool) -> bool {
        self.shutdown.load(Ordering::SeqCst) || (watch_signals && signal::shutdown_requested())
    }

    fn inflight_delta(&self, delta: i64) {
        let now = self.inflight.fetch_add(delta, Ordering::SeqCst) + delta;
        trace::gauge("serve.inflight", now as f64);
    }

    fn log_access(&self, entry: &AccessEntry<'_>) {
        if let Some(log) = &self.access_log {
            log.write(entry);
        }
    }
}

/// A running daemon. Dropping it without [`Server::join`] leaves
/// threads running; always join (the binary does) or at least
/// [`Server::shutdown`] first.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    cache: Mutex<Option<CacheSession>>,
    drain_grace: Duration,
}

impl Server {
    /// Binds, loads the persistent cache (if configured), and spawns
    /// the accept loop and worker pool. Returns once the socket is
    /// listening.
    ///
    /// # Errors
    ///
    /// I/O errors from the bind or from opening the cache file.
    pub fn start(config: Config) -> std::io::Result<Server> {
        let cache = match &config.cache_path {
            Some(path) => {
                let session = CacheSession::open(path)?;
                match session.mode() {
                    subvt_exp::SessionMode::Primary => {}
                    subvt_exp::SessionMode::Segment => eprintln!(
                        "cache session: segment mode (primary lock held elsewhere); \
                         results persist to {}",
                        session.segment_path().map_or_else(
                            || "a leased segment".to_owned(),
                            |p| p.display().to_string()
                        )
                    ),
                    subvt_exp::SessionMode::ReadOnly => {
                        eprintln!("cache session: read-only (nothing will be persisted)")
                    }
                }
                Some(session)
            }
            None => None,
        };
        let access_log = match &config.access_log {
            Some(path) => Some(AccessLog::open(path)?),
            None => None,
        };
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let shared = Arc::new(Shared {
            admission: Admission::new(config.queue_capacity),
            supervisor: Supervisor::new(RetryPolicy {
                max_attempts: config.max_attempts,
                deadline: Some(config.deadline),
            }),
            shutdown: AtomicBool::new(false),
            inflight: AtomicI64::new(0),
            deadline: config.deadline,
            observatory: Observatory::new(config.window_secs, config.slos.clone()),
            access_log,
            http_timeout: config.http_timeout,
        });

        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        let accept = {
            let shared = Arc::clone(&shared);
            let watch_signals = config.watch_signals;
            std::thread::Builder::new()
                .name("serve-accept".to_owned())
                .spawn(move || accept_loop(&listener, &shared, watch_signals))
                .expect("spawn accept loop")
        };

        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
            workers,
            cache: Mutex::new(cache),
            drain_grace: config.drain_grace,
        })
    }

    /// The bound address (with the real port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests graceful shutdown: stop accepting, reject queued and
    /// new work with `shutting_down`, drain in-flight computes.
    /// Returns immediately; [`Server::join`] completes the drain.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Blocks until the server exits (signal, `shutdown` method, or
    /// [`Server::shutdown`]), drains the workers bounded by
    /// `deadline + drain_grace`, then saves and compacts the
    /// persistent cache.
    ///
    /// # Errors
    ///
    /// I/O errors from the final cache save.
    pub fn join(mut self) -> std::io::Result<()> {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // In-flight computes are bounded by the supervisor deadline;
        // wait that long plus the grace, then abandon stragglers (the
        // executor's catch_unwind keeps them from taking the process
        // down with us).
        let patience = self.shared.deadline + self.drain_grace;
        let waited = Instant::now();
        for worker in self.workers.drain(..) {
            loop {
                if worker.is_finished() {
                    let _ = worker.join();
                    break;
                }
                if waited.elapsed() > patience {
                    trace::add("serve.drain.abandoned", 1);
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        trace::gauge("serve.inflight", 0.0);
        let session = self
            .cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take();
        if let Some(session) = session {
            let mode = session.mode();
            let written = session.close()?;
            match mode {
                subvt_exp::SessionMode::Segment => {
                    eprintln!("cache segment sealed ({written} entries appended)")
                }
                _ => eprintln!("cache compacted ({written} entries written)"),
            }
        }
        Ok(())
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, watch_signals: bool) {
    loop {
        if shared.shutting_down(watch_signals) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                let _ = std::thread::Builder::new()
                    .name("serve-conn".to_owned())
                    .spawn(move || {
                        let _ = handle_conn(&shared, stream);
                    });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    // Typed rejection for everything admitted but not yet started —
    // the drain bound stays `deadline`, not `queue × deadline`.
    for job in shared.admission.close() {
        trace::add("serve.rejected.shutdown", 1);
        shared.log_access(&AccessEntry {
            trace_id: &job.trace_id,
            id: &job.id,
            method: job.query.method(),
            outcome: ErrorCode::ShuttingDown.as_str(),
            cached: None,
            span: job.request_span,
            phases: &[],
            total_us: job.admitted.elapsed().as_micros() as u64,
        });
        let _ = job.reply.send(proto::error_line(
            &job.id,
            ErrorCode::ShuttingDown,
            "server is shutting down; request was not started",
        ));
    }
}

/// Outcome of one bounded line read.
enum BoundedLine {
    /// A complete line (terminator included when present).
    Line(String),
    /// Clean end of stream with nothing buffered.
    Eof,
    /// The line outgrew the cap; carries the first bytes for protocol
    /// sniffing. The connection must be closed — the rest of the line
    /// is unread.
    TooLong(String),
}

/// Reads one `\n`-terminated line without ever buffering more than
/// `cap` bytes — the guard against a client streaming an unbounded
/// "line". A read timeout set on the socket surfaces as `Err`.
fn read_line_bounded(reader: &mut impl BufRead, cap: usize) -> std::io::Result<BoundedLine> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return Ok(if buf.is_empty() {
                BoundedLine::Eof
            } else {
                BoundedLine::Line(String::from_utf8_lossy(&buf).into_owned())
            });
        }
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = match newline {
            Some(pos) => pos + 1,
            None => chunk.len(),
        };
        if buf.len() + take > cap {
            let keep = chunk[..take.min(64)].to_vec();
            reader.consume(take);
            buf.extend_from_slice(&keep);
            let head = &buf[..buf.len().min(64)];
            return Ok(BoundedLine::TooLong(
                String::from_utf8_lossy(head).into_owned(),
            ));
        }
        buf.extend_from_slice(&chunk[..take]);
        reader.consume(take);
        if newline.is_some() {
            return Ok(BoundedLine::Line(
                String::from_utf8_lossy(&buf).into_owned(),
            ));
        }
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// The HTTP verb opening `line`, if any — used to discriminate HTTP
/// requests from protocol JSON (which always starts with `{`).
fn http_verb(line: &str) -> Option<&'static str> {
    const VERBS: [&str; 9] = [
        "GET", "HEAD", "POST", "PUT", "DELETE", "OPTIONS", "PATCH", "TRACE", "CONNECT",
    ];
    VERBS.into_iter().find(|verb| {
        line.strip_prefix(verb)
            .is_some_and(|rest| rest.starts_with(' '))
    })
}

fn handle_conn(shared: &Arc<Shared>, stream: TcpStream) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    // Half-open guard: the first request (and any HTTP header block)
    // must arrive within the timeout; cleared once the connection
    // proves to be a protocol client.
    stream.set_read_timeout(Some(shared.http_timeout)).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut first = true;
    loop {
        let line = match read_line_bounded(&mut reader, MAX_PROTO_LINE) {
            Ok(BoundedLine::Line(line)) => line,
            Ok(BoundedLine::Eof) => return Ok(()), // client closed
            Ok(BoundedLine::TooLong(head)) => {
                trace::add("serve.errors.bad_request", 1);
                if http_verb(&head).is_some() {
                    return http_respond(
                        &mut writer,
                        "431 Request Header Fields Too Large",
                        &[],
                        "request line too long\n",
                        false,
                    );
                }
                let response = proto::error_line(
                    "",
                    ErrorCode::BadRequest,
                    &format!("request line exceeds {MAX_PROTO_LINE} bytes"),
                );
                writer.write_all(response.as_bytes())?;
                writer.write_all(b"\n")?;
                return writer.flush();
            }
            Err(e) if is_timeout(&e) => {
                // Half-open or stalled client: close instead of
                // holding the connection thread forever.
                trace::add("serve.conn.timeouts", 1);
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        if let Some(verb) = http_verb(&line) {
            return handle_http(shared, &mut reader, &mut writer, &line, verb);
        }
        if line.trim().is_empty() {
            continue;
        }
        if first {
            // A real protocol client; idle gaps between requests are
            // its business.
            writer.set_read_timeout(None).ok();
            first = false;
        }
        let response = handle_line(shared, &line);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
}

/// Serves one JSON request line to one response line (inline admin
/// methods; queued compute methods).
fn handle_line(shared: &Arc<Shared>, line: &str) -> String {
    let req = match proto::parse_request(line) {
        Ok(req) => req,
        Err(msg) => {
            trace::add("serve.errors.bad_request", 1);
            return proto::error_line("", ErrorCode::BadRequest, &msg);
        }
    };
    match req.method.as_str() {
        // Admin methods answer inline: they must work under overload
        // and during drain, so they never touch the queue.
        "ping" => proto::ok_line(&req.id, None, "{\"pong\":true}"),
        "healthz" => proto::ok_line(&req.id, None, "{\"status\":\"ok\"}"),
        "metrics" => proto::ok_line(&req.id, None, &metrics_json()),
        "shutdown" => {
            shared.shutdown.store(true, Ordering::SeqCst);
            signal::request_shutdown();
            proto::ok_line(&req.id, None, "{\"shutting_down\":true}")
        }
        method => {
            // The per-request span stays open on this thread until the
            // response is in hand, so its duration covers the whole
            // server-side pipeline; worker threads hang the phase
            // spans under it via the id carried in the job. When the
            // request carries wire trace context, the client's span id
            // is recorded as the `client_span` attribute (NOT as the
            // local parent — each per-process trace must stay valid on
            // its own) for `repro trace-stitch` to re-link.
            let started = Instant::now();
            let mut span = trace::span("serve.request");
            span.set_attr("method", method);
            let trace_id = match &req.trace {
                Some(ctx) => {
                    span.set_attr("client_span", ctx.parent);
                    ctx.id.clone()
                }
                None => format!("srv-{:x}", span.id()),
            };
            span.set_attr("trace_id", trace_id.as_str());
            let request_span = span.id();

            // Rejections short-circuit here: logged and measured, with
            // the request span already in the trace so the access-log
            // line still resolves to a span tree.
            let reject = |code: ErrorCode, msg: &str| {
                shared.log_access(&AccessEntry {
                    trace_id: &trace_id,
                    id: &req.id,
                    method,
                    outcome: code.as_str(),
                    cached: None,
                    span: request_span,
                    phases: &[],
                    total_us: started.elapsed().as_micros() as u64,
                });
                shared
                    .observatory
                    .record(method, started.elapsed().as_secs_f64() * 1e3);
                proto::error_line(&req.id, code, msg)
            };

            let query = match Query::from_request(method, &req.params) {
                Ok(q) => q,
                Err((code, msg)) => {
                    trace::add(&format!("serve.errors.{}", code.as_str()), 1);
                    return reject(code, &msg);
                }
            };
            let (reply, rx) = mpsc::channel();
            let job = Job {
                id: req.id.clone(),
                query,
                reply,
                admitted: Instant::now(),
                trace_id: trace_id.clone(),
                request_span,
            };
            let submitted = {
                let _admission = trace::span("admission");
                shared.admission.submit(job)
            };
            match submitted {
                Ok(()) => match rx.recv() {
                    Ok(response) => response,
                    Err(_) => reject(
                        ErrorCode::ShuttingDown,
                        "server shut down before the request completed",
                    ),
                },
                Err(Rejected::Full(_)) => {
                    trace::add("serve.rejected.overload", 1);
                    reject(
                        ErrorCode::Overloaded,
                        "admission queue is full; retry later",
                    )
                }
                Err(Rejected::Closed(_)) => {
                    trace::add("serve.rejected.shutdown", 1);
                    reject(
                        ErrorCode::ShuttingDown,
                        "server is shutting down; no new work admitted",
                    )
                }
            }
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.admission.pop() {
        match job.query.idvg_group() {
            Some(group) => {
                let mut batch = vec![job];
                batch.extend(shared.admission.steal_idvg_group(group));
                if batch.len() > 1 {
                    serve_idvg_batch(shared, batch);
                } else {
                    serve_one(shared, batch.remove(0));
                }
            }
            None => serve_one(shared, job),
        }
    }
}

/// Runs `query` under the supervisor with the request deadline,
/// mapping every failure to its typed protocol error.
fn run_supervised(shared: &Shared, key: u64, query: &Query) -> Result<String, (ErrorCode, String)> {
    let body = query.clone();
    match shared
        .supervisor
        .run(subvt_engine::global(), key, query.method(), move || {
            query::compute(&body)
        }) {
        Ok(Ok(payload)) => Ok(payload),
        Ok(Err(msg)) => Err((ErrorCode::ComputeFailed, msg)),
        Err(JobError::Panicked { message, attempts }) => Err((
            ErrorCode::ComputePanicked,
            format!("compute panicked ({attempts} attempts): {message}"),
        )),
        Err(JobError::DeadlineExceeded { deadline, .. }) => Err((
            ErrorCode::DeadlineExceeded,
            format!("compute exceeded its {deadline:?} deadline"),
        )),
        Err(JobError::Quarantined) => Err((
            ErrorCode::Quarantined,
            "request key is quarantined by an earlier failure".to_owned(),
        )),
    }
}

fn count_lookup(outcome: Lookup) -> &'static str {
    match outcome {
        Lookup::Hit => {
            trace::add("serve.dedup.hits", 1);
            "hit"
        }
        Lookup::Coalesced => {
            trace::add("serve.dedup.coalesced", 1);
            "coalesced"
        }
        Lookup::Computed => {
            trace::add("serve.computed", 1);
            "computed"
        }
    }
}

/// Per-phase worker-side durations for the access log, µs.
struct Phases {
    queue_us: u64,
    compute_us: u64,
    serialize_us: u64,
}

/// Records the latency histograms, the rolling-window observatory
/// sample, and the access-log line, then answers the connection
/// thread.
#[allow(clippy::too_many_arguments)]
fn finish(
    shared: &Shared,
    job: &Job,
    method: &str,
    started: Instant,
    outcome: &str,
    cached: Option<&'static str>,
    phases: Phases,
    line: String,
) {
    let total = job.admitted.elapsed();
    trace::observe_with(
        &format!("serve.latency.{method}"),
        started.elapsed().as_secs_f64() * 1e3,
        &MS_BOUNDS,
    );
    trace::observe_with(
        "serve.queue.wait_ms",
        (started - job.admitted).as_secs_f64() * 1e3,
        &MS_BOUNDS,
    );
    shared.observatory.record(method, total.as_secs_f64() * 1e3);
    shared.log_access(&AccessEntry {
        trace_id: &job.trace_id,
        id: &job.id,
        method,
        outcome,
        cached,
        span: job.request_span,
        phases: &[
            ("queue_us", phases.queue_us),
            ("compute_us", phases.compute_us),
            ("serialize_us", phases.serialize_us),
        ],
        total_us: total.as_micros() as u64,
    });
    let _ = job.reply.send(line);
}

fn serve_one(shared: &Arc<Shared>, job: Job) {
    let method = job.query.method();
    let started = Instant::now();
    trace::add(&format!("serve.req.{method}"), 1);
    shared.inflight_delta(1);
    // Re-root this thread's span stack at the request span the
    // connection thread opened, so the phase spans (and the executor
    // jobs the compute fans into) hang under it.
    let _ctx = trace::task_context((job.request_span != 0).then_some(job.request_span));
    let queue_us = (started - job.admitted).as_micros() as u64;

    let compute_us = std::cell::Cell::new(0u64);
    let run_timed = |key: u64| {
        let _compute = trace::span("compute");
        let compute_started = Instant::now();
        let result = run_supervised(shared, key, &job.query);
        compute_us.set(compute_started.elapsed().as_micros() as u64);
        result
    };
    let (computed, cached) = if job.query.cacheable() {
        let key = job.query.key();
        let _dedup = trace::span("dedup");
        let (result, outcome) =
            subvt_engine::global_cache()
                .try_get_or_compute_outcome(RESPONSE_NS, key, || run_timed(key).map(TextBlob));
        match result {
            Ok(TextBlob(payload)) => (Ok(payload), Some(count_lookup(outcome))),
            Err(e) => (Err(e), None),
        }
    } else {
        (run_timed(job.query.key()), None)
    };

    let serialize_started = Instant::now();
    let (line, outcome) = {
        let _serialize = trace::span("serialize");
        match computed {
            Ok(payload) => (proto::ok_line(&job.id, cached, &payload), "ok"),
            Err((code, msg)) => {
                trace::add(&format!("serve.errors.{}", code.as_str()), 1);
                (proto::error_line(&job.id, code, &msg), code.as_str())
            }
        }
    };
    let phases = Phases {
        queue_us,
        compute_us: compute_us.get(),
        serialize_us: serialize_started.elapsed().as_micros() as u64,
    };
    finish(shared, &job, method, started, outcome, cached, phases, line);
    shared.inflight_delta(-1);
}

/// Serves a stolen batch of bias-compatible `idvg` requests: one
/// supervised union sweep over the engine pool, then one cache insert
/// and reply per member.
fn serve_idvg_batch(shared: &Arc<Shared>, batch: Vec<Job>) {
    let started = Instant::now();
    let members = batch.len() as i64;
    trace::add("serve.batch.runs", 1);
    trace::add("serve.batch.merged", (batch.len() - 1) as u64);
    for job in &batch {
        trace::add(&format!("serve.req.{}", job.query.method()), 1);
    }
    shared.inflight_delta(members);

    let Query::IdVg {
        sel, backend, v_ds, ..
    } = batch[0].query
    else {
        unreachable!("idvg_group only matches IdVg queries");
    };

    // Union of every member's bias points, deduped bit-exactly,
    // ascending; one executor pass computes them all.
    let mut union: Vec<f64> = batch
        .iter()
        .flat_map(|job| match &job.query {
            Query::IdVg { v_gs, .. } => v_gs.as_slice(),
            _ => &[],
        })
        .copied()
        .collect();
    union.sort_by(f64::total_cmp);
    union.dedup_by(|a, b| a.to_bits() == b.to_bits());

    let batch_key = KeyBuilder::new("serve.batch.run")
        .u64(batch[0].query.idvg_group().unwrap_or(0))
        .f64s(&union)
        .finish();
    let points = union.clone();
    // The union sweep runs under the *leader's* request span: one
    // `batch.merge` phase span (annotated with member and point
    // counts) wrapping the shared `compute`. Each member gets its own
    // `serialize` span under its own request span below.
    let leader_span = batch[0].request_span;
    let compute_started = Instant::now();
    let swept = {
        let _ctx = trace::task_context((leader_span != 0).then_some(leader_span));
        let mut merge = trace::span("batch.merge");
        merge.set_attr("members", batch.len() as u64);
        merge.set_attr("points", union.len() as u64);
        let _compute = trace::span("compute");
        match shared
            .supervisor
            .run(subvt_engine::global(), batch_key, "idvg.batch", move || {
                query::idvg_currents(sel, backend, v_ds, &points)
            }) {
            Ok(Ok(currents)) => Ok(currents),
            Ok(Err(msg)) => Err((ErrorCode::ComputeFailed, msg)),
            Err(JobError::Panicked { message, attempts }) => Err((
                ErrorCode::ComputePanicked,
                format!("compute panicked ({attempts} attempts): {message}"),
            )),
            Err(JobError::DeadlineExceeded { deadline, .. }) => Err((
                ErrorCode::DeadlineExceeded,
                format!("compute exceeded its {deadline:?} deadline"),
            )),
            Err(JobError::Quarantined) => Err((
                ErrorCode::Quarantined,
                "request key is quarantined by an earlier failure".to_owned(),
            )),
        }
    };
    let compute_us = compute_started.elapsed().as_micros() as u64;
    let phases_of = |job: &Job, serialize_us: u64| Phases {
        queue_us: (started - job.admitted).as_micros() as u64,
        compute_us,
        serialize_us,
    };

    match swept {
        Ok(currents) => {
            let lookup: std::collections::HashMap<u64, f64> = union
                .iter()
                .zip(&currents)
                .map(|(v, i)| (v.to_bits(), *i))
                .collect();
            for job in batch {
                let _ctx = trace::task_context((job.request_span != 0).then_some(job.request_span));
                let serialize_started = Instant::now();
                let (line, cached) = {
                    let _serialize = trace::span("serialize");
                    let Query::IdVg { ref v_gs, .. } = job.query else {
                        unreachable!();
                    };
                    let i_d: Vec<f64> = v_gs.iter().map(|v| lookup[&v.to_bits()]).collect();
                    let payload = query::idvg_payload(v_gs, &i_d);
                    let key = job.query.key();
                    let (result, outcome) = subvt_engine::global_cache()
                        .try_get_or_compute_outcome::<TextBlob, std::convert::Infallible>(
                            RESPONSE_NS,
                            key,
                            || Ok(TextBlob(payload.clone())),
                        );
                    let cached = count_lookup(outcome);
                    let text = match result {
                        Ok(TextBlob(text)) => text,
                        Err(never) => match never {},
                    };
                    (proto::ok_line(&job.id, Some(cached), &text), cached)
                };
                let phases = phases_of(&job, serialize_started.elapsed().as_micros() as u64);
                finish(
                    shared,
                    &job,
                    "idvg",
                    started,
                    "ok",
                    Some(cached),
                    phases,
                    line,
                );
            }
        }
        Err((code, msg)) => {
            for job in batch {
                let _ctx = trace::task_context((job.request_span != 0).then_some(job.request_span));
                trace::add(&format!("serve.errors.{}", code.as_str()), 1);
                let line = proto::error_line(&job.id, code, &msg);
                let phases = phases_of(&job, 0);
                finish(
                    shared,
                    &job,
                    "idvg",
                    started,
                    code.as_str(),
                    None,
                    phases,
                    line,
                );
            }
        }
    }
    shared.inflight_delta(-members);
}

/// JSON metrics payload for the `metrics` protocol method: counters
/// and gauges only (histograms live in `/metrics`).
fn metrics_json() -> String {
    let snap = trace::global().drain();
    let mut out = String::from("{\"counters\":{");
    for (i, (name, value)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{value}", proto::json_str(name)));
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, value)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{}:{}",
            proto::json_str(name),
            proto::fmt_f64(*value)
        ));
    }
    out.push_str("}}");
    out
}

/// Escapes a Prometheus label value: `\` → `\\`, `"` → `\"`, newline →
/// `\n` (the three escapes the text exposition format defines).
fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Formats a sample value for the text exposition (`NaN`/`+Inf`/`-Inf`
/// spellings are part of the format).
fn fmt_sample(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{v}")
    }
}

/// Plain-text exposition for `GET /metrics`, Prometheus-conformant:
/// `# HELP`/`# TYPE` once per family, escaped label values, histogram
/// families as cumulative `_bucket{le=...}`/`_sum`/`_count`, and a
/// trailing newline. Counters and gauges keep the grep-stable
/// `subvt_counter{name="..."}`/`subvt_gauge{name="..."}` shape the CI
/// smoke jobs assert on; rolling-window quantiles and SLO status come
/// from the [`Observatory`].
fn metrics_text(shared: &Shared) -> String {
    let snap = trace::global().drain();
    let mut out = String::new();
    if !snap.counters.is_empty() {
        out.push_str("# HELP subvt_counter Monotonic event counters from the trace registry.\n");
        out.push_str("# TYPE subvt_counter counter\n");
        for (name, value) in &snap.counters {
            out.push_str(&format!(
                "subvt_counter{{name=\"{}\"}} {value}\n",
                escape_label(name)
            ));
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("# HELP subvt_gauge Last-write-wins gauges from the trace registry.\n");
        out.push_str("# TYPE subvt_gauge gauge\n");
        for (name, value) in &snap.gauges {
            out.push_str(&format!(
                "subvt_gauge{{name=\"{}\"}} {}\n",
                escape_label(name),
                fmt_sample(*value)
            ));
        }
    }
    if !snap.hists.is_empty() {
        out.push_str("# HELP subvt_hist Lifetime value distributions (fixed buckets).\n");
        out.push_str("# TYPE subvt_hist histogram\n");
        for (name, hist) in &snap.hists {
            let name = escape_label(name);
            let mut cumulative = 0u64;
            for (bound, count) in hist.bounds.iter().zip(&hist.counts) {
                cumulative += count;
                out.push_str(&format!(
                    "subvt_hist_bucket{{name=\"{name}\",le=\"{}\"}} {cumulative}\n",
                    fmt_sample(*bound)
                ));
            }
            out.push_str(&format!(
                "subvt_hist_bucket{{name=\"{name}\",le=\"+Inf\"}} {}\n",
                hist.count
            ));
            out.push_str(&format!(
                "subvt_hist_sum{{name=\"{name}\"}} {}\n",
                fmt_sample(hist.sum)
            ));
            out.push_str(&format!(
                "subvt_hist_count{{name=\"{name}\"}} {}\n",
                hist.count
            ));
        }
    }

    let obs = shared.observatory.snapshot();
    if !obs.methods.is_empty() {
        out.push_str(&format!(
            "# HELP subvt_rolling_ms Latency quantiles over the last {} s, milliseconds.\n",
            obs.window_secs
        ));
        out.push_str("# TYPE subvt_rolling_ms gauge\n");
        for m in &obs.methods {
            for (quantile, v) in [("p50", m.p50), ("p95", m.p95), ("p99", m.p99)] {
                out.push_str(&format!(
                    "subvt_rolling_ms{{method=\"{}\",quantile=\"{quantile}\",window_s=\"{}\"}} {}\n",
                    escape_label(&m.method),
                    obs.window_secs,
                    fmt_sample(v)
                ));
            }
        }
        out.push_str("# HELP subvt_rolling_count Requests inside the rolling window.\n");
        out.push_str("# TYPE subvt_rolling_count gauge\n");
        for m in &obs.methods {
            out.push_str(&format!(
                "subvt_rolling_count{{method=\"{}\",window_s=\"{}\"}} {}\n",
                escape_label(&m.method),
                obs.window_secs,
                m.count
            ));
        }
    }
    if !obs.slos.is_empty() {
        out.push_str("# HELP subvt_slo_target_ms Configured SLO latency threshold.\n");
        out.push_str("# TYPE subvt_slo_target_ms gauge\n");
        for s in &obs.slos {
            out.push_str(&format!(
                "subvt_slo_target_ms{{method=\"{}\",quantile=\"{}\"}} {}\n",
                escape_label(&s.rule.method),
                s.rule.quantile.as_str(),
                fmt_sample(s.rule.threshold_ms)
            ));
        }
        out.push_str("# HELP subvt_slo_current_ms The constrained quantile's rolling value.\n");
        out.push_str("# TYPE subvt_slo_current_ms gauge\n");
        for s in &obs.slos {
            out.push_str(&format!(
                "subvt_slo_current_ms{{method=\"{}\",quantile=\"{}\"}} {}\n",
                escape_label(&s.rule.method),
                s.rule.quantile.as_str(),
                fmt_sample(s.current_ms)
            ));
        }
        out.push_str("# HELP subvt_slo_breach_total Requests ever over their SLO threshold.\n");
        out.push_str("# TYPE subvt_slo_breach_total counter\n");
        for s in &obs.slos {
            out.push_str(&format!(
                "subvt_slo_breach_total{{method=\"{}\",quantile=\"{}\"}} {}\n",
                escape_label(&s.rule.method),
                s.rule.quantile.as_str(),
                s.breach_total
            ));
        }
        out.push_str(
            "# HELP subvt_slo_burn_rate Error-budget burn over the window (1.0 = at budget).\n",
        );
        out.push_str("# TYPE subvt_slo_burn_rate gauge\n");
        for s in &obs.slos {
            out.push_str(&format!(
                "subvt_slo_burn_rate{{method=\"{}\",quantile=\"{}\"}} {}\n",
                escape_label(&s.rule.method),
                s.rule.quantile.as_str(),
                fmt_sample(s.burn_rate)
            ));
        }
    }
    if out.is_empty() {
        out.push('\n');
    }
    out
}

/// Writes one HTTP/1.1 response and closes the exchange.
fn http_respond(
    writer: &mut TcpStream,
    status: &str,
    extra_headers: &[&str],
    body: &str,
    head_only: bool,
) -> std::io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        body.len()
    )?;
    for header in extra_headers {
        write!(writer, "{header}\r\n")?;
    }
    write!(writer, "\r\n")?;
    if !head_only {
        writer.write_all(body.as_bytes())?;
    }
    writer.flush()
}

/// Minimal HTTP/1.1 responder: `GET|HEAD /metrics` and `/healthz`,
/// with typed errors for everything else — 405 on other verbs, 404 on
/// unknown paths, 408 when the header block stalls past the timeout,
/// 431 on oversized request/header lines, never a hang.
fn handle_http(
    shared: &Shared,
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    request_line: &str,
    verb: &str,
) -> std::io::Result<()> {
    if request_line.len() > MAX_HTTP_LINE {
        return http_respond(
            writer,
            "431 Request Header Fields Too Large",
            &[],
            "request line too long\n",
            false,
        );
    }
    // Drain the header block (nothing in it is needed), bounded in
    // line length, header count, and wall time.
    let mut complete = false;
    for _ in 0..MAX_HTTP_HEADERS {
        match read_line_bounded(reader, MAX_HTTP_LINE) {
            Ok(BoundedLine::Line(header)) => {
                if header.trim().is_empty() {
                    complete = true;
                    break;
                }
            }
            Ok(BoundedLine::Eof) => {
                return http_respond(
                    writer,
                    "400 Bad Request",
                    &[],
                    "incomplete request\n",
                    false,
                )
            }
            Ok(BoundedLine::TooLong(_)) => {
                return http_respond(
                    writer,
                    "431 Request Header Fields Too Large",
                    &[],
                    "header line too long\n",
                    false,
                )
            }
            Err(e) if is_timeout(&e) => {
                trace::add("serve.conn.timeouts", 1);
                return http_respond(
                    writer,
                    "408 Request Timeout",
                    &[],
                    "timed out reading headers\n",
                    false,
                );
            }
            Err(e) => return Err(e),
        }
    }
    if !complete {
        return http_respond(
            writer,
            "431 Request Header Fields Too Large",
            &[],
            "too many headers\n",
            false,
        );
    }
    if verb != "GET" && verb != "HEAD" {
        trace::add("serve.http.rejected", 1);
        return http_respond(
            writer,
            "405 Method Not Allowed",
            &["Allow: GET, HEAD"],
            "method not allowed\n",
            false,
        );
    }
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    let (status, body) = match path {
        "/healthz" => ("200 OK", "ok\n".to_owned()),
        "/metrics" => ("200 OK", metrics_text(shared)),
        _ => ("404 Not Found", "not found\n".to_owned()),
    };
    http_respond(writer, status, &[], &body, verb == "HEAD")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_shared(slos: Vec<SloRule>) -> Shared {
        Shared {
            admission: Admission::new(4),
            supervisor: Supervisor::new(RetryPolicy {
                max_attempts: 1,
                deadline: None,
            }),
            shutdown: AtomicBool::new(false),
            inflight: AtomicI64::new(0),
            deadline: Duration::from_secs(1),
            observatory: Observatory::new(30, slos),
            access_log: None,
            http_timeout: Duration::from_secs(5),
        }
    }

    #[test]
    fn label_values_escape_per_exposition_format() {
        assert_eq!(escape_label(r#"a\b"c"#), r#"a\\b\"c"#);
        assert_eq!(escape_label("x\ny"), "x\\ny");
        assert_eq!(fmt_sample(f64::NAN), "NaN");
        assert_eq!(fmt_sample(f64::INFINITY), "+Inf");
        assert_eq!(fmt_sample(1.5), "1.5");
    }

    /// The conformance contract for the satellite task: HELP/TYPE once
    /// per family, every sample line shaped `name{labels} value`,
    /// cumulative buckets ending at `+Inf` == `_count`, and a trailing
    /// newline.
    #[test]
    fn metrics_exposition_is_conformant() {
        let shared = test_shared(vec![SloRule::parse("vtc=p99:10").unwrap()]);
        trace::add("serve.test.conformance", 2);
        trace::gauge("serve.test.depth", 3.0);
        trace::observe_with("serve.test.latency", 4.2, &MS_BOUNDS);
        shared.observatory.record("vtc", 1.0);
        shared.observatory.record("vtc", 50.0);
        let text = metrics_text(&shared);

        assert!(text.ends_with('\n'), "missing trailing newline");
        let mut seen_type: Vec<&str> = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let family = rest.split(' ').next().unwrap();
                assert!(!seen_type.contains(&family), "duplicate TYPE for {family}");
                seen_type.push(family);
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            // name{label="v",...} value
            let (name_labels, value) = line.rsplit_once(' ').expect(line);
            assert!(
                name_labels.ends_with('}') && name_labels.contains('{'),
                "bad sample shape: {line}"
            );
            assert!(
                value.parse::<f64>().is_ok() || ["NaN", "+Inf", "-Inf"].contains(&value),
                "bad sample value: {line}"
            );
        }
        for family in [
            "subvt_counter",
            "subvt_gauge",
            "subvt_hist",
            "subvt_rolling_ms",
            "subvt_slo_burn_rate",
        ] {
            assert!(seen_type.contains(&family), "missing TYPE for {family}");
        }

        // Histogram family: cumulative, +Inf bucket equals _count.
        let hist_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("subvt_hist_bucket{name=\"serve.test.latency\""))
            .collect();
        assert_eq!(hist_lines.len(), MS_BOUNDS.len() + 1);
        let mut prev = 0u64;
        for line in &hist_lines {
            let v: u64 = line.rsplit_once(' ').unwrap().1.parse().unwrap();
            assert!(v >= prev, "buckets must be cumulative: {line}");
            prev = v;
        }
        assert!(hist_lines.last().unwrap().contains("le=\"+Inf\""));
        let count_line = text
            .lines()
            .find(|l| l.starts_with("subvt_hist_count{name=\"serve.test.latency\""))
            .unwrap();
        assert_eq!(count_line.rsplit_once(' ').unwrap().1, prev.to_string());

        // The grep contracts the CI smoke jobs rely on.
        assert!(text.contains("subvt_counter{name=\"serve.test.conformance\"} 2"));
        assert!(text.contains("subvt_gauge{name=\"serve.test.depth\"} 3"));
        // Observatory families.
        assert!(text.contains("subvt_rolling_ms{method=\"vtc\",quantile=\"p99\",window_s=\"30\"}"));
        assert!(text.contains("subvt_slo_target_ms{method=\"vtc\",quantile=\"p99\"} 10"));
        assert!(text.contains("subvt_slo_breach_total{method=\"vtc\",quantile=\"p99\"} 1"));
    }

    #[test]
    fn bounded_reads_cap_runaway_lines() {
        let data = [b'x'; 200];
        let mut reader = std::io::BufReader::new(&data[..]);
        match read_line_bounded(&mut reader, 100) {
            Ok(BoundedLine::TooLong(head)) => assert!(head.starts_with("xx")),
            other => panic!(
                "expected TooLong, got {:?}",
                std::mem::discriminant(&other.unwrap())
            ),
        }
        let mut reader = std::io::BufReader::new(&b"abc\ndef"[..]);
        match read_line_bounded(&mut reader, 100) {
            Ok(BoundedLine::Line(l)) => assert_eq!(l, "abc\n"),
            _ => panic!("expected Line"),
        }
        match read_line_bounded(&mut reader, 100) {
            Ok(BoundedLine::Line(l)) => assert_eq!(l, "def"),
            _ => panic!("expected unterminated tail as Line"),
        }
        match read_line_bounded(&mut reader, 100) {
            Ok(BoundedLine::Eof) => {}
            _ => panic!("expected Eof"),
        }
        assert_eq!(http_verb("GET /metrics HTTP/1.1"), Some("GET"));
        assert_eq!(http_verb("POST / HTTP/1.1"), Some("POST"));
        assert_eq!(http_verb("{\"id\":\"x\"}"), None);
        assert_eq!(http_verb("GETX /"), None);
    }
}
