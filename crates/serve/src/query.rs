//! Typed queries: parsing, canonical cache keys, and compute bodies.
//!
//! A [`Query`] is the parsed, validated, *canonical* form of a request
//! — two wire lines that differ only in whitespace, member order, or
//! `id` produce the same `Query` and therefore the same cache key, so
//! request dedup is semantic rather than textual. The key lives in the
//! engine cache's `serve.resp` namespace; the cached value is the
//! rendered JSON payload packed into the cache's numeric-blob model by
//! [`TextBlob`].

use subvt_circuits::backend::CircuitBackendKind;
use subvt_circuits::chain::InverterChain;
use subvt_circuits::delay::analytic_fo1_delay;
use subvt_circuits::gates::GateKind;
use subvt_circuits::inverter::{analytic_vtc, CmosPair};
use subvt_circuits::snm::noise_margins;
use subvt_circuits::topology::{
    cached_gate_leakage, cached_gate_snm, cached_inverter_vtc, cached_ring_oscillation,
};
use subvt_core::roadmap::TechNode;
use subvt_core::strategy::NodeDesign;
use subvt_engine::cache::Blob;
use subvt_engine::KeyBuilder;
use subvt_exp::tracefmt::Json;
use subvt_exp::StudyContext;
use subvt_model::{Backend, DeviceModel};
use subvt_physics::device::{DeviceCharacteristics, DeviceKind, DeviceParams};
use subvt_physics::iv::MosModel;
use subvt_physics::math::linspace;
use subvt_units::{Temperature, Volts};

use crate::proto::{fmt_f64, fmt_f64s, json_str, ErrorCode};

/// Largest accepted sweep/curve size; guards the daemon against a
/// single request monopolizing the pool.
pub const MAX_POINTS: usize = 100_000;

/// Room temperature in kelvin — the default for every `temp_k` request
/// field, matching the paper's fixed-temperature assumption.
pub const ROOM_K: f64 = 300.0;

/// Which design flow a node query resolves through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Table 3 sub-V_th designs (the paper's subject).
    SubVth,
    /// Table 2 super-V_th (conventional) designs.
    SuperVth,
}

impl Strategy {
    /// Stable wire/cache-key name.
    pub fn as_str(self) -> &'static str {
        match self {
            Strategy::SubVth => "subvth",
            Strategy::SuperVth => "supervth",
        }
    }
}

/// Which device a query characterizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeSel {
    /// The paper's reference 90 nm NFET — cheap under every backend
    /// because it skips the design flows entirely.
    Ref90,
    /// A designed node out of one of the two scaling flows.
    Designed {
        /// Technology node, 90 → 32 nm.
        node: TechNode,
        /// Design flow the node comes from.
        strategy: Strategy,
    },
}

impl NodeSel {
    fn absorb(self, kb: KeyBuilder) -> KeyBuilder {
        match self {
            NodeSel::Ref90 => kb.str("ref90"),
            NodeSel::Designed { node, strategy } => kb.str(node.name()).str(strategy.as_str()),
        }
    }
}

/// The measurement a [`Query::Topology`] request asks the declarative
/// topology layer (`subvt_circuits::topology`) for. Every op runs off
/// compiled cell/testbench netlists and is served from the engine's
/// `spice.vtc` / `spice.tran` caches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopologyOp {
    /// Worst-case static noise margin of a two-input gate, plus its
    /// leakage over all four input vectors (the stack effect).
    GateSnm {
        /// Which gate from the library.
        gate: GateKind,
        /// Sample count along each VTC's input axis.
        points: usize,
    },
    /// Ring-oscillator frequency from the transient limit cycle.
    RingFreq {
        /// Stage count (odd, >= 3).
        stages: usize,
        /// Transient step count.
        steps: usize,
    },
    /// Subthreshold figures of merit swept over temperature.
    TempSweep {
        /// First temperature, kelvin.
        t_start_k: f64,
        /// Last temperature, kelvin.
        t_stop_k: f64,
        /// Temperature sample count.
        points: usize,
    },
}

impl TopologyOp {
    /// Stable wire/cache-key name of the op.
    pub fn as_str(self) -> &'static str {
        match self {
            TopologyOp::GateSnm { .. } => "gate_snm",
            TopologyOp::RingFreq { .. } => "ring_freq",
            TopologyOp::TempSweep { .. } => "temp_sweep",
        }
    }

    fn absorb(self, kb: KeyBuilder) -> KeyBuilder {
        let kb = kb.str(self.as_str());
        match self {
            TopologyOp::GateSnm { gate, points } => kb.str(gate_name(gate)).u64(points as u64),
            TopologyOp::RingFreq { stages, steps } => kb.u64(stages as u64).u64(steps as u64),
            TopologyOp::TempSweep {
                t_start_k,
                t_stop_k,
                points,
            } => kb.f64(t_start_k).f64(t_stop_k).u64(points as u64),
        }
    }
}

/// Stable wire name for a gate kind.
fn gate_name(gate: GateKind) -> &'static str {
    match gate {
        GateKind::Nand2 => "nand2",
        GateKind::Nor2 => "nor2",
    }
}

/// A validated, canonical request body.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// I_d–V_gs sweep of a node's NFET at fixed `V_ds`.
    IdVg {
        /// Device under test.
        sel: NodeSel,
        /// Device-model backend.
        backend: Backend,
        /// Drain bias.
        v_ds: f64,
        /// Gate biases, ascending.
        v_gs: Vec<f64>,
    },
    /// Extracted subthreshold parameters of a node's NFET.
    Params {
        /// Device under test.
        sel: NodeSel,
        /// Device-model backend.
        backend: Backend,
    },
    /// The designed device descriptions (geometry + doping) at a node.
    Model {
        /// Device under test.
        sel: NodeSel,
        /// Device-model backend (designed flows depend on it).
        backend: Backend,
    },
    /// Voltage-transfer characteristic of the node's inverter.
    Vtc {
        /// Device under test.
        sel: NodeSel,
        /// Device-model backend.
        backend: Backend,
        /// Circuit-metric backend.
        circuit: CircuitBackendKind,
        /// Supply voltage.
        v_dd: f64,
        /// Sample count along the input axis.
        points: usize,
        /// Operating temperature, kelvin.
        temp_k: f64,
    },
    /// Static noise margins from the inverter VTC.
    Snm {
        /// Device under test.
        sel: NodeSel,
        /// Device-model backend.
        backend: Backend,
        /// Circuit-metric backend.
        circuit: CircuitBackendKind,
        /// Supply voltage.
        v_dd: f64,
        /// Operating temperature, kelvin.
        temp_k: f64,
    },
    /// FO1 propagation delay of the node's inverter.
    Fo1 {
        /// Device under test.
        sel: NodeSel,
        /// Device-model backend.
        backend: Backend,
        /// Circuit-metric backend.
        circuit: CircuitBackendKind,
        /// Supply voltage.
        v_dd: f64,
        /// Operating temperature, kelvin.
        temp_k: f64,
    },
    /// Per-cycle energy of the paper's 30-stage chain at one supply.
    ChainEnergy {
        /// Device under test.
        sel: NodeSel,
        /// Device-model backend.
        backend: Backend,
        /// Circuit-metric backend.
        circuit: CircuitBackendKind,
        /// Supply voltage.
        v_dd: f64,
        /// Operating temperature, kelvin.
        temp_k: f64,
    },
    /// Minimum-energy operating point of the paper's chain.
    Mep {
        /// Device under test.
        sel: NodeSel,
        /// Device-model backend.
        backend: Backend,
        /// Circuit-metric backend.
        circuit: CircuitBackendKind,
        /// Operating temperature, kelvin.
        temp_k: f64,
    },
    /// A declarative-topology measurement: the gate-library,
    /// ring-oscillator, and temperature workloads, compiled by
    /// `subvt_circuits::topology` and recalled from the engine's
    /// netlist-keyed caches.
    Topology {
        /// Device under test.
        sel: NodeSel,
        /// Device-model backend.
        backend: Backend,
        /// Which topology measurement.
        op: TopologyOp,
        /// Supply voltage.
        v_dd: f64,
        /// Operating temperature, kelvin (single-temperature ops only).
        temp_k: f64,
    },
    /// A full `repro` experiment rendered exactly as the CLI prints it
    /// (text or CSV). Runs through the process-global backend seams the
    /// server was started with, so the payload is byte-identical to
    /// `repro` stdout under the same flags.
    Experiment {
        /// Experiment id, e.g. `"fig2"`.
        id: String,
        /// CSV rendering instead of the aligned text table.
        csv: bool,
    },
    /// Diagnostic: hold a worker for `ms` milliseconds. Never cached;
    /// used by tests and the load generator to occupy the pool.
    Sleep {
        /// How long to hold the worker.
        ms: u64,
        /// Free-form discriminator so concurrent sleeps get distinct
        /// supervisor keys.
        token: String,
    },
    /// Diagnostic: a compute that always panics, for exercising the
    /// supervisor's quarantine from the outside. Never cached.
    Panic {
        /// Discriminator; the quarantine is keyed on it, so a repeated
        /// token is refused without running.
        token: String,
    },
}

type ParseError = (ErrorCode, String);

fn bad(msg: impl Into<String>) -> ParseError {
    (ErrorCode::BadRequest, msg.into())
}

fn parse_sel(params: &Json) -> Result<NodeSel, ParseError> {
    let node = match params.get("node").and_then(Json::as_str) {
        None => return Err(bad("missing string `node` (ref90|90nm|65nm|45nm|32nm)")),
        Some("ref90") => return Ok(NodeSel::Ref90),
        Some(name) => TechNode::ALL
            .iter()
            .copied()
            .find(|n| n.name() == name)
            .ok_or_else(|| bad(format!("unknown node `{name}`")))?,
    };
    let strategy = match params.get("strategy").and_then(Json::as_str) {
        None | Some("subvth") => Strategy::SubVth,
        Some("supervth") => Strategy::SuperVth,
        Some(other) => return Err(bad(format!("unknown strategy `{other}`"))),
    };
    Ok(NodeSel::Designed { node, strategy })
}

fn parse_backend(params: &Json) -> Result<Backend, ParseError> {
    match params.get("backend").and_then(Json::as_str) {
        None => Ok(Backend::Analytic),
        Some(s) => s
            .parse::<Backend>()
            .map_err(|_| bad(format!("unknown backend `{s}` (analytic|tcad)"))),
    }
}

fn parse_circuit(params: &Json) -> Result<CircuitBackendKind, ParseError> {
    match params.get("circuit_backend").and_then(Json::as_str) {
        None => Ok(CircuitBackendKind::Analytic),
        Some(s) => s
            .parse::<CircuitBackendKind>()
            .map_err(|_| bad(format!("unknown circuit_backend `{s}` (analytic|spice)"))),
    }
}

fn parse_v_dd(params: &Json) -> Result<f64, ParseError> {
    let v = params
        .get("v_dd")
        .and_then(Json::as_f64)
        .ok_or_else(|| bad("missing number `v_dd`"))?;
    if !(v.is_finite() && v > 0.0 && v <= 10.0) {
        return Err(bad("`v_dd` must be in (0, 10] volts"));
    }
    Ok(v)
}

/// Parses an optional kelvin-valued field with a default; accepts
/// (0, 1000] so the carrier physics stays in a sane regime.
fn parse_kelvin(params: &Json, field: &str, default: f64) -> Result<f64, ParseError> {
    let t = match params.get(field).and_then(Json::as_f64) {
        None => return Ok(default),
        Some(t) => t,
    };
    if !(t.is_finite() && t > 0.0 && t <= 1000.0) {
        return Err(bad(format!("`{field}` must be in (0, 1000] kelvin")));
    }
    Ok(t)
}

fn parse_temp_k(params: &Json) -> Result<f64, ParseError> {
    parse_kelvin(params, "temp_k", ROOM_K)
}

fn parse_v_gs(params: &Json) -> Result<Vec<f64>, ParseError> {
    let spec = match params.get("v_gs") {
        None => return Ok(linspace(0.0, 1.2, 25)),
        Some(spec) => spec,
    };
    let points = if let Some(arr) = spec.as_arr() {
        arr.iter()
            .map(|v| v.as_f64().filter(|x| x.is_finite()))
            .collect::<Option<Vec<f64>>>()
            .ok_or_else(|| bad("`v_gs` array must hold finite numbers"))?
    } else {
        let start = spec.get("start").and_then(Json::as_f64);
        let stop = spec.get("stop").and_then(Json::as_f64);
        let n = spec.get("points").and_then(Json::as_u64);
        match (start, stop, n) {
            (Some(a), Some(b), Some(n)) if a.is_finite() && b.is_finite() && n >= 2 => {
                linspace(a, b, n as usize)
            }
            _ => {
                return Err(bad(
                    "`v_gs` must be an array of numbers or {start, stop, points>=2}",
                ))
            }
        }
    };
    if points.is_empty() || points.len() > MAX_POINTS {
        return Err(bad(format!("`v_gs` needs 1..={MAX_POINTS} points")));
    }
    Ok(points)
}

impl Query {
    /// Parses and validates a request body for `method`.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::UnknownMethod`] for a method outside the protocol,
    /// [`ErrorCode::BadRequest`] with context for invalid params.
    pub fn from_request(method: &str, params: &Json) -> Result<Self, ParseError> {
        match method {
            "idvg" => Ok(Query::IdVg {
                sel: parse_sel(params)?,
                backend: parse_backend(params)?,
                v_ds: {
                    let v = params.get("v_ds").and_then(Json::as_f64).unwrap_or(0.05);
                    if !(v.is_finite() && v.abs() <= 10.0) {
                        return Err(bad("`v_ds` must be finite and |v_ds| <= 10"));
                    }
                    v
                },
                v_gs: parse_v_gs(params)?,
            }),
            "params" => Ok(Query::Params {
                sel: parse_sel(params)?,
                backend: parse_backend(params)?,
            }),
            "model" => Ok(Query::Model {
                sel: parse_sel(params)?,
                backend: parse_backend(params)?,
            }),
            "vtc" => Ok(Query::Vtc {
                sel: parse_sel(params)?,
                backend: parse_backend(params)?,
                circuit: parse_circuit(params)?,
                v_dd: parse_v_dd(params)?,
                points: {
                    let n = params.get("points").and_then(Json::as_u64).unwrap_or(161);
                    let n = n as usize;
                    if !(2..=MAX_POINTS).contains(&n) {
                        return Err(bad(format!("`points` must be in 2..={MAX_POINTS}")));
                    }
                    n
                },
                temp_k: parse_temp_k(params)?,
            }),
            "snm" => Ok(Query::Snm {
                sel: parse_sel(params)?,
                backend: parse_backend(params)?,
                circuit: parse_circuit(params)?,
                v_dd: parse_v_dd(params)?,
                temp_k: parse_temp_k(params)?,
            }),
            "fo1" => Ok(Query::Fo1 {
                sel: parse_sel(params)?,
                backend: parse_backend(params)?,
                circuit: parse_circuit(params)?,
                v_dd: parse_v_dd(params)?,
                temp_k: parse_temp_k(params)?,
            }),
            "chain_energy" => Ok(Query::ChainEnergy {
                sel: parse_sel(params)?,
                backend: parse_backend(params)?,
                circuit: parse_circuit(params)?,
                v_dd: parse_v_dd(params)?,
                temp_k: parse_temp_k(params)?,
            }),
            "mep" => Ok(Query::Mep {
                sel: parse_sel(params)?,
                backend: parse_backend(params)?,
                circuit: parse_circuit(params)?,
                temp_k: parse_temp_k(params)?,
            }),
            "topology" => {
                let op = match params.get("op").and_then(Json::as_str) {
                    Some(s) => s,
                    None => return Err(bad("missing string `op` (gate_snm|ring_freq|temp_sweep)")),
                };
                let op = match op {
                    "gate_snm" => TopologyOp::GateSnm {
                        gate: match params.get("gate").and_then(Json::as_str) {
                            None | Some("nand2") => GateKind::Nand2,
                            Some("nor2") => GateKind::Nor2,
                            Some(other) => {
                                return Err(bad(format!("unknown gate `{other}` (nand2|nor2)")))
                            }
                        },
                        points: {
                            let n =
                                params.get("points").and_then(Json::as_u64).unwrap_or(121) as usize;
                            if !(2..=MAX_POINTS).contains(&n) {
                                return Err(bad(format!("`points` must be in 2..={MAX_POINTS}")));
                            }
                            n
                        },
                    },
                    "ring_freq" => TopologyOp::RingFreq {
                        stages: {
                            let n =
                                params.get("stages").and_then(Json::as_u64).unwrap_or(5) as usize;
                            if !(3..=63).contains(&n) || n.is_multiple_of(2) {
                                return Err(bad("`stages` must be odd and in 3..=63"));
                            }
                            n
                        },
                        steps: {
                            let n =
                                params.get("steps").and_then(Json::as_u64).unwrap_or(1500) as usize;
                            if !(100..=20_000).contains(&n) {
                                return Err(bad("`steps` must be in 100..=20000"));
                            }
                            n
                        },
                    },
                    "temp_sweep" => {
                        if params.get("temp_k").is_some() {
                            return Err(bad(
                                "`temp_sweep` takes `t_start_k`/`t_stop_k`, not `temp_k`",
                            ));
                        }
                        let t_start_k = parse_kelvin(params, "t_start_k", 250.0)?;
                        let t_stop_k = parse_kelvin(params, "t_stop_k", 400.0)?;
                        if t_start_k >= t_stop_k {
                            return Err(bad("`t_start_k` must be below `t_stop_k`"));
                        }
                        TopologyOp::TempSweep {
                            t_start_k,
                            t_stop_k,
                            points: {
                                let n = params.get("points").and_then(Json::as_u64).unwrap_or(7)
                                    as usize;
                                if !(2..=64).contains(&n) {
                                    return Err(bad("`points` must be in 2..=64"));
                                }
                                n
                            },
                        }
                    }
                    other => {
                        return Err(bad(format!(
                            "unknown op `{other}` (gate_snm|ring_freq|temp_sweep)"
                        )))
                    }
                };
                Ok(Query::Topology {
                    sel: parse_sel(params)?,
                    backend: parse_backend(params)?,
                    op,
                    v_dd: parse_v_dd(params)?,
                    temp_k: parse_temp_k(params)?,
                })
            }
            "experiment" => Ok(Query::Experiment {
                id: params
                    .get("id")
                    .and_then(Json::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| bad("missing string `id` (try `repro --list`)"))?,
                csv: params
                    .get("format")
                    .and_then(Json::as_str)
                    .map(|f| f == "csv")
                    .unwrap_or(false),
            }),
            "sleep" => Ok(Query::Sleep {
                ms: {
                    let ms = params.get("ms").and_then(Json::as_u64).unwrap_or(100);
                    if ms > 10_000 {
                        return Err(bad("`ms` must be <= 10000"));
                    }
                    ms
                },
                token: params
                    .get("token")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_owned(),
            }),
            "panic" => Ok(Query::Panic {
                token: params
                    .get("token")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_owned(),
            }),
            other => Err((
                ErrorCode::UnknownMethod,
                format!("unknown method `{other}`"),
            )),
        }
    }

    /// The method name this query answers (used in metric names).
    pub fn method(&self) -> &'static str {
        match self {
            Query::IdVg { .. } => "idvg",
            Query::Params { .. } => "params",
            Query::Model { .. } => "model",
            Query::Vtc { .. } => "vtc",
            Query::Snm { .. } => "snm",
            Query::Fo1 { .. } => "fo1",
            Query::ChainEnergy { .. } => "chain_energy",
            Query::Mep { .. } => "mep",
            Query::Topology { .. } => "topology",
            Query::Experiment { .. } => "experiment",
            Query::Sleep { .. } => "sleep",
            Query::Panic { .. } => "panic",
        }
    }

    /// Whether responses may be cached/deduped. Diagnostics are not.
    pub fn cacheable(&self) -> bool {
        !matches!(self, Query::Sleep { .. } | Query::Panic { .. })
    }

    /// Canonical dedup/supervisor key over every semantic field (never
    /// the request id). For [`Query::Experiment`] the process-global
    /// backend selections join the key, since they shape the payload.
    pub fn key(&self) -> u64 {
        let kb = KeyBuilder::new("serve.v1").str(self.method());
        match self {
            Query::IdVg {
                sel,
                backend,
                v_ds,
                v_gs,
            } => sel
                .absorb(kb)
                .str(backend.as_str())
                .f64(*v_ds)
                .f64s(v_gs)
                .finish(),
            Query::Params { sel, backend } | Query::Model { sel, backend } => {
                sel.absorb(kb).str(backend.as_str()).finish()
            }
            Query::Vtc {
                sel,
                backend,
                circuit,
                v_dd,
                points,
                temp_k,
            } => sel
                .absorb(kb)
                .str(backend.as_str())
                .str(circuit.as_str())
                .f64(*v_dd)
                .u64(*points as u64)
                .f64(*temp_k)
                .finish(),
            Query::Snm {
                sel,
                backend,
                circuit,
                v_dd,
                temp_k,
            }
            | Query::Fo1 {
                sel,
                backend,
                circuit,
                v_dd,
                temp_k,
            }
            | Query::ChainEnergy {
                sel,
                backend,
                circuit,
                v_dd,
                temp_k,
            } => sel
                .absorb(kb)
                .str(backend.as_str())
                .str(circuit.as_str())
                .f64(*v_dd)
                .f64(*temp_k)
                .finish(),
            Query::Mep {
                sel,
                backend,
                circuit,
                temp_k,
            } => sel
                .absorb(kb)
                .str(backend.as_str())
                .str(circuit.as_str())
                .f64(*temp_k)
                .finish(),
            Query::Topology {
                sel,
                backend,
                op,
                v_dd,
                temp_k,
            } => op
                .absorb(sel.absorb(kb).str(backend.as_str()))
                .f64(*v_dd)
                .f64(*temp_k)
                .finish(),
            Query::Experiment { id, csv } => kb
                .str(id)
                .bool(*csv)
                .str(subvt_exp::backend::selected().as_str())
                .str(subvt_exp::backend::circuit_selected().as_str())
                .finish(),
            Query::Sleep { ms, token } => kb.u64(*ms).str(token).finish(),
            Query::Panic { token } => kb.str(token).finish(),
        }
    }

    /// Batch-compatibility key: two `idvg` queries with the same group
    /// key differ only in bias points and can share one executor pass.
    /// `None` for every other method.
    pub fn idvg_group(&self) -> Option<u64> {
        match self {
            Query::IdVg {
                sel, backend, v_ds, ..
            } => Some(
                sel.absorb(KeyBuilder::new("serve.batch").str("idvg"))
                    .str(backend.as_str())
                    .f64(*v_ds)
                    .finish(),
            ),
            _ => None,
        }
    }
}

/// A UTF-8 string packed into the cache's `Vec<f64>` blob model:
/// element 0 carries the byte length, then 8 bytes per element,
/// little-endian, through `f64::{from_bits, to_bits}`. The JSONL
/// persistence layer stores bit patterns (not decimal renderings), so
/// arbitrary payload bytes — including ones that alias NaN — round-trip
/// exactly through save and load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextBlob(pub String);

impl Blob for TextBlob {
    fn encode(&self) -> Vec<f64> {
        let bytes = self.0.as_bytes();
        let mut out = Vec::with_capacity(1 + bytes.len().div_ceil(8));
        out.push(f64::from_bits(bytes.len() as u64));
        for chunk in bytes.chunks(8) {
            let mut b = [0u8; 8];
            b[..chunk.len()].copy_from_slice(chunk);
            out.push(f64::from_bits(u64::from_le_bytes(b)));
        }
        out
    }

    fn decode(record: &[f64]) -> Option<Self> {
        let (len, rest) = record.split_first()?;
        let len = usize::try_from(len.to_bits()).ok()?;
        if rest.len() != len.div_ceil(8) {
            return None;
        }
        let mut bytes = Vec::with_capacity(rest.len() * 8);
        for f in rest {
            bytes.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        bytes.truncate(len);
        String::from_utf8(bytes).ok().map(TextBlob)
    }
}

/// Resolves the NFET under test: its parameter set and its
/// characterization through `backend`.
///
/// # Errors
///
/// A human-readable message when the backend or a design flow fails.
pub fn device(
    sel: NodeSel,
    backend: Backend,
) -> Result<(DeviceParams, DeviceCharacteristics), String> {
    let model = subvt_exp::backend::model_for(backend);
    match sel {
        NodeSel::Ref90 => {
            let params = DeviceParams::reference_90nm_nfet();
            let chars = model
                .characterize(&params)
                .map_err(|e| format!("characterization failed: {e}"))?;
            Ok((params, chars))
        }
        NodeSel::Designed { .. } => {
            let d = design(sel, model)?;
            Ok((d.nfet, d.nfet_chars))
        }
    }
}

fn design(sel: NodeSel, model: &'static dyn DeviceModel) -> Result<NodeDesign, String> {
    let NodeSel::Designed { node, strategy } = sel else {
        return Err("ref90 has no design-flow entry".to_owned());
    };
    let ctx = StudyContext::compute_with(model).map_err(|e| format!("design flow failed: {e}"))?;
    let designs = match strategy {
        Strategy::SubVth => &ctx.subvth,
        Strategy::SuperVth => &ctx.supervth,
    };
    designs
        .iter()
        .find(|d| d.node == node)
        .copied()
        .ok_or_else(|| format!("design flow produced no {} entry", node.name()))
}

/// The inverter device pair for a node selection, characterized through
/// `backend` at room temperature.
///
/// # Errors
///
/// A human-readable message when the backend or a design flow fails.
pub fn pair(sel: NodeSel, backend: Backend) -> Result<CmosPair, String> {
    pair_at(sel, backend, ROOM_K)
}

/// Like [`pair`] but re-tagged to operate at `temp_k` kelvin. The pair
/// is designed/balanced at room temperature (matching the design flows)
/// and then its devices carry the operating temperature, so every
/// downstream characterization — leakage, swing, VTC — is
/// temperature-consistent. This mirrors `repro --temp`.
///
/// # Errors
///
/// A human-readable message when the backend or a design flow fails.
pub fn pair_at(sel: NodeSel, backend: Backend, temp_k: f64) -> Result<CmosPair, String> {
    let model = subvt_exp::backend::model_for(backend);
    let mut p = match sel {
        NodeSel::Ref90 => CmosPair::balanced_with(model, DeviceParams::reference_90nm_nfet())
            .map_err(|e| format!("characterization failed: {e}"))?,
        NodeSel::Designed { .. } => design(sel, model)?.cmos_pair_with(model),
    };
    let t = Temperature::from_kelvin(temp_k);
    p.nfet.temperature = t;
    p.pfet.temperature = t;
    Ok(p)
}

/// Evaluates the drain current at every `v_gs` bias in one pass over
/// the engine pool — the shared body of single and batched `idvg`.
///
/// # Errors
///
/// A human-readable message when device resolution fails.
pub fn idvg_currents(
    sel: NodeSel,
    backend: Backend,
    v_ds: f64,
    v_gs: &[f64],
) -> Result<Vec<f64>, String> {
    let (params, chars) = device(sel, backend)?;
    let model = MosModel::from_device(&params, &chars);
    let vds = Volts::new(v_ds);
    Ok(subvt_engine::global().map(v_gs.to_vec(), move |v| {
        model.drain_current(Volts::new(v), vds).get()
    }))
}

/// Renders the `idvg` payload for one bias list.
pub fn idvg_payload(v_gs: &[f64], i_d: &[f64]) -> String {
    format!(
        "{{\"unit\":\"A/um\",\"v_gs\":{},\"i_d\":{}}}",
        fmt_f64s(v_gs),
        fmt_f64s(i_d)
    )
}

fn device_payload(p: &DeviceParams) -> String {
    let g = &p.geometry;
    format!(
        "{{\"kind\":{},\"l_poly_nm\":{},\"t_ox_nm\":{},\"l_overlap_nm\":{},\"x_j_nm\":{},\
         \"halo_sigma_nm\":{},\"n_sub_cm3\":{},\"n_p_halo_cm3\":{},\"n_sd_cm3\":{},\
         \"v_dd\":{},\"temperature_k\":{}}}",
        json_str(match p.kind {
            DeviceKind::Nfet => "nfet",
            DeviceKind::Pfet => "pfet",
        }),
        fmt_f64(g.l_poly.get()),
        fmt_f64(g.t_ox.get()),
        fmt_f64(g.l_overlap.get()),
        fmt_f64(g.x_j.get()),
        fmt_f64(g.halo_sigma.get()),
        fmt_f64(p.n_sub.get()),
        fmt_f64(p.n_p_halo.get()),
        fmt_f64(p.n_sd.get()),
        fmt_f64(p.v_dd.get()),
        fmt_f64(p.temperature.as_kelvin()),
    )
}

fn chars_payload(c: &DeviceCharacteristics) -> String {
    format!(
        "{{\"l_eff_nm\":{},\"n_eff_cm3\":{},\"c_ox_f_cm2\":{},\"w_dep_nm\":{},\
         \"s_s_mv_dec\":{},\"m\":{},\"v_th0\":{},\"v_th_lin\":{},\"v_th_sat\":{},\
         \"dibl\":{},\"mu0_cm2_vs\":{},\"i0_a_um\":{},\"i_off_a_um\":{},\"i_on_a_um\":{},\
         \"c_g_f_um\":{},\"c_drain_f_um\":{},\"tau_s\":{},\"on_off_ratio\":{}}}",
        fmt_f64(c.l_eff.get()),
        fmt_f64(c.n_eff.get()),
        fmt_f64(c.c_ox.get()),
        fmt_f64(c.w_dep.get()),
        fmt_f64(c.s_s.get()),
        fmt_f64(c.m),
        fmt_f64(c.v_th0.get()),
        fmt_f64(c.v_th_lin.get()),
        fmt_f64(c.v_th_sat.get()),
        fmt_f64(c.dibl),
        fmt_f64(c.mu0),
        fmt_f64(c.i0.get()),
        fmt_f64(c.i_off.get()),
        fmt_f64(c.i_on.get()),
        fmt_f64(c.c_g.get()),
        fmt_f64(c.c_drain.get()),
        fmt_f64(c.tau.get()),
        fmt_f64(c.on_off_ratio()),
    )
}

fn energy_payload(e: &subvt_circuits::chain::EnergyPoint) -> String {
    format!(
        "{{\"v_dd\":{},\"dynamic_j\":{},\"leakage_j\":{},\"total_j\":{},\"t_cycle_s\":{}}}",
        fmt_f64(e.v_dd.get()),
        fmt_f64(e.dynamic.get()),
        fmt_f64(e.leakage.get()),
        fmt_f64(e.total().get()),
        fmt_f64(e.t_cycle.get()),
    )
}

/// Renders a `[..]` JSON array where a missing measurement (e.g. no
/// unity-gain points at this supply/temperature) becomes `null`.
fn fmt_opt_f64s(vals: &[Option<f64>]) -> String {
    let body: Vec<String> = vals
        .iter()
        .map(|v| v.map(fmt_f64).unwrap_or_else(|| "null".to_owned()))
        .collect();
    format!("[{}]", body.join(","))
}

/// Body of the `topology` method: compiles the requested cell/testbench
/// through `subvt_circuits::topology` and recalls the measurement from
/// the engine's netlist-keyed caches.
fn compute_topology(
    sel: NodeSel,
    backend: Backend,
    op: TopologyOp,
    v_dd: f64,
    temp_k: f64,
) -> Result<String, String> {
    let v = Volts::new(v_dd);
    match op {
        TopologyOp::GateSnm { gate, points } => {
            let pair = pair_at(sel, backend, temp_k)?;
            let snm = cached_gate_snm(&pair, gate, v, points)
                .map_err(|e| format!("gate snm failed: {e}"))?;
            let vectors = [(false, false), (false, true), (true, false), (true, true)];
            let mut leak = [0.0f64; 4];
            for (slot, inputs) in leak.iter_mut().zip(vectors) {
                *slot = cached_gate_leakage(&pair, gate, v, inputs)
                    .map_err(|e| format!("gate leakage failed: {e}"))?;
            }
            // The stack effect: worst single-off vector over the
            // both-off vector (series NFETs for NAND, series PFETs for
            // NOR — the both-off state differs between them).
            let both_off = match gate {
                GateKind::Nand2 => leak[0],
                GateKind::Nor2 => leak[3],
            };
            let single_off = leak[1].max(leak[2]);
            Ok(format!(
                "{{\"gate\":{},\"v_dd\":{},\"temp_k\":{},\"snm\":{},\
                 \"i_leak_a\":{{\"00\":{},\"01\":{},\"10\":{},\"11\":{}}},\
                 \"stack_factor\":{}}}",
                json_str(gate_name(gate)),
                fmt_f64(v_dd),
                fmt_f64(temp_k),
                fmt_f64(snm),
                fmt_f64(leak[0]),
                fmt_f64(leak[1]),
                fmt_f64(leak[2]),
                fmt_f64(leak[3]),
                fmt_f64(single_off / both_off),
            ))
        }
        TopologyOp::RingFreq { stages, steps } => {
            let pair = pair_at(sel, backend, temp_k)?;
            let osc = cached_ring_oscillation(&pair, v, stages, steps)
                .map_err(|e| format!("ring oscillation failed: {e}"))?;
            Ok(format!(
                "{{\"stages\":{stages},\"v_dd\":{},\"temp_k\":{},\"f_osc_hz\":{},\
                 \"period_s\":{},\"stage_delay_s\":{},\"analytic_fo1_s\":{}}}",
                fmt_f64(v_dd),
                fmt_f64(temp_k),
                fmt_f64(osc.period.get().recip()),
                fmt_f64(osc.period.get()),
                fmt_f64(osc.stage_delay.get()),
                fmt_f64(analytic_fo1_delay(&pair, v).get()),
            ))
        }
        TopologyOp::TempSweep {
            t_start_k,
            t_stop_k,
            points,
        } => {
            let temps = linspace(t_start_k, t_stop_k, points);
            let mut s_s = Vec::with_capacity(temps.len());
            let mut snm_spice = Vec::with_capacity(temps.len());
            let mut snm_analytic = Vec::with_capacity(temps.len());
            let mut v_min = Vec::with_capacity(temps.len());
            let mut e_min = Vec::with_capacity(temps.len());
            for &tk in &temps {
                let pair = pair_at(sel, backend, tk)?;
                s_s.push(pair.nfet_chars().s_s.get());
                snm_spice.push(
                    cached_inverter_vtc(&pair, v, 121)
                        .ok()
                        .and_then(|vtc| noise_margins(&vtc))
                        .map(|nm| nm.snm()),
                );
                snm_analytic.push(noise_margins(&analytic_vtc(&pair, v, 121)).map(|nm| nm.snm()));
                let mep = InverterChain::paper_chain(pair).minimum_energy_point();
                v_min.push(mep.v_min.get());
                e_min.push(mep.energy.get());
            }
            Ok(format!(
                "{{\"v_dd\":{},\"t_k\":{},\"s_s_mv_dec\":{},\"snm_spice_v\":{},\
                 \"snm_analytic_v\":{},\"v_min\":{},\"e_min_j\":{}}}",
                fmt_f64(v_dd),
                fmt_f64s(&temps),
                fmt_f64s(&s_s),
                fmt_opt_f64s(&snm_spice),
                fmt_opt_f64s(&snm_analytic),
                fmt_f64s(&v_min),
                fmt_f64s(&e_min),
            ))
        }
    }
}

/// Runs a query body to its JSON payload. This is the function the
/// server supervises; it is deterministic for every cacheable query.
///
/// # Errors
///
/// A human-readable message (mapped to [`ErrorCode::ComputeFailed`])
/// when a backend, solver, or design flow fails.
///
/// # Panics
///
/// [`Query::Panic`] panics by design (the supervisor catches it); no
/// other variant panics on valid inputs.
pub fn compute(q: &Query) -> Result<String, String> {
    match q {
        Query::IdVg {
            sel,
            backend,
            v_ds,
            v_gs,
        } => {
            let i_d = idvg_currents(*sel, *backend, *v_ds, v_gs)?;
            Ok(idvg_payload(v_gs, &i_d))
        }
        Query::Params { sel, backend } => {
            let (_, chars) = device(*sel, *backend)?;
            Ok(chars_payload(&chars))
        }
        Query::Model { sel, backend } => {
            let (nfet, pfet, node) = match *sel {
                NodeSel::Ref90 => {
                    let (n, _) = device(*sel, *backend)?;
                    let p = DeviceParams {
                        kind: DeviceKind::Pfet,
                        ..n
                    };
                    (n, p, "ref90")
                }
                NodeSel::Designed { node, .. } => {
                    let d = design(*sel, subvt_exp::backend::model_for(*backend))?;
                    (d.nfet, d.pfet, node.name())
                }
            };
            Ok(format!(
                "{{\"node\":{},\"nfet\":{},\"pfet\":{}}}",
                json_str(node),
                device_payload(&nfet),
                device_payload(&pfet),
            ))
        }
        Query::Vtc {
            sel,
            backend,
            circuit,
            v_dd,
            points,
            temp_k,
        } => {
            let pair = pair_at(*sel, *backend, *temp_k)?;
            let vtc = subvt_exp::backend::circuit_for(*circuit)
                .vtc(&pair, Volts::new(*v_dd), *points)
                .map_err(|e| format!("vtc failed: {e}"))?;
            Ok(format!(
                "{{\"v_dd\":{},\"v_in\":{},\"v_out\":{}}}",
                fmt_f64(vtc.v_dd),
                fmt_f64s(&vtc.v_in),
                fmt_f64s(&vtc.v_out),
            ))
        }
        Query::Snm {
            sel,
            backend,
            circuit,
            v_dd,
            temp_k,
        } => {
            let pair = pair_at(*sel, *backend, *temp_k)?;
            let vtc = subvt_exp::backend::circuit_for(*circuit)
                .vtc(&pair, Volts::new(*v_dd), 161)
                .map_err(|e| format!("vtc failed: {e}"))?;
            let nm = noise_margins(&vtc)
                .ok_or("no noise margins: the VTC has no unity-gain points at this supply")?;
            Ok(format!(
                "{{\"v_il\":{},\"v_ih\":{},\"v_oh\":{},\"v_ol\":{},\"nm_low\":{},\"nm_high\":{},\"snm\":{}}}",
                fmt_f64(nm.v_il),
                fmt_f64(nm.v_ih),
                fmt_f64(nm.v_oh),
                fmt_f64(nm.v_ol),
                fmt_f64(nm.nm_low),
                fmt_f64(nm.nm_high),
                fmt_f64(nm.snm()),
            ))
        }
        Query::Fo1 {
            sel,
            backend,
            circuit,
            v_dd,
            temp_k,
        } => {
            let pair = pair_at(*sel, *backend, *temp_k)?;
            let d = subvt_exp::backend::circuit_for(*circuit)
                .fo1_delay(&pair, Volts::new(*v_dd))
                .map_err(|e| format!("fo1 failed: {e}"))?;
            Ok(format!(
                "{{\"tp_hl_s\":{},\"tp_lh_s\":{},\"average_s\":{}}}",
                fmt_f64(d.tp_hl.get()),
                fmt_f64(d.tp_lh.get()),
                fmt_f64(d.average().get()),
            ))
        }
        Query::ChainEnergy {
            sel,
            backend,
            circuit,
            v_dd,
            temp_k,
        } => {
            let chain = InverterChain::paper_chain(pair_at(*sel, *backend, *temp_k)?);
            let e = subvt_exp::backend::circuit_for(*circuit)
                .chain_energy(&chain, Volts::new(*v_dd))
                .map_err(|e| format!("chain_energy failed: {e}"))?;
            Ok(energy_payload(&e))
        }
        Query::Mep {
            sel,
            backend,
            circuit,
            temp_k,
        } => {
            let chain = InverterChain::paper_chain(pair_at(*sel, *backend, *temp_k)?);
            let mep = subvt_exp::backend::circuit_for(*circuit)
                .minimum_energy_point(&chain)
                .map_err(|e| format!("mep failed: {e}"))?;
            Ok(format!(
                "{{\"v_min\":{},\"energy_j\":{},\"point\":{}}}",
                fmt_f64(mep.v_min.get()),
                fmt_f64(mep.energy.get()),
                energy_payload(&mep.point),
            ))
        }
        Query::Topology {
            sel,
            backend,
            op,
            v_dd,
            temp_k,
        } => compute_topology(*sel, *backend, *op, *v_dd, *temp_k),
        Query::Experiment { id, csv } => {
            let table = subvt_exp::run(id).ok_or_else(|| format!("unknown experiment `{id}`"))?;
            // Exactly what `repro` writes per experiment: `println!`
            // for text (trailing newline), `print!` for CSV.
            let rendered = if *csv {
                table.to_csv()
            } else {
                format!("{}\n", table.to_text())
            };
            Ok(json_str(&rendered))
        }
        Query::Sleep { ms, .. } => {
            std::thread::sleep(std::time::Duration::from_millis(*ms));
            Ok(format!("{{\"slept_ms\":{ms}}}"))
        }
        Query::Panic { token } => panic!("poison request (token `{token}`)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subvt_exp::tracefmt::parse_json;

    fn q(method: &str, params: &str) -> Result<Query, (ErrorCode, String)> {
        Query::from_request(method, &parse_json(params).unwrap())
    }

    #[test]
    fn canonical_keys_ignore_wire_noise() {
        let a = q("fo1", r#"{"node":"45nm","strategy":"subvth","v_dd":0.3}"#).unwrap();
        let b = q("fo1", r#"{"v_dd":0.3,  "node":"45nm"}"#).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.key(), b.key());
    }

    #[test]
    fn keys_separate_methods_and_fields() {
        let a = q("fo1", r#"{"node":"45nm","v_dd":0.3}"#).unwrap();
        let b = q("snm", r#"{"node":"45nm","v_dd":0.3}"#).unwrap();
        let c = q("fo1", r#"{"node":"45nm","v_dd":0.25}"#).unwrap();
        assert_ne!(a.key(), b.key());
        assert_ne!(a.key(), c.key());
    }

    #[test]
    fn idvg_groups_ignore_bias_points_only() {
        let a = q("idvg", r#"{"node":"ref90","v_ds":0.05,"v_gs":[0.1,0.2]}"#).unwrap();
        let b = q("idvg", r#"{"node":"ref90","v_ds":0.05,"v_gs":[0.3]}"#).unwrap();
        let c = q("idvg", r#"{"node":"ref90","v_ds":1.2,"v_gs":[0.3]}"#).unwrap();
        assert_ne!(a.key(), b.key());
        assert_eq!(a.idvg_group(), b.idvg_group());
        assert_ne!(b.idvg_group(), c.idvg_group());
        assert_eq!(
            q("ping_or_other", "{}").unwrap_err().0,
            ErrorCode::UnknownMethod
        );
    }

    #[test]
    fn text_blob_round_trips_all_lengths() {
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 1000] {
            let s: String = "π≤µ".chars().cycle().take(len).collect();
            let blob = TextBlob(s.clone());
            let decoded = TextBlob::decode(&blob.encode()).unwrap();
            assert_eq!(decoded.0, s);
        }
    }

    #[test]
    fn text_blob_rejects_truncated_records() {
        let enc = TextBlob("hello world, longer than eight".to_owned()).encode();
        assert!(TextBlob::decode(&enc[..enc.len() - 1]).is_none());
        assert!(TextBlob::decode(&[]).is_none());
    }

    #[test]
    fn ref90_idvg_computes_monotone_currents() {
        let v_gs = linspace(0.0, 1.2, 7);
        let i_d = idvg_currents(NodeSel::Ref90, Backend::Analytic, 0.05, &v_gs).unwrap();
        assert_eq!(i_d.len(), 7);
        for w in i_d.windows(2) {
            assert!(w[1] > w[0], "I_d must grow with V_gs: {w:?}");
        }
        let payload = idvg_payload(&v_gs, &i_d);
        assert!(parse_json(&payload).is_ok(), "payload must be valid JSON");
    }

    #[test]
    fn topology_requests_parse_and_key_by_op() {
        let a = q(
            "topology",
            r#"{"op":"gate_snm","node":"ref90","v_dd":0.25}"#,
        )
        .unwrap();
        let b = q(
            "topology",
            r#"{"op":"gate_snm","gate":"nor2","node":"ref90","v_dd":0.25}"#,
        )
        .unwrap();
        let c = q(
            "topology",
            r#"{"op":"ring_freq","node":"ref90","v_dd":0.25}"#,
        )
        .unwrap();
        assert_eq!(a.method(), "topology");
        assert!(a.cacheable());
        assert_ne!(a.key(), b.key(), "gate kind must key the response");
        assert_ne!(a.key(), c.key(), "op must key the response");
        assert_eq!(
            q("topology", r#"{"node":"ref90","v_dd":0.25}"#)
                .unwrap_err()
                .0,
            ErrorCode::BadRequest,
            "op is mandatory"
        );
        assert_eq!(
            q(
                "topology",
                r#"{"op":"ring_freq","stages":4,"node":"ref90","v_dd":0.25}"#
            )
            .unwrap_err()
            .0,
            ErrorCode::BadRequest,
            "even rings don't oscillate"
        );
        assert_eq!(
            q(
                "topology",
                r#"{"op":"temp_sweep","temp_k":350,"node":"ref90","v_dd":0.25}"#
            )
            .unwrap_err()
            .0,
            ErrorCode::BadRequest,
            "temp_sweep carries its own temperature axis"
        );
    }

    #[test]
    fn temp_k_keys_circuit_queries() {
        let room = q("snm", r#"{"node":"ref90","v_dd":0.25}"#).unwrap();
        let explicit = q("snm", r#"{"node":"ref90","v_dd":0.25,"temp_k":300}"#).unwrap();
        let hot = q("snm", r#"{"node":"ref90","v_dd":0.25,"temp_k":350}"#).unwrap();
        assert_eq!(room, explicit, "temp_k defaults to room");
        assert_ne!(room.key(), hot.key(), "temperature must key the response");
        assert_eq!(
            q("snm", r#"{"node":"ref90","v_dd":0.25,"temp_k":-5}"#)
                .unwrap_err()
                .0,
            ErrorCode::BadRequest
        );
    }

    #[test]
    fn topology_gate_snm_computes_stack_effect() {
        let qy = q(
            "topology",
            r#"{"op":"gate_snm","node":"ref90","v_dd":0.25,"points":41}"#,
        )
        .unwrap();
        let payload = compute(&qy).unwrap();
        let json = parse_json(&payload).unwrap();
        let snm = json.get("snm").and_then(Json::as_f64).unwrap();
        assert!(snm > 0.0 && snm < 0.125, "NAND2 SNM out of range: {snm}");
        let sf = json.get("stack_factor").and_then(Json::as_f64).unwrap();
        assert!(
            sf > 1.0,
            "stack effect must suppress both-off leakage: {sf}"
        );
    }

    #[test]
    fn bad_params_are_typed() {
        assert_eq!(q("idvg", r#"{}"#).unwrap_err().0, ErrorCode::BadRequest);
        assert_eq!(
            q("vtc", r#"{"node":"90nm"}"#).unwrap_err().0,
            ErrorCode::BadRequest,
            "missing v_dd"
        );
        assert!(q("idvg", r#"{"node":"13nm"}"#)
            .unwrap_err()
            .1
            .contains("13nm"));
    }
}
