//! A small blocking client for the newline-framed JSON protocol.
//!
//! Used by the integration suite and `subvt-loadgen`; it is also the
//! reference implementation for talking to the daemon from other
//! tooling. One request is in flight at a time per [`Client`]; open
//! several clients for concurrency.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use subvt_exp::tracefmt::{parse_json, Json};

/// One parsed response line.
#[derive(Debug, Clone)]
pub struct Response {
    /// Echoed request id.
    pub id: String,
    /// Success flag.
    pub ok: bool,
    /// `hit|coalesced|computed` for cacheable methods, `None`
    /// otherwise.
    pub cached: Option<String>,
    /// The raw `result` payload text, byte-identical to what the
    /// server rendered (sliced, not re-serialized).
    pub result: Option<String>,
    /// Error code on failure.
    pub error_code: Option<String>,
    /// Error message on failure.
    pub error_message: Option<String>,
    /// The whole response line.
    pub raw: String,
}

impl Response {
    fn parse(line: &str) -> Result<Response, String> {
        let raw = line.trim_end().to_owned();
        let json = parse_json(&raw)?;
        let ok = json
            .get("ok")
            .and_then(Json::as_bool)
            .ok_or("response missing `ok`")?;
        let id = json
            .get("id")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_owned();
        let cached = json.get("cached").and_then(Json::as_str).map(str::to_owned);
        // `result` is always the final member (see proto docs), so the
        // payload can be recovered without a float-mangling re-render.
        let result = raw
            .find("\"result\":")
            .map(|idx| raw[idx + 9..raw.len() - 1].to_owned());
        let error_code = json
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .map(str::to_owned);
        let error_message = json
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .map(str::to_owned);
        Ok(Response {
            id,
            ok,
            cached,
            result,
            error_code,
            error_message,
            raw,
        })
    }

    /// The payload parsed as JSON (for structured inspection).
    ///
    /// # Errors
    ///
    /// The parser's message when there is no payload or it is invalid.
    pub fn result_json(&self) -> Result<Json, String> {
        parse_json(self.result.as_deref().ok_or("no result payload")?)
    }
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Propagates connect errors.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            next_id: 0,
        })
    }

    /// Retries [`Client::connect`] until the server answers a `ping`
    /// or the timeout elapses — the "wait until ready" helper for
    /// tests and CI.
    ///
    /// # Errors
    ///
    /// The last connect error once `timeout` is spent.
    pub fn connect_ready(
        addr: impl ToSocketAddrs + Copy,
        timeout: Duration,
    ) -> std::io::Result<Client> {
        let started = Instant::now();
        loop {
            match Client::connect(addr) {
                Ok(mut client) => match client.call("ping", "{}") {
                    Ok(r) if r.ok => return Ok(client),
                    _ => {}
                },
                Err(e) if started.elapsed() > timeout => return Err(e),
                Err(_) => {}
            }
            if started.elapsed() > timeout {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "server did not become ready in time",
                ));
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// Sends one raw request line, returns the raw response line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; `UnexpectedEof` when the server closed.
    pub fn call_raw(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.trim_end().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        if self.reader.read_line(&mut response)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(response)
    }

    /// Calls `method` with a JSON `params` object, auto-assigning an
    /// id, and parses the response.
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` when the response line does not
    /// parse.
    pub fn call(&mut self, method: &str, params: &str) -> std::io::Result<Response> {
        self.call_traced(method, params, None)
    }

    /// Like [`Client::call`], but stamps a wire trace context
    /// (`trace_id`, parent span id) so the daemon's per-request span
    /// tree can be stitched under the caller's open span. Callers that
    /// propagate span ids should reserve a high id range first
    /// (`subvt_engine::trace::raise_id_floor(1 << 32)`), keeping them
    /// disjoint from the server's.
    ///
    /// # Errors
    ///
    /// Same as [`Client::call`].
    pub fn call_traced(
        &mut self,
        method: &str,
        params: &str,
        trace: Option<(&str, u64)>,
    ) -> std::io::Result<Response> {
        self.next_id += 1;
        let line = format!(
            "{{\"id\":\"c{}\",\"method\":{},\"params\":{params}{}}}",
            self.next_id,
            crate::proto::json_str(method),
            crate::proto::trace_fragment(trace),
        );
        let response = self.call_raw(&line)?;
        Response::parse(&response)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// Fetches an HTTP path (e.g. `/metrics`) from the server's shim and
/// returns the body.
///
/// # Errors
///
/// I/O errors, or `InvalidData` on a non-200 status.
pub fn http_get(addr: impl ToSocketAddrs, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: subvt\r\nConnection: close\r\n\r\n"
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "no HTTP header end")
    })?;
    if !head.starts_with("HTTP/1.1 200") {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("unexpected status: {}", head.lines().next().unwrap_or("")),
        ));
    }
    Ok(body.to_owned())
}
