//! Load generator and smoke-test driver for `subvt-serve`.
//!
//! ```text
//! subvt-loadgen --addr 127.0.0.1:7171 --wait-ready-ms 5000
//! subvt-loadgen --addr A --call fo1 --params '{"node":"ref90","v_dd":0.3}'
//! subvt-loadgen --addr A --call experiment --params '{"id":"fig2","format":"csv"}' --print payload
//! subvt-loadgen --addr A --mixed 200 --concurrency 8 --out BENCH_serve.json
//! subvt-loadgen --addr A --mixed 50 --trace client-trace.json --trace-format chrome
//! subvt-loadgen --addr A --batch-probe      # needs a --workers 1 server
//! subvt-loadgen --addr A --metrics          # dump GET /metrics
//! subvt-loadgen --addr A --shutdown         # graceful drain
//! ```
//!
//! `--mixed` drives a deterministic mixed workload (device sweeps,
//! circuit metrics, deliberate duplicates for dedup) and writes a
//! `BENCH_serve.json` artifact stamped with schema version, git rev,
//! and UTC timestamp, carrying throughput and latency quantiles.
//! Every mixed request opens a `client.request` span and propagates
//! its trace id + span id on the wire, so the daemon's request spans
//! parent onto the client's — `--trace` writes the client-side tree,
//! and `repro trace-stitch` merges it with the server's into one
//! timeline. `--print payload` prints the *decoded* result payload —
//! for the `experiment` method that is byte-identical to `repro`
//! stdout, which CI checks with `cmp`.

use std::io::Write as _;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use subvt_engine::trace;
use subvt_exp::tracefmt::Json;
use subvt_serve::client::{http_get, Client};

#[derive(Clone, Copy, PartialEq, Eq)]
enum TraceFormat {
    Jsonl,
    Chrome,
}

struct Options {
    addr: String,
    wait_ready_ms: u64,
    action: Action,
    trace: Option<String>,
    trace_format: TraceFormat,
}

enum Action {
    Ping,
    Call {
        method: String,
        params: String,
        print_payload: bool,
    },
    Metrics,
    Shutdown,
    Mixed {
        requests: usize,
        concurrency: usize,
        out: Option<String>,
    },
    BatchProbe,
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    // Keep client span ids disjoint from the server's so a stitched
    // trace never collides (the daemon allocates from 1 upward).
    trace::raise_id_floor(1 << 32);
    if opts.wait_ready_ms > 0 {
        let timeout = Duration::from_millis(opts.wait_ready_ms);
        if let Err(e) = Client::connect_ready(opts.addr.as_str(), timeout) {
            eprintln!("server at {} not ready: {e}", opts.addr);
            return ExitCode::FAILURE;
        }
    }
    let run = || -> Result<(), String> {
        match &opts.action {
            Action::Ping => {
                let mut c = client(&opts)?;
                let r = c.call("ping", "{}").map_err(|e| e.to_string())?;
                println!("{}", r.raw);
                Ok(())
            }
            Action::Call {
                method,
                params,
                print_payload,
            } => {
                let mut c = client(&opts)?;
                let r = c.call(method, params).map_err(|e| e.to_string())?;
                if !r.ok {
                    return Err(format!("request failed: {}", r.raw));
                }
                if *print_payload {
                    match r.result_json() {
                        // A string payload (e.g. `experiment`) prints
                        // decoded — byte-identical to repro stdout.
                        Ok(Json::Str(text)) => print!("{text}"),
                        _ => println!("{}", r.result.as_deref().unwrap_or("null")),
                    }
                } else {
                    println!("{}", r.raw);
                }
                Ok(())
            }
            Action::Metrics => {
                let body = http_get(opts.addr.as_str(), "/metrics").map_err(|e| e.to_string())?;
                print!("{body}");
                Ok(())
            }
            Action::Shutdown => {
                let mut c = client(&opts)?;
                let r = c.call("shutdown", "{}").map_err(|e| e.to_string())?;
                println!("{}", r.raw);
                Ok(())
            }
            Action::Mixed {
                requests,
                concurrency,
                out,
            } => run_mixed(&opts.addr, *requests, *concurrency, out.as_deref()),
            Action::BatchProbe => run_batch_probe(&opts.addr),
        }
    };
    let outcome = run();
    if let Some(path) = &opts.trace {
        if let Err(msg) = write_trace(path, opts.trace_format) {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    }
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

fn write_trace(path: &str, format: TraceFormat) -> Result<(), String> {
    let file = std::fs::File::create(path).map_err(|e| format!("cannot write {path}: {e}"))?;
    let mut out = std::io::BufWriter::new(file);
    let tracer = trace::global();
    match format {
        TraceFormat::Jsonl => tracer.write_jsonl(&mut out),
        TraceFormat::Chrome => tracer.write_chrome(&mut out),
    }
    .and_then(|()| out.flush())
    .map_err(|e| format!("cannot write {path}: {e}"))
}

fn client(opts: &Options) -> Result<Client, String> {
    Client::connect(opts.addr.as_str()).map_err(|e| format!("cannot connect to {}: {e}", opts.addr))
}

fn parse_args() -> Result<Options, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr: Option<String> = None;
    let mut wait_ready_ms = 0u64;
    let mut action: Option<Action> = None;
    let mut call_method: Option<String> = None;
    let mut call_params = "{}".to_owned();
    let mut print_payload = false;
    let mut mixed_requests: Option<usize> = None;
    let mut concurrency = 4usize;
    let mut out: Option<String> = None;
    let mut trace: Option<String> = None;
    let mut trace_format = TraceFormat::Jsonl;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => addr = Some(iter.next().ok_or("--addr needs HOST:PORT")?.clone()),
            "--wait-ready-ms" => {
                wait_ready_ms = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--wait-ready-ms needs an integer")?;
            }
            "--call" => call_method = Some(iter.next().ok_or("--call needs a method")?.clone()),
            "--params" => call_params = iter.next().ok_or("--params needs JSON")?.clone(),
            "--print" => {
                print_payload = match iter.next().map(String::as_str) {
                    Some("payload") => true,
                    Some("line") => false,
                    _ => return Err("--print needs one of: payload, line".to_owned()),
                };
            }
            "--metrics" => action = Some(Action::Metrics),
            "--shutdown" => action = Some(Action::Shutdown),
            "--batch-probe" => action = Some(Action::BatchProbe),
            "--mixed" => {
                mixed_requests = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--mixed needs a request count")?,
                );
            }
            "--concurrency" => {
                concurrency = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or("--concurrency needs a positive integer")?;
            }
            "--out" => out = Some(iter.next().ok_or("--out needs a path")?.clone()),
            "--trace" => trace = Some(iter.next().ok_or("--trace needs a path")?.clone()),
            "--trace-format" => {
                trace_format = match iter.next().map(String::as_str) {
                    Some("jsonl") => TraceFormat::Jsonl,
                    Some("chrome") => TraceFormat::Chrome,
                    _ => return Err("--trace-format needs one of: jsonl, chrome".to_owned()),
                };
            }
            "--help" | "-h" => {
                return Err("see module docs: subvt-loadgen --addr A [--call|--mixed|--metrics|--batch-probe|--shutdown] [--trace PATH --trace-format jsonl|chrome]".to_owned());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let addr = addr.ok_or("--addr is required")?;
    let action = if let Some(method) = call_method {
        Action::Call {
            method,
            params: call_params,
            print_payload,
        }
    } else if let Some(requests) = mixed_requests {
        Action::Mixed {
            requests,
            concurrency,
            out,
        }
    } else {
        action.unwrap_or(Action::Ping)
    };
    Ok(Options {
        addr,
        wait_ready_ms,
        action,
        trace,
        trace_format,
    })
}

/// The deterministic request mix: mostly cheap ref90 queries, with
/// deliberate duplicates so dedup counters move under load, plus
/// topology-layer requests (gate library, ring oscillator) so the
/// compiled-netlist caches see mixed traffic too.
const MIX: [(&str, &str); 11] = [
    (
        "idvg",
        r#"{"node":"ref90","v_ds":0.05,"v_gs":{"start":0.0,"stop":1.2,"points":25}}"#,
    ),
    ("params", r#"{"node":"ref90"}"#),
    (
        "idvg",
        r#"{"node":"ref90","v_ds":0.05,"v_gs":{"start":0.0,"stop":1.2,"points":25}}"#,
    ),
    ("vtc", r#"{"node":"ref90","v_dd":0.3,"points":41}"#),
    ("snm", r#"{"node":"ref90","v_dd":0.3}"#),
    ("fo1", r#"{"node":"ref90","v_dd":0.3}"#),
    ("chain_energy", r#"{"node":"ref90","v_dd":0.3}"#),
    (
        "idvg",
        r#"{"node":"ref90","v_ds":1.2,"v_gs":{"start":0.0,"stop":1.2,"points":25}}"#,
    ),
    (
        "topology",
        r#"{"op":"gate_snm","gate":"nand2","node":"ref90","v_dd":0.25,"points":41}"#,
    ),
    (
        "topology",
        r#"{"op":"ring_freq","node":"ref90","v_dd":0.25,"stages":5,"steps":600}"#,
    ),
    (
        "topology",
        r#"{"op":"gate_snm","gate":"nand2","node":"ref90","v_dd":0.25,"points":41}"#,
    ),
];

struct Sample {
    method: &'static str,
    ms: f64,
    ok: bool,
}

fn run_mixed(
    addr: &str,
    requests: usize,
    concurrency: usize,
    out: Option<&str>,
) -> Result<(), String> {
    let next = Arc::new(AtomicUsize::new(0));
    let samples: Arc<Mutex<Vec<Sample>>> = Arc::new(Mutex::new(Vec::with_capacity(requests)));
    let pid = std::process::id();
    let started = Instant::now();
    let threads: Vec<_> = (0..concurrency)
        .map(|_| {
            let next = Arc::clone(&next);
            let samples = Arc::clone(&samples);
            let addr = addr.to_owned();
            std::thread::spawn(move || -> Result<(), String> {
                let mut client = Client::connect(addr.as_str())
                    .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
                loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= requests {
                        return Ok(());
                    }
                    let (method, params) = MIX[i % MIX.len()];
                    let trace_id = format!("lg{pid:x}-{i:x}");
                    let mut span = trace::span("client.request");
                    span.set_attr("method", method);
                    span.set_attr("trace_id", trace_id.as_str());
                    let call_started = Instant::now();
                    let result = client.call_traced(method, params, Some((&trace_id, span.id())));
                    drop(span);
                    let ok = match result {
                        Ok(r) => r.ok,
                        Err(e) => return Err(format!("transport error on {method}: {e}")),
                    };
                    samples.lock().expect("samples lock").push(Sample {
                        method,
                        ms: call_started.elapsed().as_secs_f64() * 1e3,
                        ok,
                    });
                }
            })
        })
        .collect();
    for t in threads {
        t.join()
            .map_err(|_| "worker thread panicked".to_owned())??;
    }
    let elapsed = started.elapsed().as_secs_f64();
    let samples = Arc::try_unwrap(samples)
        .map_err(|_| "samples still shared")?
        .into_inner()
        .expect("samples lock");

    let mut latencies: Vec<f64> = samples.iter().map(|s| s.ms).collect();
    latencies.sort_by(f64::total_cmp);
    let q = |p: f64| -> f64 {
        if latencies.is_empty() {
            return f64::NAN;
        }
        let idx = ((p * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
        latencies[idx - 1]
    };
    let errors = samples.iter().filter(|s| !s.ok).count();
    let mean = if latencies.is_empty() {
        f64::NAN
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };

    let mut by_method: Vec<(&str, usize, usize)> = Vec::new();
    for s in &samples {
        match by_method.iter_mut().find(|(m, _, _)| *m == s.method) {
            Some(entry) => {
                entry.1 += 1;
                if !s.ok {
                    entry.2 += 1;
                }
            }
            None => by_method.push((s.method, 1, usize::from(!s.ok))),
        }
    }
    by_method.sort_by_key(|(m, _, _)| *m);

    let mut json = format!(
        "{{\"suite\":\"serve\",{},\"requests\":{},\"concurrency\":{concurrency},\
         \"elapsed_s\":{:.6},\"throughput_rps\":{:.3},\"errors\":{errors},\
         \"latency_ms\":{{\"min\":{:.4},\"p50\":{:.4},\"p90\":{:.4},\"p99\":{:.4},\
         \"max\":{:.4},\"mean\":{:.4}}},\"by_method\":{{",
        subvt_bench::benchjson::provenance_fragment(),
        samples.len(),
        elapsed,
        samples.len() as f64 / elapsed,
        latencies.first().copied().unwrap_or(f64::NAN),
        q(0.50),
        q(0.90),
        q(0.99),
        latencies.last().copied().unwrap_or(f64::NAN),
        mean,
    );
    for (i, (method, count, errs)) in by_method.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "\"{method}\":{{\"count\":{count},\"errors\":{errs}}}"
        ));
    }
    json.push_str("}}");

    println!(
        "mixed load: {} requests, {concurrency} threads, {:.1} req/s, \
         p50 {:.2} ms, p99 {:.2} ms, {errors} errors",
        samples.len(),
        samples.len() as f64 / elapsed,
        q(0.50),
        q(0.99),
    );
    if let Some(path) = out {
        let mut file =
            std::fs::File::create(path).map_err(|e| format!("cannot write {path}: {e}"))?;
        writeln!(file, "{json}").map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if errors > 0 {
        return Err(format!("{errors} requests failed"));
    }
    Ok(())
}

/// Deterministic sweep-batching probe. Requires a `--workers 1`
/// server: one `sleep` occupies the single worker, three
/// bias-compatible `idvg` requests pile up behind it, and the worker
/// must merge them into one executor pass on wake-up.
fn run_batch_probe(addr: &str) -> Result<(), String> {
    let counters_before = read_counters(addr)?;
    let sleeper = {
        let addr = addr.to_owned();
        std::thread::spawn(move || {
            Client::connect(addr.as_str())
                .and_then(|mut c| c.call("sleep", r#"{"ms":600,"token":"batch-probe"}"#))
        })
    };
    // Wait until the sleep actually occupies the worker.
    wait_for_gauge(addr, "serve.inflight", 1.0, Duration::from_secs(5))?;
    let probes: Vec<_> = [0.20, 0.25, 0.30]
        .into_iter()
        .map(|v| {
            let addr = addr.to_owned();
            std::thread::spawn(move || {
                Client::connect(addr.as_str()).and_then(|mut c| {
                    c.call(
                        "idvg",
                        &format!(r#"{{"node":"ref90","v_ds":0.05,"v_gs":[{v}]}}"#),
                    )
                })
            })
        })
        .collect();
    // All three must be queued before the sleeper releases the worker.
    wait_for_gauge(addr, "serve.queue.depth", 3.0, Duration::from_secs(5))?;
    for probe in probes {
        let r = probe
            .join()
            .map_err(|_| "probe thread panicked".to_owned())
            .and_then(|r| r.map_err(|e| e.to_string()))?;
        if !r.ok {
            return Err(format!("probe request failed: {}", r.raw));
        }
    }
    sleeper
        .join()
        .map_err(|_| "sleeper thread panicked".to_owned())
        .and_then(|r| r.map_err(|e| e.to_string()))?;
    let counters_after = read_counters(addr)?;
    let delta = |name: &str| -> i64 {
        counters_after.get(name).copied().unwrap_or(0) as i64
            - counters_before.get(name).copied().unwrap_or(0) as i64
    };
    let runs = delta("serve.batch.runs");
    let merged = delta("serve.batch.merged");
    if runs < 1 || merged < 2 {
        return Err(format!(
            "batching did not engage: batch.runs +{runs}, batch.merged +{merged}"
        ));
    }
    println!("batch-probe: ok runs=+{runs} merged=+{merged}");
    Ok(())
}

fn read_counters(addr: &str) -> Result<std::collections::BTreeMap<String, u64>, String> {
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    let r = client.call("metrics", "{}").map_err(|e| e.to_string())?;
    let json = r.result_json()?;
    let mut out = std::collections::BTreeMap::new();
    if let Some(Json::Obj(members)) = json.get("counters").cloned() {
        for (name, value) in members {
            if let Some(v) = value.as_u64() {
                out.insert(name, v);
            }
        }
    }
    Ok(out)
}

fn wait_for_gauge(addr: &str, name: &str, want: f64, timeout: Duration) -> Result<(), String> {
    let started = Instant::now();
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    loop {
        let r = client.call("metrics", "{}").map_err(|e| e.to_string())?;
        let json = r.result_json()?;
        let got = json
            .get("gauges")
            .and_then(|g| g.get(name))
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        if got >= want {
            return Ok(());
        }
        if started.elapsed() > timeout {
            return Err(format!(
                "timed out waiting for gauge {name} >= {want} (last {got})"
            ));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}
