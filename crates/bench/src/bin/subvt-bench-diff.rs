//! Bench-trajectory regression gate for `BENCH_serve.json` artifacts.
//!
//! ```text
//! subvt-bench-diff benches/baselines BENCH_serve.json
//! subvt-bench-diff old.json new.json --threshold 1.5 --min-ms 2
//! subvt-bench-diff benches/baselines BENCH_serve.json --report-only
//! ```
//!
//! The baseline argument is a stamped artifact file or a directory of
//! them (the lexicographically latest `*.json` is used — stamped
//! baselines sort by date when named `YYYY-MM-DD-*.json`). Exit codes:
//! 0 no regression (always, under `--report-only`), 1 regression
//! detected, 2 usage or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use subvt_bench::benchjson::{diff, parse_bench, render_diff, BenchSummary, DiffConfig};

fn main() -> ExitCode {
    match run() {
        Ok(regressed) => {
            if regressed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(msg) => {
            eprintln!("subvt-bench-diff: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<&str> = Vec::new();
    let mut cfg = DiffConfig::default();
    let mut report_only = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--threshold" => {
                cfg.threshold = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|t: &f64| t.is_finite() && *t >= 1.0)
                    .ok_or("--threshold needs a number >= 1.0")?;
            }
            "--min-ms" => {
                cfg.min_ms = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|m: &f64| m.is_finite() && *m >= 0.0)
                    .ok_or("--min-ms needs a non-negative number")?;
            }
            "--report-only" => report_only = true,
            "--help" | "-h" => {
                return Err(
                    "usage: subvt-bench-diff <baseline-file|baselines-dir> <current.json> \
                     [--threshold 1.25] [--min-ms 1.0] [--report-only]"
                        .to_owned(),
                );
            }
            other if other.starts_with("--") => return Err(format!("unknown option `{other}`")),
            other => positional.push(other),
        }
    }
    let [baseline_arg, current_arg] = positional[..] else {
        return Err(
            "expected exactly two positional arguments: <baseline-file|baselines-dir> <current.json> \
             (try --help)"
                .to_owned(),
        );
    };

    let current = load(Path::new(current_arg))?;
    let baseline_path = resolve_baseline(Path::new(baseline_arg), &current.suite)?;
    let baseline = load(&baseline_path)?;
    if baseline.suite != current.suite {
        return Err(format!(
            "suite mismatch: baseline {} is `{}`, current {} is `{}`",
            baseline_path.display(),
            baseline.suite,
            current_arg,
            current.suite
        ));
    }

    let regressions = diff(&baseline, &current, cfg);
    print!(
        "{}",
        render_diff(
            &baseline_path.display().to_string(),
            current_arg,
            &baseline,
            &current,
            &regressions,
            cfg,
        )
    );
    if regressions.is_empty() {
        return Ok(false);
    }
    if report_only {
        println!("(--report-only: regressions reported, exit 0)");
        return Ok(false);
    }
    Ok(true)
}

/// A file is used as-is; a directory resolves to its lexicographically
/// latest `*.json` entry *of the current artifact's suite*, so serve
/// and spice trajectories can share one baselines directory.
fn resolve_baseline(path: &Path, suite: &str) -> Result<PathBuf, String> {
    if !path.is_dir() {
        return Ok(path.to_path_buf());
    }
    let mut latest: Option<PathBuf> = None;
    let entries =
        std::fs::read_dir(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let p = entry.path();
        if p.extension().is_some_and(|ext| ext == "json")
            && load(&p).is_ok_and(|b| b.suite == suite)
            && latest.as_ref().is_none_or(|best| p > *best)
        {
            latest = Some(p);
        }
    }
    latest.ok_or_else(|| format!("no `{suite}`-suite *.json baselines in {}", path.display()))
}

fn load(path: &Path) -> Result<BenchSummary, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse_bench(&text).map_err(|e| format!("{}: {e}", path.display()))
}
