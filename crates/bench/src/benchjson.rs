//! `BENCH_serve.json` provenance stamping and trajectory comparison.
//!
//! Every serve benchmark artifact carries a provenance header —
//! `"schema":1`, the git revision it was measured at, and a UTC
//! timestamp — so a directory of them forms a comparable trajectory.
//! [`parse_bench`] reads one artifact back, [`diff`] compares two and
//! reports quantile regressions, and the `subvt-bench-diff` binary
//! wraps both as the CI gate (`obs-smoke` runs it report-only against
//! `benches/baselines/`).
//!
//! A regression must clear **two** bars: the relative threshold
//! (default 1.25× the baseline) *and* an absolute floor (default
//! 1 ms), so microsecond-level jitter on a fast path can never trip
//! the gate, and a slow path can't hide a real 2× behind "it's only
//! relative".

use subvt_exp::tracefmt::{parse_json, Json};

// The provenance helpers live in `subvt_exp::report` (so `repro --bench`
// can stamp `BENCH_spice.json` without a dependency cycle) and are
// re-exported here for the serve-side writers.
pub use subvt_exp::report::{git_rev, provenance_fragment, BENCH_SCHEMA};

/// The benchmark suites whose artifacts the trajectory gate recognises.
pub const KNOWN_SUITES: [&str; 2] = ["serve", "spice"];

/// One parsed bench artifact (`BENCH_serve.json` / `BENCH_spice.json`)
/// — just the fields the trajectory gate compares.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSummary {
    /// Which suite produced the artifact (`"serve"` or `"spice"`);
    /// baselines are only comparable within a suite.
    pub suite: String,
    /// Schema version (0 for pre-stamping artifacts).
    pub schema: u64,
    /// Git revision the artifact was measured at (`"unknown"` when
    /// absent).
    pub rev: String,
    /// Total requests driven.
    pub requests: u64,
    /// Failed requests.
    pub errors: u64,
    /// Sustained request throughput.
    pub throughput_rps: f64,
    /// Latency quantiles, milliseconds: `(label, value)` in a fixed
    /// order (`p50`, `p90`, `p99`, `mean`, `max`).
    pub latency_ms: Vec<(&'static str, f64)>,
}

/// Latency fields compared by [`diff`], in report order.
const LATENCY_KEYS: [&str; 5] = ["p50", "p90", "p99", "mean", "max"];

/// Parses one bench artifact.
///
/// # Errors
///
/// Returns a message when the text is not JSON, is not from a known
/// suite ([`KNOWN_SUITES`]), or lacks the latency object.
pub fn parse_bench(text: &str) -> Result<BenchSummary, String> {
    let json = parse_json(text.trim()).map_err(|e| format!("bad JSON: {e}"))?;
    let suite = match json.get("suite").and_then(|s| match s {
        Json::Str(s) => Some(s.as_str()),
        _ => None,
    }) {
        Some(s) if KNOWN_SUITES.contains(&s) => s.to_owned(),
        other => {
            return Err(format!(
                "not a recognised benchmark artifact (suite={other:?})"
            ))
        }
    };
    let latency = json
        .get("latency_ms")
        .ok_or("missing latency_ms object")?
        .clone();
    let mut latency_ms = Vec::with_capacity(LATENCY_KEYS.len());
    for key in LATENCY_KEYS {
        let v = latency
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("latency_ms.{key} missing or non-numeric"))?;
        latency_ms.push((key, v));
    }
    Ok(BenchSummary {
        suite,
        schema: json.get("schema").and_then(Json::as_u64).unwrap_or(0),
        rev: match json.get("rev") {
            Some(Json::Str(s)) => s.clone(),
            _ => "unknown".to_owned(),
        },
        requests: json
            .get("requests")
            .and_then(Json::as_u64)
            .ok_or("missing requests")?,
        errors: json.get("errors").and_then(Json::as_u64).unwrap_or(0),
        throughput_rps: json
            .get("throughput_rps")
            .and_then(Json::as_f64)
            .ok_or("missing throughput_rps")?,
        latency_ms,
    })
}

/// Gate thresholds for [`diff`].
#[derive(Debug, Clone, Copy)]
pub struct DiffConfig {
    /// Relative bar: current must exceed `baseline × threshold`.
    pub threshold: f64,
    /// Absolute bar, milliseconds: the regression must also be at
    /// least this large, so jitter on sub-millisecond paths never
    /// trips the gate.
    pub min_ms: f64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            threshold: 1.25,
            min_ms: 1.0,
        }
    }
}

/// One metric that regressed past both bars.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Metric label (`latency.p99`, `throughput_rps`, `errors`).
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// `current / baseline` for latency, `baseline / current` for
    /// throughput — always "how many times worse".
    pub ratio: f64,
}

/// Compares `current` against `baseline`: each latency quantile that
/// is both `threshold×` worse *and* at least `min_ms` slower is a
/// regression; throughput that drops below `baseline / threshold` is
/// a regression; new errors are always a regression.
pub fn diff(baseline: &BenchSummary, current: &BenchSummary, cfg: DiffConfig) -> Vec<Regression> {
    let mut out = Vec::new();
    for ((key, base), (_, cur)) in baseline.latency_ms.iter().zip(&current.latency_ms) {
        if !base.is_finite() || !cur.is_finite() {
            continue;
        }
        if *cur > base * cfg.threshold && cur - base > cfg.min_ms {
            out.push(Regression {
                metric: format!("latency.{key}"),
                baseline: *base,
                current: *cur,
                ratio: if *base > 0.0 {
                    cur / base
                } else {
                    f64::INFINITY
                },
            });
        }
    }
    if baseline.throughput_rps.is_finite()
        && current.throughput_rps.is_finite()
        && baseline.throughput_rps > 0.0
        && current.throughput_rps < baseline.throughput_rps / cfg.threshold
    {
        out.push(Regression {
            metric: "throughput_rps".to_owned(),
            baseline: baseline.throughput_rps,
            current: current.throughput_rps,
            ratio: baseline.throughput_rps / current.throughput_rps.max(f64::MIN_POSITIVE),
        });
    }
    if current.errors > baseline.errors {
        out.push(Regression {
            metric: "errors".to_owned(),
            baseline: baseline.errors as f64,
            current: current.errors as f64,
            ratio: f64::INFINITY,
        });
    }
    out
}

/// Renders the comparison as a human report: provenance line, a row
/// per compared metric, and a verdict.
pub fn render_diff(
    baseline_name: &str,
    current_name: &str,
    baseline: &BenchSummary,
    current: &BenchSummary,
    regressions: &[Regression],
    cfg: DiffConfig,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "bench-diff: {baseline_name} (rev {}) -> {current_name} (rev {})\n",
        baseline.rev, current.rev
    ));
    out.push_str(&format!(
        "gate: regression = > {:.2}x baseline AND > {:.2} ms absolute\n\n",
        cfg.threshold, cfg.min_ms
    ));
    out.push_str(&format!(
        "{:<18} {:>12} {:>12} {:>8}\n",
        "metric", "baseline", "current", "ratio"
    ));
    let flagged = |metric: &str| regressions.iter().any(|r| r.metric == metric);
    for ((key, base), (_, cur)) in baseline.latency_ms.iter().zip(&current.latency_ms) {
        let metric = format!("latency.{key}");
        out.push_str(&format!(
            "{:<18} {:>9.3} ms {:>9.3} ms {:>7.2}x{}\n",
            metric,
            base,
            cur,
            if *base > 0.0 { cur / base } else { f64::NAN },
            if flagged(&metric) { "  REGRESSION" } else { "" }
        ));
    }
    out.push_str(&format!(
        "{:<18} {:>8.1} rps {:>8.1} rps {:>7.2}x{}\n",
        "throughput_rps",
        baseline.throughput_rps,
        current.throughput_rps,
        if baseline.throughput_rps > 0.0 {
            current.throughput_rps / baseline.throughput_rps
        } else {
            f64::NAN
        },
        if flagged("throughput_rps") {
            "  REGRESSION"
        } else {
            ""
        }
    ));
    out.push_str(&format!(
        "{:<18} {:>12} {:>12}         {}\n",
        "errors",
        baseline.errors,
        current.errors,
        if flagged("errors") {
            "  REGRESSION"
        } else {
            ""
        }
    ));
    out.push('\n');
    if regressions.is_empty() {
        out.push_str("verdict: PASS (no quantile regressions)\n");
    } else {
        out.push_str(&format!(
            "verdict: FAIL ({} regression{})\n",
            regressions.len(),
            if regressions.len() == 1 { "" } else { "s" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(p99: f64, throughput: f64, errors: u64) -> String {
        format!(
            "{{\"suite\":\"serve\",\"schema\":1,\"rev\":\"abcdef123456\",\
             \"generated_utc\":\"2026-08-08T00:00:00Z\",\"requests\":200,\
             \"concurrency\":8,\"elapsed_s\":2.0,\"throughput_rps\":{throughput},\
             \"errors\":{errors},\"latency_ms\":{{\"min\":0.8,\"p50\":4.0,\
             \"p90\":9.0,\"p99\":{p99},\"max\":40.0,\"mean\":5.0}},\
             \"by_method\":{{\"vtc\":{{\"count\":20,\"errors\":0}}}}}}"
        )
    }

    #[test]
    fn parses_a_spice_artifact_and_rejects_unknown_suites() {
        let spice = "{\"suite\":\"spice\",\"schema\":1,\"rev\":\"abcdef123456\",\
                     \"generated_utc\":\"2026-08-08T00:00:00Z\",\"requests\":1800,\
                     \"errors\":0,\"elapsed_s\":0.9,\"throughput_rps\":2000.0,\
                     \"latency_ms\":{\"min\":0.002,\"p50\":0.01,\"p90\":0.05,\
                     \"p99\":0.2,\"max\":1.5,\"mean\":0.03},\
                     \"analytic_ms\":120.0,\"spice_ms\":900.0,\
                     \"spice_over_analytic\":7.5,\
                     \"counters\":{\"spice.lu.factor\":12}}";
        let s = parse_bench(spice).unwrap();
        assert_eq!(s.suite, "spice");
        assert_eq!(s.requests, 1800);
        assert_eq!(s.latency_ms[2], ("p99", 0.2));
        let unknown = spice.replace("\"suite\":\"spice\"", "\"suite\":\"tcad\"");
        assert!(parse_bench(&unknown)
            .unwrap_err()
            .contains("not a recognised"));
    }

    #[test]
    fn parses_a_stamped_artifact() {
        let s = parse_bench(&artifact(20.0, 100.0, 0)).unwrap();
        assert_eq!(s.suite, "serve");
        assert_eq!(s.schema, 1);
        assert_eq!(s.rev, "abcdef123456");
        assert_eq!(s.requests, 200);
        assert_eq!(s.latency_ms[2], ("p99", 20.0));
        assert!((s.throughput_rps - 100.0).abs() < 1e-12);
    }

    #[test]
    fn identical_inputs_pass() {
        let s = parse_bench(&artifact(20.0, 100.0, 0)).unwrap();
        assert!(diff(&s, &s.clone(), DiffConfig::default()).is_empty());
        let report = render_diff("base", "cur", &s, &s, &[], DiffConfig::default());
        assert!(report.contains("verdict: PASS"));
    }

    #[test]
    fn doubled_p99_is_a_regression() {
        let base = parse_bench(&artifact(20.0, 100.0, 0)).unwrap();
        let cur = parse_bench(&artifact(40.0, 100.0, 0)).unwrap();
        let regs = diff(&base, &cur, DiffConfig::default());
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "latency.p99");
        assert!((regs[0].ratio - 2.0).abs() < 1e-12);
        let report = render_diff("base", "cur", &base, &cur, &regs, DiffConfig::default());
        assert!(report.contains("latency.p99"));
        assert!(report.contains("REGRESSION"));
        assert!(report.contains("verdict: FAIL (1 regression)"));
    }

    #[test]
    fn small_absolute_jitter_is_not_a_regression() {
        // 2x relative, but only 0.4 ms absolute: under the 1 ms floor.
        let base = parse_bench(&artifact(0.4, 100.0, 0)).unwrap();
        let cur = parse_bench(&artifact(0.8, 100.0, 0)).unwrap();
        assert!(diff(&base, &cur, DiffConfig::default()).is_empty());
    }

    #[test]
    fn throughput_collapse_and_new_errors_are_regressions() {
        let base = parse_bench(&artifact(20.0, 100.0, 0)).unwrap();
        let cur = parse_bench(&artifact(20.0, 50.0, 3)).unwrap();
        let regs = diff(&base, &cur, DiffConfig::default());
        let metrics: Vec<&str> = regs.iter().map(|r| r.metric.as_str()).collect();
        assert_eq!(metrics, ["throughput_rps", "errors"]);
        assert!((regs[0].ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn unstamped_artifacts_still_parse_with_schema_zero() {
        let legacy = "{\"suite\":\"serve\",\"requests\":10,\"concurrency\":2,\
                      \"elapsed_s\":1.0,\"throughput_rps\":10.0,\"errors\":0,\
                      \"latency_ms\":{\"min\":1.0,\"p50\":2.0,\"p90\":3.0,\
                      \"p99\":4.0,\"max\":5.0,\"mean\":2.5},\"by_method\":{}}";
        let s = parse_bench(legacy).unwrap();
        assert_eq!(s.schema, 0);
        assert_eq!(s.rev, "unknown");
    }

    #[test]
    fn provenance_fragment_is_valid_json_members() {
        let wrapped = format!("{{{}}}", provenance_fragment());
        let json = parse_json(&wrapped).unwrap();
        assert_eq!(json.get("schema").and_then(Json::as_u64), Some(1));
        assert!(matches!(json.get("rev"), Some(Json::Str(_))));
        let ts = match json.get("generated_utc") {
            Some(Json::Str(s)) => s.clone(),
            other => panic!("generated_utc missing: {other:?}"),
        };
        assert!(ts.ends_with('Z') && ts.len() == 20, "bad timestamp {ts}");
    }
}
