//! A tiny std-only wall-clock benchmark harness (the workspace builds
//! with no registry access, so `criterion` is out of reach).
//!
//! Each `benches/*.rs` file is a `harness = false` binary:
//!
//! ```no_run
//! let mut h = subvt_bench::Harness::new("tables");
//! h.bench("table1_generalized_scaling", subvt_exp::tables::table1);
//! h.finish();
//! ```
//!
//! Every benchmark is warmed up once, then timed over single-iteration
//! samples until a fixed wall-clock budget or sample cap is hit. The
//! report prints min / median / mean per iteration — min is the headline
//! number (least scheduler noise); the median/mean spread flags jitter.
//! Run with `cargo bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchjson;

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One benchmark's aggregated timings.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Number of timed iterations.
    pub iters: usize,
    /// Fastest single iteration.
    pub min: Duration,
    /// Median iteration.
    pub median: Duration,
    /// Mean iteration.
    pub mean: Duration,
}

/// Collects and reports a suite of wall-clock benchmarks.
pub struct Harness {
    suite: String,
    budget: Duration,
    max_samples: usize,
    results: Vec<BenchResult>,
}

impl Harness {
    /// Creates a suite with the default per-benchmark budget (300 ms of
    /// timed samples, at most 200 of them).
    pub fn new(suite: impl Into<String>) -> Self {
        Self {
            suite: suite.into(),
            budget: Duration::from_millis(300),
            max_samples: 200,
            results: Vec::new(),
        }
    }

    /// Caps the number of timed samples (for expensive benchmarks).
    #[must_use]
    pub fn max_samples(mut self, n: usize) -> Self {
        self.max_samples = n.max(1);
        self
    }

    /// Sets the per-benchmark wall-clock budget.
    #[must_use]
    pub fn budget(mut self, budget: Duration) -> Self {
        self.budget = budget;
        self
    }

    /// Times `f`, printing one report line immediately. The return value
    /// is passed through [`black_box`] so the work cannot be optimized
    /// away.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        black_box(f()); // warm-up: page in code, fill caches
        let mut samples = Vec::new();
        let started = Instant::now();
        while samples.len() < self.max_samples
            && (samples.is_empty() || started.elapsed() < self.budget)
        {
            let t = Instant::now();
            black_box(f());
            samples.push(t.elapsed());
        }
        samples.sort_unstable();
        let iters = samples.len();
        let total: Duration = samples.iter().sum();
        let result = BenchResult {
            name: name.to_owned(),
            iters,
            min: samples[0],
            median: samples[iters / 2],
            mean: total / iters as u32,
        };
        println!(
            "{:<44} {:>12} {:>12} {:>12}   ({} iters)",
            format!("{}/{}", self.suite, result.name),
            fmt_duration(result.min),
            fmt_duration(result.median),
            fmt_duration(result.mean),
            result.iters
        );
        self.results.push(result);
    }

    /// Results recorded so far, in run order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints the suite footer. Call last in `main`.
    pub fn finish(self) {
        println!(
            "{}: {} benchmarks (columns: min / median / mean per iteration)",
            self.suite,
            self.results.len()
        );
    }
}

/// Renders a duration with engineering-style units.
fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_positive_timings() {
        let mut h = Harness::new("test").max_samples(5);
        h.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..1000 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        let r = &h.results()[0];
        assert!(r.iters >= 1 && r.iters <= 5);
        assert!(r.min <= r.median);
        assert!(r.min > Duration::ZERO);
    }

    #[test]
    fn duration_formatting_covers_ranges() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(fmt_duration(Duration::from_micros(2)), "2.00 us");
        assert_eq!(fmt_duration(Duration::from_millis(3)), "3.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }
}
