//! Benchmarks for the device-level figures: Fig. 2 (S_S, I_on/I_off),
//! Fig. 3 (I_on), Fig. 7 (S_S vs L_poly), Fig. 8 (factors vs L_poly) and
//! Fig. 9 (both strategies).

use criterion::{criterion_group, criterion_main, Criterion};
use subvt_core::metrics::energy_factor;
use subvt_core::{SubVthStrategy, TechNode};
use subvt_exp::{figs_device, StudyContext};
use subvt_physics::device::DeviceKind;
use subvt_units::Nanometers;

fn bench_fig2(c: &mut Criterion) {
    let ctx = StudyContext::cached();
    c.bench_function("fig2_ss_ionioff", |b| b.iter(|| figs_device::fig2(ctx)));
}

fn bench_fig3(c: &mut Criterion) {
    let ctx = StudyContext::cached();
    c.bench_function("fig3_ion", |b| b.iter(|| figs_device::fig3(ctx)));
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_ss_vs_l");
    g.sample_size(10);
    let strategy = SubVthStrategy::default();
    g.bench_function("optimize_doping_one_length", |b| {
        b.iter(|| {
            strategy
                .optimize_doping_at_length(
                    TechNode::N45,
                    DeviceKind::Nfet,
                    Nanometers::new(60.0),
                )
                .unwrap()
        })
    });
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_factors");
    g.sample_size(10);
    let strategy = SubVthStrategy::default();
    g.bench_function("energy_factor_at_optimal_doping", |b| {
        b.iter(|| {
            let p = strategy
                .optimize_doping_at_length(
                    TechNode::N45,
                    DeviceKind::Nfet,
                    Nanometers::new(60.0),
                )
                .unwrap();
            energy_factor(&p.characterize())
        })
    });
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let ctx = StudyContext::cached();
    c.bench_function("fig9_lpoly_ss", |b| b.iter(|| figs_device::fig9(ctx)));
}

criterion_group!(benches, bench_fig2, bench_fig3, bench_fig7, bench_fig8, bench_fig9);
criterion_main!(benches);
