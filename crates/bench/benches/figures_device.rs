//! Benchmarks for the device-level figures: Fig. 2 (S_S, I_on/I_off),
//! Fig. 3 (I_on), Fig. 7 (S_S vs L_poly), Fig. 8 (factors vs L_poly) and
//! Fig. 9 (both strategies).

use subvt_bench::Harness;
use subvt_core::metrics::energy_factor;
use subvt_core::{SubVthStrategy, TechNode};
use subvt_exp::{figs_device, StudyContext};
use subvt_physics::device::DeviceKind;
use subvt_units::Nanometers;

fn main() {
    let mut h = Harness::new("figures_device").max_samples(20);
    let ctx = StudyContext::cached();
    h.bench("fig2_ss_ionioff", || figs_device::fig2(ctx));
    h.bench("fig3_ion", || figs_device::fig3(ctx));

    let strategy = SubVthStrategy::default();
    h.bench("fig7_optimize_doping_one_length", || {
        strategy
            .optimize_doping_at_length(TechNode::N45, DeviceKind::Nfet, Nanometers::new(60.0))
            .unwrap()
    });
    h.bench("fig8_energy_factor_at_optimal_doping", || {
        let p = strategy
            .optimize_doping_at_length(TechNode::N45, DeviceKind::Nfet, Nanometers::new(60.0))
            .unwrap();
        energy_factor(&p.characterize())
    });
    h.bench("fig9_lpoly_ss", || figs_device::fig9(ctx));
    h.finish();
}
