//! Engine benchmarks: serial vs pooled execution of the two design
//! flows, the cached `StudyContext::compute` fast path, and the raw
//! executor / cache primitives they are built from.

use subvt_bench::{black_box, Harness};
use subvt_core::strategy::ScalingStrategy;
use subvt_core::{SubVthStrategy, SuperVthStrategy};
use subvt_exp::StudyContext;

fn main() {
    let mut h = Harness::new("engine").max_samples(20);

    // The tentpole comparison: both flows back-to-back on one thread vs
    // overlapped on the engine pool (both uncached — the cache is what
    // `compute_cache_hit` measures).
    h.bench("design_flows_serial", || {
        let sup = SuperVthStrategy::default().design_all().unwrap();
        let sub = SubVthStrategy::default().design_all().unwrap();
        (sup, sub)
    });
    h.bench("design_flows_parallel", || {
        subvt_engine::global().map(vec![true, false], |is_super| {
            if is_super {
                SuperVthStrategy::default().design_all().unwrap()
            } else {
                SubVthStrategy::default().design_all().unwrap()
            }
        })
    });

    // Warm path every experiment takes after the first: a cache lookup
    // plus a flat-float decode.
    black_box(StudyContext::compute().unwrap());
    h.bench("compute_cache_hit", || StudyContext::compute().unwrap());

    // Tracing-overhead A/B on that same warm path: identical work with
    // the telemetry layer live vs globally disabled. The acceptance bar
    // for the trace subsystem is that the traced row stays within ~5% of
    // the untraced one.
    h.bench("compute_cache_hit_traced", || {
        StudyContext::compute().unwrap()
    });
    subvt_engine::trace::set_enabled(false);
    h.bench("compute_cache_hit_untraced", || {
        StudyContext::compute().unwrap()
    });
    subvt_engine::trace::set_enabled(true);

    // Raw span cost: open + attribute + close, amortized over 1k spans.
    h.bench("trace_span_open_close_1k", || {
        for i in 0..1000u64 {
            let _span = subvt_engine::trace::span("bench.span").attr("i", i);
        }
    });

    // Raw primitives, for regression-spotting in the engine itself.
    h.bench("executor_map_64_trivial_jobs", || {
        subvt_engine::global().map((0..64u64).collect(), |i| i.wrapping_mul(2_654_435_761))
    });
    let cache = subvt_engine::Cache::new();
    let payload: Vec<f64> = (0..64).map(f64::from).collect();
    let mut key = 0u64;
    h.bench("cache_get_or_compute_hit", move || {
        key = key.wrapping_add(1) % 8;
        let p = payload.clone();
        cache.get_or_compute::<Vec<f64>>("bench", key, move || p)
    });
    h.finish();
}
