//! Benchmarks regenerating the paper's tables: the generalized-scaling
//! table and the two device-design flows.

use criterion::{criterion_group, criterion_main, Criterion};
use subvt_core::strategy::ScalingStrategy;
use subvt_core::{SubVthStrategy, SuperVthStrategy, TechNode};
use subvt_exp::StudyContext;

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_generalized_scaling", |b| {
        b.iter(subvt_exp::tables::table1)
    });
}

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_supervth_flow");
    g.sample_size(10);
    g.bench_function("design_node_90nm", |b| {
        b.iter(|| SuperVthStrategy::default().design_node(TechNode::N90).unwrap())
    });
    g.bench_function("render_full_table", |b| {
        let ctx = StudyContext::cached();
        b.iter(|| subvt_exp::tables::table2(ctx))
    });
    g.finish();
}

fn bench_table3(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_subvth_flow");
    g.sample_size(10);
    let strategy = SubVthStrategy::default();
    g.bench_function("design_node_90nm", |b| {
        b.iter(|| strategy.design_node(TechNode::N90).unwrap())
    });
    g.bench_function("render_full_table", |b| {
        let ctx = StudyContext::cached();
        b.iter(|| subvt_exp::tables::table3(ctx))
    });
    g.finish();
}

criterion_group!(benches, bench_table1, bench_table2, bench_table3);
criterion_main!(benches);
