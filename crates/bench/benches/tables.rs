//! Benchmarks regenerating the paper's tables: the generalized-scaling
//! table and the two device-design flows.

use subvt_bench::Harness;
use subvt_core::strategy::ScalingStrategy;
use subvt_core::{SubVthStrategy, SuperVthStrategy, TechNode};
use subvt_exp::StudyContext;

fn main() {
    let mut h = Harness::new("tables").max_samples(20);
    h.bench("table1_generalized_scaling", subvt_exp::tables::table1);

    h.bench("table2_design_node_90nm", || {
        SuperVthStrategy::default()
            .design_node(TechNode::N90)
            .unwrap()
    });
    let ctx = StudyContext::cached();
    h.bench("table2_render_full_table", || {
        subvt_exp::tables::table2(ctx)
    });

    let strategy = SubVthStrategy::default();
    h.bench("table3_design_node_90nm", || {
        strategy.design_node(TechNode::N90).unwrap()
    });
    h.bench("table3_render_full_table", || {
        subvt_exp::tables::table3(ctx)
    });
    h.finish();
}
