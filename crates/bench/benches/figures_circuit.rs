//! Benchmarks for the circuit-level figures on the super-V_th designs:
//! Fig. 4 (inverter SNM), Fig. 5 (FO1 delay) and Fig. 6 (V_min / energy).

use subvt_bench::Harness;
use subvt_circuits::chain::InverterChain;
use subvt_exp::figs_circuit::{delay_at, snm_at};
use subvt_exp::StudyContext;
use subvt_units::Volts;

fn main() {
    let mut h = Harness::new("figures_circuit").max_samples(20);
    let ctx = StudyContext::cached();
    h.bench("fig4_snm_90nm_at_250mV", || {
        snm_at(&ctx.supervth[0], Volts::new(0.25))
    });
    h.bench("fig5_spice_fo1_delay_90nm_at_250mV", || {
        delay_at(&ctx.supervth[0], Volts::new(0.25))
    });
    let chain = InverterChain::paper_chain(ctx.supervth[0].cmos_pair());
    h.bench("fig6_minimum_energy_point_90nm", || {
        chain.minimum_energy_point()
    });
    h.finish();
}
