//! Benchmarks for the circuit-level figures on the super-V_th designs:
//! Fig. 4 (inverter SNM), Fig. 5 (FO1 delay) and Fig. 6 (V_min / energy).

use criterion::{criterion_group, criterion_main, Criterion};
use subvt_circuits::chain::InverterChain;
use subvt_exp::figs_circuit::{delay_at, snm_at};
use subvt_exp::StudyContext;
use subvt_units::Volts;

fn bench_fig4(c: &mut Criterion) {
    let ctx = StudyContext::cached();
    let mut g = c.benchmark_group("fig4_snm");
    g.sample_size(10);
    g.bench_function("snm_90nm_at_250mV", |b| {
        b.iter(|| snm_at(&ctx.supervth[0], Volts::new(0.25)))
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let ctx = StudyContext::cached();
    let mut g = c.benchmark_group("fig5_delay");
    g.sample_size(10);
    g.bench_function("spice_fo1_delay_90nm_at_250mV", |b| {
        b.iter(|| delay_at(&ctx.supervth[0], Volts::new(0.25)))
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let ctx = StudyContext::cached();
    let mut g = c.benchmark_group("fig6_vmin");
    g.sample_size(10);
    g.bench_function("minimum_energy_point_90nm", |b| {
        let chain = InverterChain::paper_chain(ctx.supervth[0].cmos_pair());
        b.iter(|| chain.minimum_energy_point())
    });
    g.finish();
}

criterion_group!(benches, bench_fig4, bench_fig5, bench_fig6);
criterion_main!(benches);
