//! Benchmarks for the strategy-comparison figures: Fig. 10 (SNM),
//! Fig. 11 (delay) and Fig. 12 (energy/V_min), measured at the 32 nm
//! node where the paper quotes its headline numbers.

use subvt_bench::Harness;
use subvt_circuits::chain::InverterChain;
use subvt_circuits::delay::analytic_fo1_delay;
use subvt_exp::figs_circuit::snm_at;
use subvt_exp::StudyContext;
use subvt_units::Volts;

fn main() {
    let mut h = Harness::new("figures_compare").max_samples(20);
    let ctx = StudyContext::cached();
    h.bench("fig10_snm_both_strategies_32nm", || {
        let a = snm_at(&ctx.supervth[3], Volts::new(0.25));
        let b = snm_at(&ctx.subvth[3], Volts::new(0.25));
        (a, b)
    });
    h.bench("fig11_delay_compare_analytic", || {
        let a = analytic_fo1_delay(&ctx.supervth[3].cmos_pair(), Volts::new(0.25));
        let b = analytic_fo1_delay(&ctx.subvth[3].cmos_pair(), Volts::new(0.25));
        (a, b)
    });
    h.bench("fig12_mep_both_strategies_32nm", || {
        let a = InverterChain::paper_chain(ctx.supervth[3].cmos_pair()).minimum_energy_point();
        let b = InverterChain::paper_chain(ctx.subvth[3].cmos_pair()).minimum_energy_point();
        (a.energy, b.energy)
    });
    h.finish();
}
