//! Benchmarks for the strategy-comparison figures: Fig. 10 (SNM),
//! Fig. 11 (delay) and Fig. 12 (energy/V_min), measured at the 32 nm
//! node where the paper quotes its headline numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use subvt_circuits::chain::InverterChain;
use subvt_circuits::delay::analytic_fo1_delay;
use subvt_exp::figs_circuit::snm_at;
use subvt_exp::StudyContext;
use subvt_units::Volts;

fn bench_fig10(c: &mut Criterion) {
    let ctx = StudyContext::cached();
    let mut g = c.benchmark_group("fig10_snm_compare");
    g.sample_size(10);
    g.bench_function("snm_both_strategies_32nm", |b| {
        b.iter(|| {
            let a = snm_at(&ctx.supervth[3], Volts::new(0.25));
            let bb = snm_at(&ctx.subvth[3], Volts::new(0.25));
            (a, bb)
        })
    });
    g.finish();
}

fn bench_fig11(c: &mut Criterion) {
    let ctx = StudyContext::cached();
    c.bench_function("fig11_delay_compare_analytic", |b| {
        b.iter(|| {
            let a = analytic_fo1_delay(&ctx.supervth[3].cmos_pair(), Volts::new(0.25));
            let bb = analytic_fo1_delay(&ctx.subvth[3].cmos_pair(), Volts::new(0.25));
            (a, bb)
        })
    });
}

fn bench_fig12(c: &mut Criterion) {
    let ctx = StudyContext::cached();
    let mut g = c.benchmark_group("fig12_energy_compare");
    g.sample_size(10);
    g.bench_function("mep_both_strategies_32nm", |b| {
        b.iter(|| {
            let a = InverterChain::paper_chain(ctx.supervth[3].cmos_pair())
                .minimum_energy_point();
            let bb = InverterChain::paper_chain(ctx.subvth[3].cmos_pair())
                .minimum_energy_point();
            (a.energy, bb.energy)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig10, bench_fig11, bench_fig12);
criterion_main!(benches);
