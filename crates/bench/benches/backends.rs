//! Device-model backend benchmarks: what the `DeviceModel` seam costs
//! (dynamic dispatch over the direct compact-model call) and what the
//! TCAD backend costs once its calibration is cached.

use subvt_bench::{black_box, Harness};
use subvt_model::DeviceModel;
use subvt_physics::device::DeviceParams;
use subvt_tcad::model::TCAD_COARSE;

fn main() {
    let mut h = Harness::new("backends");
    let dev = DeviceParams::reference_90nm_nfet();

    // Baseline: the compact model called directly, as every layer did
    // before the trait seam existed.
    h.bench("analytic_direct", || black_box(&dev).characterize());

    // The same evaluation through `&dyn DeviceModel` — the seam's entire
    // overhead is one vtable call plus the Result wrapper.
    let model = subvt_model::analytic();
    h.bench("analytic_via_trait", || {
        model.characterize(black_box(&dev)).unwrap()
    });

    // Anchored TCAD backend on the warm path: the reference sweep and
    // deck correction are computed once (in the warm-up iteration), so
    // the steady state is analytic work plus cached calibration lookup.
    h.bench("tcad_anchored_calibrated", || {
        TCAD_COARSE.characterize(black_box(&dev)).unwrap()
    });

    h.finish();
}
