//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! compact vs 2-D engines, analytic vs simulated VTC, solver components,
//! and the doping co-optimization the paper's §3 argues for.

use criterion::{criterion_group, criterion_main, Criterion};
use subvt_circuits::inverter::{analytic_vtc, CmosPair, Inverter};
use subvt_physics::device::{DeviceKind, DeviceParams};
use subvt_tcad::device::{MeshDensity, Mosfet2d};
use subvt_tcad::gummel::DeviceSimulator;
use subvt_units::{Nanometers, Volts};

/// Compact characterization vs a full 2-D equilibrium solve: the reason
/// the sweeps run on the compact engine (4–5 orders of magnitude apart).
fn bench_engines(c: &mut Criterion) {
    let params = DeviceParams::reference_90nm_nfet();
    c.bench_function("ablation_compact_characterize", |b| {
        b.iter(|| params.characterize())
    });
    let mut g = c.benchmark_group("ablation_tcad_equilibrium");
    g.sample_size(10);
    g.bench_function("coarse_mesh", |b| {
        b.iter(|| {
            let dev = Mosfet2d::build(&params, MeshDensity::Coarse);
            DeviceSimulator::new(dev).unwrap()
        })
    });
    g.finish();
}

/// Analytic Eq. 3 VTC vs the SPICE DC sweep for the same inverter.
fn bench_vtc_engines(c: &mut Criterion) {
    let pair = CmosPair::balanced(DeviceParams::reference_90nm_nfet());
    c.bench_function("ablation_vtc_analytic_eq3", |b| {
        b.iter(|| analytic_vtc(&pair, Volts::new(0.25), 81))
    });
    let mut g = c.benchmark_group("ablation_vtc_spice");
    g.sample_size(10);
    g.bench_function("dc_sweep_81pts", |b| {
        let inv = Inverter::new(pair);
        b.iter(|| inv.vtc(Volts::new(0.25), 81).unwrap())
    });
    g.finish();
}

/// Single-point I–V evaluation: the inner loop of every sweep.
fn bench_model_eval(c: &mut Criterion) {
    let params = DeviceParams::reference_90nm_nfet();
    let model = params.mos_model();
    c.bench_function("ablation_ekv_current_eval", |b| {
        b.iter(|| model.drain_current(Volts::new(0.25), Volts::new(0.125)))
    });
}

/// Doping co-optimization (paper §3.1): optimized profile vs a fixed
/// heavy-halo profile at the same length — the cost of doing it right.
fn bench_doping_optimization(c: &mut Criterion) {
    use subvt_core::{SubVthStrategy, TechNode};
    let strategy = SubVthStrategy::default();
    let mut g = c.benchmark_group("ablation_doping");
    g.sample_size(10);
    g.bench_function("fixed_halo_ratio", |b| {
        b.iter(|| {
            strategy
                .doping_for_ioff(TechNode::N45, DeviceKind::Nfet, Nanometers::new(60.0), 1.0)
                .unwrap()
        })
    });
    g.bench_function("co_optimized", |b| {
        b.iter(|| {
            strategy
                .optimize_doping_at_length(
                    TechNode::N45,
                    DeviceKind::Nfet,
                    Nanometers::new(60.0),
                )
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_engines,
    bench_vtc_engines,
    bench_model_eval,
    bench_doping_optimization
);
criterion_main!(benches);
