//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! compact vs 2-D engines, analytic vs simulated VTC, solver components,
//! and the doping co-optimization the paper's §3 argues for.

use subvt_bench::Harness;
use subvt_circuits::inverter::{analytic_vtc, CmosPair, Inverter};
use subvt_core::{SubVthStrategy, TechNode};
use subvt_physics::device::{DeviceKind, DeviceParams};
use subvt_tcad::device::{MeshDensity, Mosfet2d};
use subvt_tcad::gummel::DeviceSimulator;
use subvt_units::{Nanometers, Volts};

fn main() {
    let mut h = Harness::new("ablations").max_samples(20);
    let params = DeviceParams::reference_90nm_nfet();

    // Compact characterization vs a full 2-D equilibrium solve: the
    // reason the sweeps run on the compact engine (orders of magnitude).
    h.bench("compact_characterize", || params.characterize());
    h.bench("tcad_equilibrium_coarse_mesh", || {
        let dev = Mosfet2d::build(&params, MeshDensity::Coarse);
        DeviceSimulator::new(dev).unwrap()
    });

    // Analytic Eq. 3 VTC vs the SPICE DC sweep for the same inverter.
    let pair = CmosPair::balanced(params);
    h.bench("vtc_analytic_eq3", || {
        analytic_vtc(&pair, Volts::new(0.25), 81)
    });
    let inv = Inverter::new(CmosPair::balanced(params));
    h.bench("vtc_spice_dc_sweep_81pts", || {
        inv.vtc(Volts::new(0.25), 81).unwrap()
    });

    // Single-point I–V evaluation: the inner loop of every sweep.
    let model = params.mos_model();
    h.bench("ekv_current_eval", || {
        model.drain_current(Volts::new(0.25), Volts::new(0.125))
    });

    // Doping co-optimization (paper §3.1): optimized profile vs a fixed
    // heavy-halo profile at the same length — the cost of doing it right.
    let strategy = SubVthStrategy::default();
    h.bench("doping_fixed_halo_ratio", || {
        strategy
            .doping_for_ioff(TechNode::N45, DeviceKind::Nfet, Nanometers::new(60.0), 1.0)
            .unwrap()
    });
    h.bench("doping_co_optimized", || {
        strategy
            .optimize_doping_at_length(TechNode::N45, DeviceKind::Nfet, Nanometers::new(60.0))
            .unwrap()
    });
    h.finish();
}
