//! Physical constants in device-physics units (cm, V, F/cm, C).
//!
//! Values follow Taur & Ning, *Fundamentals of Modern VLSI Devices* —
//! the same reference (\[19\]) the paper uses for its device expressions.

/// Elementary charge `q` in Coulombs.
pub const Q: f64 = 1.602_176_634e-19;

/// Boltzmann constant `k` in J/K.
pub const K_B: f64 = 1.380_649e-23;

/// Vacuum permittivity `ε₀` in F/cm.
pub const EPS_0: f64 = 8.854_187_8e-14;

/// Relative permittivity of silicon.
pub const EPS_SI_REL: f64 = 11.7;

/// Relative permittivity of SiO₂.
pub const EPS_OX_REL: f64 = 3.9;

/// Permittivity of silicon in F/cm.
pub const EPS_SI: f64 = EPS_SI_REL * EPS_0;

/// Permittivity of SiO₂ in F/cm.
pub const EPS_OX: f64 = EPS_OX_REL * EPS_0;

/// Silicon band gap at 300 K in eV.
pub const E_G_300K: f64 = 1.12;

/// Intrinsic carrier density of silicon at 300 K in cm⁻³.
///
/// Taur & Ning's tabulated value; the paper's expressions (its Eq. 1 and
/// Eq. 2) are taken from the same text.
pub const N_I_300K: f64 = 1.0e10;

/// Effective density of states in the conduction band at 300 K, cm⁻³.
pub const N_C_300K: f64 = 2.8e19;

/// Effective density of states in the valence band at 300 K, cm⁻³.
pub const N_V_300K: f64 = 1.04e19;

/// Electron saturation velocity in silicon, cm/s.
pub const V_SAT_N: f64 = 8.0e6;

/// Hole saturation velocity in silicon, cm/s.
pub const V_SAT_P: f64 = 6.0e6;

/// `ln(10)`, the natural log of ten — converts neper slopes to decades.
pub const LN_10: f64 = core::f64::consts::LN_10;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permittivities_are_consistent() {
        assert!((EPS_SI / EPS_OX - 3.0).abs() < 1e-9);
        assert!((EPS_SI - 1.0359e-12).abs() < 1e-15);
    }

    #[test]
    fn thermal_voltage_from_constants() {
        let vt = K_B * 300.0 / Q;
        assert!((vt - 0.025852).abs() < 1e-5);
    }
}
