//! Time in seconds, with picosecond helpers for gate delays.

use crate::impl_unit;

impl_unit! {
    /// A time in seconds. Gate delays span picoseconds (super-threshold)
    /// to microseconds (deep subthreshold), so the raw unit stays SI and
    /// helpers convert for display.
    Seconds, "s"
}

impl Seconds {
    /// Returns the time in picoseconds.
    #[inline]
    pub const fn as_picoseconds(self) -> f64 {
        self.0 * 1.0e12
    }

    /// Builds from picoseconds.
    #[inline]
    pub const fn from_picoseconds(ps: f64) -> Self {
        Self::new(ps * 1.0e-12)
    }

    /// Returns the time in nanoseconds.
    #[inline]
    pub const fn as_nanoseconds(self) -> f64 {
        self.0 * 1.0e9
    }

    /// Builds from nanoseconds.
    #[inline]
    pub const fn from_nanoseconds(ns: f64) -> Self {
        Self::new(ns * 1.0e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picosecond_round_trip() {
        let t = Seconds::from_picoseconds(1.3);
        assert!((t.as_picoseconds() - 1.3).abs() < 1e-12);
        assert!((t.get() - 1.3e-12).abs() < 1e-24);
    }

    #[test]
    fn nanosecond_round_trip() {
        let t = Seconds::from_nanoseconds(2.5);
        assert!((t.as_nanoseconds() - 2.5).abs() < 1e-12);
        assert!((t.as_picoseconds() - 2500.0).abs() < 1e-9);
    }
}
