//! Physical constants and unit newtypes for the `subvt` workspace.
//!
//! The crates in this workspace move quantities between very different
//! scales — nanometer geometry, `cm⁻³` doping densities, picoampere leakage
//! currents — and silent unit confusion is the classic failure mode of
//! device-physics code. This crate provides:
//!
//! * [`consts`]: physical constants in the unit system conventional in
//!   device physics (centimeters, Farads per centimeter).
//! * Newtypes such as [`Nanometers`], [`Volts`] and [`PerCubicCentimeter`]
//!   that make function signatures self-describing and prevent, e.g.,
//!   passing a doping density where an oxide thickness is expected.
//! * [`Temperature`] with the thermal voltage `v_T = kT/q`.
//!
//! # Examples
//!
//! ```
//! use subvt_units::{Nanometers, Temperature};
//!
//! let t_ox = Nanometers::new(2.1);
//! assert!((t_ox.as_cm() - 2.1e-7).abs() < 1e-20);
//!
//! let room = Temperature::room();
//! assert!((room.thermal_voltage().as_volts() - 0.02585).abs() < 1e-4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod consts;

mod capacitance;
mod current;
mod density;
mod energy;
mod length;
mod temperature;
mod time;
mod voltage;

pub use capacitance::{FaradsPerCm2, FaradsPerMicron};
pub use current::AmpsPerMicron;
pub use density::PerCubicCentimeter;
pub use energy::{Joules, JoulesPerMicron};
pub use length::{Centimeters, Nanometers};
pub use temperature::Temperature;
pub use time::Seconds;
pub use voltage::{MilliVoltsPerDecade, Volts};

/// Declares the boilerplate shared by every `f64`-backed unit newtype:
/// constructors, raw access, arithmetic with itself, and scalar scaling.
macro_rules! impl_unit {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        #[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
        pub struct $name(f64);

        impl $name {
            /// Wraps a raw value expressed in the unit this type names.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in the unit this type names.
            #[inline]
            pub const fn get(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns `true` when the value is finite (not NaN or ±∞).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl core::ops::Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl core::ops::Div for $name {
            /// Dividing two like quantities yields a dimensionless ratio.
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::ops::Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $unit)
                } else {
                    write!(f, "{} {}", self.0, $unit)
                }
            }
        }
    };
}

pub(crate) use impl_unit;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_arithmetic_behaves_like_f64() {
        let a = Volts::new(1.0);
        let b = Volts::new(0.25);
        assert_eq!((a + b).get(), 1.25);
        assert_eq!((a - b).get(), 0.75);
        assert_eq!((a * 2.0).get(), 2.0);
        assert_eq!((a / 4.0).get(), 0.25);
        assert_eq!(a / b, 4.0);
        assert_eq!((-a).get(), -1.0);
    }

    #[test]
    fn display_includes_unit_suffix() {
        let v = Volts::new(0.25);
        assert_eq!(format!("{v:.2}"), "0.25 V");
        let l = Nanometers::new(65.0);
        assert_eq!(format!("{l}"), "65 nm");
    }

    #[test]
    fn min_max_abs() {
        let a = Volts::new(-2.0);
        let b = Volts::new(1.0);
        assert_eq!(a.abs().get(), 2.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert!(a.is_finite());
        assert!(!Volts::new(f64::NAN).is_finite());
    }
}
