//! Volumetric density (doping, carrier concentrations) in cm⁻³.

use crate::impl_unit;

impl_unit! {
    /// A volumetric density in cm⁻³ — doping concentrations
    /// (`N_sub`, `N_p,halo`) and carrier densities.
    ///
    /// # Examples
    ///
    /// ```
    /// use subvt_units::PerCubicCentimeter;
    /// let n_sub = PerCubicCentimeter::new(1.52e18);
    /// assert_eq!(format!("{n_sub:.2e}"), "1.52e18 cm^-3");
    /// ```
    PerCubicCentimeter, "cm^-3"
}

impl PerCubicCentimeter {
    /// Natural log of the ratio to another density — the form that appears
    /// in Fermi potentials (`φ_F = v_T·ln(N_a/n_i)`).
    ///
    /// # Panics
    ///
    /// Debug-asserts that both densities are positive.
    #[inline]
    pub fn ln_ratio(self, reference: Self) -> f64 {
        debug_assert!(self.get() > 0.0 && reference.get() > 0.0);
        (self.get() / reference.get()).ln()
    }
}

impl core::fmt::LowerExp for PerCubicCentimeter {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.*e} cm^-3", prec, self.get())
        } else {
            write!(f, "{:e} cm^-3", self.get())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_ratio_matches_f64() {
        let n = PerCubicCentimeter::new(1.0e18);
        let ni = PerCubicCentimeter::new(1.0e10);
        assert!((n.ln_ratio(ni) - (1.0e8f64).ln()).abs() < 1e-12);
    }
}
