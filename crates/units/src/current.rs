//! Width-normalized current in A/µm, the industry convention for
//! transistor on- and off-currents.

use crate::impl_unit;

impl_unit! {
    /// A width-normalized drain current in amps per micron of gate width.
    ///
    /// The paper's leakage budgets are quoted this way
    /// (e.g. `I_off = 100 pA/µm` at the 90 nm node).
    ///
    /// # Examples
    ///
    /// ```
    /// use subvt_units::AmpsPerMicron;
    /// let i_off = AmpsPerMicron::from_picoamps(100.0);
    /// assert_eq!(i_off.as_picoamps(), 100.0);
    /// ```
    AmpsPerMicron, "A/um"
}

impl AmpsPerMicron {
    /// Returns the current in pA/µm.
    #[inline]
    pub const fn as_picoamps(self) -> f64 {
        self.0 * 1.0e12
    }

    /// Builds from pA/µm.
    #[inline]
    pub const fn from_picoamps(pa: f64) -> Self {
        Self::new(pa * 1.0e-12)
    }

    /// Returns the current in µA/µm (the usual unit for on-current).
    #[inline]
    pub const fn as_microamps(self) -> f64 {
        self.0 * 1.0e6
    }

    /// Builds from µA/µm.
    #[inline]
    pub const fn from_microamps(ua: f64) -> Self {
        Self::new(ua * 1.0e-6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn pico_and_micro_conversions() {
        let i = AmpsPerMicron::new(1.0e-6);
        assert_eq!(i.as_microamps(), 1.0);
        assert_eq!(i.as_picoamps(), 1.0e6);
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn pa_round_trip(pa in 1e-3f64..1e9) {
            let i = AmpsPerMicron::from_picoamps(pa);
            prop_assert!((i.as_picoamps() - pa).abs() <= pa * 1e-12);
        }
    }
}
