//! Absolute temperature and the thermal voltage `v_T = kT/q`.

use crate::consts::{K_B, Q};
use crate::Volts;

/// An absolute temperature in Kelvin.
///
/// All of the paper's analysis is at room temperature (`T = 300 K`), but the
/// physics crates accept a [`Temperature`] so temperature sweeps — an
/// important subthreshold design concern — are possible.
///
/// # Examples
///
/// ```
/// use subvt_units::Temperature;
/// let t = Temperature::room();
/// // 2.3·v_T ≈ 59.5 mV/dec: the ideal subthreshold-swing floor.
/// let floor = 2.3 * t.thermal_voltage().as_volts() * 1.0e3;
/// assert!((floor - 59.5).abs() < 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Temperature(f64);

impl Temperature {
    /// Room temperature, 300 K — the paper's operating point.
    #[inline]
    pub const fn room() -> Self {
        Self(300.0)
    }

    /// Builds from a value in Kelvin.
    ///
    /// # Panics
    ///
    /// Panics if `kelvin` is not strictly positive and finite.
    #[inline]
    pub fn from_kelvin(kelvin: f64) -> Self {
        assert!(
            kelvin.is_finite() && kelvin > 0.0,
            "temperature must be positive and finite, got {kelvin}"
        );
        Self(kelvin)
    }

    /// Builds from a value in degrees Celsius.
    ///
    /// # Panics
    ///
    /// Panics if the resulting absolute temperature is not positive.
    #[inline]
    pub fn from_celsius(celsius: f64) -> Self {
        Self::from_kelvin(celsius + 273.15)
    }

    /// Returns the temperature in Kelvin.
    #[inline]
    pub const fn as_kelvin(self) -> f64 {
        self.0
    }

    /// The thermal voltage `v_T = kT/q` (≈25.85 mV at 300 K).
    #[inline]
    pub fn thermal_voltage(self) -> Volts {
        Volts::new(K_B * self.0 / Q)
    }
}

impl Default for Temperature {
    fn default() -> Self {
        Self::room()
    }
}

impl core::fmt::Display for Temperature {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} K", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn room_temperature_thermal_voltage() {
        let vt = Temperature::room().thermal_voltage().as_volts();
        assert!((vt - 0.025852).abs() < 1e-5);
    }

    #[test]
    fn celsius_conversion() {
        let t = Temperature::from_celsius(26.85);
        assert!((t.as_kelvin() - 300.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn zero_kelvin_rejected() {
        let _ = Temperature::from_kelvin(0.0);
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn thermal_voltage_scales_linearly(t in 100.0f64..500.0) {
            let v1 = Temperature::from_kelvin(t).thermal_voltage().as_volts();
            let v2 = Temperature::from_kelvin(2.0 * t).thermal_voltage().as_volts();
            prop_assert!((v2 - 2.0 * v1).abs() < 1e-12);
        }
    }
}
