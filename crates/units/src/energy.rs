//! Energy units: absolute Joules and width-normalized J/µm.

use crate::impl_unit;

impl_unit! {
    /// An energy in Joules. Circuit energies in this workspace are tiny —
    /// femtojoules per cycle — so [`Joules::as_femtojoules`] is the usual
    /// display path.
    Joules, "J"
}

impl_unit! {
    /// A width-normalized energy in J/µm, used when gate capacitances are
    /// carried per micron of width.
    JoulesPerMicron, "J/um"
}

impl Joules {
    /// Returns the energy in femtojoules.
    #[inline]
    pub const fn as_femtojoules(self) -> f64 {
        self.0 * 1.0e15
    }

    /// Builds from femtojoules.
    #[inline]
    pub const fn from_femtojoules(fj: f64) -> Self {
        Self::new(fj * 1.0e-15)
    }

    /// Returns the energy in attojoules.
    #[inline]
    pub const fn as_attojoules(self) -> f64 {
        self.0 * 1.0e18
    }
}

impl JoulesPerMicron {
    /// Scales by a width in microns to recover an absolute energy.
    #[inline]
    pub fn times_width_um(self, width_um: f64) -> Joules {
        Joules::new(self.get() * width_um)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn femto_and_atto_scales() {
        let e = Joules::from_femtojoules(2.6);
        assert!((e.as_femtojoules() - 2.6).abs() < 1e-12);
        assert!((e.as_attojoules() - 2600.0).abs() < 1e-9);
    }

    #[test]
    fn width_scaling() {
        let e = JoulesPerMicron::new(1.0e-15).times_width_um(3.0);
        assert!((e.as_femtojoules() - 3.0).abs() < 1e-12);
    }
}
