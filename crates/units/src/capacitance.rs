//! Capacitance units: per-area (F/cm²) for oxide stacks and
//! width-normalized (F/µm) for gate loads.

use crate::impl_unit;

impl_unit! {
    /// An areal capacitance in F/cm² (e.g. the oxide capacitance
    /// `C_ox = ε_ox / T_ox`).
    FaradsPerCm2, "F/cm^2"
}

impl_unit! {
    /// A width-normalized capacitance in F/µm — gate and load capacitances
    /// quoted per micron of transistor width, matching [`AmpsPerMicron`]
    /// so that `C·V/I` delays come out in seconds.
    ///
    /// [`AmpsPerMicron`]: crate::AmpsPerMicron
    FaradsPerMicron, "F/um"
}

impl FaradsPerCm2 {
    /// Multiplies by a gate length to get a width-normalized capacitance.
    ///
    /// `C_g/W = C_ox · L`, with `L` in cm and the result per µm of width
    /// (1 µm = 1e-4 cm of width).
    #[inline]
    pub fn times_length_cm(self, length_cm: f64) -> FaradsPerMicron {
        FaradsPerMicron::new(self.get() * length_cm * 1.0e-4)
    }
}

impl FaradsPerMicron {
    /// Returns the capacitance in fF/µm, the customary display unit.
    #[inline]
    pub const fn as_femtofarads(self) -> f64 {
        self.0 * 1.0e15
    }

    /// Builds from fF/µm.
    #[inline]
    pub const fn from_femtofarads(ff: f64) -> Self {
        Self::new(ff * 1.0e-15)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oxide_cap_to_gate_cap() {
        // C_ox = 1.64e-6 F/cm², L = 65 nm = 65e-7 cm.
        // C_g/W = 1.64e-6 * 65e-7 * 1e-4 = 1.066e-15 F/µm ≈ 1.07 fF/µm.
        let cox = FaradsPerCm2::new(1.64e-6);
        let cg = cox.times_length_cm(65.0e-7);
        assert!((cg.as_femtofarads() - 1.066).abs() < 0.01);
    }

    #[test]
    fn femtofarad_round_trip() {
        let c = FaradsPerMicron::from_femtofarads(1.5);
        assert!((c.as_femtofarads() - 1.5).abs() < 1e-12);
        assert!((c.get() - 1.5e-15).abs() < 1e-27);
    }
}
