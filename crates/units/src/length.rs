//! Length units: nanometers for geometry, centimeters for physics formulas.

use crate::impl_unit;

impl_unit! {
    /// A length in nanometers — the natural unit for device geometry
    /// (`L_poly`, `T_ox`, junction depths).
    ///
    /// # Examples
    ///
    /// ```
    /// use subvt_units::Nanometers;
    /// let l_poly = Nanometers::new(65.0);
    /// assert_eq!(l_poly.as_cm(), 65.0e-7);
    /// ```
    Nanometers, "nm"
}

impl_unit! {
    /// A length in centimeters — the unit device-physics formulas use
    /// (doping in cm⁻³, capacitance in F/cm², mobility in cm²/Vs).
    Centimeters, "cm"
}

impl Nanometers {
    /// Converts to centimeters (1 nm = 1e-7 cm).
    #[inline]
    pub const fn as_cm(self) -> f64 {
        self.0 * 1.0e-7
    }

    /// Converts to the [`Centimeters`] newtype.
    #[inline]
    pub const fn to_centimeters(self) -> Centimeters {
        Centimeters::new(self.as_cm())
    }
}

impl Centimeters {
    /// Converts to nanometers (1 cm = 1e7 nm).
    #[inline]
    pub const fn as_nm(self) -> f64 {
        self.0 * 1.0e7
    }

    /// Converts to the [`Nanometers`] newtype.
    #[inline]
    pub const fn to_nanometers(self) -> Nanometers {
        Nanometers::new(self.as_nm())
    }
}

impl From<Nanometers> for Centimeters {
    fn from(value: Nanometers) -> Self {
        value.to_centimeters()
    }
}

impl From<Centimeters> for Nanometers {
    fn from(value: Centimeters) -> Self {
        value.to_nanometers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn nm_cm_round_trip_exact_cases() {
        assert!((Nanometers::new(100.0).as_cm() - 1.0e-5).abs() < 1e-18);
        assert!((Centimeters::new(1.0e-7).as_nm() - 1.0).abs() < 1e-12);
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn nm_cm_round_trip(value in 0.01f64..1.0e6) {
            let nm = Nanometers::new(value);
            let back = nm.to_centimeters().to_nanometers();
            prop_assert!((back.get() - value).abs() <= value * 1e-12);
        }

        #[test]
        fn conversion_preserves_order(a in 0.01f64..1.0e6, b in 0.01f64..1.0e6) {
            let (na, nb) = (Nanometers::new(a), Nanometers::new(b));
            prop_assert_eq!(na < nb, na.to_centimeters() < nb.to_centimeters());
        }
    }
}
