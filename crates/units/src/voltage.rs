//! Voltage units and the inverse-subthreshold-slope unit mV/decade.

use crate::impl_unit;

impl_unit! {
    /// An electric potential in volts.
    ///
    /// # Examples
    ///
    /// ```
    /// use subvt_units::Volts;
    /// let vdd = Volts::new(0.25);
    /// assert_eq!(vdd.as_millivolts(), 250.0);
    /// ```
    Volts, "V"
}

impl_unit! {
    /// Inverse subthreshold slope `S_S` in millivolts per decade of drain
    /// current — the paper's central device metric (its Eq. 2).
    ///
    /// The theoretical room-temperature floor is `2.3·v_T ≈ 60 mV/dec`.
    MilliVoltsPerDecade, "mV/dec"
}

impl Volts {
    /// Returns the value in volts (alias of [`Volts::get`] that reads
    /// better at call sites mixing several unit types).
    #[inline]
    pub const fn as_volts(self) -> f64 {
        self.0
    }

    /// Returns the value in millivolts.
    #[inline]
    pub const fn as_millivolts(self) -> f64 {
        self.0 * 1.0e3
    }

    /// Builds a voltage from millivolts.
    #[inline]
    pub const fn from_millivolts(mv: f64) -> Self {
        Self::new(mv * 1.0e-3)
    }
}

impl MilliVoltsPerDecade {
    /// Returns the slope in volts per decade.
    #[inline]
    pub const fn as_volts_per_decade(self) -> f64 {
        self.0 * 1.0e-3
    }

    /// Builds from volts per decade.
    #[inline]
    pub const fn from_volts_per_decade(v: f64) -> Self {
        Self::new(v * 1.0e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn millivolt_conversions() {
        assert_eq!(Volts::from_millivolts(250.0).as_volts(), 0.25);
        assert_eq!(Volts::new(1.2).as_millivolts(), 1200.0);
        assert_eq!(MilliVoltsPerDecade::from_volts_per_decade(0.08).get(), 80.0);
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn mv_round_trip(v in -10.0f64..10.0) {
            let volts = Volts::new(v);
            let back = Volts::from_millivolts(volts.as_millivolts());
            prop_assert!((back.get() - v).abs() <= v.abs() * 1e-12 + 1e-15);
        }
    }
}
