//! The TCAD evaluation backend: [`TcadModel`] implements
//! [`subvt_model::DeviceModel`] on top of [`sweep_and_extract`], with a
//! one-time calibration against the compact reference device.
//!
//! # Calibration
//!
//! The 2-D solver and the compact model disagree systematically at the
//! reference 90 nm NFET: the constant-current threshold criterion sits
//! ~0.18 V below the compact `V_th,sat`, which carries ~2 decades more
//! off-current (see the `integration_tcad_vs_compact` suite). Exactly as
//! a production TCAD deck is calibrated against measured silicon, the
//! backend removes that deck offset with anchor-derived corrections —
//! here the "silicon" is the compact reference — while the *relative*
//! 2-D electrostatics (swing and DIBL ratios, and under
//! [`Fidelity::Direct`] every per-device trend) are preserved.
//!
//! # Fidelity
//!
//! * [`Fidelity::Anchored`] (default): one cached extraction of the
//!   reference device per mesh density; every characterization is the
//!   analytic result re-shaped by the anchor's swing/DIBL ratios. This
//!   is what lets the design flows — thousands of characterizations per
//!   doping search — run under `--backend tcad` in CLI time.
//! * [`Fidelity::Direct`]: a full (cached) 2-D extraction per device,
//!   deck-corrected into the compact frame. Used by the
//!   `ext-backends` comparison experiment and the parity tests.
//!
//! Calibrations and per-device corrections live in the engine cache
//! under the `tcad.model` namespace (raw sweeps stay in `tcad.extract`),
//! so a second `repro --backend tcad` run with `--cache` re-simulates
//! nothing.

use std::sync::OnceLock;

use subvt_engine::{Blob, KeyBuilder};
use subvt_model::{DeviceModel, ModelError};
use subvt_physics::device::{DeviceCharacteristics, DeviceKind, DeviceParams};
use subvt_physics::swing::slope_factor;
use subvt_units::{AmpsPerMicron, MilliVoltsPerDecade, Seconds, Volts};

use crate::device::MeshDensity;
use crate::extract::sweep_and_extract;
use crate::gummel::TcadError;

/// How much 2-D simulation a [`TcadModel`] characterization runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Single anchor extraction; per-device results are analytic
    /// characterizations re-shaped by the anchor's swing/DIBL ratios.
    Anchored,
    /// One (cached) 2-D extraction per device, deck-corrected into the
    /// compact frame.
    Direct,
}

impl Fidelity {
    /// Stable spelling used in cache identifiers.
    pub fn as_str(self) -> &'static str {
        match self {
            Fidelity::Anchored => "anchored",
            Fidelity::Direct => "direct",
        }
    }
}

/// Anchor-derived deck corrections mapping raw 2-D extractions into the
/// compact model's frame (exact at the reference device by
/// construction).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Calibration {
    /// Raw 2-D vs compact swing ratio at the anchor.
    ss_ratio: f64,
    /// Raw 2-D vs compact DIBL ratio at the anchor.
    dibl_ratio: f64,
    /// Added to a raw extracted `V_th,sat` (corrects the
    /// constant-current criterion to the compact definition), volts.
    vth_shift: f64,
    /// Multiplies a raw extracted off-current.
    ioff_scale: f64,
    /// Multiplies a raw extracted on-current.
    ion_scale: f64,
}

impl Blob for Calibration {
    fn encode(&self) -> Vec<f64> {
        vec![
            self.ss_ratio,
            self.dibl_ratio,
            self.vth_shift,
            self.ioff_scale,
            self.ion_scale,
        ]
    }
    fn decode(record: &[f64]) -> Option<Self> {
        match record {
            [ss_ratio, dibl_ratio, vth_shift, ioff_scale, ion_scale] => Some(Self {
                ss_ratio: *ss_ratio,
                dibl_ratio: *dibl_ratio,
                vth_shift: *vth_shift,
                ioff_scale: *ioff_scale,
                ion_scale: *ion_scale,
            }),
            _ => None,
        }
    }
}

/// Per-device correction, already in the compact frame: ratios/deltas
/// applied to the device's analytic characterization.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Adjust {
    ss_ratio: f64,
    dibl_ratio: f64,
    vth_delta: f64,
    ioff_ratio: f64,
    ion_ratio: f64,
}

impl Adjust {
    fn is_finite(&self) -> bool {
        self.ss_ratio.is_finite()
            && self.ss_ratio > 0.0
            && self.dibl_ratio.is_finite()
            && self.vth_delta.is_finite()
            && self.ioff_ratio.is_finite()
            && self.ioff_ratio > 0.0
            && self.ion_ratio.is_finite()
            && self.ion_ratio > 0.0
    }
}

impl Blob for Adjust {
    fn encode(&self) -> Vec<f64> {
        vec![
            self.ss_ratio,
            self.dibl_ratio,
            self.vth_delta,
            self.ioff_ratio,
            self.ion_ratio,
        ]
    }
    fn decode(record: &[f64]) -> Option<Self> {
        match record {
            [ss_ratio, dibl_ratio, vth_delta, ioff_ratio, ion_ratio] => Some(Self {
                ss_ratio: *ss_ratio,
                dibl_ratio: *dibl_ratio,
                vth_delta: *vth_delta,
                ioff_ratio: *ioff_ratio,
                ion_ratio: *ion_ratio,
            }),
            _ => None,
        }
    }
}

fn tcad_err(e: TcadError) -> ModelError {
    ModelError::Backend {
        backend: "tcad",
        message: e.to_string(),
    }
}

/// Applies a compact-frame correction to an analytic characterization,
/// keeping the derived fields (`m`, `V_th,lin`, `τ`) self-consistent.
fn apply(params: &DeviceParams, base: DeviceCharacteristics, adj: Adjust) -> DeviceCharacteristics {
    let v_dd = params.v_dd.as_volts();
    let mut c = base;
    c.s_s = MilliVoltsPerDecade::new(base.s_s.get() * adj.ss_ratio);
    c.m = slope_factor(c.s_s, params.temperature);
    c.dibl = base.dibl * adj.dibl_ratio;
    c.v_th_sat = Volts::new(base.v_th_sat.as_volts() + adj.vth_delta);
    c.v_th_lin = Volts::new(c.v_th_sat.as_volts() + c.dibl * (v_dd - 0.05));
    c.i0 = AmpsPerMicron::new(base.i0.get() * adj.ioff_ratio);
    c.i_off = AmpsPerMicron::new(base.i_off.get() * adj.ioff_ratio);
    c.i_on = AmpsPerMicron::new(base.i_on.get() * adj.ion_ratio);
    c.tau = Seconds::new(c.c_g.get() * v_dd / c.i_on.get().max(1e-30));
    c
}

/// The 2-D TCAD backend (see the module docs for the calibration and
/// fidelity semantics).
#[derive(Debug)]
pub struct TcadModel {
    density: MeshDensity,
    fidelity: Fidelity,
    calibration: OnceLock<Result<Calibration, ModelError>>,
}

/// Coarse-mesh anchored backend — the `repro --backend tcad` default.
pub static TCAD_COARSE: TcadModel = TcadModel::new(MeshDensity::Coarse, Fidelity::Anchored);
/// Coarse-mesh per-device backend (one cached extraction per device).
pub static TCAD_COARSE_DIRECT: TcadModel = TcadModel::new(MeshDensity::Coarse, Fidelity::Direct);
/// Standard-mesh anchored backend.
pub static TCAD_STANDARD: TcadModel = TcadModel::new(MeshDensity::Standard, Fidelity::Anchored);
/// Standard-mesh per-device backend.
pub static TCAD_STANDARD_DIRECT: TcadModel =
    TcadModel::new(MeshDensity::Standard, Fidelity::Direct);

impl TcadModel {
    /// Creates a backend at the given mesh density and fidelity. The
    /// calibration is computed lazily on first use (and memoized, on top
    /// of the engine cache entry).
    pub const fn new(density: MeshDensity, fidelity: Fidelity) -> Self {
        Self {
            density,
            fidelity,
            calibration: OnceLock::new(),
        }
    }

    /// Mesh density every extraction under this backend uses.
    pub fn density(&self) -> MeshDensity {
        self.density
    }

    /// Fidelity mode of this backend.
    pub fn fidelity(&self) -> Fidelity {
        self.fidelity
    }

    fn calibration(&self) -> Result<Calibration, ModelError> {
        self.calibration
            .get_or_init(|| {
                let anchor = DeviceParams::reference_90nm_nfet();
                let density = self.density;
                let key = KeyBuilder::new("tcad.model.cal.v1")
                    .keyed(&anchor)
                    .str(density.as_str())
                    .finish();
                subvt_engine::global_cache().try_get_or_compute("tcad.model", key, move || {
                    let _span = subvt_engine::trace::span("tcad.model.calibrate");
                    let ext = sweep_and_extract(&anchor, density).map_err(tcad_err)?;
                    let base = anchor.characterize();
                    let cal = Calibration {
                        ss_ratio: ext.s_s / base.s_s.get(),
                        dibl_ratio: ext.dibl / base.dibl,
                        vth_shift: base.v_th_sat.as_volts() - ext.v_th_sat,
                        ioff_scale: base.i_off.get() / ext.i_off,
                        ion_scale: base.i_on.get() / ext.i_on,
                    };
                    let ok = cal.ss_ratio.is_finite()
                        && cal.ss_ratio > 0.0
                        && cal.dibl_ratio.is_finite()
                        && cal.vth_shift.is_finite()
                        && cal.ioff_scale.is_finite()
                        && cal.ioff_scale > 0.0
                        && cal.ion_scale.is_finite()
                        && cal.ion_scale > 0.0;
                    if ok {
                        Ok(cal)
                    } else {
                        Err(ModelError::Backend {
                            backend: "tcad",
                            message: format!("degenerate anchor extraction: {ext:?}"),
                        })
                    }
                })
            })
            .clone()
    }

    /// Per-device correction under [`Fidelity::Direct`]: a cached 2-D
    /// extraction of the device's NFET-frame mirror (the 2-D solver
    /// models electron transport only), deck-corrected and expressed as
    /// ratios against the mirror's analytic characterization — which
    /// transfers the TCAD trends onto either polarity.
    fn direct_adjust(&self, params: &DeviceParams) -> Result<Adjust, ModelError> {
        let cal = self.calibration()?;
        let mirror = DeviceParams {
            kind: DeviceKind::Nfet,
            ..*params
        };
        let density = self.density;
        let key = KeyBuilder::new("tcad.model.direct.v1")
            .keyed(&mirror)
            .str(density.as_str())
            .finish();
        subvt_engine::global_cache().try_get_or_compute("tcad.model", key, move || {
            let ext = sweep_and_extract(&mirror, density).map_err(tcad_err)?;
            let mbase = mirror.characterize();
            let adj = Adjust {
                ss_ratio: ext.s_s / mbase.s_s.get(),
                dibl_ratio: ext.dibl / mbase.dibl,
                vth_delta: (ext.v_th_sat + cal.vth_shift) - mbase.v_th_sat.as_volts(),
                ioff_ratio: ext.i_off * cal.ioff_scale / mbase.i_off.get(),
                ion_ratio: ext.i_on * cal.ion_scale / mbase.i_on.get(),
            };
            if adj.is_finite() {
                Ok(adj)
            } else {
                Err(ModelError::Backend {
                    backend: "tcad",
                    message: format!("degenerate extraction {ext:?} at {mirror:?}"),
                })
            }
        })
    }
}

impl DeviceModel for TcadModel {
    fn name(&self) -> &'static str {
        "tcad"
    }

    fn cache_id(&self) -> String {
        format!("tcad.{}.{}", self.density.as_str(), self.fidelity.as_str())
    }

    fn characterize(&self, params: &DeviceParams) -> Result<DeviceCharacteristics, ModelError> {
        let base = params.characterize();
        let adj = match self.fidelity {
            Fidelity::Anchored => {
                let cal = self.calibration()?;
                Adjust {
                    ss_ratio: cal.ss_ratio,
                    dibl_ratio: cal.dibl_ratio,
                    vth_delta: 0.0,
                    ioff_ratio: 1.0,
                    ion_ratio: 1.0,
                }
            }
            Fidelity::Direct => self.direct_adjust(params)?,
        };
        Ok(apply(params, base, adj))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_ids_distinguish_configurations() {
        let ids = [
            TCAD_COARSE.cache_id(),
            TCAD_COARSE_DIRECT.cache_id(),
            TCAD_STANDARD.cache_id(),
            TCAD_STANDARD_DIRECT.cache_id(),
        ];
        for (i, a) in ids.iter().enumerate() {
            assert!(a.starts_with("tcad."), "{a}");
            for b in &ids[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(TCAD_COARSE.name(), "tcad");
    }

    #[test]
    fn identity_adjust_changes_only_derived_vth_lin() {
        let p = DeviceParams::reference_90nm_nfet();
        let base = p.characterize();
        let adj = Adjust {
            ss_ratio: 1.0,
            dibl_ratio: 1.0,
            vth_delta: 0.0,
            ioff_ratio: 1.0,
            ion_ratio: 1.0,
        };
        let c = apply(&p, base, adj);
        assert_eq!(c.s_s, base.s_s);
        assert_eq!(c.v_th_sat, base.v_th_sat);
        assert_eq!(c.i_off, base.i_off);
        assert_eq!(c.i_on, base.i_on);
        // v_th_lin is rebuilt from v_th_sat + DIBL·(V_dd − 50 mV); the
        // analytic value comes from the roll-off expressions directly,
        // so it may move slightly but must stay above v_th_sat.
        assert!(c.v_th_lin > c.v_th_sat);
    }

    #[test]
    fn apply_rescales_swing_and_keeps_m_consistent() {
        let p = DeviceParams::reference_90nm_nfet();
        let base = p.characterize();
        let adj = Adjust {
            ss_ratio: 1.1,
            dibl_ratio: 0.9,
            vth_delta: 0.02,
            ioff_ratio: 2.0,
            ion_ratio: 0.5,
        };
        let c = apply(&p, base, adj);
        assert!((c.s_s.get() / base.s_s.get() - 1.1).abs() < 1e-12);
        assert!(
            (c.m / slope_factor(c.s_s, p.temperature) - 1.0).abs() < 1e-12,
            "m must follow the adjusted swing"
        );
        assert!((c.i_off.get() / base.i_off.get() - 2.0).abs() < 1e-12);
        assert!((c.i_on.get() / base.i_on.get() - 0.5).abs() < 1e-12);
        assert!((c.v_th_sat.as_volts() - base.v_th_sat.as_volts() - 0.02).abs() < 1e-12);
        // τ rebuilt from the adjusted on-current.
        assert!((c.tau.get() / (base.tau.get() * 2.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn calibration_and_adjust_blobs_round_trip() {
        let cal = Calibration {
            ss_ratio: 1.01,
            dibl_ratio: 0.85,
            vth_shift: 0.179,
            ioff_scale: 4.6e-3,
            ion_scale: 0.27,
        };
        assert_eq!(Calibration::decode(&cal.encode()), Some(cal));
        assert_eq!(Calibration::decode(&[1.0]), None);
        let adj = Adjust {
            ss_ratio: 1.0,
            dibl_ratio: 1.0,
            vth_delta: 0.0,
            ioff_ratio: 1.0,
            ion_ratio: 1.0,
        };
        assert_eq!(Adjust::decode(&adj.encode()), Some(adj));
        assert_eq!(Adjust::decode(&[]), None);
    }
}
