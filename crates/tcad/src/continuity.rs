//! Scharfetter–Gummel electron continuity: given a potential field, the
//! steady-state electron density solves a linear M-matrix system, solved
//! directly with the banded LU (robust against the 18-decade dynamic
//! range of carrier densities).
//!
//! The solver is unipolar (electrons only): hole current is negligible
//! for the NFET terminal characteristics studied here, and holes stay in
//! quasi-equilibrium with the grounded substrate (`φ_p = 0`). This is
//! the standard approximation for MOSFET subthreshold analysis.

use subvt_units::consts::Q;

use crate::banded::BandedMatrix;
use crate::device::Mosfet2d;
use crate::mesh::{Boundary, Mesh};
use crate::poisson::{thermals, Bias};

/// Bernoulli function `B(x) = x/(e^x − 1)`, series-expanded near zero.
///
/// # Examples
///
/// ```
/// use subvt_tcad::continuity::bernoulli;
/// assert!((bernoulli(0.0) - 1.0).abs() < 1e-12);
/// assert!((bernoulli(1e-8) - 1.0).abs() < 1e-7);
/// // Identity: B(-x) = B(x)·e^x.
/// let x = 2.3;
/// assert!((bernoulli(-x) - bernoulli(x) * x.exp()).abs() < 1e-12);
/// ```
pub fn bernoulli(x: f64) -> f64 {
    if x.abs() < 1e-5 {
        // B(x) ≈ 1 − x/2 + x²/12.
        1.0 - x / 2.0 + x * x / 12.0
    } else if x > 500.0 {
        // e^x overflows; B → x·e^{−x} → 0.
        0.0
    } else if x < -500.0 {
        -x
    } else {
        x / (x.exp() - 1.0)
    }
}

/// Equilibrium majority electron density for signed net doping `n_net`.
///
/// Evaluated cancellation-free: for p-type material the direct quadratic
/// formula subtracts nearly equal 1e18-scale numbers to produce a
/// 1e2-scale answer, so the electron density is computed from the hole
/// density via `n·p = n_i²` instead.
pub fn equilibrium_electrons(n_net: f64, ni: f64) -> f64 {
    let root = (n_net * n_net + 4.0 * ni * ni).sqrt();
    if n_net >= 0.0 {
        0.5 * (n_net + root)
    } else {
        let p = 0.5 * (-n_net + root);
        ni * ni / p
    }
}

/// Maps a global mesh index to the electron-system (silicon-only) local
/// index. Silicon occupies rows `j ≥ j_si0`, so locals stay grid-ordered
/// with bandwidth `nx`.
#[inline]
fn local(device: &Mosfet2d, idx: usize) -> usize {
    idx - device.j_si0 * device.mesh.nx()
}

/// Solves the electron continuity equation for the density field `n`
/// (cm⁻³, silicon nodes; oxide entries left at zero).
///
/// # Panics
///
/// Panics if the banded factorization hits a zero pivot (cannot happen
/// for a connected silicon region with at least one contact).
pub fn solve_electrons(device: &Mosfet2d, psi: &[f64], bias: &Bias) -> Vec<f64> {
    let mesh = &device.mesh;
    let (vt, ni) = thermals(device);
    let nx = mesh.nx();
    let ny = mesh.ny();
    let n_si = (ny - device.j_si0) * nx;

    let mut mat = BandedMatrix::zeros(n_si, nx);
    let mut rhs = vec![0.0; n_si];

    for j in device.j_si0..ny {
        for i in 0..nx {
            let idx = mesh.idx(i, j);
            let row = local(device, idx);
            match mesh.boundary[idx] {
                Boundary::Source | Boundary::Drain | Boundary::Substrate => {
                    mat.set(row, row, 1.0);
                    rhs[row] = equilibrium_electrons(device.doping[idx], ni);
                    continue;
                }
                _ => {}
            }
            let wx = Mesh::dual_width(&mesh.xs, i);
            let wy = Mesh::dual_width(&mesh.ys, j);

            let face = |nb: (usize, usize), d: f64, a: f64, mat: &mut BandedMatrix| {
                let nb_idx = mesh.idx(nb.0, nb.1);
                let col = local(device, nb_idx);
                let mu = 0.5 * (device.mobility[idx] + device.mobility[nb_idx]);
                let c = Q * mu * vt * a / d;
                let du = (psi[nb_idx] - psi[idx]) / vt;
                // Flux into this node: c·(n_nb·B(du) − n_self·B(−du)).
                mat.add(row, col, c * bernoulli(du));
                mat.add(row, row, -c * bernoulli(-du));
            };
            if i > 0 {
                face((i - 1, j), mesh.xs[i] - mesh.xs[i - 1], wy, &mut mat);
            }
            if i + 1 < nx {
                face((i + 1, j), mesh.xs[i + 1] - mesh.xs[i], wy, &mut mat);
            }
            if j > device.j_si0 {
                face((i, j - 1), mesh.ys[j] - mesh.ys[j - 1], wx, &mut mat);
            }
            if j + 1 < ny {
                face((i, j + 1), mesh.ys[j + 1] - mesh.ys[j], wx, &mut mat);
            }
        }
    }

    let _ = bias; // bias enters through psi and the contact densities
    let n_local = mat
        .solve_in_place(&mut rhs)
        .expect("continuity system is an M-matrix with Dirichlet contacts");

    let mut n = vec![0.0; mesh.len()];
    for j in device.j_si0..ny {
        for i in 0..nx {
            let idx = mesh.idx(i, j);
            // Direct elimination can leave tiny negative values in
            // near-depleted cells; floor them at a physical minimum.
            n[idx] = n_local[local(device, idx)].max(1.0e-12 * ni);
        }
    }
    n
}

/// Terminal electron current at the drain contact, amps per micron of
/// gate width: the net Scharfetter–Gummel flux from interior silicon
/// into the drain Dirichlet nodes.
pub fn drain_current(device: &Mosfet2d, psi: &[f64], n: &[f64]) -> f64 {
    let mesh = &device.mesh;
    let (vt, _) = thermals(device);
    let nx = mesh.nx();
    let ny = mesh.ny();
    let mut total = 0.0;

    for j in device.j_si0..ny {
        for i in 0..nx {
            let idx = mesh.idx(i, j);
            if mesh.boundary[idx] != Boundary::Drain {
                continue;
            }
            let wx = Mesh::dual_width(&mesh.xs, i);
            let wy = Mesh::dual_width(&mesh.ys, j);
            let flux = |nb: (usize, usize), d: f64, a: f64| {
                let nb_idx = mesh.idx(nb.0, nb.1);
                if mesh.boundary[nb_idx] == Boundary::Drain {
                    return 0.0;
                }
                let mu = 0.5 * (device.mobility[idx] + device.mobility[nb_idx]);
                let c = Q * mu * vt * a / d;
                let du = (psi[nb_idx] - psi[idx]) / vt;
                c * (n[nb_idx] * bernoulli(du) - n[idx] * bernoulli(-du))
            };
            if i > 0 {
                total += flux((i - 1, j), mesh.xs[i] - mesh.xs[i - 1], wy);
            }
            if i + 1 < nx {
                total += flux((i + 1, j), mesh.xs[i + 1] - mesh.xs[i], wy);
            }
            if j > device.j_si0 {
                total += flux((i, j - 1), mesh.ys[j] - mesh.ys[j - 1], wx);
            }
            if j + 1 < ny {
                total += flux((i, j + 1), mesh.ys[j + 1] - mesh.ys[j], wx);
            }
        }
    }
    // Currents are per cm of device depth; report per µm of gate width.
    total.abs() * 1.0e-4
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{MeshDensity, Mosfet2d};
    use crate::poisson::{initial_guess, solve};
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;
    use subvt_physics::device::DeviceParams;

    #[test]
    fn bernoulli_identity_and_limits() {
        for x in [-30.0, -2.0, -1e-7, 0.0, 1e-7, 2.0, 30.0] {
            let b = bernoulli(x);
            assert!(b >= 0.0, "B({x}) = {b}");
            if x != 0.0 {
                assert!((bernoulli(-x) - b * x.exp()).abs() <= 1e-12 * b.max(1.0));
            }
        }
        assert!((bernoulli(700.0)).abs() < 1e-200);
        assert!((bernoulli(-700.0) - 700.0).abs() < 1e-9);
    }

    #[test]
    fn equilibrium_density_limits() {
        let ni = 1.0e10;
        // Strong n-type: n ≈ N_d.
        assert!((equilibrium_electrons(1.0e20, ni) / 1.0e20 - 1.0).abs() < 1e-9);
        // Strong p-type: n ≈ n_i²/N_a.
        let n = equilibrium_electrons(-1.0e18, ni);
        assert!((n / (ni * ni / 1.0e18) - 1.0).abs() < 1e-6);
        // Intrinsic: n = n_i.
        assert!((equilibrium_electrons(0.0, ni) - ni).abs() < 1.0);
    }

    #[test]
    fn equilibrium_current_is_negligible() {
        // At zero bias the drain current must vanish (SG flux identity).
        let dev = Mosfet2d::build(&DeviceParams::reference_90nm_nfet(), MeshDensity::Coarse);
        let bias = Bias::default();
        let mut psi = initial_guess(&dev, &bias);
        let phi = vec![0.0; dev.len()];
        assert!(solve(&dev, &mut psi, &phi, &phi, &bias).converged);
        let n = solve_electrons(&dev, &psi, &bias);
        let id = drain_current(&dev, &psi, &n);
        assert!(id < 1.0e-15, "equilibrium leakage {id} A/µm");
    }

    #[test]
    fn electron_density_tracks_boltzmann_at_equilibrium() {
        let dev = Mosfet2d::build(&DeviceParams::reference_90nm_nfet(), MeshDensity::Coarse);
        let bias = Bias::default();
        let mut psi = initial_guess(&dev, &bias);
        let phi = vec![0.0; dev.len()];
        assert!(solve(&dev, &mut psi, &phi, &phi, &bias).converged);
        let n = solve_electrons(&dev, &psi, &bias);
        let (vt, ni) = thermals(&dev);
        // Sample a handful of interior silicon nodes: n ≈ n_i·e^{ψ/v_T}.
        let mesh = &dev.mesh;
        for j in (dev.j_si0 + 1..mesh.ny() - 1).step_by(3) {
            for i in (1..mesh.nx() - 1).step_by(5) {
                let idx = mesh.idx(i, j);
                let want = ni * (psi[idx] / vt).exp();
                let got = n[idx];
                if want > 1.0e3 {
                    assert!(
                        (got / want - 1.0).abs() < 0.05,
                        "node ({i},{j}): {got:e} vs {want:e}"
                    );
                }
            }
        }
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn bernoulli_positive_and_decreasing(x in -100.0f64..100.0, dx in 0.01f64..5.0) {
            prop_assert!(bernoulli(x) >= 0.0);
            prop_assert!(bernoulli(x + dx) <= bernoulli(x));
        }
    }
}
