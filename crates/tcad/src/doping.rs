//! Doping profiles evaluated on the mesh.
//!
//! Net doping is signed: donors (n-type) positive, acceptors (p-type)
//! negative — the same convention as the Poisson charge term. The MOSFET
//! builder composes exactly the paper's §2.2 construction: a uniform
//! p-substrate, lateral-Gaussian n⁺ source/drain diffusions, and a pair
//! of 2-D Gaussian p-halo pockets at the junction edges.

/// A single additive doping contribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Profile {
    /// Spatially uniform doping (signed, cm⁻³).
    Uniform {
        /// Signed concentration (donors > 0).
        concentration: f64,
    },
    /// A 2-D Gaussian pocket (signed peak, cm⁻³) centred at
    /// `(x0, y0)` cm with standard deviations `(sigma_x, sigma_y)` cm.
    Gaussian {
        /// Signed peak concentration.
        peak: f64,
        /// Centre x, cm.
        x0: f64,
        /// Centre y, cm.
        y0: f64,
        /// Lateral standard deviation, cm.
        sigma_x: f64,
        /// Vertical standard deviation, cm.
        sigma_y: f64,
    },
    /// A source/drain-style box that is flat inside `[x_lo, x_hi]` for
    /// `y ≤ depth` and rolls off with Gaussian tails (lateral straggle
    /// `sigma_x`, vertical `sigma_y`) outside — the standard model of an
    /// implanted and annealed junction.
    SdBox {
        /// Signed peak concentration.
        peak: f64,
        /// Flat-region lower x bound, cm.
        x_lo: f64,
        /// Flat-region upper x bound, cm.
        x_hi: f64,
        /// Junction depth of the flat region, cm.
        depth: f64,
        /// Lateral Gaussian straggle, cm.
        sigma_x: f64,
        /// Vertical Gaussian straggle, cm.
        sigma_y: f64,
    },
}

impl Profile {
    /// Evaluates the signed contribution at `(x, y)` cm (silicon only;
    /// `y ≥ 0`).
    pub fn eval(&self, x: f64, y: f64) -> f64 {
        match *self {
            Profile::Uniform { concentration } => concentration,
            Profile::Gaussian {
                peak,
                x0,
                y0,
                sigma_x,
                sigma_y,
            } => {
                let dx = (x - x0) / sigma_x;
                let dy = (y - y0) / sigma_y;
                peak * (-0.5 * (dx * dx + dy * dy)).exp()
            }
            Profile::SdBox {
                peak,
                x_lo,
                x_hi,
                depth,
                sigma_x,
                sigma_y,
            } => {
                let fx = if x < x_lo {
                    let d = (x_lo - x) / sigma_x;
                    (-0.5 * d * d).exp()
                } else if x > x_hi {
                    let d = (x - x_hi) / sigma_x;
                    (-0.5 * d * d).exp()
                } else {
                    1.0
                };
                let fy = if y > depth {
                    let d = (y - depth) / sigma_y;
                    (-0.5 * d * d).exp()
                } else {
                    1.0
                };
                peak * fx * fy
            }
        }
    }
}

/// A composite doping description (sum of profiles).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DopingSpec {
    profiles: Vec<Profile>,
}

impl DopingSpec {
    /// Creates an empty spec.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a profile.
    pub fn push(&mut self, profile: Profile) -> &mut Self {
        self.profiles.push(profile);
        self
    }

    /// Net signed doping at a point.
    pub fn net(&self, x: f64, y: f64) -> f64 {
        self.profiles.iter().map(|p| p.eval(x, y)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_everywhere() {
        let p = Profile::Uniform {
            concentration: -1.5e18,
        };
        assert_eq!(p.eval(0.0, 0.0), -1.5e18);
        assert_eq!(p.eval(1e-4, 5e-6), -1.5e18);
    }

    #[test]
    fn gaussian_peaks_at_centre() {
        let p = Profile::Gaussian {
            peak: 2.0e18,
            x0: 1.0e-6,
            y0: 0.0,
            sigma_x: 1.0e-7,
            sigma_y: 2.0e-7,
        };
        assert_eq!(p.eval(1.0e-6, 0.0), 2.0e18);
        let off = p.eval(1.0e-6 + 1.0e-7, 0.0);
        assert!((off / 2.0e18 - (-0.5f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn sd_box_flat_inside_tails_outside() {
        let p = Profile::SdBox {
            peak: 1.0e20,
            x_lo: 0.0,
            x_hi: 5.0e-6,
            depth: 3.0e-6,
            sigma_x: 5.0e-7,
            sigma_y: 5.0e-7,
        };
        assert_eq!(p.eval(2.0e-6, 1.0e-6), 1.0e20);
        assert!(p.eval(6.0e-6, 1.0e-6) < 1.0e20);
        assert!(p.eval(2.0e-6, 4.0e-6) < 1.0e20);
        // Monotone decay with distance.
        assert!(p.eval(6.0e-6, 0.0) > p.eval(7.0e-6, 0.0));
    }

    #[test]
    fn spec_sums_contributions() {
        let mut s = DopingSpec::new();
        s.push(Profile::Uniform {
            concentration: -1.0e18,
        });
        s.push(Profile::Gaussian {
            peak: 3.0e18,
            x0: 0.0,
            y0: 0.0,
            sigma_x: 1e-7,
            sigma_y: 1e-7,
        });
        assert!((s.net(0.0, 0.0) - 2.0e18).abs() < 1e9);
        assert!((s.net(1.0, 1.0) + 1.0e18).abs() < 1e9);
    }
}
