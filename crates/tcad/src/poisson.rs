//! Nonlinear Poisson solve: finite-volume discretization with Boltzmann
//! carriers and damped Newton iteration.
//!
//! Unknowns are node potentials `ψ` referenced to the intrinsic Fermi
//! level. Silicon nodes carry the charge
//! `ρ = q·(p − n + N_net)` with `n = n_i·e^{(ψ−φ_n)/v_T}`,
//! `p = n_i·e^{(φ_p−ψ)/v_T}`; oxide nodes are charge-free. Contacts are
//! Dirichlet; every other boundary is a natural Neumann (reflecting)
//! boundary of the finite-volume scheme.

use subvt_engine::trace;
use subvt_units::consts::{EPS_OX, EPS_SI, Q};

use crate::device::{Mosfet2d, N_POLY};
use crate::mesh::{Boundary, Material, Mesh};
use crate::sparse::{bicgstab, TripletBuilder};

/// Applied contact voltages.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Bias {
    /// Gate voltage, V.
    pub v_gate: f64,
    /// Drain voltage, V.
    pub v_drain: f64,
    /// Source voltage, V.
    pub v_source: f64,
    /// Substrate voltage, V.
    pub v_substrate: f64,
}

/// Result of one Poisson Newton solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonSolve {
    /// Newton iterations consumed.
    pub iterations: usize,
    /// Final update infinity-norm, volts.
    pub max_update: f64,
    /// Whether the tolerance was met.
    pub converged: bool,
}

/// Newton update clamp, volts.
const MAX_DPSI: f64 = 0.25;
/// Convergence tolerance on the update infinity-norm, volts.
const PSI_TOL: f64 = 1.0e-9;
/// Maximum Newton iterations.
const MAX_NEWTON: usize = 120;

/// Thermal voltage and intrinsic density of the device's temperature.
pub(crate) fn thermals(device: &Mosfet2d) -> (f64, f64) {
    let vt = device.params.temperature.thermal_voltage().as_volts();
    let ni = subvt_physics::silicon::intrinsic_density(device.params.temperature).get();
    (vt, ni)
}

/// Built-in (charge-neutral) potential of a silicon node with net signed
/// doping `n_net`: `ψ = v_T·asinh(N/(2·n_i))`.
pub fn neutral_potential(n_net: f64, vt: f64, ni: f64) -> f64 {
    vt * (n_net / (2.0 * ni)).asinh()
}

/// Dirichlet potential of a contact node under `bias`.
pub fn contact_potential(device: &Mosfet2d, idx: usize, bias: &Bias) -> Option<f64> {
    let (vt, ni) = thermals(device);
    match device.mesh.boundary[idx] {
        Boundary::Gate => Some(bias.v_gate + vt * (N_POLY / ni).ln()),
        Boundary::Source => Some(bias.v_source + neutral_potential(device.doping[idx], vt, ni)),
        Boundary::Drain => Some(bias.v_drain + neutral_potential(device.doping[idx], vt, ni)),
        Boundary::Substrate => {
            Some(bias.v_substrate + neutral_potential(device.doping[idx], vt, ni))
        }
        Boundary::Interior => None,
    }
}

/// Charge-neutral initial guess for the potential field.
pub fn initial_guess(device: &Mosfet2d, bias: &Bias) -> Vec<f64> {
    let (vt, ni) = thermals(device);
    let mesh = &device.mesh;
    let mut psi = vec![0.0; mesh.len()];
    for j in 0..mesh.ny() {
        for i in 0..mesh.nx() {
            let idx = mesh.idx(i, j);
            psi[idx] = match contact_potential(device, idx, bias) {
                Some(v) => v,
                None => match mesh.material[idx] {
                    Material::Silicon => neutral_potential(device.doping[idx], vt, ni),
                    // Oxide: seed with the gate Dirichlet level.
                    Material::Oxide => bias.v_gate + vt * (N_POLY / ni).ln(),
                },
            };
        }
    }
    psi
}

fn eps_of(material: Material) -> f64 {
    match material {
        Material::Silicon => EPS_SI,
        Material::Oxide => EPS_OX,
    }
}

/// Face coupling `ε_face·A/d` between two neighbouring nodes; `a` is the
/// cross-sectional dual width transverse to the face.
fn coupling(mat: &[Material], ia: usize, ib: usize, d: f64, a: f64) -> f64 {
    let ea = eps_of(mat[ia]);
    let eb = eps_of(mat[ib]);
    // Harmonic mean handles the Si/SiO2 interface.
    let eps = 2.0 * ea * eb / (ea + eb);
    eps * a / d
}

/// Solves the nonlinear Poisson equation in place. `phi_n`/`phi_p` are
/// per-node quasi-Fermi potentials (ignored in the oxide).
///
/// Returns the solve telemetry; `psi` holds the solution. Every solve
/// feeds the metrics registry: `tcad.poisson.solves`/`.diverged`
/// counters plus `tcad.poisson.iterations` and
/// `tcad.poisson.residual_log10` histograms.
pub fn solve(
    device: &Mosfet2d,
    psi: &mut [f64],
    phi_n: &[f64],
    phi_p: &[f64],
    bias: &Bias,
) -> PoissonSolve {
    let out = solve_inner(device, psi, phi_n, phi_p, bias);
    trace::add("tcad.poisson.solves", 1);
    if !out.converged {
        trace::add("tcad.poisson.diverged", 1);
    }
    trace::observe("tcad.poisson.iterations", out.iterations as f64);
    if out.max_update.is_finite() && out.max_update > 0.0 {
        trace::observe_with(
            "tcad.poisson.residual_log10",
            out.max_update.log10(),
            &trace::LOG10_BUCKETS,
        );
    }
    out
}

fn solve_inner(
    device: &Mosfet2d,
    psi: &mut [f64],
    phi_n: &[f64],
    phi_p: &[f64],
    bias: &Bias,
) -> PoissonSolve {
    let mesh = &device.mesh;
    let (vt, ni) = thermals(device);
    let n_nodes = mesh.len();
    let nx = mesh.nx();
    let ny = mesh.ny();

    let mut last_update = f64::INFINITY;
    for iter in 1..=MAX_NEWTON {
        let mut jac = TripletBuilder::new(n_nodes);
        let mut rhs = vec![0.0; n_nodes];

        for j in 0..ny {
            for i in 0..nx {
                let idx = mesh.idx(i, j);
                if let Some(bc) = contact_potential(device, idx, bias) {
                    // Dirichlet row: δψ = bc − ψ.
                    jac.add(idx, idx, 1.0);
                    rhs[idx] = bc - psi[idx];
                    continue;
                }
                let wx = Mesh::dual_width(&mesh.xs, i);
                let wy = Mesh::dual_width(&mesh.ys, j);
                let mut f = 0.0;
                let mut diag = 0.0;

                let mut face = |nb_idx: usize, d: f64, a: f64, jac: &mut TripletBuilder| {
                    let c = coupling(&mesh.material, idx, nb_idx, d, a);
                    f += c * (psi[nb_idx] - psi[idx]);
                    diag -= c;
                    jac.add(idx, nb_idx, c);
                };
                if i > 0 {
                    face(
                        mesh.idx(i - 1, j),
                        mesh.xs[i] - mesh.xs[i - 1],
                        wy,
                        &mut jac,
                    );
                }
                if i + 1 < nx {
                    face(
                        mesh.idx(i + 1, j),
                        mesh.xs[i + 1] - mesh.xs[i],
                        wy,
                        &mut jac,
                    );
                }
                if j > 0 {
                    face(
                        mesh.idx(i, j - 1),
                        mesh.ys[j] - mesh.ys[j - 1],
                        wx,
                        &mut jac,
                    );
                }
                if j + 1 < ny {
                    face(
                        mesh.idx(i, j + 1),
                        mesh.ys[j + 1] - mesh.ys[j],
                        wx,
                        &mut jac,
                    );
                }

                if mesh.material[idx] == Material::Silicon {
                    let vol = wx * wy;
                    let n = ni * ((psi[idx] - phi_n[idx]) / vt).min(60.0).exp();
                    let p = ni * ((phi_p[idx] - psi[idx]) / vt).min(60.0).exp();
                    f += Q * vol * (device.doping[idx] + p - n);
                    diag -= Q * vol * (n + p) / vt;
                }

                jac.add(idx, idx, diag);
                rhs[idx] = -f;
            }
        }

        let a = jac.build();
        let Some(ilu) = a.ilu0() else {
            return PoissonSolve {
                iterations: iter,
                max_update: last_update,
                converged: false,
            };
        };
        let mut delta = vec![0.0; n_nodes];
        let lin = bicgstab(&a, &rhs, &mut delta, &ilu, 1e-10, 2000);
        if !lin.converged {
            return PoissonSolve {
                iterations: iter,
                max_update: last_update,
                converged: false,
            };
        }

        let mut max_update = 0.0f64;
        for (p, d) in psi.iter_mut().zip(&delta) {
            let step = d.clamp(-MAX_DPSI, MAX_DPSI);
            *p += step;
            max_update = max_update.max(step.abs());
        }
        last_update = max_update;
        if max_update < PSI_TOL {
            return PoissonSolve {
                iterations: iter,
                max_update,
                converged: true,
            };
        }
    }
    PoissonSolve {
        iterations: MAX_NEWTON,
        max_update: last_update,
        converged: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MeshDensity;
    use subvt_physics::device::DeviceParams;

    fn solved_equilibrium() -> (Mosfet2d, Vec<f64>) {
        let dev = Mosfet2d::build(&DeviceParams::reference_90nm_nfet(), MeshDensity::Coarse);
        let bias = Bias::default();
        let mut psi = initial_guess(&dev, &bias);
        let phi = vec![0.0; dev.len()];
        let out = solve(&dev, &mut psi, &phi, &phi, &bias);
        assert!(out.converged, "equilibrium Poisson must converge: {out:?}");
        (dev, psi)
    }

    #[test]
    fn equilibrium_converges() {
        let _ = solved_equilibrium();
    }

    #[test]
    fn equilibrium_potential_landmarks() {
        let (dev, psi) = solved_equilibrium();
        let (vt, ni) = thermals(&dev);
        // n+ source region: ψ ≈ +v_T·ln(1e20/n_i) ≈ 0.595 V.
        let idx_src = dev.mesh.idx(0, dev.j_si0);
        assert!(
            (psi[idx_src] - vt * (1.0e20 / ni).ln()).abs() < 0.02,
            "src {}",
            psi[idx_src]
        );
        // Deep p-substrate: ψ ≈ −v_T·ln(N_sub/n_i) < −0.4 V.
        let idx_sub = dev.mesh.idx(dev.mesh.nx() / 2, dev.mesh.ny() - 1);
        assert!(psi[idx_sub] < -0.40, "substrate {}", psi[idx_sub]);
    }

    #[test]
    fn equilibrium_charge_neutral_in_bulk() {
        let (dev, psi) = solved_equilibrium();
        let (vt, ni) = thermals(&dev);
        // A deep bulk node away from junctions should satisfy p ≈ N_a.
        let idx = dev.mesh.idx(dev.mesh.nx() / 2, dev.mesh.ny() - 2);
        let p = ni * (-psi[idx] / vt).exp();
        let na = -dev.doping[idx];
        assert!(na > 0.0);
        assert!((p / na - 1.0).abs() < 0.05, "p = {p:e}, N_a = {na:e}");
    }

    #[test]
    fn gate_bias_bends_surface_potential() {
        let (dev, psi0) = solved_equilibrium();
        let bias = Bias {
            v_gate: 0.6,
            ..Bias::default()
        };
        let mut psi = psi0.clone();
        let phi = vec![0.0; dev.len()];
        let out = solve(&dev, &mut psi, &phi, &phi, &bias);
        assert!(out.converged);
        // Mid-channel surface potential rises with gate bias.
        let mid_x = 0.5 * (dev.gate_span.0 + dev.gate_span.1);
        let i_mid = (0..dev.mesh.nx())
            .min_by(|&a, &b| {
                (dev.mesh.xs[a] - mid_x)
                    .abs()
                    .partial_cmp(&(dev.mesh.xs[b] - mid_x).abs())
                    .unwrap()
            })
            .unwrap();
        let idx = dev.mesh.idx(i_mid, dev.j_si0);
        assert!(
            psi[idx] > psi0[idx] + 0.2,
            "surface potential must follow the gate: {} vs {}",
            psi[idx],
            psi0[idx]
        );
    }

    #[test]
    fn neutral_potential_signs() {
        let (vt, ni) = (0.02585, 1.0e10);
        assert!(neutral_potential(1.0e20, vt, ni) > 0.55);
        assert!(neutral_potential(-1.0e18, vt, ni) < -0.4);
        assert_eq!(neutral_potential(0.0, vt, ni), 0.0);
    }
}
