//! Sparse linear algebra for the PDE solves: CSR matrices, ILU(0)
//! preconditioning and BiCGSTAB.

#![allow(clippy::needless_range_loop)] // indexed loops mirror the textbook algorithms

/// A sparse matrix in compressed-sparse-row form.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

/// Builder collecting `(row, col, value)` triplets; duplicates are
/// summed.
#[derive(Debug, Clone, Default)]
pub struct TripletBuilder {
    n: usize,
    triplets: Vec<(usize, usize, f64)>,
}

impl TripletBuilder {
    /// Creates a builder for an `n × n` system.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            triplets: Vec::with_capacity(5 * n),
        }
    }

    /// Adds `value` at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if indices are out of range.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.n && col < self.n);
        if value != 0.0 {
            self.triplets.push((row, col, value));
        }
    }

    /// Assembles the CSR matrix, summing duplicate entries.
    pub fn build(mut self) -> CsrMatrix {
        self.triplets.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut row_counts = vec![0usize; self.n];
        let mut col_idx: Vec<usize> = Vec::with_capacity(self.triplets.len());
        let mut values: Vec<f64> = Vec::with_capacity(self.triplets.len());
        let mut last: Option<(usize, usize)> = None;
        for &(r, c, v) in &self.triplets {
            if last == Some((r, c)) {
                *values.last_mut().expect("values track col_idx") += v;
            } else {
                col_idx.push(c);
                values.push(v);
                row_counts[r] += 1;
                last = Some((r, c));
            }
        }
        let mut row_ptr = vec![0usize; self.n + 1];
        for r in 0..self.n {
            row_ptr[r + 1] = row_ptr[r] + row_counts[r];
        }
        CsrMatrix {
            n: self.n,
            row_ptr,
            col_idx,
            values,
        }
    }
}

impl CsrMatrix {
    /// Matrix dimension.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the system is 0×0.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Reads entry `(row, col)` (zero if not stored).
    pub fn get(&self, row: usize, col: usize) -> f64 {
        let lo = self.row_ptr[row];
        let hi = self.row_ptr[row + 1];
        match self.col_idx[lo..hi].binary_search(&col) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// `y = A·x`.
    pub fn mul_vec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        for r in 0..self.n {
            let mut acc = 0.0;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            y[r] = acc;
        }
    }

    /// Computes the ILU(0) factorization (same sparsity as `self`).
    ///
    /// Returns `None` if a zero pivot is encountered.
    pub fn ilu0(&self) -> Option<Ilu0> {
        let mut lu = self.values.clone();
        let n = self.n;
        // Position of the diagonal in each row.
        let mut diag = vec![usize::MAX; n];
        for r in 0..n {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                if self.col_idx[k] == r {
                    diag[r] = k;
                }
            }
            if diag[r] == usize::MAX {
                return None;
            }
        }

        for r in 1..n {
            let row_start = self.row_ptr[r];
            let row_end = self.row_ptr[r + 1];
            for kk in row_start..row_end {
                let c = self.col_idx[kk];
                if c >= r {
                    break;
                }
                // lu[kk] = lu[kk] / U[c][c]
                let pivot = lu[diag[c]];
                if pivot == 0.0 {
                    return None;
                }
                let factor = lu[kk] / pivot;
                lu[kk] = factor;
                // Update the rest of row r against row c (ILU(0): only
                // positions already present in row r).
                let mut pr = kk + 1;
                let mut pc = diag[c] + 1;
                let c_end = self.row_ptr[c + 1];
                while pr < row_end && pc < c_end {
                    let col_r = self.col_idx[pr];
                    let col_c = self.col_idx[pc];
                    match col_r.cmp(&col_c) {
                        core::cmp::Ordering::Less => pr += 1,
                        core::cmp::Ordering::Greater => pc += 1,
                        core::cmp::Ordering::Equal => {
                            lu[pr] -= factor * lu[pc];
                            pr += 1;
                            pc += 1;
                        }
                    }
                }
            }
            if lu[diag[r]] == 0.0 {
                return None;
            }
        }
        Some(Ilu0 {
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            lu,
            diag,
        })
    }
}

/// An ILU(0) factorization usable as a preconditioner.
#[derive(Debug, Clone)]
pub struct Ilu0 {
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    lu: Vec<f64>,
    diag: Vec<usize>,
}

impl Ilu0 {
    /// Solves `(L·U)·x = b` by forward/backward substitution.
    pub fn solve(&self, b: &[f64], x: &mut [f64]) {
        let n = self.diag.len();
        // Forward: L·y = b (unit lower triangular).
        for r in 0..n {
            let mut acc = b[r];
            for k in self.row_ptr[r]..self.diag[r] {
                acc -= self.lu[k] * x[self.col_idx[k]];
            }
            x[r] = acc;
        }
        // Backward: U·x = y.
        for r in (0..n).rev() {
            let mut acc = x[r];
            for k in (self.diag[r] + 1)..self.row_ptr[r + 1] {
                acc -= self.lu[k] * x[self.col_idx[k]];
            }
            x[r] = acc / self.lu[self.diag[r]];
        }
    }
}

/// Outcome of an iterative solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterativeSolve {
    /// Iterations consumed.
    pub iterations: usize,
    /// Final relative residual `‖b − A·x‖ / ‖b‖`.
    pub relative_residual: f64,
    /// Whether the tolerance was met.
    pub converged: bool,
}

/// Preconditioned BiCGSTAB for `A·x = b`. `x` carries the initial guess
/// in and the solution out.
pub fn bicgstab(
    a: &CsrMatrix,
    b: &[f64],
    x: &mut [f64],
    precond: &Ilu0,
    tol: f64,
    max_iter: usize,
) -> IterativeSolve {
    let n = a.len();
    let norm_b = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm_b == 0.0 {
        x.fill(0.0);
        return IterativeSolve {
            iterations: 0,
            relative_residual: 0.0,
            converged: true,
        };
    }

    let mut r = vec![0.0; n];
    a.mul_vec(x, &mut r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    let r0 = r.clone();
    let mut rho = 1.0;
    let mut alpha = 1.0;
    let mut omega = 1.0;
    let mut v = vec![0.0; n];
    let mut p = vec![0.0; n];
    let mut phat = vec![0.0; n];
    let mut s = vec![0.0; n];
    let mut shat = vec![0.0; n];
    let mut t = vec![0.0; n];

    let dot = |a: &[f64], b: &[f64]| a.iter().zip(b).map(|(x, y)| x * y).sum::<f64>();
    let norm = |a: &[f64]| dot(a, a).sqrt();

    for iter in 1..=max_iter {
        let rho_new = dot(&r0, &r);
        if rho_new.abs() < 1e-300 {
            return IterativeSolve {
                iterations: iter,
                relative_residual: norm(&r) / norm_b,
                converged: norm(&r) / norm_b < tol,
            };
        }
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        precond.solve(&p, &mut phat);
        a.mul_vec(&phat, &mut v);
        alpha = rho / dot(&r0, &v);
        for i in 0..n {
            s[i] = r[i] - alpha * v[i];
        }
        if norm(&s) / norm_b < tol {
            for i in 0..n {
                x[i] += alpha * phat[i];
            }
            return IterativeSolve {
                iterations: iter,
                relative_residual: norm(&s) / norm_b,
                converged: true,
            };
        }
        precond.solve(&s, &mut shat);
        a.mul_vec(&shat, &mut t);
        let tt = dot(&t, &t);
        omega = if tt > 0.0 { dot(&t, &s) / tt } else { 0.0 };
        for i in 0..n {
            x[i] += alpha * phat[i] + omega * shat[i];
            r[i] = s[i] - omega * t[i];
        }
        let rel = norm(&r) / norm_b;
        if rel < tol {
            return IterativeSolve {
                iterations: iter,
                relative_residual: rel,
                converged: true,
            };
        }
        if omega == 0.0 {
            break;
        }
    }
    let mut res = vec![0.0; n];
    a.mul_vec(x, &mut res);
    for i in 0..n {
        res[i] = b[i] - res[i];
    }
    let rel = norm(&res) / norm_b;
    IterativeSolve {
        iterations: max_iter,
        relative_residual: rel,
        converged: rel < tol,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    /// 1-D Laplacian with Dirichlet ends: tridiag(-1, 2, -1).
    fn laplacian(n: usize) -> CsrMatrix {
        let mut b = TripletBuilder::new(n);
        for i in 0..n {
            b.add(i, i, 2.0);
            if i > 0 {
                b.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.add(i, i + 1, -1.0);
            }
        }
        b.build()
    }

    #[test]
    fn csr_assembly_and_lookup() {
        let mut b = TripletBuilder::new(3);
        b.add(0, 0, 1.0);
        b.add(0, 0, 2.0); // duplicate sums
        b.add(1, 2, 5.0);
        b.add(2, 1, -3.0);
        b.add(2, 2, 4.0);
        let m = b.build();
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.get(2, 1), -3.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.nnz(), 4);
    }

    #[test]
    fn mul_vec_matches_dense() {
        let m = laplacian(4);
        let x = [1.0, 2.0, 3.0, 4.0];
        let mut y = [0.0; 4];
        m.mul_vec(&x, &mut y);
        assert_eq!(y, [0.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn ilu0_is_exact_for_tridiagonal() {
        // ILU(0) on a tridiagonal matrix has no fill, so it is the exact
        // LU: the preconditioner solve must be a direct solve.
        let m = laplacian(10);
        let ilu = m.ilu0().unwrap();
        let b: Vec<f64> = (0..10).map(|i| (i as f64).sin() + 1.0).collect();
        let mut x = vec![0.0; 10];
        ilu.solve(&b, &mut x);
        let mut check = vec![0.0; 10];
        m.mul_vec(&x, &mut check);
        for (c, want) in check.iter().zip(&b) {
            assert!((c - want).abs() < 1e-10);
        }
    }

    #[test]
    fn bicgstab_solves_laplacian() {
        let n = 50;
        let m = laplacian(n);
        let ilu = m.ilu0().unwrap();
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let out = bicgstab(&m, &b, &mut x, &ilu, 1e-12, 200);
        assert!(out.converged, "residual {}", out.relative_residual);
        // Exact solution of -u'' = 1 discretized: parabola max n²/8.
        let mid = x[n / 2];
        assert!(mid > 100.0, "parabolic peak expected, got {mid}");
        let mut check = vec![0.0; n];
        m.mul_vec(&x, &mut check);
        for (c, want) in check.iter().zip(&b) {
            assert!((c - want).abs() < 1e-8);
        }
    }

    #[test]
    fn bicgstab_zero_rhs() {
        let m = laplacian(5);
        let ilu = m.ilu0().unwrap();
        let mut x = vec![1.0; 5];
        let out = bicgstab(&m, &[0.0; 5], &mut x, &ilu, 1e-12, 10);
        assert!(out.converged);
        assert_eq!(x, vec![0.0; 5]);
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn bicgstab_random_diagonally_dominant(
            seed in proptest::collection::vec(-1.0f64..1.0, 64),
            rhs in proptest::collection::vec(-5.0f64..5.0, 8),
        ) {
            let n = 8;
            let mut b = TripletBuilder::new(n);
            for i in 0..n {
                let mut diag = 1.0;
                for j in 0..n {
                    if i != j {
                        let v = seed[i * n + j];
                        if v.abs() > 0.3 {
                            b.add(i, j, v);
                            diag += v.abs();
                        }
                    }
                }
                b.add(i, i, diag);
            }
            let m = b.build();
            let ilu = m.ilu0().unwrap();
            let mut x = vec![0.0; n];
            let out = bicgstab(&m, &rhs, &mut x, &ilu, 1e-11, 400);
            prop_assert!(out.converged);
            let mut check = vec![0.0; n];
            m.mul_vec(&x, &mut check);
            for (c, want) in check.iter().zip(&rhs) {
                prop_assert!((c - want).abs() < 1e-6);
            }
        }
    }
}
