//! A minimal 2-D TCAD solver: nonlinear Poisson plus Scharfetter–Gummel
//! electron drift-diffusion on a rectangular mesh — the workspace's
//! substitute for the MEDICI simulations in the reproduced paper.
//!
//! The pipeline mirrors a classical device simulator:
//!
//! 1. [`device`] builds the MOSFET cross-section (mesh, doping, contacts)
//!    from the same [`subvt_physics::DeviceParams`] the compact model
//!    uses — uniform substrate, Gaussian-tail source/drain, 2-D Gaussian
//!    halo pockets (the paper's Fig. 1a/1b).
//! 2. [`poisson`] solves the nonlinear Poisson equation (finite volume,
//!    Boltzmann carriers, damped Newton, ILU(0)+BiCGSTAB).
//! 3. [`continuity`] solves the linear Scharfetter–Gummel electron
//!    system (banded LU).
//! 4. [`gummel`] couples them with bias ramping.
//! 5. [`extract`] sweeps I_d–V_g and extracts S_S, V_th, I_off, I_on and
//!    DIBL.
//!
//! Scope: DC, unipolar (electron) transport, Boltzmann statistics, no
//! quantum or strain corrections — sufficient for the subthreshold
//! behaviour the paper studies, and validated against the compact model
//! in the workspace integration tests.
//!
//! # Example
//!
//! ```no_run
//! use subvt_physics::DeviceParams;
//! use subvt_tcad::device::MeshDensity;
//! use subvt_tcad::extract::sweep_and_extract;
//!
//! let ext = sweep_and_extract(
//!     &DeviceParams::reference_90nm_nfet(),
//!     MeshDensity::Standard,
//! )?;
//! println!("2-D extracted S_S = {:.1} mV/dec", ext.s_s);
//! # Ok::<(), subvt_tcad::gummel::TcadError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod banded;
pub mod continuity;
pub mod device;
pub mod doping;
pub mod extract;
pub mod gummel;
pub mod mesh;
pub mod model;
pub mod poisson;
pub mod report;
pub mod sparse;

pub use device::{MeshDensity, Mosfet2d};
pub use extract::{sweep_and_extract, Extraction};
pub use gummel::{DeviceSimulator, TcadError};
pub use model::{Fidelity, TcadModel};
