//! Tensor-product rectangular mesh for the 2-D device cross-section.
//!
//! Coordinates follow the device convention: `x` runs laterally from the
//! source contact to the drain contact; `y` runs vertically, negative
//! into the gate oxide and positive into the silicon bulk (`y = 0` is the
//! Si/SiO₂ interface).

/// Material occupying a mesh node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Material {
    /// Crystalline silicon (carries dopants and carriers).
    Silicon,
    /// Gate oxide (charge-free dielectric).
    Oxide,
}

/// Electrical boundary condition attached to a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Boundary {
    /// Interior or Neumann (reflecting) node.
    Interior,
    /// Ohmic source contact.
    Source,
    /// Ohmic drain contact.
    Drain,
    /// Gate contact (on top of the oxide).
    Gate,
    /// Substrate (bulk) contact at the bottom.
    Substrate,
}

/// A rectangular tensor-product mesh.
#[derive(Debug, Clone, PartialEq)]
pub struct Mesh {
    /// x-coordinates of the grid lines, cm, ascending.
    pub xs: Vec<f64>,
    /// y-coordinates of the grid lines, cm, ascending (negative = oxide).
    pub ys: Vec<f64>,
    /// Node material, row-major (`idx = j*nx + i`).
    pub material: Vec<Material>,
    /// Node boundary condition, row-major.
    pub boundary: Vec<Boundary>,
}

impl Mesh {
    /// Number of grid lines in x.
    pub fn nx(&self) -> usize {
        self.xs.len()
    }

    /// Number of grid lines in y.
    pub fn ny(&self) -> usize {
        self.ys.len()
    }

    /// Total node count.
    pub fn len(&self) -> usize {
        self.nx() * self.ny()
    }

    /// Whether the mesh has no nodes.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty() || self.ys.is_empty()
    }

    /// Flat index of node `(i, j)`.
    #[inline]
    pub fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.nx() && j < self.ny());
        j * self.nx() + i
    }

    /// Coordinates of node `(i, j)` in cm.
    #[inline]
    pub fn coords(&self, i: usize, j: usize) -> (f64, f64) {
        (self.xs[i], self.ys[j])
    }

    /// Control-volume half-widths around grid line `k` of `axis`:
    /// `0.5·(h_left + h_right)` with one-sided widths at the ends.
    pub fn dual_width(axis: &[f64], k: usize) -> f64 {
        let n = axis.len();
        let left = if k > 0 { axis[k] - axis[k - 1] } else { 0.0 };
        let right = if k + 1 < n {
            axis[k + 1] - axis[k]
        } else {
            0.0
        };
        0.5 * (left + right)
    }
}

/// Builds a 1-D axis that is uniformly fine inside `[fine_lo, fine_hi]`
/// (spacing `h_fine`) and geometrically coarsened toward `lo`/`hi`
/// outside it. Returns ascending, de-duplicated coordinates.
///
/// # Panics
///
/// Panics unless `lo ≤ fine_lo < fine_hi ≤ hi` and `h_fine > 0`.
pub fn graded_axis(lo: f64, hi: f64, fine_lo: f64, fine_hi: f64, h_fine: f64) -> Vec<f64> {
    assert!(lo <= fine_lo && fine_lo < fine_hi && fine_hi <= hi);
    assert!(h_fine > 0.0);
    let mut pts = Vec::new();

    // Coarsening region [lo, fine_lo): march from fine_lo toward lo with
    // geometric growth, then reverse.
    let grow = 1.35;
    let mut left = Vec::new();
    let mut pos = fine_lo;
    let mut h = h_fine;
    while pos > lo + 1e-12 {
        h *= grow;
        pos = (pos - h).max(lo);
        left.push(pos);
    }
    left.reverse();
    pts.extend(left);

    // Fine region [fine_lo, fine_hi].
    let n_fine = ((fine_hi - fine_lo) / h_fine).round().max(1.0) as usize;
    for k in 0..=n_fine {
        pts.push(fine_lo + (fine_hi - fine_lo) * k as f64 / n_fine as f64);
    }

    // Coarsening region (fine_hi, hi].
    let mut pos = fine_hi;
    let mut h = h_fine;
    while pos < hi - 1e-12 {
        h *= grow;
        pos = (pos + h).min(hi);
        pts.push(pos);
    }

    // De-duplicate near-coincident points.
    pts.dedup_by(|a, b| (*a - *b).abs() < 1e-13);
    pts
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn graded_axis_covers_interval() {
        let axis = graded_axis(0.0, 10.0, 4.0, 6.0, 0.25);
        assert!((axis[0] - 0.0).abs() < 1e-12);
        assert!((axis[axis.len() - 1] - 10.0).abs() < 1e-12);
        for w in axis.windows(2) {
            assert!(w[1] > w[0], "axis must ascend");
        }
    }

    #[test]
    fn graded_axis_fine_region_uniform() {
        let axis = graded_axis(0.0, 10.0, 4.0, 6.0, 0.25);
        let fine: Vec<f64> = axis
            .iter()
            .cloned()
            .filter(|&x| (4.0..=6.0).contains(&x))
            .collect();
        assert_eq!(fine.len(), 9);
        for w in fine.windows(2) {
            assert!((w[1] - w[0] - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn dual_widths_sum_to_span() {
        let axis = graded_axis(0.0, 5.0, 2.0, 3.0, 0.1);
        let total: f64 = (0..axis.len()).map(|k| Mesh::dual_width(&axis, k)).sum();
        assert!((total - 5.0).abs() < 1e-9);
    }

    #[test]
    fn idx_round_trip() {
        let mesh = Mesh {
            xs: vec![0.0, 1.0, 2.0],
            ys: vec![0.0, 1.0],
            material: vec![Material::Silicon; 6],
            boundary: vec![Boundary::Interior; 6],
        };
        assert_eq!(mesh.idx(2, 1), 5);
        assert_eq!(mesh.len(), 6);
        assert_eq!(mesh.coords(1, 1), (1.0, 1.0));
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn graded_axis_always_sorted(
            span in 1.0f64..100.0,
            frac_lo in 0.1f64..0.4,
            frac_hi in 0.5f64..0.9,
        ) {
            let fine_lo = span * frac_lo;
            let fine_hi = span * frac_hi;
            let axis = graded_axis(0.0, span, fine_lo, fine_hi, span / 100.0);
            prop_assert!(axis.windows(2).all(|w| w[1] > w[0]));
            prop_assert!(axis.len() >= 3);
        }
    }
}
