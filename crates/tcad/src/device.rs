//! Builds the 2-D MOSFET cross-section the paper describes (its Fig. 1a)
//! from the same [`DeviceParams`] the compact model uses: uniform
//! substrate, lateral-Gaussian n⁺ source/drain, 2-D Gaussian halo
//! pockets, gate oxide and four contacts.

use subvt_physics::device::{DeviceKind, DeviceParams};
use subvt_physics::mobility::low_field_mobility;
use subvt_units::PerCubicCentimeter;

use crate::doping::{DopingSpec, Profile};
use crate::mesh::{graded_axis, Boundary, Material, Mesh};

/// Poly-gate doping assumed for the gate work function (n⁺ for NFET).
pub const N_POLY: f64 = 1.0e20;

/// A meshed 2-D MOSFET ready for simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct Mosfet2d {
    /// The mesh.
    pub mesh: Mesh,
    /// Net signed doping per node (donors positive), cm⁻³. Zero in the
    /// oxide.
    pub doping: Vec<f64>,
    /// Low-field electron mobility per node, cm²/Vs (zero in the oxide).
    pub mobility: Vec<f64>,
    /// The originating compact description.
    pub params: DeviceParams,
    /// Index of the first silicon row (`ys[j_si0] == 0`).
    pub j_si0: usize,
    /// x-range (cm) covered by the gate contact.
    pub gate_span: (f64, f64),
}

/// Mesh-resolution preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeshDensity {
    /// Coarse mesh for fast tests (~1.5k nodes).
    Coarse,
    /// Standard mesh for characterization (~4k nodes).
    Standard,
}

impl MeshDensity {
    /// Stable spelling used in cache keys and backend identifiers.
    pub fn as_str(self) -> &'static str {
        match self {
            MeshDensity::Coarse => "coarse",
            MeshDensity::Standard => "standard",
        }
    }
}

impl Mosfet2d {
    /// Builds the cross-section from compact-model parameters.
    ///
    /// Only NFETs are supported: the workspace treats the PFET as the
    /// NFET's magnitude-frame mirror (identical electrostatics, hole
    /// mobility), so a separate 2-D polarity adds no information.
    ///
    /// # Panics
    ///
    /// Panics if `params.kind` is not [`DeviceKind::Nfet`].
    pub fn build(params: &DeviceParams, density: MeshDensity) -> Self {
        assert!(
            matches!(params.kind, DeviceKind::Nfet),
            "2-D solver models the NFET; the PFET is its magnitude-frame mirror"
        );
        let g = &params.geometry;
        let l_eff = g.l_eff().as_cm();
        let l_ov = g.l_overlap.as_cm();
        let t_ox = g.t_ox.as_cm();
        let x_j = g.x_j.as_cm();
        let sigma = g.halo_sigma.as_cm();

        // Lateral layout: [0, l_sd] source, [l_sd, l_sd+l_eff] channel,
        // [l_sd+l_eff, total] drain.
        let l_sd = (1.2 * (l_eff + 2.0 * l_ov)).max(30.0e-7);
        let x_js = l_sd; // source junction
        let x_jd = l_sd + l_eff; // drain junction
        let total_x = 2.0 * l_sd + l_eff;
        let gate_lo = x_js - l_ov;
        let gate_hi = x_jd + l_ov;

        // Vertical layout: oxide [-t_ox, 0), silicon [0, depth].
        let depth = (3.0 * x_j).max(80.0e-7);

        let (hx, hy, n_ox): (f64, f64, usize) = match density {
            MeshDensity::Coarse => (l_eff / 14.0, 2.0e-7, 3),
            MeshDensity::Standard => (l_eff / 26.0, 1.2e-7, 4),
        };

        // x axis: fine across the gated region (with margins into S/D).
        let fine_lo = (gate_lo - 4.0e-7).max(0.0);
        let fine_hi = (gate_hi + 4.0e-7).min(total_x);
        let xs = graded_axis(0.0, total_x, fine_lo, fine_hi, hx);

        // y axis: uniform oxide layers, fine silicon surface, coarsened
        // bulk.
        let mut ys: Vec<f64> = (0..=n_ox)
            .map(|k| -t_ox + t_ox * k as f64 / n_ox as f64)
            .collect();
        ys.pop(); // y = 0 comes from the silicon axis
        let si = graded_axis(0.0, depth, 0.0, (4.0 * hy).min(depth / 2.0), hy);
        ys.extend(si);
        let j_si0 = n_ox;
        debug_assert!(ys[j_si0].abs() < 1e-15);

        let nx = xs.len();
        let ny = ys.len();

        // Doping spec (NFET frame: donors positive, acceptors negative).
        let mut spec = DopingSpec::new();
        spec.push(Profile::Uniform {
            concentration: -params.n_sub.get(),
        });
        let straggle = (0.15 * x_j).max(1.5e-7);
        // Pull the flat S/D regions back so the Gaussian tail crosses the
        // substrate level exactly at the nominal junction positions —
        // otherwise the tails encroach ~3σ into the channel and collapse
        // the barrier.
        let encroach = straggle * (2.0 * (params.n_sd.get() / params.n_sub.get()).ln()).sqrt();
        spec.push(Profile::SdBox {
            peak: params.n_sd.get(),
            x_lo: 0.0,
            x_hi: (x_js - encroach).max(1.0e-7),
            depth: (x_j - encroach).max(2.0e-7),
            sigma_x: straggle,
            sigma_y: straggle,
        });
        spec.push(Profile::SdBox {
            peak: params.n_sd.get(),
            x_lo: (x_jd + encroach).min(total_x - 1.0e-7),
            x_hi: total_x,
            depth: (x_j - encroach).max(2.0e-7),
            sigma_x: straggle,
            sigma_y: straggle,
        });
        // Halo pockets: acceptor Gaussians hugging each junction edge
        // from the surface down the sidewall (paper Fig. 1(b)) — placed
        // where the drain field penetrates, which is what lets the halo
        // fight V_th roll-off. The lateral footprint carries a 1.6×
        // calibration relative to the compact model's nominal σ: angled
        // halo implants straggle beyond their nominal profile, and this
        // matches the 2-D swing to the paper's halo effectiveness.
        for x0 in [x_js, x_jd] {
            spec.push(Profile::Gaussian {
                peak: -params.n_p_halo.get(),
                x0,
                y0: 0.0,
                sigma_x: 1.6 * sigma,
                sigma_y: 0.6 * x_j,
            });
        }

        let mut material = vec![Material::Silicon; nx * ny];
        let mut boundary = vec![Boundary::Interior; nx * ny];
        let mut doping = vec![0.0; nx * ny];
        let mut mobility = vec![0.0; nx * ny];

        for (j, &y) in ys.iter().enumerate() {
            for (i, &x) in xs.iter().enumerate() {
                let idx = j * nx + i;
                if y < -1e-15 {
                    material[idx] = Material::Oxide;
                    if j == 0 && x >= gate_lo - 1e-12 && x <= gate_hi + 1e-12 {
                        boundary[idx] = Boundary::Gate;
                    }
                    continue;
                }
                let net = spec.net(x, y);
                doping[idx] = net;
                mobility[idx] = low_field_mobility(
                    DeviceKind::Nfet,
                    PerCubicCentimeter::new(net.abs().max(1.0e14)),
                );
                // Contacts.
                if j == ny - 1 {
                    boundary[idx] = Boundary::Substrate;
                } else if j == j_si0 && x < gate_lo - 2.0e-7 {
                    boundary[idx] = Boundary::Source;
                } else if j == j_si0 && x > gate_hi + 2.0e-7 {
                    boundary[idx] = Boundary::Drain;
                }
            }
        }

        let mesh = Mesh {
            xs,
            ys,
            material,
            boundary,
        };
        Self {
            mesh,
            doping,
            mobility,
            params: *params,
            j_si0,
            gate_span: (gate_lo, gate_hi),
        }
    }

    /// Number of mesh nodes.
    pub fn len(&self) -> usize {
        self.mesh.len()
    }

    /// Whether the device mesh is empty (never true for a built device).
    pub fn is_empty(&self) -> bool {
        self.mesh.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> Mosfet2d {
        Mosfet2d::build(&DeviceParams::reference_90nm_nfet(), MeshDensity::Coarse)
    }

    #[test]
    fn mesh_has_all_contact_types() {
        let d = device();
        let count = |b: Boundary| d.mesh.boundary.iter().filter(|&&x| x == b).count();
        assert!(count(Boundary::Gate) > 3);
        assert!(count(Boundary::Source) > 1);
        assert!(count(Boundary::Drain) > 1);
        assert!(count(Boundary::Substrate) == d.mesh.nx());
    }

    #[test]
    fn oxide_sits_above_silicon() {
        let d = device();
        for j in 0..d.mesh.ny() {
            for i in 0..d.mesh.nx() {
                let m = d.mesh.material[d.mesh.idx(i, j)];
                if j < d.j_si0 {
                    assert_eq!(m, Material::Oxide);
                } else {
                    assert_eq!(m, Material::Silicon);
                }
            }
        }
    }

    #[test]
    fn doping_polarity_by_region() {
        let d = device();
        let nx = d.mesh.nx();
        // Surface source end: n+ (positive).
        let idx_src = d.mesh.idx(0, d.j_si0);
        assert!(d.doping[idx_src] > 1.0e19);
        // Mid-channel surface: p (negative).
        let mid_x = 0.5 * (d.gate_span.0 + d.gate_span.1);
        let i_mid = (0..nx)
            .min_by(|&a, &b| {
                (d.mesh.xs[a] - mid_x)
                    .abs()
                    .partial_cmp(&(d.mesh.xs[b] - mid_x).abs())
                    .unwrap()
            })
            .unwrap();
        let idx_ch = d.mesh.idx(i_mid, d.j_si0);
        assert!(d.doping[idx_ch] < 0.0, "channel must be p-type");
        // Deep bulk: substrate doping.
        let idx_bulk = d.mesh.idx(i_mid, d.mesh.ny() - 1);
        assert!((d.doping[idx_bulk] + d.params.n_sub.get()).abs() < 0.05 * d.params.n_sub.get());
    }

    #[test]
    fn halo_increases_channel_edge_doping() {
        let base = DeviceParams::reference_90nm_nfet();
        let mut no_halo = base;
        no_halo.n_p_halo = PerCubicCentimeter::new(1.0e10);
        let with = Mosfet2d::build(&base, MeshDensity::Coarse);
        let without = Mosfet2d::build(&no_halo, MeshDensity::Coarse);
        // Acceptor concentration near the source junction edge must be
        // higher with halo (more negative net doping).
        let x_edge = with.gate_span.0 + with.params.geometry.l_overlap.as_cm();
        let i_edge = (0..with.mesh.nx())
            .min_by(|&a, &b| {
                (with.mesh.xs[a] - x_edge)
                    .abs()
                    .partial_cmp(&(with.mesh.xs[b] - x_edge).abs())
                    .unwrap()
            })
            .unwrap();
        let j_probe = with.j_si0 + 2;
        let idx = with.mesh.idx(i_edge, j_probe);
        assert!(with.doping[idx] < without.doping[idx]);
    }

    #[test]
    #[should_panic(expected = "NFET")]
    fn rejects_pfet() {
        let mut p = DeviceParams::reference_90nm_nfet();
        p.kind = DeviceKind::Pfet;
        let _ = Mosfet2d::build(&p, MeshDensity::Coarse);
    }

    #[test]
    fn coarse_mesh_is_smaller_than_standard() {
        let p = DeviceParams::reference_90nm_nfet();
        let coarse = Mosfet2d::build(&p, MeshDensity::Coarse).len();
        let standard = Mosfet2d::build(&p, MeshDensity::Standard).len();
        assert!(coarse < standard);
        assert!(coarse > 300, "coarse mesh has {coarse} nodes");
    }
}
