//! Banded LU solver (no pivoting) for the continuity systems.
//!
//! Grid-ordered finite-volume matrices have half-bandwidth `nx`; the
//! drift-diffusion continuity matrix is an irreducibly diagonally
//! dominant M-matrix, so elimination without pivoting is stable. A
//! direct solve also side-steps the enormous dynamic range of carrier
//! densities (1e2…1e20 cm⁻³) that makes iterative residual tests
//! unreliable for this system.

#![allow(clippy::needless_range_loop)] // indexed loops mirror the textbook algorithms

/// A square banded matrix with half-bandwidth `bw` (entries `(i, j)` with
/// `|i − j| ≤ bw`), stored row-major as `n × (2·bw + 1)`.
#[derive(Debug, Clone, PartialEq)]
pub struct BandedMatrix {
    n: usize,
    bw: usize,
    data: Vec<f64>,
}

/// Error from a zero (or denormal) pivot during factorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZeroPivotError {
    /// Row at which elimination failed.
    pub row: usize,
}

impl core::fmt::Display for ZeroPivotError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "zero pivot at row {}", self.row)
    }
}

impl std::error::Error for ZeroPivotError {}

impl BandedMatrix {
    /// Creates a zero matrix.
    pub fn zeros(n: usize, bw: usize) -> Self {
        Self {
            n,
            bw,
            data: vec![0.0; n * (2 * bw + 1)],
        }
    }

    /// Matrix dimension.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is 0×0.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    #[inline]
    fn slot(&self, row: usize, col: usize) -> Option<usize> {
        let (lo, hi) = (row.saturating_sub(self.bw), (row + self.bw).min(self.n - 1));
        if col < lo || col > hi {
            return None;
        }
        Some(row * (2 * self.bw + 1) + (col + self.bw - row))
    }

    /// Reads entry `(row, col)` (zero outside the band).
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.slot(row, col).map_or(0.0, |s| self.data[s])
    }

    /// Writes entry `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the entry lies outside the band.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        let s = self.slot(row, col).expect("entry outside band");
        self.data[s] = value;
    }

    /// Adds to entry `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the entry lies outside the band.
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        let s = self.slot(row, col).expect("entry outside band");
        self.data[s] += value;
    }

    /// Zeros an entire row (used to impose Dirichlet rows).
    pub fn clear_row(&mut self, row: usize) {
        let start = row * (2 * self.bw + 1);
        self.data[start..start + 2 * self.bw + 1].fill(0.0);
    }

    /// `y = A·x`.
    pub fn mul_vec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        for row in 0..self.n {
            let lo = row.saturating_sub(self.bw);
            let hi = (row + self.bw).min(self.n - 1);
            let mut acc = 0.0;
            for col in lo..=hi {
                acc += self.get(row, col) * x[col];
            }
            y[row] = acc;
        }
    }

    /// Solves `A·x = b` in place by banded LU without pivoting,
    /// destroying the matrix.
    ///
    /// # Errors
    ///
    /// Returns [`ZeroPivotError`] if a pivot magnitude falls below
    /// 1e-300.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the matrix dimension.
    pub fn solve_in_place(mut self, b: &mut [f64]) -> Result<Vec<f64>, ZeroPivotError> {
        assert_eq!(b.len(), self.n);
        let n = self.n;
        let bw = self.bw;
        for k in 0..n {
            let pivot = self.get(k, k);
            if pivot.abs() < 1e-300 {
                return Err(ZeroPivotError { row: k });
            }
            let hi = (k + bw).min(n - 1);
            for row in (k + 1)..=hi {
                let factor = self.get(row, k) / pivot;
                if factor == 0.0 {
                    continue;
                }
                for col in (k + 1)..=(k + bw).min(n - 1) {
                    let v = self.get(row, col) - factor * self.get(k, col);
                    if let Some(s) = self.slot(row, col) {
                        self.data[s] = v;
                    }
                }
                b[row] -= factor * b[k];
                if let Some(s) = self.slot(row, k) {
                    self.data[s] = 0.0;
                }
            }
        }
        // Back substitution.
        let mut x = vec![0.0; n];
        for k in (0..n).rev() {
            let mut acc = b[k];
            let hi = (k + bw).min(n - 1);
            for col in (k + 1)..=hi {
                acc -= self.get(k, col) * x[col];
            }
            x[k] = acc / self.get(k, k);
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn tridiagonal_poisson() {
        // -u'' = 1 on 5 interior points, h = 1: u = x(6-x)/2 at x=1..5.
        let n = 5;
        let mut m = BandedMatrix::zeros(n, 1);
        for i in 0..n {
            m.set(i, i, 2.0);
            if i > 0 {
                m.set(i, i - 1, -1.0);
            }
            if i + 1 < n {
                m.set(i, i + 1, -1.0);
            }
        }
        let mut b = vec![1.0; n];
        let x = m.solve_in_place(&mut b).unwrap();
        let want = [2.5, 4.0, 4.5, 4.0, 2.5];
        for (got, w) in x.iter().zip(want) {
            assert!((got - w).abs() < 1e-10, "{got} vs {w}");
        }
    }

    #[test]
    fn wide_band_matches_grid_laplacian() {
        // 3x3 grid Laplacian (bw = 3) with Dirichlet boundary folded in:
        // solve and verify A·x = b.
        let n = 9;
        let bw = 3;
        let mut m = BandedMatrix::zeros(n, bw);
        for i in 0..n {
            m.set(i, i, 4.0);
            if i % 3 != 0 {
                m.set(i, i - 1, -1.0);
            }
            if i % 3 != 2 {
                m.set(i, i + 1, -1.0);
            }
            if i >= 3 {
                m.set(i, i - 3, -1.0);
            }
            if i + 3 < n {
                m.set(i, i + 3, -1.0);
            }
        }
        let m_copy = m.clone();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let mut rhs = b.clone();
        let x = m.solve_in_place(&mut rhs).unwrap();
        let mut check = vec![0.0; n];
        m_copy.mul_vec(&x, &mut check);
        for (c, w) in check.iter().zip(&b) {
            assert!((c - w).abs() < 1e-9);
        }
    }

    #[test]
    fn dirichlet_row_pins_value() {
        let n = 4;
        let mut m = BandedMatrix::zeros(n, 1);
        for i in 0..n {
            m.set(i, i, 2.0);
            if i > 0 {
                m.set(i, i - 1, -1.0);
            }
            if i + 1 < n {
                m.set(i, i + 1, -1.0);
            }
        }
        m.clear_row(0);
        m.set(0, 0, 1.0);
        let mut b = vec![7.0, 0.0, 0.0, 0.0];
        let x = m.solve_in_place(&mut b).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn zero_pivot_detected() {
        let m = BandedMatrix::zeros(3, 1);
        let mut b = vec![1.0; 3];
        assert!(m.solve_in_place(&mut b).is_err());
    }

    #[test]
    fn out_of_band_reads_zero() {
        let m = BandedMatrix::zeros(5, 1);
        assert_eq!(m.get(0, 4), 0.0);
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn solves_random_dominant_banded(
            offd in proptest::collection::vec(-1.0f64..1.0, 40),
            rhs in proptest::collection::vec(-3.0f64..3.0, 10),
        ) {
            let n = 10;
            let bw = 2;
            let mut m = BandedMatrix::zeros(n, bw);
            let mut k = 0;
            for i in 0..n {
                let mut diag = 1.0;
                for j in i.saturating_sub(bw)..=(i + bw).min(n - 1) {
                    if i != j {
                        let v = offd[k % offd.len()];
                        k += 1;
                        m.set(i, j, v);
                        diag += v.abs();
                    }
                }
                m.set(i, i, diag);
            }
            let m_copy = m.clone();
            let mut b = rhs.clone();
            let x = m.solve_in_place(&mut b).unwrap();
            let mut check = vec![0.0; n];
            m_copy.mul_vec(&x, &mut check);
            for (c, w) in check.iter().zip(&rhs) {
                prop_assert!((c - w).abs() < 1e-8);
            }
        }
    }
}
