//! Terminal-characteristic extraction: I_d–V_g sweeps, inverse
//! subthreshold slope, constant-current threshold, off-current and DIBL.

use subvt_physics::device::DeviceParams;
use subvt_physics::math::interp1;

use crate::device::{MeshDensity, Mosfet2d};
use crate::gummel::{DeviceSimulator, TcadError};

/// A sampled transfer characteristic at fixed `V_ds`.
#[derive(Debug, Clone, PartialEq)]
pub struct IdVg {
    /// Gate voltages, ascending, volts.
    pub v_g: Vec<f64>,
    /// Drain currents, A/µm.
    pub i_d: Vec<f64>,
    /// Drain bias, volts.
    pub v_d: f64,
}

impl IdVg {
    /// Gate voltage at which the current crosses `i_target`
    /// (log-interpolated). `None` outside the swept range, for a
    /// non-positive target, or when the sweep has fewer than two points
    /// (interpolation on an empty or single-point curve is undefined).
    pub fn v_g_at(&self, i_target: f64) -> Option<f64> {
        if i_target <= 0.0 || self.i_d.len() < 2 || self.v_g.len() != self.i_d.len() {
            return None;
        }
        let logs: Vec<f64> = self.i_d.iter().map(|i| i.max(1e-30).log10()).collect();
        let lt = i_target.log10();
        if lt < logs[0] || lt > logs[logs.len() - 1] {
            return None;
        }
        // Current is monotone in V_g; interpolate V_g over log10(I).
        Some(interp1(&logs, &self.v_g, lt))
    }

    /// Inverse subthreshold slope in mV/dec, measured between two
    /// current levels (defaults used by [`sweep_and_extract`] are one and
    /// three decades above the off-current). `None` when either level is
    /// outside the sweep, the levels coincide, or the sweep is degenerate
    /// (see [`IdVg::v_g_at`]).
    pub fn swing_between(&self, i_lo: f64, i_hi: f64) -> Option<f64> {
        let v_lo = self.v_g_at(i_lo)?;
        let v_hi = self.v_g_at(i_hi)?;
        let decades = (i_hi / i_lo).log10();
        if decades == 0.0 {
            return None;
        }
        Some((v_hi - v_lo) / decades * 1.0e3)
    }
}

/// Extracted device metrics from 2-D simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Extraction {
    /// Inverse subthreshold slope, mV/dec.
    pub s_s: f64,
    /// Constant-current threshold at saturation drain bias, volts.
    pub v_th_sat: f64,
    /// Off-current at `V_g = 0`, saturation drain bias, A/µm.
    pub i_off: f64,
    /// On-current at `V_g = V_d = V_dd`, A/µm.
    pub i_on: f64,
    /// DIBL in V/V between the linear and saturation sweeps.
    pub dibl: f64,
}

/// Sweeps `I_d(V_g)` at fixed drain bias.
///
/// # Errors
///
/// [`TcadError::InvalidSweep`] for a degenerate spec (non-positive or
/// non-finite step / end point); otherwise propagates [`TcadError`]
/// from any bias point.
pub fn id_vg(
    sim: &mut DeviceSimulator,
    v_d: f64,
    v_g_max: f64,
    step: f64,
) -> Result<IdVg, TcadError> {
    if !(step.is_finite() && v_g_max.is_finite() && step > 0.0 && v_g_max > 0.0) {
        return Err(TcadError::InvalidSweep {
            step,
            v_max: v_g_max,
        });
    }
    let _span = subvt_engine::trace::span("tcad.id_vg").attr("v_d", v_d);
    let mut v_g = Vec::new();
    let mut i_d = Vec::new();
    sim.set_bias(0.0, v_d)?;
    let steps = (v_g_max / step).round() as usize;
    for k in 0..=steps {
        let vg = v_g_max * k as f64 / steps as f64;
        sim.set_bias(vg, v_d)?;
        v_g.push(vg);
        i_d.push(sim.drain_current());
    }
    Ok(IdVg { v_g, i_d, v_d })
}

/// A sampled output characteristic at fixed `V_gs`.
#[derive(Debug, Clone, PartialEq)]
pub struct IdVd {
    /// Drain voltages, ascending, volts.
    pub v_d: Vec<f64>,
    /// Drain currents, A/µm.
    pub i_d: Vec<f64>,
    /// Gate bias, volts.
    pub v_g: f64,
}

impl IdVd {
    /// Output conductance `dI_d/dV_d` at the last (highest-V_d) segment —
    /// a saturation-quality metric. `None` on curves with fewer than
    /// two points or mismatched vectors (the slope is undefined there).
    pub fn saturation_conductance(&self) -> Option<f64> {
        let n = self.v_d.len();
        if n < 2 || self.i_d.len() != n {
            return None;
        }
        Some((self.i_d[n - 1] - self.i_d[n - 2]) / (self.v_d[n - 1] - self.v_d[n - 2]))
    }
}

/// Sweeps `I_d(V_d)` at fixed gate bias — the output characteristic.
///
/// # Errors
///
/// [`TcadError::InvalidSweep`] for a degenerate spec; otherwise
/// propagates [`TcadError`] from any bias point.
pub fn id_vd(
    sim: &mut DeviceSimulator,
    v_g: f64,
    v_d_max: f64,
    step: f64,
) -> Result<IdVd, TcadError> {
    if !(step.is_finite() && v_d_max.is_finite() && step > 0.0 && v_d_max > 0.0) {
        return Err(TcadError::InvalidSweep {
            step,
            v_max: v_d_max,
        });
    }
    let mut v_d = Vec::new();
    let mut i_d = Vec::new();
    sim.set_bias(v_g, 0.0)?;
    let steps = (v_d_max / step).round() as usize;
    for k in 0..=steps {
        let vd = v_d_max * k as f64 / steps as f64;
        sim.set_bias(v_g, vd)?;
        v_d.push(vd);
        i_d.push(sim.drain_current());
    }
    Ok(IdVd { v_d, i_d, v_g })
}

impl subvt_engine::Blob for Extraction {
    fn encode(&self) -> Vec<f64> {
        vec![self.s_s, self.v_th_sat, self.i_off, self.i_on, self.dibl]
    }
    fn decode(record: &[f64]) -> Option<Self> {
        match record {
            [s_s, v_th_sat, i_off, i_on, dibl] => Some(Self {
                s_s: *s_s,
                v_th_sat: *v_th_sat,
                i_off: *i_off,
                i_on: *i_on,
                dibl: *dibl,
            }),
            _ => None,
        }
    }
}

/// Stable cache key covering every input that determines an
/// [`Extraction`]: the full parameter set (via the canonical
/// [`subvt_engine::Keyed`] stream shared with the analytic backend's
/// cache keys), the mesh density and the sweep spec. The schema tag is
/// versioned — bump it whenever the solver or the extraction recipe
/// changes results.
pub fn extraction_key(params: &DeviceParams, density: MeshDensity, step: f64) -> u64 {
    subvt_engine::KeyBuilder::new("tcad.extract.v1")
        .keyed(params)
        .str(density.as_str())
        .f64(step)
        .finish()
}

/// Runs the full characterization: a linear-region sweep
/// (`V_d = 50 mV`) and a saturation sweep (`V_d = V_dd`), then extracts
/// swing, threshold, off-current, on-current and DIBL.
///
/// The two sweeps are independent (each runs its own simulator and
/// walks its own Gummel continuation) and execute in parallel on the
/// engine pool. The finished extraction is stored in the process-wide
/// content-addressed cache, so repeated characterizations of one
/// device — e.g. across experiments — solve the 2-D device exactly
/// once.
///
/// The constant-current threshold criterion is the industry-standard
/// `I_d = 100 nA · W/L_eff` (per µm of width).
///
/// A standard-mesh characterization that fails even after the Gummel
/// ladder falls back to the coarse mesh (the final
/// [`subvt_engine::RecoveryStep::CoarseMeshFallback`] rung) before the
/// failure is surfaced: a lower-fidelity extraction beats losing the
/// whole figure.
///
/// # Errors
///
/// Propagates [`TcadError`] from the sweeps once the ladder (including
/// the coarse-mesh fallback) is exhausted.
pub fn sweep_and_extract(
    params: &DeviceParams,
    density: MeshDensity,
) -> Result<Extraction, TcadError> {
    let step = 0.05;
    let key = extraction_key(params, density, step);
    let params = *params;
    subvt_engine::global_cache().try_get_or_compute("tcad.extract", key, move || {
        match sweep_and_extract_uncached(&params, density, step) {
            Ok(ext) => Ok(ext),
            Err(err) if density == MeshDensity::Standard => {
                let fallback = sweep_and_extract_uncached(&params, MeshDensity::Coarse, step);
                subvt_engine::recovery::record(
                    "tcad.extract",
                    subvt_engine::RecoveryStep::CoarseMeshFallback,
                    format!("l_poly={}nm: {err}", params.geometry.l_poly.get()),
                    fallback.is_ok(),
                );
                // If the coarse mesh also fails, surface the original
                // standard-mesh failure.
                fallback.map_err(|_| err)
            }
            Err(err) => Err(err),
        }
    })
}

fn sweep_and_extract_uncached(
    params: &DeviceParams,
    density: MeshDensity,
    step: f64,
) -> Result<Extraction, TcadError> {
    let _span = subvt_engine::trace::span("tcad.sweep_and_extract")
        .attr("l_poly_nm", params.geometry.l_poly.get())
        .attr("v_dd", params.v_dd.as_volts())
        .attr("density", density.as_str());
    let v_dd = params.v_dd.as_volts();
    let params = *params;

    // The sweeps are pure jobs (they never touch the cache), which is
    // what keeps the cache's single-flight protocol deadlock-free.
    let mut curves = subvt_engine::global().map(vec![v_dd, 0.05], move |v_d| {
        let device = Mosfet2d::build(&params, density);
        let mut sim = DeviceSimulator::new(device)?;
        id_vg(&mut sim, v_d, v_dd, step)
    });
    let lin = curves.pop().expect("two sweeps")?;
    let sat = curves.pop().expect("two sweeps")?;

    let i_off = sat.i_d[0];
    let i_on = *sat.i_d.last().expect("non-empty sweep");

    // Swing: measured one to three decades above the off-current, well
    // inside the exponential region.
    let s_s = sat
        .swing_between(10.0 * i_off, 1.0e3 * i_off)
        .unwrap_or(f64::NAN);

    let l_eff_um = params.geometry.l_eff().get() * 1.0e-3;
    let i_crit = 1.0e-7 / l_eff_um; // 100 nA · W/L at W = 1 µm
    let v_th_sat = sat.v_g_at(i_crit).unwrap_or(f64::NAN);
    let v_th_lin = lin.v_g_at(i_crit).unwrap_or(f64::NAN);
    let dibl = if v_th_sat.is_finite() && v_th_lin.is_finite() {
        (v_th_lin - v_th_sat) / (v_dd - 0.05)
    } else {
        f64::NAN
    };

    Ok(Extraction {
        s_s,
        v_th_sat,
        i_off,
        i_on,
        dibl,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use subvt_physics::device::DeviceParams;

    #[test]
    fn idvg_interpolation_helpers() {
        let curve = IdVg {
            v_g: vec![0.0, 0.1, 0.2, 0.3],
            i_d: vec![1e-12, 1e-11, 1e-10, 1e-9],
            v_d: 1.0,
        };
        // Exactly one decade per 100 mV → S_S = 100 mV/dec.
        let ss = curve.swing_between(1e-11, 1e-9).unwrap();
        assert!((ss - 100.0).abs() < 1e-9);
        let vg = curve.v_g_at(1e-10).unwrap();
        assert!((vg - 0.2).abs() < 1e-12);
        assert!(curve.v_g_at(1e-15).is_none());
        assert!(curve.v_g_at(1e-3).is_none());
    }

    #[test]
    fn degenerate_sweeps_return_none_instead_of_panicking() {
        // Regression: these used to index logs[0] / logs[len - 1] and
        // panic on empty or single-point curves.
        let empty = IdVg {
            v_g: vec![],
            i_d: vec![],
            v_d: 1.0,
        };
        assert_eq!(empty.v_g_at(1e-9), None);
        assert_eq!(empty.swing_between(1e-11, 1e-9), None);

        let single = IdVg {
            v_g: vec![0.0],
            i_d: vec![1e-12],
            v_d: 1.0,
        };
        assert_eq!(single.v_g_at(1e-12), None);
        assert_eq!(single.swing_between(1e-12, 1e-12), None);

        let mismatched = IdVg {
            v_g: vec![0.0, 0.1],
            i_d: vec![1e-12],
            v_d: 1.0,
        };
        assert_eq!(mismatched.v_g_at(1e-12), None);
    }

    #[test]
    fn non_positive_target_and_zero_decades_return_none() {
        let curve = IdVg {
            v_g: vec![0.0, 0.1],
            i_d: vec![1e-12, 1e-11],
            v_d: 1.0,
        };
        assert_eq!(curve.v_g_at(0.0), None);
        assert_eq!(curve.v_g_at(-1e-9), None);
        // Identical levels span zero decades — slope is undefined.
        assert_eq!(curve.swing_between(1e-12, 1e-12), None);
    }

    #[test]
    fn degenerate_sweep_specs_are_typed_errors_not_panics() {
        use crate::device::{MeshDensity, Mosfet2d};
        use crate::gummel::DeviceSimulator;
        let dev = Mosfet2d::build(&DeviceParams::reference_90nm_nfet(), MeshDensity::Coarse);
        let mut sim = DeviceSimulator::new(dev).unwrap();
        for (v_max, step) in [(0.0, 0.05), (1.2, 0.0), (1.2, -0.1), (f64::NAN, 0.05)] {
            match id_vg(&mut sim, 0.6, v_max, step) {
                Err(TcadError::InvalidSweep { .. }) => {}
                other => panic!("({v_max}, {step}) must be InvalidSweep, got {other:?}"),
            }
            match id_vd(&mut sim, 0.6, v_max, step) {
                Err(TcadError::InvalidSweep { .. }) => {}
                other => panic!("({v_max}, {step}) must be InvalidSweep, got {other:?}"),
            }
        }
        // The conductance of an under-sampled output curve is undefined,
        // not a panic.
        let short = IdVd {
            v_d: vec![0.0],
            i_d: vec![0.0],
            v_g: 0.6,
        };
        assert_eq!(short.saturation_conductance(), None);
    }

    #[test]
    fn extraction_blob_round_trips() {
        use subvt_engine::Blob;
        let ext = Extraction {
            s_s: 92.5,
            v_th_sat: 0.31,
            i_off: 3.2e-11,
            i_on: 4.1e-4,
            dibl: 0.08,
        };
        assert_eq!(Extraction::decode(&ext.encode()), Some(ext));
        assert_eq!(Extraction::decode(&[1.0, 2.0]), None);
    }

    #[test]
    fn extraction_key_distinguishes_inputs() {
        let p = DeviceParams::reference_90nm_nfet();
        let mut q = p;
        q.v_dd = subvt_units::Volts::new(p.v_dd.as_volts() + 0.1);
        let a = extraction_key(&p, MeshDensity::Coarse, 0.05);
        assert_eq!(a, extraction_key(&p, MeshDensity::Coarse, 0.05));
        assert_ne!(a, extraction_key(&q, MeshDensity::Coarse, 0.05));
        assert_ne!(a, extraction_key(&p, MeshDensity::Standard, 0.05));
        assert_ne!(a, extraction_key(&p, MeshDensity::Coarse, 0.1));
    }

    #[test]
    fn repeated_extraction_is_served_from_cache() {
        let params = DeviceParams::reference_90nm_nfet();
        let cache = subvt_engine::global_cache();
        let first = sweep_and_extract(&params, MeshDensity::Coarse).unwrap();
        let before = cache.stats().hits;
        let second = sweep_and_extract(&params, MeshDensity::Coarse).unwrap();
        assert_eq!(first, second);
        assert!(
            cache.stats().hits > before,
            "second identical extraction must be a cache hit"
        );
    }

    #[test]
    fn output_characteristic_is_monotone_and_saturates() {
        use crate::device::{MeshDensity, Mosfet2d};
        use crate::gummel::DeviceSimulator;
        let dev = Mosfet2d::build(&DeviceParams::reference_90nm_nfet(), MeshDensity::Coarse);
        let mut sim = DeviceSimulator::new(dev).unwrap();
        let curve = id_vd(&mut sim, 0.9, 1.2, 0.1).unwrap();
        // Monotone increasing in V_d.
        for w in curve.i_d.windows(2) {
            assert!(w[1] >= w[0] * (1.0 - 1e-9), "I_d must rise with V_d");
        }
        // Output conductance in saturation well below the triode slope.
        let g_triode = (curve.i_d[1] - curve.i_d[0]) / (curve.v_d[1] - curve.v_d[0]);
        let g_sat = curve.saturation_conductance().unwrap();
        assert!(
            g_sat < 0.3 * g_triode,
            "saturation: g_sat {g_sat:e} vs triode {g_triode:e}"
        );
    }

    #[test]
    fn reference_device_extraction_is_physical() {
        // The flagship 2-D validation: coarse-mesh 90 nm NFET metrics in
        // physically sensible windows (compact-model agreement is tested
        // in the cross-crate integration suite).
        let ext =
            sweep_and_extract(&DeviceParams::reference_90nm_nfet(), MeshDensity::Coarse).unwrap();
        assert!(ext.s_s > 60.0 && ext.s_s < 130.0, "S_S = {}", ext.s_s);
        assert!(
            ext.v_th_sat > 0.10 && ext.v_th_sat < 0.65,
            "V_th = {}",
            ext.v_th_sat
        );
        assert!(
            ext.i_off > 1.0e-14 && ext.i_off < 1.0e-8,
            "I_off = {:e}",
            ext.i_off
        );
        assert!(ext.i_on > 1.0e-5, "I_on = {:e}", ext.i_on);
        assert!(ext.dibl > 0.0 && ext.dibl < 0.5, "DIBL = {}", ext.dibl);
    }
}
