//! Field inspection: extract 1-D cuts of the solved potential and
//! carrier fields for plotting and physical sanity checks (the 2-D
//! equivalents of MEDICI's contour exports behind the paper's Fig. 1(b)).

use crate::gummel::DeviceSimulator;
use crate::poisson::thermals;

/// One sampled field cut.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldCut {
    /// Position along the cut, cm.
    pub position: Vec<f64>,
    /// Electrostatic potential, volts.
    pub potential: Vec<f64>,
    /// Electron density, cm⁻³.
    pub electrons: Vec<f64>,
    /// Net signed doping, cm⁻³.
    pub doping: Vec<f64>,
}

impl FieldCut {
    /// Index and value of the potential minimum along the cut — in a
    /// channel cut this is the source-drain barrier top that controls
    /// the subthreshold current.
    pub fn barrier(&self) -> (usize, f64) {
        self.potential
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite potentials"))
            .map(|(i, &v)| (i, v))
            .expect("non-empty cut")
    }
}

/// Lateral cut along the silicon surface (`y = 0⁺`), source to drain.
pub fn surface_cut(sim: &DeviceSimulator) -> FieldCut {
    let dev = sim.device();
    let j = dev.j_si0;
    let nx = dev.mesh.nx();
    let mut cut = FieldCut {
        position: Vec::with_capacity(nx),
        potential: Vec::with_capacity(nx),
        electrons: Vec::with_capacity(nx),
        doping: Vec::with_capacity(nx),
    };
    for i in 0..nx {
        let idx = dev.mesh.idx(i, j);
        cut.position.push(dev.mesh.xs[i]);
        cut.potential.push(sim.potential()[idx]);
        cut.electrons.push(sim.electron_density()[idx]);
        cut.doping.push(dev.doping[idx]);
    }
    cut
}

/// Vertical cut through the middle of the channel, surface to substrate.
pub fn channel_depth_cut(sim: &DeviceSimulator) -> FieldCut {
    let dev = sim.device();
    let mid_x = 0.5 * (dev.gate_span.0 + dev.gate_span.1);
    let i = (0..dev.mesh.nx())
        .min_by(|&a, &b| {
            (dev.mesh.xs[a] - mid_x)
                .abs()
                .partial_cmp(&(dev.mesh.xs[b] - mid_x).abs())
                .expect("finite coordinates")
        })
        .expect("non-empty axis");
    let ny = dev.mesh.ny();
    let mut cut = FieldCut {
        position: Vec::new(),
        potential: Vec::new(),
        electrons: Vec::new(),
        doping: Vec::new(),
    };
    for j in dev.j_si0..ny {
        let idx = dev.mesh.idx(i, j);
        cut.position.push(dev.mesh.ys[j]);
        cut.potential.push(sim.potential()[idx]);
        cut.electrons.push(sim.electron_density()[idx]);
        cut.doping.push(dev.doping[idx]);
    }
    cut
}

/// Sheet density of channel electrons (cm⁻²): the depth integral of the
/// electron density through the mid-channel cut — the inversion charge
/// the gate controls.
pub fn channel_sheet_density(sim: &DeviceSimulator) -> f64 {
    let cut = channel_depth_cut(sim);
    let mut total = 0.0;
    for k in 1..cut.position.len() {
        let dy = cut.position[k] - cut.position[k - 1];
        total += 0.5 * (cut.electrons[k] + cut.electrons[k - 1]) * dy;
    }
    total
}

/// Subthreshold-barrier summary at the present bias.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BarrierReport {
    /// Barrier-top potential along the surface channel, volts.
    pub barrier_potential: f64,
    /// Lateral position of the barrier top, cm.
    pub barrier_position: f64,
    /// Channel electron sheet density, cm⁻².
    pub sheet_density: f64,
    /// Thermal voltage used, volts.
    pub v_t: f64,
}

/// Builds the barrier report for the current bias point.
pub fn barrier_report(sim: &DeviceSimulator) -> BarrierReport {
    let cut = surface_cut(sim);
    let (k, v) = cut.barrier();
    let (vt, _) = thermals(sim.device());
    BarrierReport {
        barrier_potential: v,
        barrier_position: cut.position[k],
        sheet_density: channel_sheet_density(sim),
        v_t: vt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{MeshDensity, Mosfet2d};
    use subvt_physics::device::DeviceParams;

    fn sim() -> DeviceSimulator {
        let dev = Mosfet2d::build(&DeviceParams::reference_90nm_nfet(), MeshDensity::Coarse);
        DeviceSimulator::new(dev).expect("equilibrium")
    }

    #[test]
    fn surface_cut_shows_source_barrier_drain_shape() {
        let s = sim();
        let cut = surface_cut(&s);
        // n+ ends high, channel dips: the minimum sits strictly inside.
        let (k, v) = cut.barrier();
        assert!(k > 0 && k < cut.position.len() - 1, "interior barrier");
        assert!(v < cut.potential[0] - 0.05, "barrier below the source");
        assert!(v < cut.potential[cut.potential.len() - 1] - 0.05);
    }

    #[test]
    fn gate_bias_lowers_the_barrier_and_floods_the_channel() {
        let mut s = sim();
        let before = barrier_report(&s);
        s.set_bias(0.6, 0.05).expect("bias");
        let after = barrier_report(&s);
        assert!(
            after.barrier_potential > before.barrier_potential + 0.2,
            "gate must lift the channel potential: {} -> {}",
            before.barrier_potential,
            after.barrier_potential
        );
        assert!(
            after.sheet_density > 100.0 * before.sheet_density,
            "inversion charge must flood in: {:e} -> {:e}",
            before.sheet_density,
            after.sheet_density
        );
    }

    #[test]
    fn depth_cut_reaches_the_neutral_substrate() {
        let s = sim();
        let cut = channel_depth_cut(&s);
        let (vt, ni) = thermals(s.device());
        // The deepest point should sit at the substrate's neutral level.
        let deep = *cut.potential.last().unwrap();
        let want = vt * ((cut.doping.last().unwrap() / (2.0 * ni)).asinh());
        assert!((deep - want).abs() < 0.02, "deep {deep} vs neutral {want}");
    }

    #[test]
    fn drain_bias_moves_barrier_toward_source() {
        // DIBL in space: raising V_d drags the barrier top toward the
        // source end of the channel.
        let mut s = sim();
        s.set_bias(0.0, 0.05).expect("low drain");
        let low = barrier_report(&s).barrier_position;
        s.set_bias(0.0, 1.2).expect("high drain");
        let high = barrier_report(&s).barrier_position;
        assert!(
            high <= low + 1e-9,
            "barrier must not move toward the drain: {low:e} -> {high:e}"
        );
    }
}
