//! Gummel (decoupled) iteration: alternating nonlinear-Poisson and
//! electron-continuity solves with bias ramping — the outer loop that
//! turns the PDE modules into a biased device simulator.

use crate::continuity::{drain_current, solve_electrons};
use crate::device::Mosfet2d;
use crate::poisson::{initial_guess, solve, thermals, Bias};
use subvt_engine::faultinject::{self, FaultSite};
use subvt_engine::recovery::{self, RecoveryStep};
use subvt_engine::trace;

/// Outer-loop convergence tolerance on the potential update, volts.
const GUMMEL_TOL: f64 = 1.0e-6;
/// Maximum Gummel iterations per bias point.
const MAX_GUMMEL: usize = 80;
/// Maximum bias step when ramping, volts.
const RAMP_STEP: f64 = 0.1;
/// Under-relaxation factor applied by the damping-increase recovery
/// rung (1.0 = the undamped production path).
const RECOVERY_RELAX: f64 = 0.5;
/// How many pieces the bias-substep recovery rung splits a failing ramp
/// step into.
const SUBSTEP_SPLIT: usize = 4;

/// Errors from the device simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TcadError {
    /// The inner Poisson Newton failed to converge.
    PoissonDiverged {
        /// Bias point at which the failure occurred.
        bias: Bias,
    },
    /// The outer Gummel loop stalled.
    GummelStalled {
        /// Bias point at which the failure occurred.
        bias: Bias,
        /// Final potential update, volts.
        residual: f64,
    },
    /// A sweep specification was degenerate (non-positive step or end
    /// point, or a non-finite value).
    InvalidSweep {
        /// Requested sweep step, volts.
        step: f64,
        /// Requested sweep end point, volts.
        v_max: f64,
    },
}

impl core::fmt::Display for TcadError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TcadError::PoissonDiverged { bias } => {
                write!(
                    f,
                    "poisson newton diverged at Vg={}, Vd={}",
                    bias.v_gate, bias.v_drain
                )
            }
            TcadError::GummelStalled { bias, residual } => write!(
                f,
                "gummel stalled at Vg={}, Vd={} (residual {residual:e} V)",
                bias.v_gate, bias.v_drain
            ),
            TcadError::InvalidSweep { step, v_max } => write!(
                f,
                "invalid sweep spec: step={step}, v_max={v_max} (both must be finite and positive)"
            ),
        }
    }
}

impl std::error::Error for TcadError {}

/// A biased, converged device state.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSimulator {
    device: Mosfet2d,
    bias: Bias,
    psi: Vec<f64>,
    n: Vec<f64>,
    phi_n: Vec<f64>,
}

impl DeviceSimulator {
    /// Builds the simulator and solves the zero-bias equilibrium.
    ///
    /// # Errors
    ///
    /// Returns [`TcadError`] if equilibrium cannot be established (would
    /// indicate a malformed mesh).
    pub fn new(device: Mosfet2d) -> Result<Self, TcadError> {
        let bias = Bias::default();
        let mut psi = initial_guess(&device, &bias);
        let zeros = vec![0.0; device.len()];
        let out = solve(&device, &mut psi, &zeros, &zeros, &bias);
        if !out.converged {
            return Err(TcadError::PoissonDiverged { bias });
        }
        let n = solve_electrons(&device, &psi, &bias);
        let phi_n = zeros;
        Ok(Self {
            device,
            bias,
            psi,
            n,
            phi_n,
        })
    }

    /// The current bias point.
    pub fn bias(&self) -> Bias {
        self.bias
    }

    /// Read access to the underlying device.
    pub fn device(&self) -> &Mosfet2d {
        &self.device
    }

    /// Read access to the converged potential field, volts per node.
    pub fn potential(&self) -> &[f64] {
        &self.psi
    }

    /// Read access to the electron density field, cm⁻³ per node.
    pub fn electron_density(&self) -> &[f64] {
        &self.n
    }

    /// Moves to a new `(V_g, V_d)` bias, ramping in steps of at most
    /// 100 mV from the current point and running the Gummel loop at each
    /// step. A non-converging step escalates through the recovery
    /// ladder (retry → damping increase → bias substepping) before the
    /// step is declared failed; each rung is recorded in the trace as a
    /// `tcad.gummel` recovery.
    ///
    /// # Errors
    ///
    /// Returns [`TcadError`] if any intermediate point fails after the
    /// full ladder.
    pub fn set_bias(&mut self, v_gate: f64, v_drain: f64) -> Result<(), TcadError> {
        let steps_g = ((v_gate - self.bias.v_gate).abs() / RAMP_STEP).ceil() as usize;
        let steps_d = ((v_drain - self.bias.v_drain).abs() / RAMP_STEP).ceil() as usize;
        let steps = steps_g.max(steps_d).max(1);
        let (g0, d0) = (self.bias.v_gate, self.bias.v_drain);
        for k in 1..=steps {
            let f = k as f64 / steps as f64;
            let bias = Bias {
                v_gate: g0 + f * (v_gate - g0),
                v_drain: d0 + f * (v_drain - d0),
                ..self.bias
            };
            self.converge_at(bias)?;
        }
        Ok(())
    }

    /// One ramp step with the recovery ladder wrapped around the plain
    /// Gummel solve. The happy path is a single undamped [`Self::gummel_at`]
    /// call — bit-identical to the pre-ladder behavior.
    fn converge_at(&mut self, bias: Bias) -> Result<(), TcadError> {
        // Chaos harness: an injected divergence fires *before* the
        // solver mutates any state, so the plain-retry rung below
        // reproduces the fault-free solve bit for bit.
        let snapshot = self.state_snapshot();
        let first = if faultinject::should_inject(FaultSite::SolverDiverge) {
            Err(TcadError::PoissonDiverged { bias })
        } else {
            self.gummel_at(bias, 1.0)
        };
        let Err(first_err) = first else {
            return Ok(());
        };
        let at = format!("Vg={}, Vd={}: {first_err}", bias.v_gate, bias.v_drain);

        // Rung 1: identical re-run from the pre-step state. Clears
        // injected faults exactly; a deterministic real failure fails
        // again and escalates.
        self.restore_snapshot(&snapshot);
        let retried = self.gummel_at(bias, 1.0);
        recovery::record("tcad.gummel", RecoveryStep::Retry, &at, retried.is_ok());
        if retried.is_ok() {
            return Ok(());
        }

        // Rung 2: stronger damping (under-relaxed potential updates).
        self.restore_snapshot(&snapshot);
        let damped = self.gummel_at(bias, RECOVERY_RELAX);
        recovery::record(
            "tcad.gummel",
            RecoveryStep::DampingIncrease,
            &at,
            damped.is_ok(),
        );
        if damped.is_ok() {
            return Ok(());
        }

        // Rung 3: split the ramp step into smaller bias moves, damped.
        self.restore_snapshot(&snapshot);
        let (g0, d0) = (snapshot.bias.v_gate, snapshot.bias.v_drain);
        let mut substepped = Ok(());
        for k in 1..=SUBSTEP_SPLIT {
            let f = k as f64 / SUBSTEP_SPLIT as f64;
            let sub = Bias {
                v_gate: g0 + f * (bias.v_gate - g0),
                v_drain: d0 + f * (bias.v_drain - d0),
                ..bias
            };
            substepped = self.gummel_at(sub, RECOVERY_RELAX);
            if substepped.is_err() {
                break;
            }
        }
        recovery::record(
            "tcad.gummel",
            RecoveryStep::BiasSubstep,
            &at,
            substepped.is_ok(),
        );
        if substepped.is_ok() {
            return Ok(());
        }
        // Ladder exhausted: restore the last good state and surface the
        // original failure.
        self.restore_snapshot(&snapshot);
        Err(first_err)
    }

    fn state_snapshot(&self) -> StateSnapshot {
        StateSnapshot {
            bias: self.bias,
            psi: self.psi.clone(),
            n: self.n.clone(),
            phi_n: self.phi_n.clone(),
        }
    }

    fn restore_snapshot(&mut self, snap: &StateSnapshot) {
        self.bias = snap.bias;
        self.psi.clone_from(&snap.psi);
        self.n.clone_from(&snap.n);
        self.phi_n.clone_from(&snap.phi_n);
    }

    fn gummel_at(&mut self, bias: Bias, relax: f64) -> Result<(), TcadError> {
        let (vt, ni) = thermals(&self.device);
        let zeros = vec![0.0; self.device.len()];
        let mut last_residual = f64::INFINITY;
        trace::add("tcad.gummel.bias_points", 1);
        let record = |iterations: usize, residual: f64| {
            trace::observe("tcad.gummel.iterations", iterations as f64);
            if residual.is_finite() && residual > 0.0 {
                trace::observe_with(
                    "tcad.gummel.residual_log10",
                    residual.log10(),
                    &trace::LOG10_BUCKETS,
                );
            }
        };
        for iteration in 1..=MAX_GUMMEL {
            let psi_before = self.psi.clone();
            let out = solve(&self.device, &mut self.psi, &self.phi_n, &zeros, &bias);
            if !out.converged {
                trace::add("tcad.gummel.poisson_failures", 1);
                record(iteration, last_residual);
                return Err(TcadError::PoissonDiverged { bias });
            }
            if relax < 1.0 {
                // Damping-increase rung: under-relax the potential
                // update. The `relax == 1.0` production path skips this
                // loop entirely so its arithmetic is untouched.
                for (p, pb) in self.psi.iter_mut().zip(&psi_before) {
                    *p = pb + relax * (*p - pb);
                }
            }
            self.n = solve_electrons(&self.device, &self.psi, &bias);
            // Update the electron quasi-Fermi potential for the next
            // Poisson linearization.
            for idx in 0..self.device.len() {
                if self.n[idx] > 0.0 {
                    self.phi_n[idx] = self.psi[idx] - vt * (self.n[idx] / ni).ln();
                }
            }
            let residual = self
                .psi
                .iter()
                .zip(&psi_before)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            last_residual = residual;
            if residual < GUMMEL_TOL {
                self.bias = bias;
                record(iteration, residual);
                return Ok(());
            }
        }
        trace::add("tcad.gummel.stall", 1);
        record(MAX_GUMMEL, last_residual);
        Err(TcadError::GummelStalled {
            bias,
            residual: last_residual,
        })
    }

    /// Drain terminal current at the present bias, A/µm of gate width.
    pub fn drain_current(&self) -> f64 {
        drain_current(&self.device, &self.psi, &self.n)
    }
}

/// Saved converged state, restored before each recovery-ladder attempt
/// (the failed attempt leaves `psi`/`n`/`phi_n` dirty).
struct StateSnapshot {
    bias: Bias,
    psi: Vec<f64>,
    n: Vec<f64>,
    phi_n: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{MeshDensity, Mosfet2d};
    use subvt_physics::device::DeviceParams;

    fn simulator() -> DeviceSimulator {
        let dev = Mosfet2d::build(&DeviceParams::reference_90nm_nfet(), MeshDensity::Coarse);
        DeviceSimulator::new(dev).expect("equilibrium")
    }

    #[test]
    fn off_state_leakage_is_small() {
        let mut sim = simulator();
        sim.set_bias(0.0, 1.2).unwrap();
        let id = sim.drain_current();
        // Off-current decades below the on-current (the 2-D structure
        // leaks more than the compact calibration; see EXPERIMENTS.md).
        assert!(id > 1.0e-15 && id < 5.0e-8, "I_off = {id} A/µm");
    }

    #[test]
    fn gate_bias_turns_the_channel_on() {
        let mut sim = simulator();
        sim.set_bias(0.0, 0.6).unwrap();
        let i_off = sim.drain_current();
        sim.set_bias(1.2, 0.6).unwrap();
        let i_on = sim.drain_current();
        assert!(
            i_on > 1.0e4 * i_off,
            "on/off = {} ({i_on} vs {i_off})",
            i_on / i_off
        );
        // On-current of a 90 nm-class NFET: tens of µA to ~1 mA per µm.
        assert!(i_on > 1.0e-5 && i_on < 3.0e-3, "I_on = {i_on} A/µm");
    }

    #[test]
    fn subthreshold_current_is_exponential_in_vg() {
        let mut sim = simulator();
        sim.set_bias(0.05, 0.6).unwrap();
        let i1 = sim.drain_current();
        sim.set_bias(0.15, 0.6).unwrap();
        let i2 = sim.drain_current();
        // 100 mV of gate bias at S_S ≈ 80–110 mV/dec: ×8–×20.
        let ratio = i2 / i1;
        assert!(ratio > 5.0 && ratio < 40.0, "decade ratio {ratio}");
    }

    #[test]
    fn injected_divergence_recovers_bit_identically() {
        let mut clean = simulator();
        clean.set_bias(0.3, 0.6).unwrap();
        let i_clean = clean.drain_current();

        // Every ramp step draws an injected divergence, which the
        // plain-retry rung must clear without perturbing the numerics.
        subvt_engine::faultinject::configure(Some(subvt_engine::FaultPlan {
            p_diverge: 1.0,
            ..subvt_engine::FaultPlan::quiet(31)
        }));
        let mut chaotic = simulator();
        let result = chaotic.set_bias(0.3, 0.6);
        subvt_engine::faultinject::configure(None);
        result.unwrap();
        assert_eq!(
            chaotic.drain_current().to_bits(),
            i_clean.to_bits(),
            "recovered solve must be bit-identical to the clean solve"
        );
        let recovered = subvt_engine::recovery::snapshot()
            .iter()
            .filter(|r| r.site == "tcad.gummel" && r.recovered)
            .count();
        assert!(recovered > 0, "retry rung never recorded");
    }

    #[test]
    fn dibl_raises_off_current() {
        let mut sim = simulator();
        sim.set_bias(0.0, 0.1).unwrap();
        let low = sim.drain_current();
        sim.set_bias(0.0, 1.2).unwrap();
        let high = sim.drain_current();
        assert!(high > low, "DIBL must raise leakage: {high} vs {low}");
    }
}
