//! The technology-node inputs the paper states in §2.2:
//!
//! * `L_poly` shrinks 30 % per generation (65 → 46 → 32 → 22 nm),
//! * `T_ox` shrinks only 10 % per generation (2.10 → 1.89 → 1.70 → 1.53 nm)
//!   — the slow oxide scaling at the heart of the paper's argument,
//! * `V_dd` steps 1.2 → 1.1 → 1.0 → 0.9 V,
//! * the leakage budget starts at 100 pA/µm and grows 25 % per
//!   generation (LSTP-like constraint, slightly relaxed from ITRS),
//! * all other physical dimensions scale 30 % per generation.

use subvt_units::{AmpsPerMicron, Nanometers, Volts};

/// A technology generation from the paper's study range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TechNode {
    /// 90 nm node (the reference generation).
    N90,
    /// 65 nm node.
    N65,
    /// 45 nm node.
    N45,
    /// 32 nm node.
    N32,
}

impl TechNode {
    /// All nodes in scaling order.
    pub const ALL: [TechNode; 4] = [TechNode::N90, TechNode::N65, TechNode::N45, TechNode::N32];

    /// Generations elapsed since 90 nm (0 for 90 nm).
    pub fn generation(self) -> u32 {
        match self {
            TechNode::N90 => 0,
            TechNode::N65 => 1,
            TechNode::N45 => 2,
            TechNode::N32 => 3,
        }
    }

    /// Human-readable node name.
    pub fn name(self) -> &'static str {
        match self {
            TechNode::N90 => "90nm",
            TechNode::N65 => "65nm",
            TechNode::N45 => "45nm",
            TechNode::N32 => "32nm",
        }
    }

    /// The 30 %-per-generation dimension scale factor `0.7^g` applied to
    /// every physical dimension except `T_ox` (and except `L_poly` under
    /// the sub-V_th strategy, which chooses its own gate length).
    pub fn dimension_scale(self) -> f64 {
        0.7f64.powi(self.generation() as i32)
    }

    /// Post-etch physical gate length under the super-V_th strategy —
    /// the paper's Table 2 row (65/46/32/22 nm).
    pub fn l_poly_supervth(self) -> Nanometers {
        Nanometers::new(match self {
            TechNode::N90 => 65.0,
            TechNode::N65 => 46.0,
            TechNode::N45 => 32.0,
            TechNode::N32 => 22.0,
        })
    }

    /// Gate oxide thickness: 2.10 nm shrinking 10 % per generation —
    /// the paper's Table 2/Table 3 row (identical under both strategies).
    pub fn t_ox(self) -> Nanometers {
        self.t_ox_at_rate(0.10)
    }

    /// Gate oxide thickness under a hypothetical per-generation shrink
    /// `rate` (e.g. `0.30` for ideal generalized scaling). The paper's
    /// whole argument rests on the *actual* rate being only ~0.10; this
    /// knob exists for the oxide-scaling ablation study.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ rate < 1`.
    pub fn t_ox_at_rate(self, rate: f64) -> Nanometers {
        assert!((0.0..1.0).contains(&rate), "shrink rate must be in [0, 1)");
        Nanometers::new(2.10 * (1.0 - rate).powi(self.generation() as i32))
    }

    /// Nominal supply under the super-V_th strategy (1.2 → 0.9 V).
    pub fn v_dd_nominal(self) -> Volts {
        Volts::new(match self {
            TechNode::N90 => 1.2,
            TechNode::N65 => 1.1,
            TechNode::N45 => 1.0,
            TechNode::N32 => 0.9,
        })
    }

    /// Leakage budget under the super-V_th strategy:
    /// `100 pA/µm · 1.25^g` (100/125/156/195 pA/µm).
    pub fn i_leak_budget(self) -> AmpsPerMicron {
        AmpsPerMicron::from_picoamps(100.0 * 1.25f64.powi(self.generation() as i32))
    }
}

impl core::fmt::Display for TechNode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_ox_matches_paper_table2() {
        let want = [2.10, 1.89, 1.70, 1.53];
        for (node, w) in TechNode::ALL.iter().zip(want) {
            assert!(
                (node.t_ox().get() - w).abs() < 0.011,
                "{node}: {} vs {w}",
                node.t_ox()
            );
        }
    }

    #[test]
    fn l_poly_matches_paper_table2() {
        let want = [65.0, 46.0, 32.0, 22.0];
        for (node, w) in TechNode::ALL.iter().zip(want) {
            assert_eq!(node.l_poly_supervth().get(), w);
        }
    }

    #[test]
    fn leakage_budget_matches_paper() {
        let want = [100.0, 125.0, 156.25, 195.3];
        for (node, w) in TechNode::ALL.iter().zip(want) {
            assert!(
                (node.i_leak_budget().as_picoamps() - w).abs() < 1.0,
                "{node}"
            );
        }
    }

    #[test]
    fn vdd_steps_down_100mv_per_node() {
        for w in TechNode::ALL.windows(2) {
            let dv = w[0].v_dd_nominal().as_volts() - w[1].v_dd_nominal().as_volts();
            assert!((dv - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn dimension_scale_is_30_percent_per_generation() {
        assert_eq!(TechNode::N90.dimension_scale(), 1.0);
        assert!((TechNode::N32.dimension_scale() - 0.343).abs() < 1e-12);
    }

    #[test]
    fn ordering_follows_scaling() {
        assert!(TechNode::N90 < TechNode::N32);
        assert_eq!(TechNode::ALL[3].generation(), 3);
    }
}
